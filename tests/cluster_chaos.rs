//! Cluster-level chaos and correctness: a predicate-sharded router over
//! real in-process `clare-net` backends, with log-shipping replication
//! exercised under seeded fault schedules.
//!
//! The invariants, in increasing order of hostility:
//!
//! 1. **Routing is invisible.** Every answer through the router is
//!    byte-identical to a per-shard reference server that received
//!    exactly the writes routed to that shard — including hot-predicate
//!    broadcasts merged across shards.
//! 2. **Replication storms are correct-or-flagged.** Under dropped,
//!    reordered, duplicated, and refused replication frames, a manual
//!    failover serves answers that are either byte-identical to the
//!    reference or flagged degraded; every write acknowledged
//!    `replicated: true` survives.
//! 3. **Killing the primary loses nothing acknowledged.** With a live
//!    backup, shutting the primary down mid-write-stream and letting
//!    health probes auto-promote keeps every acknowledged write
//!    queryable.
//! 4. **A mismatched knowledge base is refused.** A backend whose hello
//!    fingerprint disagrees with the cluster's never joins.
//!
//! Schedule count scales with `CLARE_CLUSTER_SCHEDULES` (CI raises it;
//! the local default keeps `cargo test` quick).

use clare::prelude::*;
use clare_cluster::{merge_retrievals, ClusterError, Router, RouterConfig, ShardMap, ShardSpec};
use clare_core::ClauseRetrievalServer;
use clare_fault::{DeterministicInjector, FaultPlan, FaultSite};
use std::sync::Arc;
use std::time::Duration;

fn schedules() -> u64 {
    std::env::var("CLARE_CLUSTER_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
        .max(2)
}

/// The shared base knowledge base. The cluster contract is that every
/// runtime-asserted predicate and every constant it uses are
/// pre-declared here, so all backends (and the router's snapshot) agree
/// on the symbol namespace byte-for-byte.
fn base_kb() -> KnowledgeBase {
    let mut b = KbBuilder::new();
    let mut s = String::new();
    for p in 0..8 {
        s.push_str(&format!("p{p}(seed, seed).\n"));
    }
    // The hot predicate is overlay-only: its functor is interned via the
    // pool (so every namespace can resolve it) but it has no base
    // clauses — base clauses of a hot predicate would be answered once
    // per shard in an unbound broadcast, since every shard holds the
    // full base.
    s.push_str("pool(hot).\n");
    for k in 0..20 {
        s.push_str(&format!("pool(k{k}).\n"));
    }
    for v in 0..8 {
        s.push_str(&format!("pool(v{v}).\n"));
    }
    b.consult("m", &s).unwrap();
    b.finish(KbConfig::default())
}

/// One in-process backend: a full `clare-net` server over its own CRS.
fn backend() -> (NetServer, String) {
    let crs = ClauseRetrievalServer::shared(base_kb(), CrsOptions::default());
    let server = NetServer::bind(crs, "127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// An in-process reference server sharing the backends' base build.
fn reference() -> ClauseRetrievalServer {
    ClauseRetrievalServer::new(base_kb(), CrsOptions::default())
}

fn install(seed: u64, plan: FaultPlan) -> clare_fault::InstallGuard {
    clare_fault::install(Arc::new(DeterministicInjector::new(seed, plan)))
}

// ---------------------------------------------------------------------
// Group 1: routing and byte-identity (no faults, no replication)
// ---------------------------------------------------------------------

/// Every routed answer equals a per-shard reference that received
/// exactly that shard's writes; hot broadcasts merge across shards.
#[test]
fn routed_answers_match_per_shard_references() {
    let (_s0, a0) = backend();
    let (_s1, a1) = backend();
    let map = ShardMap {
        shards: vec![
            ShardSpec {
                primary: a0,
                backup: None,
            },
            ShardSpec {
                primary: a1,
                backup: None,
            },
        ],
        hot: vec![("hot".to_owned(), 2)],
        fingerprint: None,
    };
    let placements = map.clone();
    let router = Router::connect(map, RouterConfig::default()).unwrap();
    let refs = [reference(), reference()];

    // Eight predicates must not all hash to one of two shards, or the
    // test would silently stop exercising routing.
    let used: std::collections::BTreeSet<usize> = (0..8)
        .map(|p| placements.route(&format!("p{p}"), 2))
        .collect();
    assert!(used.len() == 2, "p0..p7 all routed to one shard");

    // Writes: distinct facts per predicate, mirrored onto the reference
    // of whichever shard the router picked; plus hot facts that split
    // by first argument, and one retract.
    for p in 0..8 {
        for i in 0..6 {
            let fact = format!("p{p}(k{i}, v{}).", i % 4);
            let receipt = router.assert("m", &fact).unwrap();
            assert_eq!(receipt.shard, placements.route(&format!("p{p}"), 2));
            assert!(!receipt.replicated, "no backups: replicated must be false");
            refs[receipt.shard].assert_source("m", &fact).unwrap();
        }
    }
    for i in 0..12 {
        let fact = format!("hot(k{i}, v{}).", i % 3);
        let receipt = router.assert("m", &fact).unwrap();
        refs[receipt.shard].assert_source("m", &fact).unwrap();
    }
    let gone = "p0(k5, v1).";
    let r = router.retract("m", gone).unwrap();
    refs[r.shard].retract_source("m", gone).unwrap();

    let mut syms = router.symbols();
    let mut ref_syms = refs[0].symbols();
    for (q, is_hot) in [
        ("p0(K, V)", false),
        ("p0(k5, V)", false),
        ("p3(k2, v2)", false),
        ("p7(K, v1)", false),
        ("pool(X)", false),
        ("hot(k3, X)", true),
        ("hot(k10, v1)", true),
    ] {
        let query = parse_term(q, &mut syms).unwrap();
        let got = router.retrieve(&query, SearchMode::TwoStage).unwrap();
        let ref_query = parse_term(q, &mut ref_syms).unwrap();
        let shard = if is_hot {
            // Re-derive the hot sub-shard from the map: the first-arg
            // signature for an atom is `a:` + its text.
            let sig_atom = q
                .strip_prefix("hot(")
                .and_then(|rest| rest.split(',').next())
                .unwrap();
            let mut sig = b"a:".to_vec();
            sig.extend_from_slice(sig_atom.as_bytes());
            match placements.place("hot", 2, Some(&sig)) {
                clare_cluster::Placement::One(s) => s,
                clare_cluster::Placement::All => unreachable!(),
            }
        } else {
            let functor = q.split('(').next().unwrap();
            placements.route(functor, 2)
        };
        let want = refs[shard].retrieve(&ref_query, SearchMode::TwoStage);
        assert_eq!(got, want, "router answer diverged on {q}");
    }

    // Hot predicate with an unbound first argument: broadcast + merge,
    // equal to merging the two references in shard order.
    let query = parse_term("hot(K, V)", &mut syms).unwrap();
    let got = router.retrieve(&query, SearchMode::TwoStage).unwrap();
    let ref_query = parse_term("hot(K, V)", &mut ref_syms).unwrap();
    let want = merge_retrievals(
        refs.iter()
            .map(|r| r.retrieve(&ref_query, SearchMode::TwoStage))
            .collect(),
    )
    .unwrap();
    assert_eq!(got, want, "broadcast merge diverged");
    assert_eq!(got.stats.unified, 12, "hot facts lost in the merge");
}

/// Placement errors are typed: an unknown predicate is unroutable, and
/// one source whose clause heads land on different shards is refused
/// (cross-shard writes are not atomic, so they are not accepted).
#[test]
fn unroutable_and_cross_shard_writes_are_refused() {
    let (_s0, a0) = backend();
    let (_s1, a1) = backend();
    let map = ShardMap {
        shards: vec![
            ShardSpec {
                primary: a0,
                backup: None,
            },
            ShardSpec {
                primary: a1,
                backup: None,
            },
        ],
        hot: Vec::new(),
        fingerprint: None,
    };
    let placements = map.clone();
    let router = Router::connect(map, RouterConfig::default()).unwrap();

    let mut syms = router.symbols();
    let query = parse_term("never_declared(X)", &mut syms).unwrap();
    assert!(matches!(
        router.retrieve(&query, SearchMode::TwoStage),
        Err(ClusterError::Unroutable(_))
    ));

    // Find two predicates on different shards and write them as one
    // source: the router must refuse rather than half-apply.
    let s0 = placements.route("p0", 2);
    let other = (1..8)
        .find(|p| placements.route(&format!("p{p}"), 2) != s0)
        .expect("p0..p7 all on one shard");
    let source = format!("p0(k1, v1). p{other}(k1, v1).");
    match router.assert("m", &source) {
        Err(ClusterError::CrossShardWrite { first, other }) => assert_ne!(first, other),
        other => panic!("expected CrossShardWrite, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Group 2: replication storms, then manual failover
// ---------------------------------------------------------------------

/// Seeded storms over both replication fault sites (frames dropped,
/// reordered, duplicated in flight; applies refused or stalled at the
/// backup), then a manual promotion: answers from the promoted backup
/// are byte-identical to the reference or flagged degraded, and every
/// write acknowledged `replicated: true` is present.
#[test]
fn replication_chaos_then_failover_is_correct_or_flagged() {
    for seed in 0..schedules() {
        let (_primary, pa) = backend();
        let (_backup, ba) = backend();
        let map = ShardMap {
            shards: vec![ShardSpec {
                primary: pa,
                backup: Some(ba),
            }],
            hot: Vec::new(),
            fingerprint: None,
        };
        let cfg = RouterConfig {
            repl_sync_timeout: Duration::from_millis(250),
            auto_failover: false,
            ..RouterConfig::default()
        };
        let router = Router::connect(map, cfg).unwrap();
        let reference = reference();

        let permille = 100 + (seed % 4) as u32 * 100;
        let plan = FaultPlan::none()
            .with(FaultSite::ReplSend, permille)
            .with(FaultSite::ReplApply, permille / 2);
        let mut replicated_facts = Vec::new();
        {
            let _guard = install(seed, plan);
            for i in 0..14 {
                let fact = format!("p{}(k{}, v{}).", i % 4, i, i % 4);
                let receipt = router.assert("m", &fact).unwrap();
                reference.assert_source("m", &fact).unwrap();
                if receipt.replicated {
                    replicated_facts.push(format!("p{}(k{}, v{})", i % 4, i, i % 4));
                }
            }
        }

        router.promote(0).unwrap();
        assert!(
            router.is_failed_over(0),
            "seed {seed}: promote did not take"
        );

        let mut syms = router.symbols();
        let mut ref_syms = reference.symbols();

        // Hard guarantee: a write acknowledged as replicated was applied
        // by the backup before the ack, so it must survive the primary.
        for fact in &replicated_facts {
            let query = parse_term(fact, &mut syms).unwrap();
            let got = router.retrieve(&query, SearchMode::TwoStage).unwrap();
            assert!(
                got.stats.unified >= 1,
                "seed {seed}: replicated-acked write {fact} lost in failover"
            );
        }

        // Soft guarantee: everything else is right or visibly degraded.
        for q in ["p0(K, V)", "p1(K, V)", "p2(K, V)", "p3(K, V)"] {
            let query = parse_term(q, &mut syms).unwrap();
            let got = router.retrieve(&query, SearchMode::TwoStage).unwrap();
            let ref_query = parse_term(q, &mut ref_syms).unwrap();
            let want = reference.retrieve(&ref_query, SearchMode::TwoStage);
            if got != want {
                assert!(
                    got.stats.degraded,
                    "seed {seed}: wrong answer for {q} not flagged degraded"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Group 3: kill the primary mid-stream, automatic failover
// ---------------------------------------------------------------------

/// A writer streams commits while the primary is shut down under it;
/// health probes notice and promote the backup. Every write that was
/// acknowledged must still be queryable afterwards (flagged degraded at
/// worst), and the promoted shard accepts new writes.
#[test]
fn killing_the_primary_loses_no_acknowledged_write() {
    let (primary, pa) = backend();
    let (_backup, ba) = backend();
    let map = ShardMap {
        shards: vec![ShardSpec {
            primary: pa,
            backup: Some(ba),
        }],
        hot: Vec::new(),
        fingerprint: None,
    };
    let cfg = RouterConfig {
        heartbeat_misses: 2,
        health_timeout: Duration::from_millis(200),
        ..RouterConfig::default()
    };
    let router = Arc::new(Router::connect(map, cfg).unwrap());

    let writer = {
        let router = Arc::clone(&router);
        std::thread::spawn(move || {
            let mut acked = Vec::new();
            for i in 0..400 {
                let fact = format!("p{}(k{}, v{}).", i % 4, i % 20, i % 8);
                match router.assert("m", &fact) {
                    Ok(receipt) => acked.push((fact, receipt.replicated)),
                    // The primary died under this write: its outcome is
                    // unknown and unacknowledged — no guarantee owed.
                    Err(_) => break,
                }
            }
            acked
        })
    };
    std::thread::sleep(Duration::from_millis(120));
    primary.shutdown();
    let acked = writer.join().unwrap();
    assert!(!acked.is_empty(), "no write ever succeeded");

    let mut promoted = false;
    for _ in 0..50 {
        if router.tick_health().contains(&0) {
            promoted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(promoted, "health probes never promoted the backup");
    assert!(router.is_failed_over(0));

    let mut syms = router.symbols();
    for (fact, replicated) in &acked {
        let q = fact.trim_end_matches('.');
        let query = parse_term(q, &mut syms).unwrap();
        let got = router.retrieve(&query, SearchMode::TwoStage).unwrap();
        if *replicated {
            assert!(
                got.stats.unified >= 1,
                "replicated-acked write {fact} lost after kill + auto-failover"
            );
        } else if got.stats.unified == 0 {
            // An acked-but-unreplicated write may be lost with the
            // primary — but then the shard must be serving degraded.
            assert!(
                got.stats.degraded,
                "lost acked write {fact} without a degraded flag"
            );
        }
    }

    // The promoted shard keeps accepting writes (now unreplicated).
    let receipt = router.assert("m", "p0(k19, v7).").unwrap();
    assert!(!receipt.replicated);
    let query = parse_term("p0(k19, v7)", &mut syms).unwrap();
    let got = router.retrieve(&query, SearchMode::TwoStage).unwrap();
    assert!(got.stats.unified >= 1, "post-failover write not queryable");
}

// ---------------------------------------------------------------------
// Group 5: per-shard circuit breaker
// ---------------------------------------------------------------------

/// A dead primary trips the shard's circuit breaker after K consecutive
/// transport failures: further requests fast-fail with the typed
/// `ShardUnavailable` (no network touched, no worker wasted on a sick
/// node), and after a promotion plus one cooldown the half-open probe
/// closes the breaker again.
#[test]
fn breaker_opens_after_k_failures_and_recovers_via_half_open_probe() {
    let (primary, pa) = backend();
    let (_backup, ba) = backend();
    let map = ShardMap {
        shards: vec![ShardSpec {
            primary: pa,
            backup: Some(ba),
        }],
        hot: Vec::new(),
        fingerprint: None,
    };
    let threshold = 3u32;
    let cooldown = Duration::from_millis(300);
    let cfg = RouterConfig {
        auto_failover: false,
        breaker_threshold: threshold,
        breaker_cooldown: cooldown,
        client: ClientConfig {
            connect_timeout: Duration::from_millis(300),
            read_timeout: Duration::from_millis(300),
            write_timeout: Duration::from_millis(300),
            busy_retries: 0,
            reconnect_retries: 0,
            ..ClientConfig::default()
        },
        ..RouterConfig::default()
    };
    let router = Router::connect(map, cfg).unwrap();
    let mut syms = router.symbols();
    let query = parse_term("p0(seed, X)", &mut syms).unwrap();

    // Healthy: the breaker is closed and answers flow.
    let healthy = router.retrieve(&query, SearchMode::TwoStage).unwrap();
    assert!(healthy.stats.unified >= 1);

    let opens_before = clare_trace::metrics().router_breaker_opens.get();
    let rejections_before = clare_trace::metrics().router_breaker_rejections.get();

    primary.shutdown();

    // K consecutive transport failures: every one is a real backend
    // conversation (Io/Protocol), not yet a breaker rejection.
    for i in 0..threshold {
        match router.retrieve(&query, SearchMode::TwoStage) {
            Err(ClusterError::Net(_)) => {}
            other => panic!("failure {i}: expected a transport error, got {other:?}"),
        }
    }
    assert_eq!(
        clare_trace::metrics().router_breaker_opens.get(),
        opens_before + 1,
        "breaker did not open after {threshold} consecutive failures"
    );

    // Open: requests fast-fail with the typed error without touching the
    // network (well under the cooldown, let alone a connect timeout).
    let t0 = std::time::Instant::now();
    match router.retrieve(&query, SearchMode::TwoStage) {
        Err(ClusterError::ShardUnavailable { shard, retry_after }) => {
            assert_eq!(shard, 0);
            assert!(retry_after <= cooldown);
        }
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_millis(100),
        "open-breaker rejection was not a fast-fail"
    );
    assert!(clare_trace::metrics().router_breaker_rejections.get() > rejections_before);

    // Operator promotes the backup; once the cooldown elapses the next
    // request is the half-open probe, it succeeds, and the breaker
    // closes for everyone.
    router.promote(0).unwrap();
    std::thread::sleep(cooldown + Duration::from_millis(50));
    let probes_before = clare_trace::metrics().router_breaker_half_open_probes.get();
    let recovered = router.retrieve(&query, SearchMode::TwoStage).unwrap();
    assert!(recovered.stats.unified >= 1, "probe answer lost data");
    assert!(
        clare_trace::metrics().router_breaker_half_open_probes.get() > probes_before,
        "recovery did not go through a half-open probe"
    );
    for _ in 0..3 {
        router.retrieve(&query, SearchMode::TwoStage).unwrap();
    }
}

// ---------------------------------------------------------------------
// Group 4: fingerprint mismatch refusal
// ---------------------------------------------------------------------

/// A backend serving a different knowledge base (different hello
/// fingerprint) is refused with the typed error — whether the cluster's
/// fingerprint came from the map or from the first backend seen.
#[test]
fn mismatched_kb_fingerprint_is_refused() {
    let (_s0, a0) = backend();
    let crs = ClauseRetrievalServer::shared(
        {
            let mut b = KbBuilder::new();
            b.consult("m", "entirely_different(base).").unwrap();
            b.finish(KbConfig::default())
        },
        CrsOptions::default(),
    );
    let imposter = NetServer::bind(crs, "127.0.0.1:0", NetConfig::default()).unwrap();
    let ia = imposter.local_addr().to_string();

    // First-seen fingerprint (shard 0) vs the imposter on shard 1.
    let map = ShardMap {
        shards: vec![
            ShardSpec {
                primary: a0.clone(),
                backup: None,
            },
            ShardSpec {
                primary: ia.clone(),
                backup: None,
            },
        ],
        hot: Vec::new(),
        fingerprint: None,
    };
    match Router::connect(map, RouterConfig::default()) {
        Err(ClusterError::FingerprintMismatch {
            addr,
            expected,
            got,
        }) => {
            assert_eq!(addr, ia);
            assert_ne!(expected, got);
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }

    // A pinned map fingerprint refuses even the first backend; the
    // imposter as a *backup* is refused too.
    let map = ShardMap {
        shards: vec![ShardSpec {
            primary: a0,
            backup: Some(ia),
        }],
        hot: Vec::new(),
        fingerprint: Some(0xdead_beef),
    };
    match Router::connect(map, RouterConfig::default()) {
        Err(ClusterError::FingerprintMismatch { expected, .. }) => {
            assert_eq!(expected, 0xdead_beef);
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
}
