//! The Table A1 type-tag scheme, bit-for-bit.
//!
//! | Item | Tag |
//! |---|---|
//! | Anonymous Var | `0010 0000` (0x20) |
//! | First Query Var | `0010 0111` (0x27) |
//! | Subsequent Query Var | `0010 0101` (0x25) |
//! | First DB Var | `0010 0110` (0x26) |
//! | Subsequent DB Var | `0010 0100` (0x24) |
//! | Atom Pointer | `0000 1000` (0x08) |
//! | Float Pointer | `0000 1001` (0x09) |
//! | Integer In-line | `0001 nnnn` (0x1N, `nnnn` = most significant nibble) |
//! | Structure In-line | `011a aaaa` (arity ≤ 31, elements follow) |
//! | Structure Pointer | `010a aaaa` |
//! | Terminated List In-line | `111a aaaa` (elements follow) |
//! | Unterminated List In-line | `101a aaaa` (elements follow) |
//! | Terminated List Pointer | `110a aaaa` (DB arguments only) |
//! | Unterminated List Pointer | `100a aaaa` (DB arguments only) |

use crate::error::PifError;
use std::fmt;

/// Base tag byte for the anonymous variable.
pub const TAG_ANON: u8 = 0x20;
/// Tag byte for a first-occurrence query variable.
pub const TAG_FIRST_QV: u8 = 0x27;
/// Tag byte for a subsequent-occurrence query variable.
pub const TAG_SUB_QV: u8 = 0x25;
/// Tag byte for a first-occurrence database variable.
pub const TAG_FIRST_DV: u8 = 0x26;
/// Tag byte for a subsequent-occurrence database variable.
pub const TAG_SUB_DV: u8 = 0x24;
/// Tag byte for an atom pointer (content = symbol table offset).
pub const TAG_ATOM_PTR: u8 = 0x08;
/// Tag byte for a float pointer (content = symbol table offset).
pub const TAG_FLOAT_PTR: u8 = 0x09;
/// High nibble of an in-line integer tag (`0x1N`).
pub const TAG_INT_NIBBLE: u8 = 0x10;
/// High bits of a structure in-line tag (`011a aaaa`).
pub const TAG_STRUCT_INLINE: u8 = 0b0110_0000;
/// High bits of a structure pointer tag (`010a aaaa`).
pub const TAG_STRUCT_PTR: u8 = 0b0100_0000;
/// High bits of a terminated list in-line tag (`111a aaaa`).
pub const TAG_LIST_T_INLINE: u8 = 0b1110_0000;
/// High bits of an unterminated list in-line tag (`101a aaaa`).
pub const TAG_LIST_U_INLINE: u8 = 0b1010_0000;
/// High bits of a terminated list pointer tag (`110a aaaa`).
pub const TAG_LIST_T_PTR: u8 = 0b1100_0000;
/// High bits of an unterminated list pointer tag (`100a aaaa`).
pub const TAG_LIST_U_PTR: u8 = 0b1000_0000;

/// Maximum arity encodable in the 5-bit arity field of a complex-term tag.
pub const MAX_TAG_ARITY: u8 = 31;

/// Number of distinct tag byte values in the scheme: 5 variable tags,
/// 2 pointer tags, 16 integer tags (`0x10`–`0x1F`), and 6 complex families
/// of 32 arities each (192). The paper reports "107 data types" for its
/// richer production scheme; ours enumerates the Table A1 subset.
pub const TAG_VALUE_COUNT: usize = 5 + 2 + 16 + 6 * 32;

/// Decoded meaning of a tag byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeTag {
    /// `_` — matches anything, binds nothing.
    Anon,
    /// Query variable; `first` distinguishes 1st-QV from Sub-QV.
    QueryVar {
        /// True for the first occurrence in the query.
        first: bool,
    },
    /// Database variable; `first` distinguishes 1st-DV from Sub-DV.
    DbVar {
        /// True for the first occurrence in the clause head.
        first: bool,
    },
    /// Atom pointer (content = symbol table offset).
    AtomPtr,
    /// Float pointer (content = symbol table offset).
    FloatPtr,
    /// In-line integer; the tag's low nibble is the value's most
    /// significant nibble (bits 24–27 of the 28-bit value).
    IntInline {
        /// Most significant nibble of the 28-bit two's-complement value.
        high_nibble: u8,
    },
    /// In-line structure; elements follow in the stream.
    StructInline {
        /// Arity (1–31).
        arity: u8,
    },
    /// Structure pointer; elements do not appear in the stream.
    StructPtr {
        /// Arity field (saturated at 31 for larger structures).
        arity: u8,
    },
    /// In-line list; elements follow.
    ListInline {
        /// Number of in-line elements.
        arity: u8,
        /// True for a terminated (proper) list.
        terminated: bool,
    },
    /// List pointer; elements do not appear in the stream.
    ListPtr {
        /// Arity field (saturated at 31).
        arity: u8,
        /// True for a terminated list.
        terminated: bool,
    },
}

/// The three handling categories of §3.1: simple terms need simple
/// matching, variable terms need store/fetch operations, complex terms need
/// repetitive matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagCategory {
    /// Atoms, integers, floats — compared by equality.
    Simple,
    /// The five variable tags — skip, store, or fetch-then-match.
    Variable,
    /// Structures and lists — counter-driven repetitive matching.
    Complex,
}

impl TypeTag {
    /// Encodes this tag to its Table A1 byte value.
    pub fn to_byte(self) -> u8 {
        match self {
            TypeTag::Anon => TAG_ANON,
            TypeTag::QueryVar { first: true } => TAG_FIRST_QV,
            TypeTag::QueryVar { first: false } => TAG_SUB_QV,
            TypeTag::DbVar { first: true } => TAG_FIRST_DV,
            TypeTag::DbVar { first: false } => TAG_SUB_DV,
            TypeTag::AtomPtr => TAG_ATOM_PTR,
            TypeTag::FloatPtr => TAG_FLOAT_PTR,
            TypeTag::IntInline { high_nibble } => TAG_INT_NIBBLE | (high_nibble & 0x0F),
            TypeTag::StructInline { arity } => TAG_STRUCT_INLINE | (arity & 0x1F),
            TypeTag::StructPtr { arity } => TAG_STRUCT_PTR | (arity & 0x1F),
            TypeTag::ListInline {
                arity,
                terminated: true,
            } => TAG_LIST_T_INLINE | (arity & 0x1F),
            TypeTag::ListInline {
                arity,
                terminated: false,
            } => TAG_LIST_U_INLINE | (arity & 0x1F),
            TypeTag::ListPtr {
                arity,
                terminated: true,
            } => TAG_LIST_T_PTR | (arity & 0x1F),
            TypeTag::ListPtr {
                arity,
                terminated: false,
            } => TAG_LIST_U_PTR | (arity & 0x1F),
        }
    }

    /// Decodes a Table A1 tag byte.
    ///
    /// # Errors
    ///
    /// Returns [`PifError::Malformed`] for byte values outside the scheme.
    pub fn from_byte(byte: u8) -> Result<Self, PifError> {
        let malformed = |reason: String| PifError::Malformed { offset: 0, reason };
        match byte {
            TAG_ANON => Ok(TypeTag::Anon),
            TAG_FIRST_QV => Ok(TypeTag::QueryVar { first: true }),
            TAG_SUB_QV => Ok(TypeTag::QueryVar { first: false }),
            TAG_FIRST_DV => Ok(TypeTag::DbVar { first: true }),
            TAG_SUB_DV => Ok(TypeTag::DbVar { first: false }),
            TAG_ATOM_PTR => Ok(TypeTag::AtomPtr),
            TAG_FLOAT_PTR => Ok(TypeTag::FloatPtr),
            b if b & 0xF0 == TAG_INT_NIBBLE => Ok(TypeTag::IntInline {
                high_nibble: b & 0x0F,
            }),
            b if b & 0xE0 == TAG_STRUCT_INLINE => Ok(TypeTag::StructInline { arity: b & 0x1F }),
            b if b & 0xE0 == TAG_STRUCT_PTR => Ok(TypeTag::StructPtr { arity: b & 0x1F }),
            b if b & 0xE0 == TAG_LIST_T_INLINE => Ok(TypeTag::ListInline {
                arity: b & 0x1F,
                terminated: true,
            }),
            b if b & 0xE0 == TAG_LIST_U_INLINE => Ok(TypeTag::ListInline {
                arity: b & 0x1F,
                terminated: false,
            }),
            b if b & 0xE0 == TAG_LIST_T_PTR => Ok(TypeTag::ListPtr {
                arity: b & 0x1F,
                terminated: true,
            }),
            b if b & 0xE0 == TAG_LIST_U_PTR => Ok(TypeTag::ListPtr {
                arity: b & 0x1F,
                terminated: false,
            }),
            other => Err(malformed(format!("unknown tag byte {other:#04x}"))),
        }
    }

    /// The §3.1 handling category of this tag.
    pub fn category(self) -> TagCategory {
        match self {
            TypeTag::AtomPtr | TypeTag::FloatPtr | TypeTag::IntInline { .. } => TagCategory::Simple,
            TypeTag::Anon | TypeTag::QueryVar { .. } | TypeTag::DbVar { .. } => {
                TagCategory::Variable
            }
            TypeTag::StructInline { .. }
            | TypeTag::StructPtr { .. }
            | TypeTag::ListInline { .. }
            | TypeTag::ListPtr { .. } => TagCategory::Complex,
        }
    }

    /// Number of element words that follow this word in the stream
    /// (non-zero only for in-line complex tags).
    pub fn inline_elements(self) -> usize {
        match self {
            TypeTag::StructInline { arity } | TypeTag::ListInline { arity, .. } => arity as usize,
            _ => 0,
        }
    }
}

impl fmt::Display for TypeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeTag::Anon => f.write_str("Anonymous Var"),
            TypeTag::QueryVar { first: true } => f.write_str("First Query Var"),
            TypeTag::QueryVar { first: false } => f.write_str("Subsequent Query Var"),
            TypeTag::DbVar { first: true } => f.write_str("First DB Var"),
            TypeTag::DbVar { first: false } => f.write_str("Subsequent DB Var"),
            TypeTag::AtomPtr => f.write_str("Atom Pointer"),
            TypeTag::FloatPtr => f.write_str("Float Pointer"),
            TypeTag::IntInline { .. } => f.write_str("Integer In-line"),
            TypeTag::StructInline { arity } => write!(f, "Structure In-line/{arity}"),
            TypeTag::StructPtr { arity } => write!(f, "Structure Pointer/{arity}"),
            TypeTag::ListInline {
                arity,
                terminated: true,
            } => write!(f, "Terminated List In-line/{arity}"),
            TypeTag::ListInline {
                arity,
                terminated: false,
            } => write!(f, "Unterminated List In-line/{arity}"),
            TypeTag::ListPtr {
                arity,
                terminated: true,
            } => write!(f, "Terminated List Pointer/{arity}"),
            TypeTag::ListPtr {
                arity,
                terminated: false,
            } => write!(f, "Unterminated List Pointer/{arity}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_a1_byte_values() {
        // The exact byte values printed in Table A1 of the paper.
        assert_eq!(TypeTag::Anon.to_byte(), 0x20);
        assert_eq!(TypeTag::QueryVar { first: true }.to_byte(), 0x27);
        assert_eq!(TypeTag::QueryVar { first: false }.to_byte(), 0x25);
        assert_eq!(TypeTag::DbVar { first: true }.to_byte(), 0x26);
        assert_eq!(TypeTag::DbVar { first: false }.to_byte(), 0x24);
        assert_eq!(TypeTag::AtomPtr.to_byte(), 0x08);
        assert_eq!(TypeTag::FloatPtr.to_byte(), 0x09);
        assert_eq!(TypeTag::IntInline { high_nibble: 0xA }.to_byte(), 0x1A);
        assert_eq!(TypeTag::StructInline { arity: 2 }.to_byte(), 0b0110_0010);
        assert_eq!(TypeTag::StructPtr { arity: 31 }.to_byte(), 0b0101_1111);
        assert_eq!(
            TypeTag::ListInline {
                arity: 3,
                terminated: true
            }
            .to_byte(),
            0b1110_0011
        );
        assert_eq!(
            TypeTag::ListInline {
                arity: 3,
                terminated: false
            }
            .to_byte(),
            0b1010_0011
        );
        assert_eq!(
            TypeTag::ListPtr {
                arity: 1,
                terminated: true
            }
            .to_byte(),
            0b1100_0001
        );
        assert_eq!(
            TypeTag::ListPtr {
                arity: 1,
                terminated: false
            }
            .to_byte(),
            0b1000_0001
        );
    }

    #[test]
    fn roundtrip_every_valid_byte() {
        let mut valid = 0usize;
        for byte in 0u8..=255 {
            if let Ok(tag) = TypeTag::from_byte(byte) {
                assert_eq!(tag.to_byte(), byte, "roundtrip for {byte:#04x}");
                valid += 1;
            }
        }
        assert_eq!(valid, TAG_VALUE_COUNT);
    }

    #[test]
    fn invalid_bytes_rejected() {
        for byte in [0x00u8, 0x07, 0x0A, 0x21, 0x23, 0x28, 0x3F] {
            assert!(
                TypeTag::from_byte(byte).is_err(),
                "{byte:#04x} should be invalid"
            );
        }
    }

    #[test]
    fn categories_match_section_3_1() {
        assert_eq!(TypeTag::AtomPtr.category(), TagCategory::Simple);
        assert_eq!(TypeTag::FloatPtr.category(), TagCategory::Simple);
        assert_eq!(
            TypeTag::IntInline { high_nibble: 0 }.category(),
            TagCategory::Simple
        );
        assert_eq!(TypeTag::Anon.category(), TagCategory::Variable);
        assert_eq!(
            TypeTag::QueryVar { first: true }.category(),
            TagCategory::Variable
        );
        assert_eq!(
            TypeTag::DbVar { first: false }.category(),
            TagCategory::Variable
        );
        assert_eq!(
            TypeTag::StructInline { arity: 1 }.category(),
            TagCategory::Complex
        );
        assert_eq!(
            TypeTag::ListPtr {
                arity: 0,
                terminated: true
            }
            .category(),
            TagCategory::Complex
        );
    }

    #[test]
    fn inline_elements_count() {
        assert_eq!(TypeTag::StructInline { arity: 5 }.inline_elements(), 5);
        assert_eq!(
            TypeTag::ListInline {
                arity: 2,
                terminated: false
            }
            .inline_elements(),
            2
        );
        assert_eq!(TypeTag::StructPtr { arity: 5 }.inline_elements(), 0);
        assert_eq!(TypeTag::AtomPtr.inline_elements(), 0);
    }

    #[test]
    fn display_names_match_table() {
        assert_eq!(TypeTag::Anon.to_string(), "Anonymous Var");
        assert_eq!(
            TypeTag::QueryVar { first: true }.to_string(),
            "First Query Var"
        );
        assert_eq!(TypeTag::AtomPtr.to_string(), "Atom Pointer");
    }
}
