//! Register-transfer-level execution of the microprogram's datapath
//! control fields over the Figure 5 structure.
//!
//! Where [`ops`](crate::ops) derives *timings* from routes and
//! [`engine`](crate::engine) implements the *semantics* directly, this
//! module closes the loop: it evaluates the selector settings of each
//! microinstruction against an explicit wiring of the Test Unification
//! Engine —
//!
//! ```text
//!   Sel1: left = In-bus,          right = DB Memory B-data   → Comp A
//!   Sel2: left = Sel1 output,     right = Sel3 output        → DB Mem A-addr
//!   Sel3: left = DB Memory A-data, right = Query Memory data → Comp B, Sel2
//!   Sel4: left = Sel5 output,     right = VME data           → Q Mem data-in
//!   Sel5: right = Sel1 output                                → Sel4
//!   Sel6: left = ub13–20,         right = VME address        → Q Mem addr
//!   Reg1: DB Memory B-data        (cross-binding reference)
//!   Reg3: Query Memory data       (DB Memory data-in)
//! ```
//!
//! — and produces the comparator verdict and memory writes. Tests verify
//! that executing each Table 1 routine at this level computes exactly the
//! dereference/store behaviour the matching engine implements, so the
//! microprogram, the route timings, and the engine semantics are three
//! views of one machine.

use crate::micro::{DatapathControl, SelBranch};
use crate::ops::HwOp;

/// 24-bit content mask: the memory address space of the TUE.
const CONTENT: u32 = 0x00FF_FFFF;

/// The architectural state the datapath carries across cycles.
#[derive(Debug, Clone, Default)]
pub struct Datapath {
    /// Reg1 — cross-binding reference register.
    pub reg1: u32,
    /// Reg3 — DB Memory data-in register.
    pub reg3: u32,
    /// Latched comparator A port.
    pub port_a: u32,
    /// Latched comparator B port.
    pub port_b: u32,
    /// Latched DB Memory A address (for recycling).
    pub a_addr: u32,
}

/// One cycle's observable effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleEffects {
    /// The comparator's HIT output, when strobed this cycle.
    pub hit: Option<bool>,
    /// A DB Memory write `(address, value)`, if any.
    pub db_write: Option<(u32, u32)>,
    /// A Query Memory write `(address, value)`, if any.
    pub q_write: Option<(u32, u32)>,
}

/// The memory environment a cycle executes against.
#[derive(Debug)]
pub struct RtlEnv<'a> {
    /// The In-bus: the current database argument word (Double Buffer
    /// output).
    pub in_bus: u32,
    /// The Query Memory contents (stream words and variable cells).
    pub q_memory: &'a mut Vec<u32>,
    /// The DB Memory contents (database variable cells).
    pub db_memory: &'a mut Vec<u32>,
}

fn read(memory: &[u32], addr: u32) -> u32 {
    memory.get((addr & CONTENT) as usize).copied().unwrap_or(0)
}

fn write(memory: &mut Vec<u32>, addr: u32, value: u32) {
    let index = (addr & CONTENT) as usize;
    if index >= memory.len() {
        memory.resize(index + 1, 0);
    }
    memory[index] = value;
}

impl Datapath {
    /// A powered-up datapath with cleared registers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates one microcycle: combinational selector outputs first,
    /// then register latches, memory writes, and the comparator strobe.
    pub fn cycle(&mut self, control: &DatapathControl, env: &mut RtlEnv<'_>) -> CycleEffects {
        // Query Memory address: Sel6 left = microcode bits 13–20.
        let q_addr = match control.sel6 {
            SelBranch::Left => control.q_address as u32,
            SelBranch::Right | SelBranch::Hold => control.q_address as u32,
        };
        let q_data = read(env.q_memory, q_addr);

        // DB Memory B port: addressed by the In-bus content, or by Reg1
        // during a cross-binding chase.
        let b_addr = if control.b_addr_from_reg1 {
            self.reg1
        } else {
            env.in_bus
        };
        let db_b_data = read(env.db_memory, b_addr);
        // DB Memory A port: addressed by the latched A address from the
        // previous cycle (reads happen before this cycle's address update).
        let db_a_data = read(env.db_memory, self.a_addr);

        // Selector network (combinational).
        let sel1 = match control.sel1 {
            SelBranch::Left => Some(env.in_bus),
            SelBranch::Right => Some(db_b_data),
            SelBranch::Hold => None,
        };
        let sel3 = match control.sel3 {
            SelBranch::Left => Some(db_a_data),
            SelBranch::Right => Some(q_data),
            SelBranch::Hold => None,
        };
        let sel2 = match control.sel2 {
            SelBranch::Left => sel1,
            SelBranch::Right => sel3,
            SelBranch::Hold => None,
        };
        let sel5 = match control.sel5 {
            SelBranch::Right => sel1,
            _ => None,
        };
        let sel4 = match control.sel4 {
            SelBranch::Left => sel5,
            SelBranch::Right => None, // VME data: not driven during search
            SelBranch::Hold => None,
        };

        // Latches at end of cycle.
        if let Some(a) = sel1 {
            self.port_a = a;
        }
        if let Some(b) = sel3 {
            self.port_b = b;
        }
        if let Some(addr) = sel2 {
            self.a_addr = addr & CONTENT;
        }
        if control.latch_reg1 {
            self.reg1 = db_b_data;
        }
        if control.latch_reg3 {
            self.reg3 = q_data;
        }

        // Memory writes and the comparator.
        let mut effects = CycleEffects::default();
        if control.write_db_memory {
            let addr = self.a_addr;
            write(env.db_memory, addr, self.reg3);
            effects.db_write = Some((addr, self.reg3));
        }
        if control.write_query_memory {
            let value = sel4.unwrap_or(self.port_a);
            write(env.q_memory, q_addr, value);
            effects.q_write = Some((q_addr, value));
        }
        if control.compare {
            effects.hit = Some(self.port_a == self.port_b);
        }
        effects
    }

    /// Executes every cycle of one Table 1 routine (using the
    /// microprogram's own control settings) and returns the final cycle's
    /// effects.
    pub fn execute_op(&mut self, op: HwOp, q_address: u8, env: &mut RtlEnv<'_>) -> CycleEffects {
        let program = crate::micro::Microprogram::standard();
        let mut last = CycleEffects::default();
        for instruction in program.op_routine(op) {
            let mut control = instruction.control;
            control.q_address = q_address;
            last = self.cycle(&control, env);
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word(tag: u8, content: u32) -> u32 {
        ((tag as u32) << 24) | (content & CONTENT)
    }

    /// Fresh memories: query words at 0.., db cells self-referencing.
    fn env_with(q: Vec<u32>, db: Vec<u32>) -> (Vec<u32>, Vec<u32>) {
        (q, db)
    }

    #[test]
    fn match_compares_in_bus_with_query_word() {
        let (mut q, mut db) = env_with(vec![word(0x08, 42)], vec![]);
        let mut dp = Datapath::new();
        let fx = dp.execute_op(
            HwOp::Match,
            0,
            &mut RtlEnv {
                in_bus: word(0x08, 42),
                q_memory: &mut q,
                db_memory: &mut db,
            },
        );
        assert_eq!(fx.hit, Some(true));
        let fx = dp.execute_op(
            HwOp::Match,
            0,
            &mut RtlEnv {
                in_bus: word(0x08, 43),
                q_memory: &mut q,
                db_memory: &mut db,
            },
        );
        assert_eq!(fx.hit, Some(false));
    }

    #[test]
    fn db_store_writes_query_word_at_in_bus_address() {
        // DB variable with offset 3 on the In-bus; query word at address 1.
        let (mut q, mut db) = env_with(vec![0, word(0x08, 99)], vec![0; 8]);
        let mut dp = Datapath::new();
        let fx = dp.execute_op(
            HwOp::DbStore,
            1,
            &mut RtlEnv {
                in_bus: word(0x26, 3),
                q_memory: &mut q,
                db_memory: &mut db,
            },
        );
        // The figure's semantics: DB Memory[content of db word] := query
        // argument. Addresses take the word's low 24 bits.
        assert_eq!(fx.db_write, Some((word(0x26, 3) & CONTENT, word(0x08, 99))));
        assert_eq!(db[(word(0x26, 3) & CONTENT) as usize], word(0x08, 99));
    }

    #[test]
    fn query_store_writes_db_word_into_query_memory() {
        let (mut q, mut db) = env_with(vec![0, 0, 0], vec![]);
        let mut dp = Datapath::new();
        let fx = dp.execute_op(
            HwOp::QueryStore,
            2,
            &mut RtlEnv {
                in_bus: word(0x08, 7),
                q_memory: &mut q,
                db_memory: &mut db,
            },
        );
        assert_eq!(fx.q_write, Some((2, word(0x08, 7))));
        assert_eq!(q[2], word(0x08, 7));
    }

    #[test]
    fn db_fetch_compares_binding_with_query_word() {
        // DB cell 5 holds atom#12; query word is atom#12 -> HIT.
        let mut db = vec![0; 8];
        db[5] = word(0x08, 12);
        let (mut q, mut db) = env_with(vec![word(0x08, 12)], db);
        let mut dp = Datapath::new();
        let fx = dp.execute_op(
            HwOp::DbFetch,
            0,
            &mut RtlEnv {
                in_bus: word(0x24, 5),
                q_memory: &mut q,
                db_memory: &mut db,
            },
        );
        assert_eq!(fx.hit, Some(true));
        // Different binding -> miss.
        db[5] = word(0x08, 13);
        let fx = dp.execute_op(
            HwOp::DbFetch,
            0,
            &mut RtlEnv {
                in_bus: word(0x24, 5),
                q_memory: &mut q,
                db_memory: &mut db,
            },
        );
        assert_eq!(fx.hit, Some(false));
    }

    #[test]
    fn query_fetch_dereferences_through_db_memory() {
        // Query cell (addr 1) holds a pointer word whose content addresses
        // DB Memory cell 6; that cell holds the binding to compare.
        let mut db = vec![0; 8];
        db[6] = word(0x08, 77);
        let (mut q, mut db) = env_with(vec![0, word(0x25, 6)], db);
        let mut dp = Datapath::new();
        let fx = dp.execute_op(
            HwOp::QueryFetch,
            1,
            &mut RtlEnv {
                in_bus: word(0x08, 77),
                q_memory: &mut q,
                db_memory: &mut db,
            },
        );
        assert_eq!(fx.hit, Some(true), "in_bus == DB[Q[1].content]");
        db[6] = word(0x08, 78);
        let fx = dp.execute_op(
            HwOp::QueryFetch,
            1,
            &mut RtlEnv {
                in_bus: word(0x08, 77),
                q_memory: &mut q,
                db_memory: &mut db,
            },
        );
        assert_eq!(fx.hit, Some(false));
    }

    #[test]
    fn db_cross_bound_fetch_chases_two_levels() {
        // In-bus names DB cell 2; cell 2 holds a reference to cell 4;
        // cell 4 holds the ultimate binding.
        let mut db = vec![0; 8];
        db[2] = word(0x24, 4);
        db[4] = word(0x08, 55);
        let (mut q, mut db) = env_with(vec![word(0x08, 55)], db);
        let mut dp = Datapath::new();
        let fx = dp.execute_op(
            HwOp::DbCrossBoundFetch,
            0,
            &mut RtlEnv {
                in_bus: word(0x24, 2),
                q_memory: &mut q,
                db_memory: &mut db,
            },
        );
        assert_eq!(fx.hit, Some(true), "DB[DB[in_bus].content] == Q[0]");
        db[4] = word(0x08, 56);
        let fx = dp.execute_op(
            HwOp::DbCrossBoundFetch,
            0,
            &mut RtlEnv {
                in_bus: word(0x24, 2),
                q_memory: &mut q,
                db_memory: &mut db,
            },
        );
        assert_eq!(fx.hit, Some(false));
    }

    #[test]
    fn query_cross_bound_fetch_chases_three_levels() {
        // Q[1] -> DB[3] -> DB[5] -> ultimate binding, compared to In-bus.
        let mut db = vec![0; 8];
        db[3] = word(0x24, 5);
        db[5] = word(0x08, 91);
        let (mut q, mut db) = env_with(vec![0, word(0x25, 3)], db);
        let mut dp = Datapath::new();
        let fx = dp.execute_op(
            HwOp::QueryCrossBoundFetch,
            1,
            &mut RtlEnv {
                in_bus: word(0x08, 91),
                q_memory: &mut q,
                db_memory: &mut db,
            },
        );
        assert_eq!(fx.hit, Some(true), "in_bus == DB[DB[Q[1]].content]");
        db[5] = word(0x08, 92);
        let fx = dp.execute_op(
            HwOp::QueryCrossBoundFetch,
            1,
            &mut RtlEnv {
                in_bus: word(0x08, 91),
                q_memory: &mut q,
                db_memory: &mut db,
            },
        );
        assert_eq!(fx.hit, Some(false));
    }

    #[test]
    fn store_ops_do_not_strobe_the_comparator() {
        let (mut q, mut db) = env_with(vec![word(0x08, 1)], vec![0; 4]);
        let mut dp = Datapath::new();
        let fx = dp.execute_op(
            HwOp::DbStore,
            0,
            &mut RtlEnv {
                in_bus: word(0x26, 1),
                q_memory: &mut q,
                db_memory: &mut db,
            },
        );
        assert_eq!(fx.hit, None);
        let fx = dp.execute_op(
            HwOp::QueryStore,
            0,
            &mut RtlEnv {
                in_bus: word(0x08, 2),
                q_memory: &mut q,
                db_memory: &mut db,
            },
        );
        assert_eq!(fx.hit, None);
    }
}
