//! An interactive Prolog front-end over the CLARE pipeline.
//!
//! ```text
//! cargo run --release --example repl [program.pl]
//! ```
//!
//! Reads a program (from the given file, or a built-in family demo),
//! compiles it into a disk-resident knowledge base, then answers goals
//! typed on stdin. Every goal is solved through the Clause Retrieval
//! Server with automatic search-mode selection; `:stats` after a query
//! shows what the simulated hardware did, `\stats` shows the server's
//! cumulative service counters, and `\metrics` dumps the process-wide
//! per-layer metrics registry (FS1, FS2, CRS, net).

use clare::fs2::trace::render_trace;
use clare::prelude::*;
use std::io::{BufRead, Write as _};

/// Streams a goal's predicate through a traced FS2 engine and prints the
/// first few per-clause comparison traces.
fn trace_goal(server: &ClauseRetrievalServer, symbols: &SymbolTable, src: &str) {
    let mut local = symbols.clone();
    let goal = match parse_term(src, &mut local) {
        Ok(goal) => goal,
        Err(e) => {
            println!("syntax error: {e}");
            return;
        }
    };
    let kb = server.snapshot();
    let Some((functor, arity)) = goal.functor_arity() else {
        println!("the goal must be an atom or structure");
        return;
    };
    let Some(pred) = kb.predicate(functor, arity) else {
        println!("unknown predicate");
        return;
    };
    let Ok(q_stream) = encode_query(&goal) else {
        println!("goal cannot be compiled for the hardware");
        return;
    };
    let mut engine = match clare::fs2::Fs2Engine::new(&q_stream) {
        Ok(engine) => engine,
        Err(e) => {
            println!("{e}");
            return;
        }
    };
    for (i, clause) in pred.clauses().iter().take(4).enumerate() {
        let Ok(c_stream) = encode_clause_head(clause.head()) else {
            continue;
        };
        let (verdict, steps) = engine.match_clause_stream_traced(&c_stream);
        println!(
            "clause {}: {}  ->  {} in {}",
            i,
            TermDisplay::new(clause.head(), kb.symbols()),
            if verdict.matched {
                "SATISFIER"
            } else {
                "rejected"
            },
            verdict.time,
        );
        print!(
            "{}",
            render_trace(q_stream.words(), c_stream.words(), &steps)
        );
    }
    if pred.clauses().len() > 4 {
        println!("… ({} more clauses)", pred.clauses().len() - 4);
    }
}

const DEMO: &str = "
    parent(tom, bob). parent(tom, liz). parent(bob, ann).
    parent(bob, pat). parent(pat, jim).
    male(tom). male(bob). male(jim). male(pat).
    female(liz). female(ann).
    grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
    ancestor(X, Y) :- parent(X, Y).
    ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path)?,
        None => DEMO.to_owned(),
    };
    let mut builder = KbBuilder::new();
    builder.consult("user", &source)?;
    let kb = builder.finish(KbConfig::default());
    let server = ClauseRetrievalServer::new(kb, CrsOptions::default());
    let symbols = server.snapshot().symbols().clone();

    println!(
        "CLARE Prolog — {} clauses loaded. Type a goal (no trailing dot needed).",
        server.snapshot().clause_count()
    );
    println!(
        "Commands: :stats (last query), \\stats (server counters), \
         \\metrics (per-layer metrics), :trace <goal> (watch FS2 match it), :quit."
    );
    let stdin = std::io::stdin();
    let mut last_stats: Option<String> = None;
    loop {
        print!("?- ");
        std::io::stdout().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim().trim_end_matches('.');
        match line {
            "" => continue,
            ":quit" | ":q" | "halt" => break,
            ":stats" => {
                println!("{}", last_stats.as_deref().unwrap_or("no query yet"));
                continue;
            }
            "\\stats" => {
                let stats = server.stats();
                println!(
                    "server: {} retrievals ({} batched calls), {} solves, \
                     {} updates, {} rejected, total modelled retrieval time {}",
                    stats.retrievals,
                    stats.batches,
                    stats.solves,
                    stats.updates,
                    stats.rejected,
                    stats.total_elapsed,
                );
                // Storage-integrity health: answers stay correct in
                // degraded mode, but quarantined tracks mean the disk (or
                // its checksums) needs attention.
                let m = clare::trace::metrics();
                println!(
                    "health: {} degraded answers, {} quarantined tracks \
                     ({} track CRC failures), {} FS2 worker recoveries",
                    stats.degraded,
                    m.fs2_quarantined_tracks.get(),
                    m.disk_track_crc_failures.get(),
                    m.fs2_worker_recoveries.get(),
                );
                continue;
            }
            "\\metrics" => {
                print!("{}", clare::trace::metrics().snapshot().render_text());
                continue;
            }
            cmd if cmd.starts_with(":trace ") => {
                trace_goal(&server, &symbols, cmd.trim_start_matches(":trace ").trim());
                continue;
            }
            _ => {}
        }
        let mut local = symbols.clone();
        let (goals, names) = match parse_goals(line, &mut local) {
            Ok(parsed) => parsed,
            Err(e) => {
                println!("syntax error: {e}");
                continue;
            }
        };
        let outcome = server.solve_goals(
            &goals,
            &names,
            &SolveOptions {
                max_solutions: 50,
                ..SolveOptions::default()
            },
        );
        if outcome.solutions.is_empty() {
            println!("false.");
        } else {
            for (i, solution) in outcome.solutions.iter().enumerate() {
                if solution.bindings.is_empty() {
                    println!("true.");
                } else {
                    let pairs: Vec<String> = solution
                        .bindings
                        .iter()
                        .map(|(name, term)| format!("{name} = {}", TermDisplay::new(term, &local)))
                        .collect();
                    println!(
                        "{}{}",
                        pairs.join(", "),
                        if i + 1 == outcome.solutions.len() {
                            "."
                        } else {
                            " ;"
                        }
                    );
                }
            }
        }
        last_stats = Some(format!(
            "{} solutions, {} retrievals, {} candidates, retrieval time {} (simulated 1989 hardware){}",
            outcome.solutions.len(),
            outcome.stats.retrievals,
            outcome.stats.candidates,
            outcome.stats.retrieval_elapsed,
            if outcome.stats.degraded {
                " [degraded: served past quarantined tracks]"
            } else {
                ""
            },
        ));
    }
    Ok(())
}
