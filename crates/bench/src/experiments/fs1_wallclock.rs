//! E14 — host wall-clock throughput of the packed columnar FS1 scan.
//!
//! E6 ([`super::fs1`]) reports *modelled* times: the 4.5 MB/s FS1
//! prototype rate from the paper. This experiment measures the *host*
//! cost of the software scan itself — the retained scalar reference
//! path ([`IndexFile::scan_reference`]), the packed columnar path
//! ([`IndexFile::scan_with_descriptor`]), and the sharded parallel path
//! ([`IndexFile::scan_with`]) — at several index sizes, and emits a
//! machine-readable `BENCH_fs1.json` so regressions are diffable.

use clare_scw::{ClauseAddr, IndexFile, QueryDescriptor, ScwConfig};
use clare_term::parser::parse_term;
use clare_term::SymbolTable;
use std::fmt;
use std::hint::black_box;
use std::time::Instant;

/// One measured index size.
#[derive(Debug, Clone, PartialEq)]
pub struct Fs1WallclockRow {
    /// Entries in the index.
    pub entries: usize,
    /// Best observed scalar reference scan, ns per full scan.
    pub scalar_ns: f64,
    /// Best observed packed columnar scan, ns per full scan.
    pub packed_ns: f64,
    /// Best observed packed + sharded parallel scan, ns per full scan.
    pub parallel_ns: f64,
}

impl Fs1WallclockRow {
    /// Entries filtered per second by the scalar reference scan.
    pub fn scalar_entries_per_sec(&self) -> f64 {
        self.entries as f64 / (self.scalar_ns / 1e9)
    }

    /// Entries filtered per second by the packed scan.
    pub fn packed_entries_per_sec(&self) -> f64 {
        self.entries as f64 / (self.packed_ns / 1e9)
    }

    /// Entries filtered per second by the parallel scan.
    pub fn parallel_entries_per_sec(&self) -> f64 {
        self.entries as f64 / (self.parallel_ns / 1e9)
    }

    /// Packed single-threaded speedup over the scalar reference.
    pub fn packed_speedup(&self) -> f64 {
        self.scalar_ns / self.packed_ns
    }

    /// Packed + parallel speedup over the scalar reference.
    pub fn parallel_speedup(&self) -> f64 {
        self.scalar_ns / self.parallel_ns
    }
}

/// The wall-clock report.
#[derive(Debug, Clone, PartialEq)]
pub struct Fs1WallclockReport {
    /// Worker threads used for the parallel rows.
    pub workers: usize,
    /// Shard size (entries) used for the parallel rows.
    pub shard_entries: usize,
    /// One row per index size, ascending.
    pub rows: Vec<Fs1WallclockRow>,
}

impl Fs1WallclockReport {
    /// Renders the report as a small JSON document (hand-written — the
    /// workspace deliberately carries no serde dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"fs1_scan_wallclock\",\n");
        out.push_str("  \"unit\": \"entries_per_sec\",\n");
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"shard_entries\": {},\n", self.shard_entries));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"entries\": {},\n", row.entries));
            out.push_str(&format!(
                "      \"scalar_ns_per_scan\": {:.0},\n",
                row.scalar_ns
            ));
            out.push_str(&format!(
                "      \"packed_ns_per_scan\": {:.0},\n",
                row.packed_ns
            ));
            out.push_str(&format!(
                "      \"parallel_ns_per_scan\": {:.0},\n",
                row.parallel_ns
            ));
            out.push_str(&format!(
                "      \"scalar_entries_per_sec\": {:.0},\n",
                row.scalar_entries_per_sec()
            ));
            out.push_str(&format!(
                "      \"packed_entries_per_sec\": {:.0},\n",
                row.packed_entries_per_sec()
            ));
            out.push_str(&format!(
                "      \"parallel_entries_per_sec\": {:.0},\n",
                row.parallel_entries_per_sec()
            ));
            out.push_str(&format!(
                "      \"packed_speedup_vs_scalar\": {:.2},\n",
                row.packed_speedup()
            ));
            out.push_str(&format!(
                "      \"parallel_speedup_vs_scalar\": {:.2}\n",
                row.parallel_speedup()
            ));
            out.push_str(if i + 1 == self.rows.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Builds the same synthetic index the criterion bench uses: `n` facts
/// `p(k{i}, v{i % 97})` so a ground query selects ~1% of entries.
fn build_index(n: usize, symbols: &mut SymbolTable) -> IndexFile {
    let mut index = IndexFile::with_capacity(ScwConfig::paper(), n);
    for i in 0..n {
        let head = parse_term(&format!("p(k{}, v{})", i, i % 97), symbols).unwrap();
        index.insert(&head, ClauseAddr::new((i / 200) as u32, (i % 200) as u16));
    }
    index
}

/// Times `scan` by calibrated batches and returns the best observed
/// per-scan time in ns (min over batches rejects scheduler noise).
/// Shared with [`super::fs2_wallclock`].
pub(crate) fn best_ns(mut scan: impl FnMut() -> usize, budget: std::time::Duration) -> f64 {
    // Warm up and calibrate a batch to ~1/8 of the budget.
    let start = Instant::now();
    black_box(scan());
    let once = start.elapsed().as_secs_f64().max(1e-9);
    let iters = ((budget.as_secs_f64() / 8.0 / once).ceil() as usize).clamp(1, 1 << 20);
    let mut best = f64::INFINITY;
    let deadline = Instant::now() + budget;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(scan());
        }
        let per_iter = t.elapsed().as_secs_f64() * 1e9 / iters as f64;
        best = best.min(per_iter);
        if Instant::now() >= deadline {
            return best;
        }
    }
}

/// Runs the experiment at the given index sizes with a per-measurement
/// time budget. The checked-in `BENCH_fs1.json` uses
/// `&[1_000, 10_000, 100_000]` and a 1 s budget.
pub fn run(sizes: &[usize], budget: std::time::Duration) -> Fs1WallclockReport {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let config = ScwConfig::paper();
    let mut rows = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let mut symbols = SymbolTable::new();
        let index = build_index(n, &mut symbols);
        let query = parse_term("p(k42, X)", &mut symbols).unwrap();
        let descriptor: QueryDescriptor = clare_scw::encode_query_descriptor(&query, &config);
        let scalar_ns = best_ns(|| index.scan_reference(&descriptor).matches.len(), budget);
        let packed_ns = best_ns(
            || index.scan_with_descriptor(&descriptor).matches.len(),
            budget,
        );
        let parallel_ns = best_ns(
            || index.scan_with(&descriptor, workers).matches.len(),
            budget,
        );
        rows.push(Fs1WallclockRow {
            entries: n,
            scalar_ns,
            packed_ns,
            parallel_ns,
        });
    }
    Fs1WallclockReport {
        workers,
        shard_entries: config.shard_entries(),
        rows,
    }
}

impl fmt::Display for Fs1WallclockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E14: FS1 host scan throughput — scalar reference vs packed columnar vs \
             packed+parallel ({} workers, shard {})\n",
            self.workers, self.shard_entries
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.entries.to_string(),
                    format!("{:.1}", r.scalar_entries_per_sec() / 1e6),
                    format!("{:.1}", r.packed_entries_per_sec() / 1e6),
                    format!("{:.1}", r.parallel_entries_per_sec() / 1e6),
                    format!("{:.2}x", r.packed_speedup()),
                    format!("{:.2}x", r.parallel_speedup()),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            crate::render_table(
                &[
                    "entries",
                    "scalar Me/s",
                    "packed Me/s",
                    "parallel Me/s",
                    "packed speedup",
                    "parallel speedup",
                ],
                &rows,
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn report_shape_and_json() {
        let r = run(&[500, 2_000], Duration::from_millis(40));
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            assert!(row.scalar_ns > 0.0);
            assert!(row.packed_ns > 0.0);
            assert!(row.parallel_ns > 0.0);
            assert!(row.packed_entries_per_sec() > 0.0);
        }
        let json = r.to_json();
        assert!(json.contains("\"experiment\": \"fs1_scan_wallclock\""));
        assert!(json.contains("\"entries\": 500"));
        assert!(json.contains("\"packed_speedup_vs_scalar\""));
        // Render path stays panic-free.
        assert!(format!("{r}").contains("entries"));
    }

    #[test]
    fn packed_scan_is_not_slower_than_reference() {
        // Perf assertions are deliberately loose for noisy CI hosts: the
        // packed scan must at minimum not regress below the reference.
        let r = run(&[20_000], Duration::from_millis(150));
        assert!(
            r.rows[0].packed_speedup() > 1.0,
            "packed scan slower than scalar reference: {:.2}x",
            r.rows[0].packed_speedup()
        );
    }
}
