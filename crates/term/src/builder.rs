//! Ergonomic programmatic term construction.
//!
//! Workload generators build millions of synthetic facts; going through the
//! parser for each would dominate generation time. [`TermBuilder`] wraps a
//! `&mut SymbolTable` and offers short constructors.
//!
//! # Examples
//!
//! ```
//! use clare_term::{builder::TermBuilder, SymbolTable};
//!
//! let mut symbols = SymbolTable::new();
//! let mut b = TermBuilder::new(&mut symbols);
//! let args = vec![b.int(3), b.int(4)];
//! let t = b.structure("point", args);
//! assert_eq!(t.arity(), 2);
//! ```

use crate::symbol::SymbolTable;
use crate::term::{Clause, Term, VarId};

/// Builder over a borrowed [`SymbolTable`].
#[derive(Debug)]
pub struct TermBuilder<'st> {
    symbols: &'st mut SymbolTable,
    next_var: u32,
}

impl<'st> TermBuilder<'st> {
    /// Creates a builder interning into `symbols`.
    pub fn new(symbols: &'st mut SymbolTable) -> Self {
        TermBuilder {
            symbols,
            next_var: 0,
        }
    }

    /// An atom term, interning its name.
    pub fn atom(&mut self, name: &str) -> Term {
        Term::Atom(self.symbols.intern_atom(name))
    }

    /// An integer term.
    pub fn int(&self, value: i64) -> Term {
        Term::Int(value)
    }

    /// A float term, interning its value.
    pub fn float(&mut self, value: f64) -> Term {
        Term::Float(self.symbols.intern_float(value))
    }

    /// A fresh variable, numbered sequentially from 0 per builder.
    pub fn fresh_var(&mut self) -> Term {
        let v = Term::Var(VarId::new(self.next_var));
        self.next_var += 1;
        v
    }

    /// A variable with an explicit id (for sharing between positions).
    pub fn var(&self, id: u32) -> Term {
        Term::Var(VarId::new(id))
    }

    /// The anonymous variable `_`.
    pub fn anon(&self) -> Term {
        Term::Anon
    }

    /// A structure `name(args...)`.
    ///
    /// # Panics
    ///
    /// Panics if `args` is empty; a zero-arity compound is an atom.
    pub fn structure(&mut self, name: &str, args: Vec<Term>) -> Term {
        assert!(!args.is_empty(), "zero-arity structure is an atom");
        Term::Struct {
            functor: self.symbols.intern_atom(name),
            args,
        }
    }

    /// A terminated list `[items...]`.
    pub fn list(&self, items: Vec<Term>) -> Term {
        Term::List { items, tail: None }
    }

    /// An unterminated list `[items... | tail]`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty: `[| T]` is not a list.
    pub fn partial_list(&self, items: Vec<Term>, tail: Term) -> Term {
        assert!(!items.is_empty(), "a partial list needs at least one item");
        Term::List {
            items,
            tail: Some(Box::new(tail)),
        }
    }

    /// A ground fact clause with head `name(args...)`.
    ///
    /// # Panics
    ///
    /// Panics if `args` is empty (use an atom head via [`Clause::new`]).
    pub fn fact(&mut self, name: &str, args: Vec<Term>) -> Clause {
        let head = self.structure(name, args);
        let n = self.next_var as usize;
        Clause::new(head, Vec::new(), synthesized_names(n)).expect("structure head is callable")
    }

    /// A rule clause `head :- body`, capturing all variables allocated so
    /// far by this builder into the clause's name table.
    ///
    /// # Errors
    ///
    /// Returns an error if `head` is not callable.
    pub fn rule(
        &mut self,
        head: Term,
        body: Vec<Term>,
    ) -> Result<Clause, crate::term::InvalidHeadError> {
        Clause::new(head, body, synthesized_names(self.next_var as usize))
    }

    /// Resets the fresh-variable counter (start a new clause scope).
    pub fn reset_vars(&mut self) {
        self.next_var = 0;
    }

    /// Number of fresh variables allocated since the last reset.
    pub fn var_count(&self) -> u32 {
        self.next_var
    }
}

fn synthesized_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("_G{i}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_terms() {
        let mut st = SymbolTable::new();
        let mut b = TermBuilder::new(&mut st);
        let one = b.int(1);
        let inner = b.structure("g", vec![one]);
        let a = b.atom("a");
        let t = b.structure("f", vec![inner, a]);
        assert_eq!(t.arity(), 2);
        assert!(t.is_ground());
    }

    #[test]
    fn fresh_vars_are_distinct_and_shared_vars_equal() {
        let mut st = SymbolTable::new();
        let mut b = TermBuilder::new(&mut st);
        let v0 = b.fresh_var();
        let v1 = b.fresh_var();
        assert_ne!(v0, v1);
        assert_eq!(b.var(0), v0);
    }

    #[test]
    fn fact_builds_ground_clause_with_names() {
        let mut st = SymbolTable::new();
        let mut b = TermBuilder::new(&mut st);
        let args = vec![b.atom("tom"), b.atom("bob")];
        let c = b.fact("parent", args);
        assert!(c.is_ground_fact());
        assert_eq!(c.predicate().1, 2);
    }

    #[test]
    fn rule_captures_var_scope() {
        let mut st = SymbolTable::new();
        let mut b = TermBuilder::new(&mut st);
        let x = b.fresh_var();
        let y = b.fresh_var();
        let head = b.structure("p", vec![x.clone(), y.clone()]);
        let goal = b.structure("q", vec![y, x]);
        let c = b.rule(head, vec![goal]).unwrap();
        assert_eq!(c.var_count(), 2);
        assert!(!c.is_fact());
    }

    #[test]
    fn reset_vars_starts_fresh_scope() {
        let mut st = SymbolTable::new();
        let mut b = TermBuilder::new(&mut st);
        b.fresh_var();
        b.reset_vars();
        assert_eq!(b.var_count(), 0);
        assert_eq!(b.fresh_var(), Term::Var(VarId::new(0)));
    }

    #[test]
    #[should_panic(expected = "zero-arity")]
    fn zero_arity_structure_panics() {
        let mut st = SymbolTable::new();
        let mut b = TermBuilder::new(&mut st);
        b.structure("f", vec![]);
    }

    #[test]
    fn partial_list_shape() {
        let mut st = SymbolTable::new();
        let mut b = TermBuilder::new(&mut st);
        let tail = b.fresh_var();
        let l = b.partial_list(vec![b.int(1), b.int(2)], tail);
        assert!(l.is_partial_list());
        assert_eq!(l.arity(), 2);
    }
}
