//! Reader for an Edinburgh-syntax subset.
//!
//! Supported forms cover everything the paper's workloads need:
//!
//! * facts — `parent(tom, bob).`
//! * rules — `grandparent(X, Z) :- parent(X, Y), parent(Y, Z).`
//! * structures, nested arbitrarily — `f(g(h(1)), 'quoted atom')`
//! * terminated and unterminated lists — `[a, b]`, `[a, b | Tail]`
//! * integers, floats, negative literals, anonymous variables
//! * `%` line comments and `/* */` block comments
//!
//! Operator expressions (arithmetic, `;`, `->`) are out of scope: the CLARE
//! engine filters clause *heads*, and heads in all the paper's examples are
//! plain structures.
//!
//! # Examples
//!
//! ```
//! use clare_term::{SymbolTable, parser::parse_program};
//!
//! let mut symbols = SymbolTable::new();
//! let clauses = parse_program(
//!     "parent(tom, bob). parent(bob, ann).
//!      grandparent(X, Z) :- parent(X, Y), parent(Y, Z).",
//!     &mut symbols,
//! )?;
//! assert_eq!(clauses.len(), 3);
//! # Ok::<(), clare_term::parser::ParseError>(())
//! ```

pub mod lexer;

use crate::symbol::SymbolTable;
use crate::term::{Clause, Term, VarId};
use lexer::{LexError, Lexer, Token, TokenKind};
use std::collections::HashMap;
use std::fmt;

/// Parse error: lexical failure or unexpected token.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// The token stream did not match the grammar.
    Unexpected {
        /// What the parser found.
        found: String,
        /// What it was looking for.
        expected: String,
        /// Byte offset of the offending token.
        offset: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                found,
                expected,
                offset,
            } => write!(
                f,
                "parse error at byte {offset}: expected {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Lex(e) => Some(e),
            ParseError::Unexpected { .. } => None,
        }
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Variable scope for one clause or query: maps source names to [`VarId`]s
/// in order of first occurrence.
#[derive(Debug, Default, Clone)]
pub struct VarScope {
    names: Vec<String>,
    index: HashMap<String, VarId>,
}

impl VarScope {
    /// Creates an empty scope.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, allocating on first sight.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.index.get(name) {
            return v;
        }
        let v = VarId::new(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), v);
        v
    }

    /// Source names indexed by [`VarId`].
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Consumes the scope, returning the name table.
    pub fn into_names(self) -> Vec<String> {
        self.names
    }
}

/// Parses a single term (no trailing `.`), using a fresh variable scope.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing tokens.
pub fn parse_term(src: &str, symbols: &mut SymbolTable) -> Result<Term, ParseError> {
    let (term, _) = parse_term_with_vars(src, symbols)?;
    Ok(term)
}

/// Parses a single term and returns the variable name table alongside it.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing tokens.
pub fn parse_term_with_vars(
    src: &str,
    symbols: &mut SymbolTable,
) -> Result<(Term, Vec<String>), ParseError> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser::new(&tokens, symbols);
    let mut scope = VarScope::new();
    let term = p.term(&mut scope)?;
    p.expect_eof()?;
    Ok((term, scope.into_names()))
}

/// Parses a comma-separated conjunction of goals (no trailing `.`),
/// sharing one variable scope — the shape of an interactive query.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing tokens.
///
/// # Examples
///
/// ```
/// use clare_term::{SymbolTable, parser::parse_goals};
///
/// let mut symbols = SymbolTable::new();
/// let (goals, names) = parse_goals("parent(tom, X), male(X)", &mut symbols)?;
/// assert_eq!(goals.len(), 2);
/// assert_eq!(names, ["X"]);
/// # Ok::<(), clare_term::parser::ParseError>(())
/// ```
pub fn parse_goals(
    src: &str,
    symbols: &mut SymbolTable,
) -> Result<(Vec<Term>, Vec<String>), ParseError> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser::new(&tokens, symbols);
    let mut scope = VarScope::new();
    let goals = p.goal_list(&mut scope)?;
    p.expect_eof()?;
    Ok((goals, scope.into_names()))
}

/// Parses one clause terminated by `.`.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, a non-callable head, or
/// trailing tokens after the final `.`.
pub fn parse_clause(src: &str, symbols: &mut SymbolTable) -> Result<Clause, ParseError> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser::new(&tokens, symbols);
    let clause = p.clause()?;
    p.expect_eof()?;
    Ok(clause)
}

/// Parses a whole program: zero or more clauses, each terminated by `.`.
///
/// # Errors
///
/// Returns [`ParseError`] for the first malformed clause.
pub fn parse_program(src: &str, symbols: &mut SymbolTable) -> Result<Vec<Clause>, ParseError> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser::new(&tokens, symbols);
    let mut clauses = Vec::new();
    while !p.at_eof() {
        clauses.push(p.clause()?);
    }
    Ok(clauses)
}

struct Parser<'a, 'st> {
    tokens: &'a [Token],
    pos: usize,
    symbols: &'st mut SymbolTable,
}

impl<'a, 'st> Parser<'a, 'st> {
    fn new(tokens: &'a [Token], symbols: &'st mut SymbolTable) -> Self {
        Parser {
            tokens,
            pos: 0,
            symbols,
        }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        let t = self.peek();
        ParseError::Unexpected {
            found: t.kind.to_string(),
            expected: expected.to_owned(),
            offset: t.offset,
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.unexpected("end of input"))
        }
    }

    fn clause(&mut self) -> Result<Clause, ParseError> {
        let mut scope = VarScope::new();
        let head_offset = self.peek().offset;
        let head = self.term(&mut scope)?;
        let body = if self.peek().kind == TokenKind::Neck {
            self.bump();
            self.goal_list(&mut scope)?
        } else {
            Vec::new()
        };
        self.expect(&TokenKind::Dot, "`.` ending the clause")?;
        Clause::new(head, body, scope.into_names()).map_err(|_| ParseError::Unexpected {
            found: "non-callable term".into(),
            expected: "an atom or structure as clause head".into(),
            offset: head_offset,
        })
    }

    fn goal_list(&mut self, scope: &mut VarScope) -> Result<Vec<Term>, ParseError> {
        let mut goals = vec![self.term(scope)?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            goals.push(self.term(scope)?);
        }
        Ok(goals)
    }

    fn term(&mut self, scope: &mut VarScope) -> Result<Term, ParseError> {
        match self.bump().kind {
            TokenKind::Int(v) => Ok(Term::Int(v)),
            TokenKind::Float(v) => Ok(Term::Float(self.symbols.intern_float(v))),
            TokenKind::Var(name) => {
                if name == "_" {
                    Ok(Term::Anon)
                } else {
                    Ok(Term::Var(scope.intern(&name)))
                }
            }
            TokenKind::Atom(name) => {
                if self.peek().kind == TokenKind::LParen {
                    self.bump();
                    let mut args = vec![self.term(scope)?];
                    while self.peek().kind == TokenKind::Comma {
                        self.bump();
                        args.push(self.term(scope)?);
                    }
                    self.expect(&TokenKind::RParen, "`)` closing the argument list")?;
                    Ok(Term::Struct {
                        functor: self.symbols.intern_atom(&name),
                        args,
                    })
                } else {
                    Ok(Term::Atom(self.symbols.intern_atom(&name)))
                }
            }
            TokenKind::LBracket => self.list_tail(scope),
            _ => {
                self.pos -= 1;
                Err(self.unexpected("a term"))
            }
        }
    }

    fn list_tail(&mut self, scope: &mut VarScope) -> Result<Term, ParseError> {
        if self.peek().kind == TokenKind::RBracket {
            self.bump();
            return Ok(Term::nil());
        }
        let mut items = vec![self.term(scope)?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            items.push(self.term(scope)?);
        }
        let tail = if self.peek().kind == TokenKind::Bar {
            self.bump();
            Some(Box::new(self.term(scope)?))
        } else {
            None
        };
        self.expect(&TokenKind::RBracket, "`]` closing the list")?;
        Ok(Term::List { items, tail })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn st() -> SymbolTable {
        SymbolTable::new()
    }

    #[test]
    fn parses_fact() {
        let mut s = st();
        let c = parse_clause("parent(tom, bob).", &mut s).unwrap();
        assert!(c.is_ground_fact());
        let (f, a) = c.predicate();
        assert_eq!(s.atom_text(f), "parent");
        assert_eq!(a, 2);
    }

    #[test]
    fn parses_rule_with_shared_vars() {
        let mut s = st();
        let c = parse_clause("gp(X, Z) :- p(X, Y), p(Y, Z).", &mut s).unwrap();
        assert_eq!(c.body().len(), 2);
        assert_eq!(c.var_names(), ["X", "Z", "Y"]);
        // X in head and X in first goal share a VarId.
        let head_vars = crate::visit::collect_vars(c.head());
        let goal_vars = crate::visit::collect_vars(&c.body()[0]);
        assert_eq!(head_vars[0], goal_vars[0]);
    }

    #[test]
    fn atom_headed_clause() {
        let mut s = st();
        let c = parse_clause("halt.", &mut s).unwrap();
        assert_eq!(c.predicate().1, 0);
    }

    #[test]
    fn nested_structures() {
        let mut s = st();
        let t = parse_term("f(g(h(1)), 'quoted atom')", &mut s).unwrap();
        assert_eq!(crate::visit::term_depth(&t), 3);
    }

    #[test]
    fn lists_terminated_and_not() {
        let mut s = st();
        let closed = parse_term("[a, b, c]", &mut s).unwrap();
        assert!(!closed.is_partial_list());
        assert_eq!(closed.arity(), 3);
        let open = parse_term("[a, b | Tail]", &mut s).unwrap();
        assert!(open.is_partial_list());
        assert_eq!(open.arity(), 2);
        let nil = parse_term("[]", &mut s).unwrap();
        assert_eq!(nil, Term::nil());
    }

    #[test]
    fn anonymous_variables_never_share() {
        let mut s = st();
        let t = parse_term("f(_, _)", &mut s).unwrap();
        assert!(crate::visit::collect_vars(&t).is_empty());
        match &t {
            Term::Struct { args, .. } => {
                assert_eq!(args[0], Term::Anon);
                assert_eq!(args[1], Term::Anon);
            }
            other => panic!("expected struct, got {other:?}"),
        }
    }

    #[test]
    fn named_underscore_var_is_named() {
        let mut s = st();
        let t = parse_term("f(_Tail, _Tail)", &mut s).unwrap();
        let vars = crate::visit::collect_vars(&t);
        assert_eq!(vars.len(), 2);
        assert_eq!(vars[0], vars[1]);
    }

    #[test]
    fn numbers_parse() {
        let mut s = st();
        assert_eq!(parse_term("42", &mut s).unwrap(), Term::Int(42));
        assert_eq!(parse_term("-7", &mut s).unwrap(), Term::Int(-7));
        let f = parse_term("2.5", &mut s).unwrap();
        match f {
            Term::Float(id) => assert_eq!(s.float_value(id), 2.5),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn program_with_comments() {
        let mut s = st();
        let clauses = parse_program(
            "% the parents\nparent(tom, bob). /* more */ parent(bob, ann).",
            &mut s,
        )
        .unwrap();
        assert_eq!(clauses.len(), 2);
    }

    #[test]
    fn empty_program() {
        let mut s = st();
        assert!(parse_program("  % nothing\n", &mut s).unwrap().is_empty());
    }

    #[test]
    fn error_on_missing_dot() {
        let mut s = st();
        let err = parse_clause("parent(tom, bob)", &mut s).unwrap_err();
        assert!(err.to_string().contains("`.`"), "got: {err}");
    }

    #[test]
    fn error_on_unbalanced_paren() {
        let mut s = st();
        assert!(parse_term("f(a, b", &mut s).is_err());
    }

    #[test]
    fn error_on_integer_head() {
        let mut s = st();
        let err = parse_clause("42.", &mut s).unwrap_err();
        assert!(err.to_string().contains("head"), "got: {err}");
    }

    #[test]
    fn error_on_trailing_tokens() {
        let mut s = st();
        assert!(parse_term("a b", &mut s).is_err());
    }

    #[test]
    fn var_scope_is_per_clause() {
        let mut s = st();
        let clauses = parse_program("p(X). q(X).", &mut s).unwrap();
        // Each clause has its own scope; both X's are VarId 0 locally.
        assert_eq!(clauses[0].var_names(), ["X"]);
        assert_eq!(clauses[1].var_names(), ["X"]);
    }
}
