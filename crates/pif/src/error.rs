//! Error types for PIF encoding and decoding.

use std::fmt;

/// Error raised while encoding a term to PIF or decoding a PIF byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PifError {
    /// An integer does not fit the 28-bit in-line encoding
    /// (tag nibble + 24-bit content field).
    IntOutOfRange(i64),
    /// A variable offset exceeds the 24-bit content field.
    VarOffsetTooLarge(u32),
    /// A symbol-table offset exceeds the 24-bit content field.
    SymbolOffsetTooLarge(u32),
    /// The term cannot head a clause or query (not an atom or structure).
    NotCallable,
    /// A byte stream being decoded is malformed.
    Malformed {
        /// Byte offset where decoding failed.
        offset: usize,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for PifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PifError::IntOutOfRange(v) => {
                write!(f, "integer {v} does not fit the 28-bit in-line encoding")
            }
            PifError::VarOffsetTooLarge(v) => {
                write!(f, "variable offset {v} exceeds the 24-bit content field")
            }
            PifError::SymbolOffsetTooLarge(v) => {
                write!(
                    f,
                    "symbol table offset {v} exceeds the 24-bit content field"
                )
            }
            PifError::NotCallable => f.write_str("term is not an atom or structure"),
            PifError::Malformed { offset, reason } => {
                write!(f, "malformed PIF data at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for PifError {}
