//! E13 — §3.1's "unlimited lists": counter-driven matching of
//! unterminated lists.
//!
//! "As a subset of lists, unlimited lists are defined. They are lists
//! which contain a tail variable, e.g. `[a, b | Tail]`. The arities of the
//! terms being compared may not be equal in this case. The arities are
//! loaded into two counters and matching is repetitively carried out until
//! the value of either counter is zero."
//!
//! The workload stores `route/2` facts whose second argument is a stop
//! list of varying length; the queries probe exact lists (terminated:
//! length must match), prefixes (`[a, b | Rest]`: the two-counter rule),
//! and fully open lists. The SCW index can only see "this argument is a
//! list", so FS2 does all the discriminating.

use clare_core::{retrieve, CrsOptions, SearchMode};
use clare_kb::{KbBuilder, KbConfig, KnowledgeBase};
use clare_term::parser::parse_term;
use clare_term::{SymbolTable, Term};
use std::fmt;

/// One probed query.
#[derive(Debug, Clone, PartialEq)]
pub struct ListRow {
    /// Query description.
    pub label: &'static str,
    /// The query, rendered.
    pub query: String,
    /// FS1 candidates.
    pub fs1: usize,
    /// FS2 candidates.
    pub fs2: usize,
    /// True answers (full unification).
    pub answers: usize,
}

/// The report.
#[derive(Debug, Clone, PartialEq)]
pub struct ListsReport {
    /// Facts in the predicate.
    pub facts: usize,
    /// The probes.
    pub rows: Vec<ListRow>,
}

fn build_kb() -> (KnowledgeBase, SymbolTable) {
    let mut b = KbBuilder::new();
    let mut source = String::new();
    // 600 routes from 30 cities, stop lists of length 1..=6 drawn from a
    // pool of 20 stops; lengths and contents cycle deterministically.
    for i in 0..600usize {
        let city = format!("city{}", i % 30);
        // Decorrelate length from the city cycle so each city sees every
        // list length.
        let len = 1 + (i / 30) % 6;
        let stops: Vec<String> = (0..len).map(|k| format!("s{}", (i + k * 7) % 20)).collect();
        source.push_str(&format!("route({city}, [{}]).\n", stops.join(", ")));
    }
    b.consult("routes", &source).unwrap();
    let kb = b.finish(KbConfig::default());
    let symbols = kb.symbols().clone();
    (kb, symbols)
}

/// Runs the probes.
pub fn run() -> ListsReport {
    let (kb, symbols) = build_kb();
    let opts = CrsOptions::default();
    let mut rows = Vec::new();
    let mut probe = |label: &'static str, src: &str| {
        let mut local = symbols.clone();
        let q: Term = parse_term(src, &mut local).unwrap();
        let fs1 = retrieve(&kb, &q, SearchMode::Fs1Only, &opts);
        let fs2 = retrieve(&kb, &q, SearchMode::Fs2Only, &opts);
        debug_assert_eq!(fs1.stats.unified, fs2.stats.unified);
        rows.push(ListRow {
            label,
            query: src.to_owned(),
            fs1: fs1.stats.candidates,
            fs2: fs2.stats.candidates,
            answers: fs2.stats.unified,
        });
    };
    // route 0: city0, [s0] — also stored with longer lists elsewhere.
    probe("exact list (terminated)", "route(city0, [s0])");
    probe("exact list, wrong length", "route(city0, [s0, s0])");
    // Unterminated prefix: every city0 route whose first stop is s0,
    // regardless of length.
    probe(
        "prefix [s0 | R] (unterminated)",
        "route(city0, [s0 | Rest])",
    );
    probe(
        "two-stop prefix (unterminated)",
        "route(city0, [s0, s7 | Rest])",
    );
    probe("open list variable", "route(city0, Stops)");
    ListsReport { facts: 600, rows }
}

impl fmt::Display for ListsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E13 / §3.1: unlimited-list matching over {} route facts\n",
            self.facts
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.label.to_owned(),
                    r.query.clone(),
                    r.fs1.to_string(),
                    r.fs2.to_string(),
                    r.answers.to_string(),
                ]
            })
            .collect();
        f.write_str(&crate::render_table(
            &["probe", "query", "FS1 cand", "FS2 cand", "answers"],
            &rows,
        ))?;
        writeln!(
            f,
            "\nthe index sees only \"argument 2 is a list\", so FS1 returns every\n\
             city0 route; FS2's element matching and two-counter rule do the rest"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn report() -> &'static ListsReport {
        static REPORT: OnceLock<ListsReport> = OnceLock::new();
        REPORT.get_or_init(run)
    }

    fn row(label: &str) -> &'static ListRow {
        report()
            .rows
            .iter()
            .find(|r| r.label == label)
            .expect("row exists")
    }

    #[test]
    fn fs2_never_loses_answers() {
        for r in &report().rows {
            assert!(r.fs2 >= r.answers, "{}: completeness", r.label);
            assert!(r.fs1 >= r.fs2.min(r.fs1), "{}", r.label);
        }
    }

    #[test]
    fn terminated_lists_pin_their_length() {
        let exact = row("exact list (terminated)");
        let wrong = row("exact list, wrong length");
        // A wrong-length terminated query matches nothing: FS2 compares
        // the length (and here FS1's deep key on the fully ground list
        // already rejects it too).
        assert_eq!(wrong.answers, 0);
        assert_eq!(wrong.fs2, 0, "FS2 discriminates length");
        assert!(exact.answers > 0);
        assert_eq!(exact.fs2, exact.answers);
    }

    #[test]
    fn prefix_queries_span_lengths() {
        let one = row("prefix [s0 | R] (unterminated)");
        let exact = row("exact list (terminated)");
        // The prefix query accepts every length ≥ 1 with first stop s0, so
        // it has at least as many answers as the exact one.
        assert!(one.answers >= exact.answers);
        assert!(one.answers > 0);
        let two = row("two-stop prefix (unterminated)");
        assert!(two.answers <= one.answers, "longer prefix is stricter");
    }

    #[test]
    fn open_list_retrieves_the_city() {
        let open = row("open list variable");
        assert_eq!(open.answers, 20, "600 routes / 30 cities");
        assert_eq!(open.fs2, open.answers, "city constant still filters");
    }

    #[test]
    fn fs1_is_blind_to_open_list_contents() {
        // Non-ground list arguments key on type only, so every such probe
        // gives FS1 the same candidate set: all 20 city0 routes. (Fully
        // ground list queries do better — they carry a deep key.)
        let one = row("prefix [s0 | R] (unterminated)");
        let two = row("two-stop prefix (unterminated)");
        let open = row("open list variable");
        assert_eq!(one.fs1, 20);
        assert_eq!(two.fs1, 20);
        assert_eq!(open.fs1, 20);
        // FS2 prunes on the prefix elements where FS1 cannot.
        assert!(one.fs2 < one.fs1, "{} < {}", one.fs2, one.fs1);
    }
}
