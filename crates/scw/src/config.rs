//! SCW+MB scheme parameters.

use clare_disk::ByteRate;

/// Parameters of the superimposed-codeword scheme.
///
/// The paper's FS1 prototype scans "at a rate of up to 4.5 Mbyte/sec"; the
/// codeword width and bits-set-per-key are the classic superimposed-coding
/// tuning knobs (they trade index size against false-drop probability), and
/// the 12-argument encoding limit is stated in §2.1.
///
/// # Examples
///
/// ```
/// use clare_scw::ScwConfig;
///
/// let c = ScwConfig::paper();
/// assert_eq!(c.encoded_args(), 12);
/// assert_eq!(c.width_bits(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScwConfig {
    width_bits: u16,
    bits_per_key: u8,
    encoded_args: usize,
    scan_rate: ByteRate,
}

impl ScwConfig {
    /// The configuration used throughout the reproduction: 64-bit
    /// codewords, 3 bits per key, 12 encoded arguments, 4.5 MB/s scan rate.
    pub fn paper() -> Self {
        ScwConfig {
            width_bits: 64,
            bits_per_key: 3,
            encoded_args: 12,
            scan_rate: ByteRate::from_mb_per_sec(4.5),
        }
    }

    /// A custom configuration (for the width/density ablation benches).
    ///
    /// # Panics
    ///
    /// Panics if `width_bits` is zero or not a multiple of 8, if
    /// `bits_per_key` is zero or exceeds `width_bits`, or if `encoded_args`
    /// is zero.
    pub fn custom(width_bits: u16, bits_per_key: u8, encoded_args: usize) -> Self {
        assert!(
            width_bits > 0 && width_bits.is_multiple_of(8),
            "width must be a positive multiple of 8"
        );
        assert!(
            bits_per_key > 0 && (bits_per_key as u16) <= width_bits,
            "bits per key must be in 1..=width"
        );
        assert!(encoded_args > 0, "must encode at least one argument");
        ScwConfig {
            width_bits,
            bits_per_key,
            encoded_args,
            scan_rate: ByteRate::from_mb_per_sec(4.5),
        }
    }

    /// Codeword width in bits.
    pub fn width_bits(&self) -> u16 {
        self.width_bits
    }

    /// Number of bits each hashed key sets in the codeword.
    pub fn bits_per_key(&self) -> u8 {
        self.bits_per_key
    }

    /// Number of leading argument positions that are encoded (12 in the
    /// paper; later arguments are invisible to FS1 — a false-drop source).
    pub fn encoded_args(&self) -> usize {
        self.encoded_args
    }

    /// The FS1 hardware scan rate (4.5 MB/s for the prototype).
    pub fn scan_rate(&self) -> ByteRate {
        self.scan_rate
    }

    /// Overrides the scan rate (for sensitivity experiments).
    pub fn with_scan_rate(mut self, rate: ByteRate) -> Self {
        self.scan_rate = rate;
        self
    }

    /// Size of one serialized index entry in bytes: the codeword, a 4-byte
    /// mask field (2 bits per encoded position, rounded up), and a 6-byte
    /// clause address.
    pub fn entry_bytes(&self) -> usize {
        self.width_bits as usize / 8 + self.mask_bytes() + 6
    }

    /// Bytes used by the mask field.
    pub fn mask_bytes(&self) -> usize {
        (self.encoded_args * 2).div_ceil(8)
    }
}

impl Default for ScwConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = ScwConfig::paper();
        assert_eq!(c.width_bits(), 64);
        assert_eq!(c.bits_per_key(), 3);
        assert_eq!(c.encoded_args(), 12);
        assert!((c.scan_rate().as_mb_per_sec() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn entry_bytes_accounting() {
        let c = ScwConfig::paper();
        // 8 (codeword) + 3 (24 mask bits) + 6 (address)
        assert_eq!(c.entry_bytes(), 17);
        let wide = ScwConfig::custom(128, 4, 12);
        assert_eq!(wide.entry_bytes(), 16 + 3 + 6);
        let narrow = ScwConfig::custom(16, 2, 4);
        assert_eq!(narrow.entry_bytes(), 2 + 1 + 6);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn odd_width_rejected() {
        ScwConfig::custom(65, 3, 12);
    }

    #[test]
    #[should_panic(expected = "bits per key")]
    fn zero_bits_per_key_rejected() {
        ScwConfig::custom(64, 0, 12);
    }
}
