//! Offline shim for the `libc` crate: exactly the epoll/eventfd surface
//! `clare-net`'s reactor uses, declared directly against the system C
//! library (the build environment links glibc anyway — only the *crate*
//! is unavailable offline).
//!
//! Everything here is the stable Linux kernel ABI: `epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `eventfd`, and the raw `read`/`write`/
//! `close` calls the event loop needs for its wakeup fd. Constants are
//! transcribed from the kernel uapi headers. Non-Linux targets get the
//! type definitions but no functions; `clare-net` falls back to its
//! threaded serving core there.

#![allow(non_camel_case_types)]

/// C `int`.
pub type c_int = i32;
/// C `void` (only ever used behind a pointer).
pub type c_void = core::ffi::c_void;
/// `size_t`.
pub type size_t = usize;
/// `ssize_t`.
pub type ssize_t = isize;

/// One epoll readiness record. On x86-64 the kernel packs this struct to
/// 12 bytes (4-byte aligned `u64` data); other architectures use natural
/// alignment — mirroring the real `libc` crate's definition.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy, Debug)]
pub struct epoll_event {
    /// Readiness bit set (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// Caller-chosen token, echoed back verbatim.
    pub u64: u64,
}

/// Readable (or a peer hangup on a listening socket: pending accept).
pub const EPOLLIN: u32 = 0x001;
/// Writable without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd.
pub const EPOLLERR: u32 = 0x008;
/// Hangup: the peer closed its end.
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down the writing half (half-close detection).
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered readiness (the reactor runs level-triggered; kept for
/// completeness and tests).
pub const EPOLLET: u32 = 1 << 31;

/// `epoll_ctl` op: register a new fd.
pub const EPOLL_CTL_ADD: c_int = 1;
/// `epoll_ctl` op: deregister an fd.
pub const EPOLL_CTL_DEL: c_int = 2;
/// `epoll_ctl` op: change an fd's interest set.
pub const EPOLL_CTL_MOD: c_int = 3;

/// `epoll_create1` flag: close-on-exec.
pub const EPOLL_CLOEXEC: c_int = 0o2000000;
/// `eventfd` flag: close-on-exec.
pub const EFD_CLOEXEC: c_int = 0o2000000;
/// `eventfd` flag: nonblocking reads/writes.
pub const EFD_NONBLOCK: c_int = 0o4000;

#[cfg(target_os = "linux")]
extern "C" {
    /// Creates an epoll instance; returns its fd or -1.
    pub fn epoll_create1(flags: c_int) -> c_int;
    /// Adds/modifies/removes `fd` on epoll instance `epfd`.
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    /// Blocks up to `timeout` ms for readiness; returns the event count,
    /// 0 on timeout, or -1 (with `EINTR` among the expected errnos).
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    /// Creates an eventfd counter (the reactor's cross-thread wakeup).
    pub fn eventfd(initval: u32, flags: c_int) -> c_int;
    /// Raw read (drains the eventfd counter).
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    /// Raw write (bumps the eventfd counter).
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    /// Closes a raw fd the shim handed out (epoll fd, eventfd).
    pub fn close(fd: c_int) -> c_int;
}

/// Non-Linux stubs: every call fails (-1), so `clare-net` detects the
/// missing reactor support at `Epoll::new` and serves threaded instead.
/// Declared `unsafe fn` to keep call sites identical across targets.
#[cfg(not(target_os = "linux"))]
mod stubs {
    #![allow(clippy::missing_safety_doc, unused_variables)]
    use super::*;
    pub unsafe fn epoll_create1(flags: c_int) -> c_int {
        -1
    }
    pub unsafe fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int {
        -1
    }
    pub unsafe fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int {
        -1
    }
    pub unsafe fn eventfd(initval: u32, flags: c_int) -> c_int {
        -1
    }
    pub unsafe fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t {
        -1
    }
    pub unsafe fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t {
        -1
    }
    pub unsafe fn close(fd: c_int) -> c_int {
        -1
    }
}
#[cfg(not(target_os = "linux"))]
pub use stubs::*;

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn epoll_event_layout_matches_kernel_abi() {
        // x86-64 packs to 12 bytes; everywhere else natural alignment.
        if cfg!(target_arch = "x86_64") {
            assert_eq!(core::mem::size_of::<epoll_event>(), 12);
        }
    }

    #[test]
    fn eventfd_roundtrip_through_epoll() {
        unsafe {
            let ep = epoll_create1(EPOLL_CLOEXEC);
            assert!(ep >= 0, "epoll_create1 failed");
            let ev = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
            assert!(ev >= 0, "eventfd failed");

            let mut reg = epoll_event {
                events: EPOLLIN,
                u64: 42,
            };
            assert_eq!(epoll_ctl(ep, EPOLL_CTL_ADD, ev, &mut reg), 0);

            // Nothing pending: a zero-timeout wait reports no events.
            let mut out = [epoll_event { events: 0, u64: 0 }; 4];
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);

            // Bump the counter; the wait must report token 42 readable.
            let one: u64 = 1;
            assert_eq!(
                write(ev, (&one as *const u64).cast(), 8),
                8,
                "eventfd write"
            );
            let n = epoll_wait(ep, out.as_mut_ptr(), 4, 1000);
            assert_eq!(n, 1);
            let token = out[0].u64;
            assert_eq!(token, 42);
            assert_ne!(out[0].events & EPOLLIN, 0);

            // Drain and confirm it goes quiet again.
            let mut got: u64 = 0;
            assert_eq!(read(ev, (&mut got as *mut u64).cast(), 8), 8);
            assert_eq!(got, 1);
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);

            assert_eq!(close(ev), 0);
            assert_eq!(close(ep), 0);
        }
    }
}
