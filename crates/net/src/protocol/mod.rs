//! The `clare-net` wire protocol: PIF-over-TCP.
//!
//! A connection opens with a fixed-size hello exchange (version check and
//! admission control), then carries length-prefixed [`Frame`]s in both
//! directions. Request payloads embed query terms in the Pseudo In-line
//! Format — the same byte-level type-driven encoding the simulated CLARE
//! hardware scans — so a networked retrieval ships exactly the bytes the
//! engine would compile locally. See [`frame`] for the framing layer and
//! [`wire`] for per-operation payload codecs.

pub mod frame;
pub mod wire;

pub use frame::{Frame, FrameError, FrameReader, FRAME_CRC_TRAILER, FRAME_HEADER, MAX_FRAME_LEN};
pub use wire::{
    decode_client_hello, decode_client_hello_caps, decode_commit_receipt, decode_consult,
    decode_error, decode_metrics_snapshot, decode_repl_ack, decode_retrieval, decode_retrievals,
    decode_retrieve, decode_retrieve_batch, decode_seq_reply, decode_server_hello,
    decode_server_stats, decode_server_stats_extended, decode_solve, decode_solve_outcome,
    decode_subscribe_log, decode_symbols, encode_client_hello, encode_client_hello_caps,
    encode_commit_receipt, encode_consult, encode_error, encode_metrics_snapshot, encode_repl_ack,
    encode_retrieval, encode_retrievals, encode_retrieve, encode_retrieve_batch, encode_seq_reply,
    encode_server_hello, encode_server_stats, encode_server_stats_extended, encode_solve,
    encode_solve_outcome, encode_subscribe_log, encode_symbols, mode_from_wire, mode_to_wire,
    opcode, BudgetExt, ConsultReq, ErrorCode, ErrorReply, HelloStatus, ReplAck, RetrieveBatchReq,
    RetrieveReq, ServerHello, SolveReq, SubscribeLogReq, WireError, CAP_FRAME_CRC,
    CAP_QUERY_BUDGET, CLIENT_HELLO_LEN, CLIENT_MAGIC, METRICS_VERSION, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION, SERVER_HELLO_LEN, SERVER_MAGIC, STATS_REQ_EXTENDED,
};
