//! The process-wide metric registry and its snapshot form.
//!
//! One static [`Metrics`] instance (reached via [`metrics`]) holds every
//! counter, gauge, and histogram the four pipeline layers record into:
//! FS1 index scans, FS2 track sweeps, the Clause Retrieval Server, and
//! the `clare-net` daemon. The fixed part of the registry is plain
//! statics — recording never allocates or locks. The only dynamic part
//! is the per-predicate latency map, which takes a read lock on the hit
//! path and a write lock once per predicate lifetime.
//!
//! [`MetricsSnapshot`] is the plain-data, name-keyed copy of everything:
//! it renders as text or JSON, crosses the wire in the extended `stats`
//! reply, and is what tests assert against (use deltas — the registry is
//! process-wide and shared across in-process tests).

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// The seven FS2 hardware operations, in [`fs2_op_name`] index order.
/// Mirrors `clare_fs2::HwOp::ALL` (asserted by an integration test) —
/// duplicated here so the leaf trace crate depends on nothing.
pub const FS2_OPS: usize = 7;

/// Display name of FS2 op counter `i` (Table 1 order, matching
/// `HwOp::name`).
pub fn fs2_op_name(i: usize) -> &'static str {
    [
        "MATCH",
        "DB_STORE",
        "QUERY_STORE",
        "DB_FETCH",
        "QUERY_FETCH",
        "DB_CROSS_BOUND_FETCH",
        "QUERY_CROSS_BOUND_FETCH",
    ][i]
}

/// Wire opcodes tracked by the per-opcode frame counters, in counter
/// index order. Mirrors `clare_net::protocol::opcode` request opcodes
/// `0x01..=0x0C` (index = opcode - 1).
pub const NET_OPS: usize = 12;

/// Display name of net opcode counter `i`.
pub fn net_op_name(i: usize) -> &'static str {
    [
        "ping",
        "retrieve",
        "retrieve_batch",
        "solve",
        "consult",
        "stats",
        "symbols",
        "assert",
        "retract",
        "subscribe_log",
        "log_frame",
        "repl_ack",
    ][i]
}

/// Every metric the workspace records, grouped by pipeline layer. See
/// the README's "Observability" section for the full catalogue.
#[derive(Debug, Default)]
pub struct Metrics {
    // --- disk: the simulated volume -------------------------------------
    /// Tracks whose delivered bytes failed CRC32C verification.
    pub disk_track_crc_failures: Counter,
    // --- FS1: superimposed-codeword index scans -------------------------
    /// Index scan calls (each batch member counts once).
    pub fs1_scans: Counter,
    /// Batched scan calls ([`scan_batch`]-style entry points).
    pub fs1_batch_scans: Counter,
    /// Index entries examined across all scans.
    pub fs1_entries_scanned: Counter,
    /// Candidate clause addresses produced (FS1 "in" is entries, "out"
    /// is this).
    pub fs1_candidates_out: Counter,
    /// FS1 candidates later rejected by FS2 verdicts (two-stage mode):
    /// the numerator of the FS1 false-drop rate.
    pub fs1_false_drops: Counter,
    /// Host wall-clock per scan call, ns.
    pub fs1_scan_wall_ns: Histogram,
    // --- FS2: partial-test-unification track sweeps ---------------------
    /// Query streams loaded into an FS2 engine.
    pub fs2_queries_loaded: Counter,
    /// Track sweeps performed (one per retrieval FS2 phase, one per
    /// batch job).
    pub fs2_sweeps: Counter,
    /// Tracks streamed through the filter.
    pub fs2_tracks: Counter,
    /// Clause-head streams matched.
    pub fs2_clauses: Counter,
    /// Clauses that satisfied the partial test.
    pub fs2_satisfiers: Counter,
    /// Hardware operations executed, by `HwOp` index (MATCH, DB_STORE,
    /// …) — the global roll-up of every `StreamVerdict` op histogram.
    pub fs2_ops: [Counter; FS2_OPS],
    /// Modelled (Table 1) time per sweep, ns.
    pub fs2_modelled_ns: Histogram,
    /// Host wall-clock per sweep, ns.
    pub fs2_wall_ns: Histogram,
    /// Total busy time across sweep workers, ns. Occupancy of a parallel
    /// sweep is `busy / (wall * workers)`.
    pub fs2_worker_busy_ns: Counter,
    /// Sweep worker threads that died by panic. The sweep recomputes the
    /// dead worker's shards serially — never silently, never by
    /// re-raising into the serving thread.
    pub fs2_worker_panics: Counter,
    /// Shards recomputed serially after a sweep worker died.
    pub fs2_worker_recoveries: Counter,
    /// Tracks quarantined during FS2 sweeps: checksum-failed bytes whose
    /// clauses were re-served through the software fallback instead of
    /// being trusted to the hardware filter.
    pub fs2_quarantined_tracks: Counter,
    // --- CRS: the clause retrieval server -------------------------------
    /// Retrieval/solve answers flagged degraded (some input failed
    /// integrity checks and a software fallback covered for it).
    pub crs_degraded_answers: Counter,
    /// Retrieval-cache lookups answered from the cache (either layer:
    /// full answers or FS1 candidate sets).
    pub cache_hits: Counter,
    /// Retrieval-cache lookups that found no live entry.
    pub cache_misses: Counter,
    /// Cache entries dropped by capacity-bound FIFO eviction.
    pub cache_evictions: Counter,
    /// Cache entries dropped because their epoch stamp no longer matched
    /// (a knowledge-base update or track quarantine intervened). Each
    /// also counts as a miss.
    pub cache_epoch_invalidations: Counter,
    // --- budget: end-to-end deadlines and cooperative cancellation --------
    /// Queued jobs dropped because their deadline expired before a
    /// worker picked them up (shed with `DeadlineExpired`, never
    /// executed).
    pub budget_expired_in_queue: Counter,
    /// Requests cancelled mid-execution because their deadline passed a
    /// cooperative checkpoint (typed `BudgetExceeded`, never cached).
    pub budget_exceeded_deadline: Counter,
    /// Solve calls cancelled because they hit their resolution-step
    /// budget.
    pub budget_exceeded_steps: Counter,
    /// Retrievals cancelled because they hit their candidate budget.
    pub budget_exceeded_candidates: Counter,
    /// Jobs shed at admission by the CoDel-style sojourn controller
    /// (sustained queue delay above target — shed early, before the
    /// queue fills).
    pub budget_codel_sheds: Counter,
    /// Solve calls that exhausted `SolveOptions::max_depth` at least
    /// once (the answer is complete only up to the depth cap).
    pub solve_depth_cap_hits: Counter,
    // --- wal: the write-ahead log and memtable overlay -------------------
    /// Batches appended to the write-ahead log (one fsync each — the
    /// group-commit unit).
    pub wal_appends: Counter,
    /// Individual assert/retract records appended to the log.
    pub wal_records: Counter,
    /// `fdatasync` calls issued by the log (equals `wal.appends` unless
    /// an append failed before reaching the sync).
    pub wal_fsyncs: Counter,
    /// Bytes appended to the log, frames included.
    pub wal_bytes: Counter,
    /// Records recovered by replay when a log was opened.
    pub wal_replayed_records: Counter,
    /// Torn tails truncated at open: bytes after the last intact frame
    /// (an append that crashed mid-write and was never acknowledged).
    pub wal_truncated_tails: Counter,
    /// Transaction commits skipped because they carried zero operations
    /// (nothing published, no epoch bumped, no cache flushed).
    pub wal_noop_commits: Counter,
    /// Live clauses added to the memtable overlay by asserts.
    pub wal_overlay_asserts: Counter,
    /// Clauses removed (from the base or the overlay) by retracts.
    pub wal_overlay_retracts: Counter,
    // --- compaction: folding the overlay into the base segments ----------
    /// Compaction passes started.
    pub compaction_runs: Counter,
    /// Compaction passes started automatically because a commit pushed
    /// the overlay past a configured size/age threshold (no manual
    /// `compact_now`/`spawn_compaction` call involved).
    pub compaction_auto_triggers: Counter,
    /// Compaction passes whose rebuilt base was swapped in.
    pub compaction_swaps: Counter,
    /// Compaction passes abandoned at the swap gate because the base
    /// moved (a wholesale `update` won the race); the overlay is left
    /// for the next pass.
    pub compaction_aborts: Counter,
    /// Overlay clauses folded into rebuilt track segments.
    pub compaction_clauses: Counter,
    /// Retrievals served while a compaction pass was in flight — the
    /// walbench liveness check that compaction never blocks readers.
    pub compaction_concurrent_retrievals: Counter,
    /// Host wall-clock per compaction pass, ns (rebuild plus swap).
    pub compaction_wall_ns: Histogram,
    /// Host wall-clock per served retrieval call, ns.
    pub crs_retrieve_wall_ns: Histogram,
    /// Host wall-clock per served solve call, ns.
    pub crs_solve_wall_ns: Histogram,
    /// Batch sizes served through `retrieve_batch`.
    pub crs_batch_size: Histogram,
    /// Per-predicate modelled retrieval latency, keyed `functor/arity`.
    pub crs_predicates: PredicateLatencies,
    // --- net: the clare-net daemon --------------------------------------
    /// Live client connections.
    pub net_connections: Gauge,
    /// Jobs waiting in the worker queue (sampled at enqueue/dequeue).
    pub net_queue_depth: Gauge,
    /// Time a job spent queued before a worker picked it up, ns.
    pub net_queue_wait_ns: Histogram,
    /// Requests shed with `Busy` (queue full), plus connections refused
    /// at the connection limit.
    pub net_busy_rejections: Counter,
    /// Request frames received, by opcode (see [`net_op_name`]).
    pub net_frames_in: [Counter; NET_OPS],
    /// Bytes received inside request frames.
    pub net_bytes_in: Counter,
    /// Frames written back to clients (replies and errors).
    pub net_frames_out: Counter,
    /// Bytes written back to clients.
    pub net_bytes_out: Counter,
    /// Pipelined retrieve frames that were folded into a coalesced batch
    /// pass. The coalescing hit rate is this over `net.frames_in.retrieve`.
    pub net_coalesced_members: Counter,
    /// Coalesced groups formed (each runs one hardware batch pass).
    pub net_coalesced_groups: Counter,
    /// Worker threads that caught a panic while serving a request. The
    /// affected request ids are answered with `Internal` errors — the
    /// job is never silently lost — and the pool keeps serving.
    pub net_worker_panics: Counter,
    /// Frames rejected because their negotiated CRC32C trailer did not
    /// match the received bytes.
    pub net_frame_crc_failures: Counter,
    /// Connections reaped after sitting idle past the configured limit.
    pub net_idle_reaps: Counter,
    /// Client-side reconnect-and-replay recoveries on idempotent
    /// requests.
    pub net_client_reconnects: Counter,
    // --- net.reactor: the epoll serving core ----------------------------
    /// Connections currently registered with a reactor shard (accepted,
    /// past admission, not yet closed).
    pub net_reactor_connections: Gauge,
    /// `epoll_wait` returns that reported at least one ready fd (the
    /// reactor's readiness wakeup count; timeouts are not counted).
    pub net_reactor_wakeups: Counter,
    /// Readiness events dispatched across all wakeups (sockets, the
    /// listener, and cross-thread kicks via the eventfd).
    pub net_reactor_events: Counter,
    /// Bytes sitting in per-connection outbound reply queues, summed
    /// across connections (enqueued by workers, not yet on the wire).
    pub net_reactor_outbound_bytes: Gauge,
    /// Times a worker blocked because a connection's outbound queue was
    /// at capacity (write-side backpressure from a slow client).
    pub net_reactor_backpressure_stalls: Counter,
    /// Flush rounds that moved only part of a connection's pending bytes
    /// (kernel buffer full or an injected torn write); the remainder
    /// waits parked against `EPOLLOUT`.
    pub net_reactor_partial_writes: Counter,
    // --- cluster: the predicate-sharded router ---------------------------
    /// Requests routed to a shard backend (every retrieve / assert /
    /// retract the router forwarded, broadcast fan-out counted per
    /// shard).
    pub cluster_routed: Counter,
    /// Shards failed over from primary to backup (manual promotions and
    /// heartbeat-triggered automatic ones).
    pub cluster_failovers: Counter,
    /// WAL records shipped through the replication stream (primary →
    /// router → backup forwards; resends count again).
    pub cluster_repl_frames: Counter,
    /// Answers the router flagged degraded because they were served by a
    /// stale backup after failover.
    pub cluster_degraded_answers: Counter,
    /// Replication lag of the worst shard: records committed on the
    /// primary but not yet acknowledged as applied by its backup.
    pub cluster_repl_lag_frames: Gauge,
    /// Per-shard circuit breakers tripped open (K consecutive
    /// failures).
    pub router_breaker_opens: Counter,
    /// Half-open probe requests let through a cooling-down breaker.
    pub router_breaker_half_open_probes: Counter,
    /// Requests fast-failed with `ShardUnavailable` because the shard's
    /// breaker was open.
    pub router_breaker_rejections: Counter,
}

/// The dynamic per-predicate latency histograms. Lookup takes a read
/// lock; the write lock is taken once per predicate to insert. A
/// `BTreeMap` keeps keys sorted and has a const constructor, letting
/// the whole registry live in a plain static.
#[derive(Debug, Default)]
pub struct PredicateLatencies {
    map: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl PredicateLatencies {
    /// A latency map with no predicates yet.
    pub const fn new() -> Self {
        PredicateLatencies {
            map: RwLock::new(BTreeMap::new()),
        }
    }

    /// Records a modelled retrieval latency for `functor/arity`.
    pub fn record(&self, key: &str, elapsed_ns: u64) {
        if let Some(h) = self.map.read().get(key) {
            h.record(elapsed_ns);
            return;
        }
        let mut map = self.map.write();
        map.entry(key.to_owned())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .record(elapsed_ns);
    }

    /// Snapshot of every per-predicate histogram, sorted by key.
    pub fn snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.map
            .read()
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect()
    }
}

static METRICS: Metrics = Metrics {
    disk_track_crc_failures: Counter::new(),
    fs1_scans: Counter::new(),
    fs1_batch_scans: Counter::new(),
    fs1_entries_scanned: Counter::new(),
    fs1_candidates_out: Counter::new(),
    fs1_false_drops: Counter::new(),
    fs1_scan_wall_ns: Histogram::new(),
    fs2_queries_loaded: Counter::new(),
    fs2_sweeps: Counter::new(),
    fs2_tracks: Counter::new(),
    fs2_clauses: Counter::new(),
    fs2_satisfiers: Counter::new(),
    fs2_ops: [
        Counter::new(),
        Counter::new(),
        Counter::new(),
        Counter::new(),
        Counter::new(),
        Counter::new(),
        Counter::new(),
    ],
    fs2_modelled_ns: Histogram::new(),
    fs2_wall_ns: Histogram::new(),
    fs2_worker_busy_ns: Counter::new(),
    fs2_worker_panics: Counter::new(),
    fs2_worker_recoveries: Counter::new(),
    fs2_quarantined_tracks: Counter::new(),
    crs_degraded_answers: Counter::new(),
    cache_hits: Counter::new(),
    cache_misses: Counter::new(),
    cache_evictions: Counter::new(),
    cache_epoch_invalidations: Counter::new(),
    budget_expired_in_queue: Counter::new(),
    budget_exceeded_deadline: Counter::new(),
    budget_exceeded_steps: Counter::new(),
    budget_exceeded_candidates: Counter::new(),
    budget_codel_sheds: Counter::new(),
    solve_depth_cap_hits: Counter::new(),
    wal_appends: Counter::new(),
    wal_records: Counter::new(),
    wal_fsyncs: Counter::new(),
    wal_bytes: Counter::new(),
    wal_replayed_records: Counter::new(),
    wal_truncated_tails: Counter::new(),
    wal_noop_commits: Counter::new(),
    wal_overlay_asserts: Counter::new(),
    wal_overlay_retracts: Counter::new(),
    compaction_runs: Counter::new(),
    compaction_auto_triggers: Counter::new(),
    compaction_swaps: Counter::new(),
    compaction_aborts: Counter::new(),
    compaction_clauses: Counter::new(),
    compaction_concurrent_retrievals: Counter::new(),
    compaction_wall_ns: Histogram::new(),
    crs_retrieve_wall_ns: Histogram::new(),
    crs_solve_wall_ns: Histogram::new(),
    crs_batch_size: Histogram::new(),
    crs_predicates: PredicateLatencies::new(),
    net_connections: Gauge::new(),
    net_queue_depth: Gauge::new(),
    net_queue_wait_ns: Histogram::new(),
    net_busy_rejections: Counter::new(),
    net_frames_in: [
        Counter::new(),
        Counter::new(),
        Counter::new(),
        Counter::new(),
        Counter::new(),
        Counter::new(),
        Counter::new(),
        Counter::new(),
        Counter::new(),
        Counter::new(),
        Counter::new(),
        Counter::new(),
    ],
    net_bytes_in: Counter::new(),
    net_frames_out: Counter::new(),
    net_bytes_out: Counter::new(),
    net_coalesced_members: Counter::new(),
    net_coalesced_groups: Counter::new(),
    net_worker_panics: Counter::new(),
    net_frame_crc_failures: Counter::new(),
    net_idle_reaps: Counter::new(),
    net_client_reconnects: Counter::new(),
    net_reactor_connections: Gauge::new(),
    net_reactor_wakeups: Counter::new(),
    net_reactor_events: Counter::new(),
    net_reactor_outbound_bytes: Gauge::new(),
    net_reactor_backpressure_stalls: Counter::new(),
    net_reactor_partial_writes: Counter::new(),
    cluster_routed: Counter::new(),
    cluster_failovers: Counter::new(),
    cluster_repl_frames: Counter::new(),
    cluster_degraded_answers: Counter::new(),
    cluster_repl_lag_frames: Gauge::new(),
    router_breaker_opens: Counter::new(),
    router_breaker_half_open_probes: Counter::new(),
    router_breaker_rejections: Counter::new(),
};

/// The process-wide registry every layer records into.
pub fn metrics() -> &'static Metrics {
    &METRICS
}

impl Metrics {
    /// A plain-data, name-keyed copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = vec![
            (
                "disk.track_crc_failures".into(),
                self.disk_track_crc_failures.get(),
            ),
            ("fs1.scans".into(), self.fs1_scans.get()),
            ("fs1.batch_scans".into(), self.fs1_batch_scans.get()),
            ("fs1.entries_scanned".into(), self.fs1_entries_scanned.get()),
            ("fs1.candidates_out".into(), self.fs1_candidates_out.get()),
            ("fs1.false_drops".into(), self.fs1_false_drops.get()),
            ("fs2.queries_loaded".into(), self.fs2_queries_loaded.get()),
            ("fs2.sweeps".into(), self.fs2_sweeps.get()),
            ("fs2.tracks".into(), self.fs2_tracks.get()),
            ("fs2.clauses".into(), self.fs2_clauses.get()),
            ("fs2.satisfiers".into(), self.fs2_satisfiers.get()),
            ("fs2.worker_busy_ns".into(), self.fs2_worker_busy_ns.get()),
            ("fs2.worker_panics".into(), self.fs2_worker_panics.get()),
            (
                "fs2.worker_recoveries".into(),
                self.fs2_worker_recoveries.get(),
            ),
            (
                "fs2.quarantined_tracks".into(),
                self.fs2_quarantined_tracks.get(),
            ),
            (
                "crs.degraded_answers".into(),
                self.crs_degraded_answers.get(),
            ),
            ("cache.hits".into(), self.cache_hits.get()),
            ("cache.misses".into(), self.cache_misses.get()),
            ("cache.evictions".into(), self.cache_evictions.get()),
            (
                "cache.epoch_invalidations".into(),
                self.cache_epoch_invalidations.get(),
            ),
            (
                "budget.expired_in_queue".into(),
                self.budget_expired_in_queue.get(),
            ),
            (
                "budget.exceeded_deadline".into(),
                self.budget_exceeded_deadline.get(),
            ),
            (
                "budget.exceeded_steps".into(),
                self.budget_exceeded_steps.get(),
            ),
            (
                "budget.exceeded_candidates".into(),
                self.budget_exceeded_candidates.get(),
            ),
            ("budget.codel_sheds".into(), self.budget_codel_sheds.get()),
            (
                "solve.depth_cap_hits".into(),
                self.solve_depth_cap_hits.get(),
            ),
            ("wal.appends".into(), self.wal_appends.get()),
            ("wal.records".into(), self.wal_records.get()),
            ("wal.fsyncs".into(), self.wal_fsyncs.get()),
            ("wal.bytes".into(), self.wal_bytes.get()),
            (
                "wal.replayed_records".into(),
                self.wal_replayed_records.get(),
            ),
            ("wal.truncated_tails".into(), self.wal_truncated_tails.get()),
            ("wal.noop_commits".into(), self.wal_noop_commits.get()),
            ("wal.overlay_asserts".into(), self.wal_overlay_asserts.get()),
            (
                "wal.overlay_retracts".into(),
                self.wal_overlay_retracts.get(),
            ),
            ("compaction.runs".into(), self.compaction_runs.get()),
            (
                "compaction.auto_triggers".into(),
                self.compaction_auto_triggers.get(),
            ),
            ("compaction.swaps".into(), self.compaction_swaps.get()),
            ("compaction.aborts".into(), self.compaction_aborts.get()),
            ("compaction.clauses".into(), self.compaction_clauses.get()),
            (
                "compaction.concurrent_retrievals".into(),
                self.compaction_concurrent_retrievals.get(),
            ),
            ("net.busy_rejections".into(), self.net_busy_rejections.get()),
            ("net.bytes_in".into(), self.net_bytes_in.get()),
            ("net.frames_out".into(), self.net_frames_out.get()),
            ("net.bytes_out".into(), self.net_bytes_out.get()),
            (
                "net.coalesced_members".into(),
                self.net_coalesced_members.get(),
            ),
            (
                "net.coalesced_groups".into(),
                self.net_coalesced_groups.get(),
            ),
            ("net.worker_panics".into(), self.net_worker_panics.get()),
            (
                "net.frame_crc_failures".into(),
                self.net_frame_crc_failures.get(),
            ),
            ("net.idle_reaps".into(), self.net_idle_reaps.get()),
            (
                "net.client_reconnects".into(),
                self.net_client_reconnects.get(),
            ),
            ("net.reactor.wakeups".into(), self.net_reactor_wakeups.get()),
            ("net.reactor.events".into(), self.net_reactor_events.get()),
            (
                "net.reactor.backpressure_stalls".into(),
                self.net_reactor_backpressure_stalls.get(),
            ),
            (
                "net.reactor.partial_writes".into(),
                self.net_reactor_partial_writes.get(),
            ),
            ("cluster.routed".into(), self.cluster_routed.get()),
            ("cluster.failovers".into(), self.cluster_failovers.get()),
            ("cluster.repl_frames".into(), self.cluster_repl_frames.get()),
            (
                "cluster.degraded_answers".into(),
                self.cluster_degraded_answers.get(),
            ),
            (
                "router.breaker_opens".into(),
                self.router_breaker_opens.get(),
            ),
            (
                "router.breaker_half_open_probes".into(),
                self.router_breaker_half_open_probes.get(),
            ),
            (
                "router.breaker_rejections".into(),
                self.router_breaker_rejections.get(),
            ),
        ];
        for (i, c) in self.fs2_ops.iter().enumerate() {
            counters.push((format!("fs2.op.{}", fs2_op_name(i)), c.get()));
        }
        for (i, c) in self.net_frames_in.iter().enumerate() {
            counters.push((format!("net.frames_in.{}", net_op_name(i)), c.get()));
        }
        let gauges = vec![
            // The active SIMD dispatch tier (0 scalar, 1 NEON, 2 AVX2):
            // environment state rather than a recorded metric, sampled at
            // snapshot time so every transport reports it for free.
            ("simd.level".into(), clare_simd::level().as_gauge() as i64),
            ("net.connections".into(), self.net_connections.get()),
            ("net.queue_depth".into(), self.net_queue_depth.get()),
            (
                "net.reactor.connections".into(),
                self.net_reactor_connections.get(),
            ),
            (
                "net.reactor.outbound_bytes".into(),
                self.net_reactor_outbound_bytes.get(),
            ),
            (
                "cluster.repl_lag_frames".into(),
                self.cluster_repl_lag_frames.get(),
            ),
        ];
        let mut histograms = vec![
            ("fs1.scan_wall_ns".into(), self.fs1_scan_wall_ns.snapshot()),
            (
                "compaction.wall_ns".into(),
                self.compaction_wall_ns.snapshot(),
            ),
            ("fs2.modelled_ns".into(), self.fs2_modelled_ns.snapshot()),
            ("fs2.wall_ns".into(), self.fs2_wall_ns.snapshot()),
            (
                "crs.retrieve_wall_ns".into(),
                self.crs_retrieve_wall_ns.snapshot(),
            ),
            (
                "crs.solve_wall_ns".into(),
                self.crs_solve_wall_ns.snapshot(),
            ),
            ("crs.batch_size".into(), self.crs_batch_size.snapshot()),
            (
                "net.queue_wait_ns".into(),
                self.net_queue_wait_ns.snapshot(),
            ),
        ];
        for (key, snap) in self.crs_predicates.snapshot() {
            histograms.push((format!("crs.pred.{key}.elapsed_ns"), snap));
        }
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time, name-keyed copy of the registry — the unit that
/// crosses the wire, renders in the repl, and lands in `clare-tables
/// metrics` output. Names are stable identifiers; decoders must tolerate
/// names they do not know (the payload is self-describing).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` counter pairs.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauge pairs.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` histogram pairs.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as an aligned text table (counters, gauges,
    /// then histograms with count/mean/p50/p99).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<34} {:>16}", "counter", "value");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<34} {v:>16}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "{name:<34} {v:>16}  (gauge)");
        }
        let _ = writeln!(
            out,
            "{:<34} {:>10} {:>12} {:>12} {:>12}",
            "histogram", "count", "mean", "p50", "p99"
        );
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name:<34} {:>10} {:>12} {:>12} {:>12}",
                h.count,
                h.mean(),
                h.p50(),
                h.p99()
            );
        }
        out
    }

    /// Renders the snapshot as a JSON object (hand-rolled: the workspace
    /// vendors no serde). Histograms carry count/sum/buckets.
    pub fn render_json(&self) -> String {
        fn quote(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    {}: {v}", quote(name)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    {}: {v}", quote(name)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                "{sep}\n    {}: {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}, \"buckets\": [{}]}}",
                quote(name),
                h.count,
                h.sum,
                h.p50(),
                h.p99(),
                buckets.join(", ")
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_names_are_unique() {
        let snap = metrics().snapshot();
        let mut names: Vec<&str> = snap
            .counters
            .iter()
            .map(|(n, _)| n.as_str())
            .chain(snap.gauges.iter().map(|(n, _)| n.as_str()))
            .chain(snap.histograms.iter().map(|(n, _)| n.as_str()))
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric names");
    }

    #[test]
    fn deltas_observable_through_snapshot() {
        let before = metrics().snapshot().counter("fs1.scans").unwrap();
        metrics().fs1_scans.add(3);
        let after = metrics().snapshot().counter("fs1.scans").unwrap();
        assert!(after >= before + 3);
    }

    #[test]
    fn per_predicate_histograms_appear_sorted() {
        metrics().crs_predicates.record("zz_test_pred/2", 1000);
        metrics().crs_predicates.record("aa_test_pred/1", 500);
        metrics().crs_predicates.record("zz_test_pred/2", 2000);
        let snap = metrics().snapshot();
        let keys: Vec<&String> = snap
            .histograms
            .iter()
            .map(|(n, _)| n)
            .filter(|n| n.contains("_test_pred/"))
            .collect();
        assert_eq!(
            keys,
            [
                "crs.pred.aa_test_pred/1.elapsed_ns",
                "crs.pred.zz_test_pred/2.elapsed_ns"
            ]
        );
        let h = snap
            .histogram("crs.pred.zz_test_pred/2.elapsed_ns")
            .unwrap();
        assert!(h.count >= 2);
    }

    #[test]
    fn text_and_json_render() {
        metrics().fs2_wall_ns.record(12345);
        let snap = metrics().snapshot();
        let text = snap.render_text();
        assert!(text.contains("fs2.op.MATCH"));
        assert!(text.contains("net.queue_wait_ns"));
        let json = snap.render_json();
        assert!(json.contains("\"fs1.scans\""));
        assert!(json.contains("\"buckets\""));
        // Sanity: balanced braces.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
    }

    #[test]
    fn lookup_helpers() {
        let snap = metrics().snapshot();
        assert!(snap.counter("fs2.op.MATCH").is_some());
        assert!(snap.gauge("net.queue_depth").is_some());
        assert!(snap.histogram("crs.batch_size").is_some());
        assert!(snap.counter("no.such.metric").is_none());
    }
}
