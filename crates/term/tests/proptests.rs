//! Property tests for the reader/writer pair and the symbol table.

use clare_term::parser::{parse_term, parse_term_with_vars};
use clare_term::{SymbolTable, TermDisplay};
use proptest::prelude::*;

/// A strategy generating syntactically valid term source text.
fn term_source() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| s),
        // Quoted atoms with spaces and escapable characters.
        "[ -~]{0,8}".prop_map(|s| format!("'{}'", s.replace(['\\', '\''], ""))),
    ];
    let leaf = prop_oneof![
        atom.clone(),
        (-1_000_000i64..1_000_000).prop_map(|v| v.to_string()),
        (0u32..1000u32, 1u32..1000u32).prop_map(|(a, b)| format!("{a}.{b}")),
        (1u32..999, -6i32..7).prop_map(|(m, e)| format!("{m}e{e}")),
        (1u32..99, 1u32..99, -4i32..5).prop_map(|(a, b, e)| format!("{a}.{b}e{e}")),
        "[A-Z][a-z0-9]{0,4}".prop_map(|s| s),
        Just("_".to_owned()),
    ];
    leaf.prop_recursive(3, 24, 4, move |inner| {
        let args = prop::collection::vec(inner.clone(), 1..4);
        prop_oneof![
            // Structure
            ("[a-z][a-z0-9_]{0,6}", args.clone())
                .prop_map(|(f, a)| format!("{f}({})", a.join(", "))),
            // Terminated list
            prop::collection::vec(inner.clone(), 0..4)
                .prop_map(|items| format!("[{}]", items.join(", "))),
            // Unterminated list
            (prop::collection::vec(inner, 1..4), "[A-Z][a-z0-9]{0,4}")
                .prop_map(|(items, tail)| format!("[{} | {tail}]", items.join(", "))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Printing a parsed term and re-parsing it yields the same tree.
    #[test]
    fn display_parse_roundtrip(src in term_source()) {
        let mut symbols = SymbolTable::new();
        let term = parse_term(&src, &mut symbols).expect("generated source parses");
        let printed = TermDisplay::new(&term, &symbols).to_string();
        let reparsed = parse_term(&printed, &mut symbols)
            .unwrap_or_else(|e| panic!("printed form `{printed}` must parse: {e}"));
        prop_assert_eq!(&reparsed, &term, "roundtrip through `{}`", printed);
    }

    /// Variable names survive through the scope table.
    #[test]
    fn var_names_roundtrip(src in term_source()) {
        let mut symbols = SymbolTable::new();
        let (term, names) = parse_term_with_vars(&src, &mut symbols).unwrap();
        let vars = clare_term::collect_vars(&term);
        // Every collected variable has a name, and ids are dense.
        for v in &vars {
            prop_assert!((v.index() as usize) < names.len());
        }
        let printed = TermDisplay::new(&term, &symbols)
            .with_var_names(&names)
            .to_string();
        let (reparsed, names2) = parse_term_with_vars(&printed, &mut symbols).unwrap();
        prop_assert_eq!(reparsed, term);
        // First-occurrence order is canonical, so names survive exactly.
        prop_assert_eq!(names2, names);
    }

    /// Interning is injective over generated texts.
    #[test]
    fn symbol_interning_injective(texts in prop::collection::hash_set("[a-z][a-z0-9_]{0,10}", 0..40)) {
        let mut table = SymbolTable::new();
        let syms: Vec<_> = texts.iter().map(|t| table.intern_atom(t)).collect();
        let unique: std::collections::HashSet<_> = syms.iter().collect();
        prop_assert_eq!(unique.len(), texts.len());
        for (text, sym) in texts.iter().zip(&syms) {
            prop_assert_eq!(table.atom_text(*sym), text.as_str());
        }
    }

    /// term_size and term_depth relate sanely.
    #[test]
    fn size_bounds_depth(src in term_source()) {
        let mut symbols = SymbolTable::new();
        let term = parse_term(&src, &mut symbols).unwrap();
        prop_assert!(clare_term::term_depth(&term) < clare_term::term_size(&term) + 1);
    }
}
