//! Prolog term representation for the CLARE reproduction.
//!
//! This crate provides the foundational data model shared by every other
//! crate in the workspace:
//!
//! * [`SymbolTable`] — an interner for atom names and floating point
//!   constants. The paper's Pseudo In-line Format (PIF) represents atoms and
//!   floats as *symbol table offsets*; interning here gives every atom and
//!   float a stable small integer identity that the `clare-pif` encoder can
//!   embed directly in content fields.
//! * [`Term`] — Prolog terms: atoms, integers, floats, named and anonymous
//!   variables, structures, and (terminated or unterminated) lists. Lists are
//!   first-class rather than sugar for `'.'/2` because the CLARE hardware
//!   type scheme (Table A1 of the paper) treats them as distinct type tags.
//! * [`Clause`] — a fact or rule with a user-significant ordering position.
//! * [`parser`] — a reader for an Edinburgh-syntax subset sufficient for the
//!   paper's workloads (facts, rules, lists, quoted atoms, comments).
//!
//! # Examples
//!
//! ```
//! use clare_term::{SymbolTable, parser::parse_term};
//!
//! let mut symbols = SymbolTable::new();
//! let term = parse_term("married_couple(Same, Same)", &mut symbols)?;
//! assert_eq!(term.functor_arity(), Some((symbols.intern_atom("married_couple"), 2)));
//! # Ok::<(), clare_term::parser::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod display;
pub mod parser;
pub mod symbol;
pub mod term;
pub mod visit;

pub use display::{ClauseDisplay, TermDisplay};
pub use symbol::{FloatId, Symbol, SymbolTable};
pub use term::{Clause, ClauseId, Term, VarId};
pub use visit::{collect_vars, term_depth, term_size};
