//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no network access, so the workspace vendors
//! the small `rand` surface it uses: a seedable deterministic generator
//! ([`rngs::StdRng`], here xoshiro256**) plus [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`Rng::gen`]. Sequences differ from upstream
//! `rand` (that is fine: every caller seeds explicitly and asserts
//! statistical, not positional, properties).

#![warn(missing_docs)]

/// The core source of randomness: 64 random bits at a time.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types [`Rng::gen`] can produce from raw bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // span == 0 only for the full u128-wide range, impossible
                // for these element types.
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::draw(self) < p
    }

    /// A value drawn from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the seed with splitmix64 as xoshiro's authors suggest.
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc): (Vec<u64>, Vec<u64>, Vec<u64>) = (
            (0..8).map(|_| a.gen_range(0..1_000_000u64)).collect(),
            (0..8).map(|_| b.gen_range(0..1_000_000u64)).collect(),
            (0..8).map(|_| c.gen_range(0..1_000_000u64)).collect(),
        );
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn extreme_inclusive_range_no_overflow() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let _ = rng.gen_range(i64::MIN..0);
            let _ = rng.gen_range(0..=i64::MAX);
        }
    }
}
