//! clare-wal — the durable mutable knowledge base.
//!
//! The paper's engine retrieves over a batch-built, immutable knowledge
//! base; real Prolog workloads `assert` and `retract` at runtime. This
//! crate gives the reproduction a LevelDB-shaped write path:
//!
//! * [`Wal`] — a crash-safe, CRC32C-framed write-ahead log with
//!   monotonic sequence numbers and group-commit batching. An operation
//!   is acknowledged only after its batch is fsynced; opening a log
//!   replays every intact frame and truncates the torn tail a crash
//!   leaves behind. **No acknowledged write is ever lost.**
//! * [`Overlay`] — the in-memory memtable delta that commits land in.
//!   Retrievals merge it with the immutable base snapshot; overlay
//!   clauses pass the FS1 superset filter unconditionally (they have no
//!   codewords yet), preserving the no-false-negative invariant, and the
//!   merged answer set is byte-identical to a from-scratch rebuild.
//! * [`Overlay::compacted_kb`] — the background compaction rebuild:
//!   sealed track segments and their FS1 codeword indexes are rewritten
//!   off the write path from in-memory clause terms (never from the
//!   possibly-degraded simulated disk) and swapped in atomically by the
//!   serving layer.
//!
//! The serving integration — commit serialization, epoch bumps, the
//! atomic swap — lives in `clare-core`'s `ClauseRetrievalServer`; this
//! crate owns the data structures and their invariants.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod log;
pub mod overlay;

pub use log::{
    decode_ship_record, encode_ship_record, ReplayReport, Wal, WalError, WalOp, WalRecord,
    MAX_PAYLOAD,
};
pub use overlay::{ApplyOutcome, Overlay, OverlayClause, OverlayError, PredDelta};
