//! Criterion counterpart of E1/E2 (Table 1, Figures 6–12): how fast the
//! *simulator* executes each of the seven hardware operations, the
//! route-derivation cost itself, and clause filtering throughput across
//! the three stream-sourcing strategies (re-parse bytes per clause,
//! pre-decoded with per-clause op vectors, pre-decoded allocation-free).

use clare_fs2::{Fs2Engine, HwOp};
use clare_pif::{encode_clause_head, encode_query, ClauseRecord, PifStream};
use clare_term::parser::{parse_clause, parse_term};
use clare_term::SymbolTable;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// Query/clause pairs whose match is dominated by one operation each.
const OP_CASES: [(&str, &str, &str); 7] = [
    ("match", "f(a, b, c)", "f(a, b, c)"),
    ("db_store", "f(a, b, c)", "f(A, B, C)"),
    ("query_store", "f(X, Y, Z)", "f(a, b, c)"),
    ("db_fetch", "f(a, a, a)", "f(A, A, A)"),
    ("query_fetch", "f(X, X, X)", "f(a, a, a)"),
    ("db_cross_bound_fetch", "f(X, a, a)", "f(A, A, A)"),
    ("query_cross_bound_fetch", "f(X, Y, X, Y)", "f(B, B, c, c)"),
];

fn bench_op_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("fs2_op_matching");
    for (label, query, clause) in OP_CASES {
        let mut symbols = SymbolTable::new();
        let q = parse_term(query, &mut symbols).unwrap();
        let cl = parse_term(clause, &mut symbols).unwrap();
        let q_stream = encode_query(&q).unwrap();
        let c_stream = encode_clause_head(&cl).unwrap();
        let mut engine = Fs2Engine::new(&q_stream).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| black_box(engine.match_clause_stream(black_box(&c_stream)).matched))
        });
    }
    group.finish();
}

/// Filtering a clause set through the engine, three ways:
///
/// * `bytes` — re-parse every record from its on-disk bytes, then match
///   through the allocation-free path (the pre-arena per-retrieval cost);
/// * `decoded_alloc` — pre-decoded streams, but the op-vector path that
///   allocates a `Vec<HwOp>` per clause;
/// * `decoded_quiet` — pre-decoded streams through the allocation-free
///   scratch path, as the retrieval pipeline now runs.
fn bench_clause_filtering(c: &mut Criterion) {
    let mut group = c.benchmark_group("fs2_clause_filtering");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        let mut symbols = SymbolTable::new();
        let query = parse_term("fact(k17, X, T)", &mut symbols).unwrap();
        let clauses: Vec<clare_term::Clause> = (0..n)
            .map(|i| {
                parse_clause(
                    &format!("fact(k{}, v{}, t{}).", i % 37, i, i % 11),
                    &mut symbols,
                )
                .unwrap()
            })
            .collect();
        let records: Vec<Vec<u8>> = clauses
            .iter()
            .map(|cl| ClauseRecord::compile(cl).unwrap().to_bytes())
            .collect();
        let streams: Vec<PifStream> = clauses
            .iter()
            .map(|cl| encode_clause_head(cl.head()).unwrap())
            .collect();
        let mut engine = Fs2Engine::new(&encode_query(&query).unwrap()).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("bytes/{n}"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for bytes in &records {
                    let (record, _) = ClauseRecord::from_bytes(bytes).unwrap();
                    if engine.match_clause_quiet(record.head_stream()).matched {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
        group.bench_function(format!("decoded_alloc/{n}"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for s in &streams {
                    if engine.match_clause_stream(s).matched {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
        group.bench_function(format!("decoded_quiet/{n}"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for s in &streams {
                    if engine.match_clause_words(s.words()).matched {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

fn bench_route_derivation(c: &mut Criterion) {
    c.bench_function("table1_derivation", |b| {
        b.iter(|| {
            let total: u64 = HwOp::ALL.iter().map(|op| op.execution_time().as_ns()).sum();
            black_box(total)
        })
    });
}

/// Short measurement windows keep the full suite fast while staying
/// statistically useful.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_op_matching, bench_clause_filtering, bench_route_derivation
}
criterion_main!(benches);
