//! The three FS1 false-drop sources (§2.1), demonstrated live, and the
//! FS2 recovery for each — the core of the paper's two-stage argument.
//!
//! ```text
//! cargo run --release --example false_drops
//! ```

use clare::prelude::*;

fn show(kb: &KnowledgeBase, query: &Term, label: &str) {
    let opts = CrsOptions::default();
    let fs1 = retrieve(kb, query, SearchMode::Fs1Only, &opts);
    let two = retrieve(kb, query, SearchMode::TwoStage, &opts);
    println!(
        "{label}\n  FS1 candidates: {:>5}   FS1+FS2: {:>5}   true answers: {:>5}   \
         FS2 removed {} false drops\n",
        fs1.stats.candidates,
        two.stats.candidates,
        two.stats.unified,
        fs1.stats.candidates - two.stats.candidates,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Source 3 of §2.1 — shared variables. Variables are invisible to the
    // codeword encoding, so married_couple(S, S) matches every index entry.
    let mut b = KbBuilder::new();
    let mut source = String::new();
    for i in 0..300 {
        if i % 50 == 0 {
            source.push_str(&format!("married_couple(p{i}, p{i}).\n"));
        } else {
            source.push_str(&format!("married_couple(p{i}, q{i}).\n"));
        }
    }
    b.consult("m", &source)?;
    let (q, _) = parse_term_with_vars("married_couple(S, S)", b.symbols_mut())?;
    let kb = b.finish(KbConfig::default());
    show(&kb, &q, "shared variables — married_couple(Same, Same):");

    // Source 2 — truncation: only 12 arguments are encoded, so facts that
    // differ at argument 13 are indistinguishable to FS1.
    let mut b = KbBuilder::new();
    let common: Vec<String> = (0..12).map(|i| format!("c{i}")).collect();
    let mut source = String::new();
    for i in 0..100 {
        source.push_str(&format!("wide({}, tail{i}).\n", common.join(", ")));
    }
    b.consult("m", &source)?;
    let (q, _) = parse_term_with_vars(
        &format!("wide({}, tail42)", common.join(", ")),
        b.symbols_mut(),
    )?;
    let kb = b.finish(KbConfig::default());
    show(&kb, &q, "12-argument truncation — mismatch at argument 13:");

    // Source 1 — non-unique encoding: with a deliberately narrow codeword
    // (16 bits) hash collisions accept clauses that share no constants.
    let mut b = KbBuilder::new();
    let mut source = String::new();
    for i in 0..2000 {
        source.push_str(&format!("item(k{i}).\n"));
    }
    b.consult("m", &source)?;
    let (q, _) = parse_term_with_vars("item(k77)", b.symbols_mut())?;
    let narrow = KbConfig {
        scw: ScwConfig::custom(16, 3, 12),
        ..KbConfig::default()
    };
    let kb = b.finish(narrow);
    show(
        &kb,
        &q,
        "non-unique encoding — 16-bit codewords over 2000 keys (paper uses wider):",
    );

    println!(
        "after the second stage \"the percentage of false drops will be reduced \
         significantly, resulting in a manageable clause set for full unification\" (§2.2)"
    );
    Ok(())
}
