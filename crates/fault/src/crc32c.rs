//! CRC32C (Castagnoli) — the checksum guarding disk tracks, `.ckb`
//! sections, and wire frames.
//!
//! Hand-rolled because the workspace vendors no checksum crate: the
//! reflected polynomial `0x82F63B78` with slicing-by-8 over const-built
//! tables. The digest is resumable ([`crc32c_append`]) so callers can
//! checksum scattered byte runs (a track's records, a section written in
//! chunks) without gathering them into one buffer.

/// The reflected CRC32C (Castagnoli) polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Eight 256-entry tables for slicing-by-8.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

/// CRC32C of `bytes` in one call.
pub fn crc32c(bytes: &[u8]) -> u32 {
    crc32c_append(0, bytes)
}

/// Folds `bytes` into a running CRC32C digest. `crc32c_append(0, all)`
/// equals `crc32c_append(crc32c_append(0, head), tail)` for any split.
pub fn crc32c_append(crc: u32, bytes: &[u8]) -> u32 {
    let mut state = !crc;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ state;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        state = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        state = (state >> 8) ^ TABLES[0][((state ^ b as u32) & 0xFF) as usize];
    }
    !state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 B.4 test vectors for CRC32C.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn append_is_split_invariant() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 31 % 251) as u8).collect();
        let whole = crc32c(&data);
        for split in [0, 1, 7, 8, 9, 100, data.len()] {
            let (head, tail) = data.split_at(split);
            assert_eq!(crc32c_append(crc32c_append(0, head), tail), whole);
        }
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let data = [0x5Au8; 64];
        let clean = crc32c(&data);
        for bit in [0usize, 1, 63, 64 * 8 - 1] {
            let mut flipped = data;
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32c(&flipped), clean, "bit {bit} went undetected");
        }
    }
}
