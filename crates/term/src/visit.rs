//! Structural traversal helpers over [`Term`]s.

use crate::term::{Term, VarId};

/// Collects every named variable occurrence, in left-to-right order, with
/// duplicates preserved.
///
/// Duplicates matter: the PIF compiler classifies the *first* occurrence of a
/// variable differently from subsequent ones (`1st-QV` vs `Sub-QV` in the
/// paper), and the FS1 false-drop analysis hinges on repeated variables such
/// as `married_couple(Same, Same)`.
///
/// # Examples
///
/// ```
/// use clare_term::{collect_vars, SymbolTable, parser::parse_term};
///
/// let mut symbols = SymbolTable::new();
/// let t = parse_term("f(X, g(Y, X))", &mut symbols)?;
/// let vars = collect_vars(&t);
/// assert_eq!(vars.len(), 3); // X, Y, X
/// assert_eq!(vars[0], vars[2]);
/// # Ok::<(), clare_term::parser::ParseError>(())
/// ```
pub fn collect_vars(term: &Term) -> Vec<VarId> {
    let mut out = Vec::new();
    collect_vars_into(term, &mut out);
    out
}

fn collect_vars_into(term: &Term, out: &mut Vec<VarId>) {
    match term {
        Term::Var(v) => out.push(*v),
        Term::Struct { args, .. } => {
            for a in args {
                collect_vars_into(a, out);
            }
        }
        Term::List { items, tail } => {
            for i in items {
                collect_vars_into(i, out);
            }
            if let Some(t) = tail {
                collect_vars_into(t, out);
            }
        }
        _ => {}
    }
}

/// True if any named variable occurs more than once in `term`.
///
/// Such terms defeat the SCW+MB index (variables are ignored during
/// encoding), which is one of the three false-drop sources the paper lists.
pub fn has_repeated_vars(term: &Term) -> bool {
    let vars = collect_vars(term);
    let mut seen = std::collections::HashSet::new();
    vars.into_iter().any(|v| !seen.insert(v))
}

/// Nesting depth of a term: constants and variables have depth 0; a complex
/// term has depth `1 + max(children)`.
///
/// The paper's matching Levels 1–5 are distinguished by how deep into this
/// structure the filter looks (Level 3 = "first level structures").
pub fn term_depth(term: &Term) -> usize {
    match term {
        Term::Struct { .. } | Term::List { .. } => {
            1 + term.children().map(term_depth).max().unwrap_or(0)
        }
        _ => 0,
    }
}

/// Total number of nodes in the term tree (the term itself counts as 1).
pub fn term_size(term: &Term) -> usize {
    1 + term.children().map(term_size).sum::<usize>()
}

/// Calls `f` on `term` and every subterm, pre-order.
pub fn for_each_subterm<'t>(term: &'t Term, f: &mut impl FnMut(&'t Term)) {
    f(term);
    for child in term.children() {
        for_each_subterm(child, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_term;
    use crate::symbol::SymbolTable;

    fn parse(src: &str) -> Term {
        let mut st = SymbolTable::new();
        parse_term(src, &mut st).expect("test term parses")
    }

    #[test]
    fn collect_vars_in_order_with_duplicates() {
        let t = parse("f(X, g(Y, X), _)");
        let vars = collect_vars(&t);
        assert_eq!(vars.len(), 3);
        assert_eq!(vars[0], vars[2]);
        assert_ne!(vars[0], vars[1]);
    }

    #[test]
    fn anon_vars_are_not_collected() {
        let t = parse("f(_, _, _)");
        assert!(collect_vars(&t).is_empty());
    }

    #[test]
    fn repeated_var_detection() {
        assert!(has_repeated_vars(&parse("married_couple(S, S)")));
        assert!(!has_repeated_vars(&parse("married_couple(A, B)")));
        assert!(
            !has_repeated_vars(&parse("f(_, _)")),
            "anon vars never repeat"
        );
    }

    #[test]
    fn depth_of_flat_and_nested() {
        assert_eq!(term_depth(&parse("a")), 0);
        assert_eq!(term_depth(&parse("f(a, b)")), 1);
        assert_eq!(term_depth(&parse("f(g(h(a)))")), 3);
        assert_eq!(term_depth(&parse("[a, [b, [c]]]")), 3);
    }

    #[test]
    fn size_counts_every_node() {
        assert_eq!(term_size(&parse("a")), 1);
        assert_eq!(term_size(&parse("f(a, b)")), 3);
        // list node + 2 items + tail var
        assert_eq!(term_size(&parse("[a, b | T]")), 4);
    }

    #[test]
    fn for_each_subterm_preorder() {
        let t = parse("f(g(a), b)");
        let mut count = 0;
        for_each_subterm(&t, &mut |_| count += 1);
        assert_eq!(count, term_size(&t));
    }
}
