//! End-to-end deadlines, cooperative cancellation, and queue shedding
//! over the real wire: a `clare-net` server on real sockets, driven by
//! v4 clients that attach deadlines and work ceilings to their requests.
//!
//! The invariants:
//!
//! 1. **A runaway query cannot pin a worker.** A solve whose search
//!    space is effectively unbounded, sent with a 50 ms deadline, comes
//!    back as a typed `DeadlineExpired` error within one cancellation
//!    checkpoint of the deadline — never a silent partial answer — and
//!    the worker it occupied is immediately available to other clients.
//! 2. **Work ceilings are enforced remotely.** A protocol-v4 budget
//!    (solve-step or candidate limit) trips server-side with the typed
//!    `BudgetExceeded` error code, and the same query re-run without a
//!    budget is byte-identical to an in-process reference — the
//!    cancelled attempt left nothing behind (no cache pollution).
//! 3. **Deadlines cover queue time.** Under a deterministic
//!    `WorkerStall` chaos schedule, jobs whose deadline elapses while
//!    they wait behind a stalled worker are shed with `DeadlineExpired`
//!    *without being executed*, and the shed is counted
//!    (`budget.expired_in_queue`).

use clare::prelude::*;
use clare_core::ModeChoice;
use clare_fault::{DeterministicInjector, FaultPlan, FaultSite};
use clare_net::{BudgetExt, ErrorCode};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Fault injection and trace metrics are process-global; the tests in
/// this file serialize so one test's chaos schedule or counter deltas
/// never leak into another's assertions.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A knowledge base with a cheap fact table and a `runaway` predicate
/// whose proof search is an exhaustive 2^26-path failure — minutes of
/// work at bounded depth, i.e. unbounded for any sane deadline but
/// incapable of overflowing the solver stack.
fn kb() -> KnowledgeBase {
    let mut b = KbBuilder::new();
    let goals: Vec<String> = (0..26).map(|i| format!("p(A{i})")).collect();
    let src = format!(
        "p(a). p(b).\n\
         item(k1, v1). item(k2, v2). item(k3, v1). item(k4, v2).\n\
         absent(never).\n\
         runaway :- {}, absent(A0).\n",
        goals.join(", ")
    );
    b.consult("m", &src).unwrap();
    b.finish(KbConfig::default())
}

fn serve(cfg: NetConfig) -> (NetServer, Arc<ClauseRetrievalServer>) {
    let crs = Arc::new(ClauseRetrievalServer::new(kb(), CrsOptions::default()));
    let server = NetServer::bind(Arc::clone(&crs), "127.0.0.1:0", cfg).unwrap();
    (server, crs)
}

fn solve_options() -> SolveOptions {
    SolveOptions {
        mode: ModeChoice::Fixed(SearchMode::SoftwareOnly),
        max_solutions: usize::MAX,
        max_depth: 64,
        crs: CrsOptions::default(),
    }
}

/// Invariant 1: the runaway solve with a 50 ms deadline returns the
/// typed error promptly, the lone worker is released, and a bystander
/// client's answers stay byte-identical to the in-process reference.
#[test]
fn runaway_solve_with_deadline_releases_worker_and_returns_typed_error() {
    let _serial = serial();
    let (server, crs) = serve(NetConfig {
        workers: 1,
        coalesce: false,
        ..NetConfig::default()
    });
    let mut client = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
    let mut symbols = client.symbols().unwrap();
    let runaway = parse_term("runaway", &mut symbols).unwrap();
    let query = parse_term("item(K, v1)", &mut symbols).unwrap();

    let deadline_trips_before = clare_trace::metrics().budget_exceeded_deadline.get();

    client.set_deadline(Some(Duration::from_millis(50)));
    let t0 = Instant::now();
    match client.solve_goals(std::slice::from_ref(&runaway), &[], &solve_options()) {
        Err(NetError::Remote { code, .. }) => assert_eq!(
            code,
            ErrorCode::DeadlineExpired,
            "runaway must die with the deadline code"
        ),
        other => panic!("expected a typed deadline error, got {other:?}"),
    }
    let cancelled_after = t0.elapsed();
    // Cancellation latency is one cooperative checkpoint (one solve
    // expansion) past the deadline — generous slack for a loaded CI box,
    // but nowhere near the minutes the search would actually take.
    assert!(
        cancelled_after < Duration::from_secs(5),
        "cancellation took {cancelled_after:?}; the worker was pinned"
    );
    assert!(
        clare_trace::metrics().budget_exceeded_deadline.get() > deadline_trips_before,
        "the deadline trip must be counted"
    );

    // The single worker must be free *now*: a second client's retrieve
    // completes and matches the in-process reference byte for byte.
    let mut bystander = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
    let networked = bystander.retrieve(&query, SearchMode::TwoStage).unwrap();
    assert_eq!(
        networked,
        crs.retrieve(&query, SearchMode::TwoStage),
        "post-cancellation answer diverged from the reference"
    );

    // The deadline-free path still works on the same connection.
    client.set_deadline(None);
    let again = client.retrieve(&query, SearchMode::TwoStage).unwrap();
    assert_eq!(again, crs.retrieve(&query, SearchMode::TwoStage));
    server.shutdown();
}

/// Invariant 2: v4 work ceilings (solve steps, retrieval candidates)
/// trip server-side with the `BudgetExceeded` code, and the same
/// queries re-run unlimited are byte-identical to the reference — the
/// cancelled attempts polluted nothing.
#[test]
fn work_ceilings_trip_with_typed_budget_code_and_pollute_nothing() {
    let _serial = serial();
    let (server, crs) = serve(NetConfig {
        workers: 2,
        coalesce: false,
        ..NetConfig::default()
    });
    let mut client = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
    assert!(
        client.budget_capable(),
        "a v4 client against a v4 server must negotiate the budget capability"
    );
    let mut symbols = client.symbols().unwrap();
    let runaway = parse_term("runaway", &mut symbols).unwrap();
    let query = parse_term("item(K, V)", &mut symbols).unwrap();

    let steps_before = clare_trace::metrics().budget_exceeded_steps.get();
    let cands_before = clare_trace::metrics().budget_exceeded_candidates.get();

    // Step ceiling on the runaway solve.
    client.set_budget(BudgetExt {
        solve_step_limit: 64,
        candidate_limit: 0,
    });
    match client.solve_goals(&[runaway], &[], &solve_options()) {
        Err(NetError::Remote { code, message, .. }) => {
            assert_eq!(code, ErrorCode::BudgetExceeded);
            assert!(
                message.contains("step"),
                "error message should name the tripped limit, got {message:?}"
            );
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    assert!(clare_trace::metrics().budget_exceeded_steps.get() > steps_before);

    // Candidate ceiling on a retrieval that matches 4 clauses.
    client.set_budget(BudgetExt {
        solve_step_limit: 0,
        candidate_limit: 1,
    });
    match client.retrieve(&query, SearchMode::TwoStage) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::BudgetExceeded),
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    assert!(clare_trace::metrics().budget_exceeded_candidates.get() > cands_before);

    // Unlimited again: byte-identical to the in-process reference, so
    // the tripped attempts cached nothing and corrupted nothing.
    client.set_budget(BudgetExt::NONE);
    let networked = client.retrieve(&query, SearchMode::TwoStage).unwrap();
    assert_eq!(networked, crs.retrieve(&query, SearchMode::TwoStage));
    server.shutdown();
}

/// Invariant 3: with a deterministic `WorkerStall` schedule pinning the
/// single worker past every caller's deadline, queued jobs are shed as
/// `DeadlineExpired` without execution and the shed is counted.
#[test]
fn deadline_expired_in_queue_is_shed_not_executed() {
    let _serial = serial();
    let (server, _crs) = serve(NetConfig {
        workers: 1,
        coalesce: false,
        queue_depth: 64,
        ..NetConfig::default()
    });

    // Every job consults the WorkerStall site (permille 1000) and the
    // deterministic injector holds the worker up to 100 ms — far past
    // the 20 ms deadlines below, so jobs expire while queued.
    let plan = FaultPlan::none().with(FaultSite::WorkerStall, 1000);
    let _guard = clare_fault::install(Arc::new(DeterministicInjector::new(7, plan)));

    let expired_before = clare_trace::metrics().budget_expired_in_queue.get();

    let addr = server.local_addr();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let cfg = ClientConfig {
                    busy_retries: 0,
                    reconnect_retries: 0,
                    ..ClientConfig::default()
                };
                let mut client = NetClient::connect(addr, cfg).unwrap();
                let mut symbols = client.symbols().unwrap();
                let query = parse_term("item(K, v1)", &mut symbols).unwrap();
                client.set_deadline(Some(Duration::from_millis(20)));
                client.retrieve(&query, SearchMode::TwoStage)
            })
        })
        .collect();

    let mut expired = 0usize;
    for handle in handles {
        match handle.join().unwrap() {
            // A fast slot: the job ran inside its deadline. Fine.
            Ok(_) => {}
            Err(NetError::Remote {
                code: ErrorCode::DeadlineExpired,
                ..
            }) => {
                expired += 1;
            }
            // The lone worker is stalled; late arrivals may be shed at
            // the queue instead. Also a refusal, never a partial answer.
            Err(NetError::Remote {
                code: ErrorCode::Busy,
                ..
            }) => {}
            other => panic!("expected served/expired/busy, got {other:?}"),
        }
    }
    assert!(
        expired >= 1,
        "with a stalled worker and 20 ms deadlines, some job must expire"
    );
    assert!(
        clare_trace::metrics().budget_expired_in_queue.get() > expired_before,
        "queue-expired jobs must bump budget.expired_in_queue"
    );
    server.shutdown();
}
