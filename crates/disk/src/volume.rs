//! Track-organized record files and streaming reads.
//!
//! Records are opaque byte strings to this crate (the PIF layer defines
//! their contents). A record never spans a track boundary: the paper sizes
//! FS2's Result Memory to hold "all clause satisfiers of one disk track —
//! the worst case of a single FS2 search call", which presumes track-aligned
//! records.

use crate::profile::DiskProfile;
use crate::time::{ByteRate, SimNanos};
use std::fmt;

/// Error from [`FileBuilder::append_record`]: the record exceeds one track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordTooLargeError {
    /// Size of the offending record.
    pub record_bytes: usize,
    /// The track capacity it must fit in.
    pub track_bytes: usize,
}

impl fmt::Display for RecordTooLargeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "record of {} bytes does not fit a {}-byte track",
            self.record_bytes, self.track_bytes
        )
    }
}

impl std::error::Error for RecordTooLargeError {}

/// One disk track's worth of records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Track {
    records: Vec<Vec<u8>>,
    used_bytes: usize,
}

impl Track {
    /// Records stored on this track, in layout order.
    pub fn records(&self) -> &[Vec<u8>] {
        &self.records
    }

    /// Bytes occupied by records (excluding end-of-track padding).
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of records on the track.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }
}

/// Builds a [`StoredFile`] by appending records first-fit onto tracks.
#[derive(Debug)]
pub struct FileBuilder {
    track_bytes: usize,
    tracks: Vec<Track>,
}

impl FileBuilder {
    /// Creates a builder for tracks of `track_bytes` capacity.
    ///
    /// # Panics
    ///
    /// Panics if `track_bytes` is zero.
    pub fn new(track_bytes: usize) -> Self {
        assert!(track_bytes > 0, "track size must be positive");
        FileBuilder {
            track_bytes,
            tracks: vec![Track::default()],
        }
    }

    /// Appends a record, starting a new track when the current one is full.
    ///
    /// # Errors
    ///
    /// Returns [`RecordTooLargeError`] if the record alone exceeds a track.
    pub fn append_record(&mut self, record: &[u8]) -> Result<(), RecordTooLargeError> {
        if record.len() > self.track_bytes {
            return Err(RecordTooLargeError {
                record_bytes: record.len(),
                track_bytes: self.track_bytes,
            });
        }
        let current = self
            .tracks
            .last_mut()
            .expect("builder keeps one open track");
        if current.used_bytes + record.len() > self.track_bytes {
            self.tracks.push(Track::default());
        }
        let current = self.tracks.last_mut().expect("just ensured");
        current.records.push(record.to_vec());
        current.used_bytes += record.len();
        Ok(())
    }

    /// Finishes the file. An empty trailing track is dropped.
    pub fn finish(mut self, name: impl Into<String>) -> StoredFile {
        if self
            .tracks
            .last()
            .is_some_and(|t| t.records.is_empty() && self.tracks.len() > 1)
        {
            self.tracks.pop();
        }
        StoredFile {
            name: name.into(),
            track_bytes: self.track_bytes,
            tracks: self.tracks,
        }
    }
}

/// A record file laid out on disk tracks.
///
/// # Examples
///
/// ```
/// use clare_disk::{DiskProfile, FileBuilder};
///
/// let profile = DiskProfile::micropolis_1325();
/// let mut b = FileBuilder::new(profile.track_bytes());
/// for i in 0..100u32 {
///     b.append_record(&i.to_be_bytes())?;
/// }
/// let file = b.finish("numbers");
/// let mut stream = file.stream(&profile);
/// let mut seen = 0;
/// while let Some(track) = stream.next_track() {
///     seen += track.record_count();
/// }
/// assert_eq!(seen, 100);
/// assert!(stream.stats().elapsed.as_ns() > 0);
/// # Ok::<(), clare_disk::RecordTooLargeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StoredFile {
    name: String,
    track_bytes: usize,
    tracks: Vec<Track>,
}

impl StoredFile {
    /// File name (diagnostic only).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Track capacity this file was laid out for.
    pub fn track_bytes(&self) -> usize {
        self.track_bytes
    }

    /// The tracks in order.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Number of tracks occupied.
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }

    /// Total records across all tracks.
    pub fn record_count(&self) -> usize {
        self.tracks.iter().map(Track::record_count).sum()
    }

    /// Total record payload bytes (excluding padding).
    pub fn payload_bytes(&self) -> usize {
        self.tracks.iter().map(Track::used_bytes).sum()
    }

    /// Bytes the file occupies on disk (whole tracks, including padding) —
    /// what a full scan must transfer.
    pub fn occupied_bytes(&self) -> usize {
        self.tracks.len() * self.track_bytes
    }

    /// Starts a timed streaming read of the whole file.
    pub fn stream<'a>(&'a self, profile: &'a DiskProfile) -> TrackStream<'a> {
        TrackStream {
            file: self,
            profile,
            next: 0,
            stats: TransferStats::default(),
        }
    }

    /// Time for one exhaustive sequential scan on `profile`.
    pub fn scan_time(&self, profile: &DiskProfile) -> SimNanos {
        profile.sequential_read_time(self.tracks.len() as u64)
    }
}

/// Accumulated statistics for a streaming read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Simulated time spent so far (seek + latency + transfers).
    pub elapsed: SimNanos,
    /// Bytes transferred (whole tracks).
    pub bytes: u64,
    /// Tracks delivered.
    pub tracks: u64,
    /// Records delivered.
    pub records: u64,
}

impl TransferStats {
    /// The effective delivery rate so far, if any time has elapsed.
    pub fn rate(&self) -> Option<ByteRate> {
        ByteRate::observed(self.bytes, self.elapsed)
    }
}

/// A streaming, timed read over a [`StoredFile`]'s tracks.
///
/// Each [`next_track`](Self::next_track) call accounts the simulated time
/// to deliver that track: the first call pays the average seek and
/// rotational latency, later calls pay a cylinder-to-cylinder seek when the
/// track index crosses a cylinder boundary, and every call pays the track
/// transfer time.
#[derive(Debug)]
pub struct TrackStream<'a> {
    file: &'a StoredFile,
    profile: &'a DiskProfile,
    next: usize,
    stats: TransferStats,
}

impl<'a> TrackStream<'a> {
    /// Delivers the next track, or `None` at end of file.
    pub fn next_track(&mut self) -> Option<&'a Track> {
        let track = self.file.tracks.get(self.next)?;
        if self.next == 0 {
            self.stats.elapsed += self.profile.avg_seek() + self.profile.avg_rotational_latency();
        } else if self
            .next
            .is_multiple_of(self.profile.tracks_per_cylinder() as usize)
        {
            self.stats.elapsed += self.profile.track_to_track_seek();
        }
        self.stats.elapsed += self.profile.track_transfer_time();
        self.stats.bytes += self.file.track_bytes as u64;
        self.stats.tracks += 1;
        self.stats.records += track.record_count() as u64;
        self.next += 1;
        Some(track)
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> TransferStats {
        self.stats
    }

    /// Index of the track the next call will deliver.
    pub fn position(&self) -> usize {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> DiskProfile {
        DiskProfile::fujitsu_m2351a()
    }

    #[test]
    fn records_fill_tracks_without_spanning() {
        let mut b = FileBuilder::new(100);
        b.append_record(&[0u8; 60]).unwrap();
        b.append_record(&[1u8; 60]).unwrap(); // doesn't fit track 0
        let f = b.finish("t");
        assert_eq!(f.track_count(), 2);
        assert_eq!(f.tracks()[0].record_count(), 1);
        assert_eq!(f.tracks()[0].used_bytes(), 60);
        assert_eq!(f.tracks()[1].used_bytes(), 60);
        assert_eq!(f.payload_bytes(), 120);
        assert_eq!(f.occupied_bytes(), 200);
    }

    #[test]
    fn exact_fit_does_not_open_new_track() {
        let mut b = FileBuilder::new(100);
        b.append_record(&[0u8; 50]).unwrap();
        b.append_record(&[1u8; 50]).unwrap();
        let f = b.finish("t");
        assert_eq!(f.track_count(), 1);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut b = FileBuilder::new(100);
        let err = b.append_record(&[0u8; 101]).unwrap_err();
        assert_eq!(err.record_bytes, 101);
        assert_eq!(err.track_bytes, 100);
    }

    #[test]
    fn empty_file_has_one_empty_track() {
        let f = FileBuilder::new(100).finish("empty");
        assert_eq!(f.track_count(), 1);
        assert_eq!(f.record_count(), 0);
    }

    #[test]
    fn stream_visits_every_record_in_order() {
        let p = profile();
        let mut b = FileBuilder::new(64);
        for i in 0..10u8 {
            b.append_record(&[i; 20]).unwrap();
        }
        let f = b.finish("t");
        let mut s = f.stream(&p);
        let mut seen = Vec::new();
        while let Some(track) = s.next_track() {
            for r in track.records() {
                seen.push(r[0]);
            }
        }
        assert_eq!(seen, (0..10).collect::<Vec<u8>>());
        assert_eq!(s.stats().records, 10);
        assert_eq!(s.stats().tracks as usize, f.track_count());
    }

    #[test]
    fn stream_timing_matches_scan_time() {
        let p = profile();
        let mut b = FileBuilder::new(p.track_bytes());
        // Enough records for several cylinders.
        let n_tracks_wanted = p.tracks_per_cylinder() as usize * 2 + 3;
        for _ in 0..n_tracks_wanted {
            b.append_record(&vec![7u8; p.track_bytes()]).unwrap();
        }
        let f = b.finish("big");
        assert_eq!(f.track_count(), n_tracks_wanted);
        let mut s = f.stream(&p);
        while s.next_track().is_some() {}
        assert_eq!(s.stats().elapsed, f.scan_time(&p));
    }

    #[test]
    fn first_track_pays_seek_and_latency() {
        let p = profile();
        let mut b = FileBuilder::new(p.track_bytes());
        b.append_record(&[1u8; 10]).unwrap();
        let f = b.finish("t");
        let mut s = f.stream(&p);
        s.next_track().unwrap();
        assert_eq!(
            s.stats().elapsed,
            p.avg_seek() + p.avg_rotational_latency() + p.track_transfer_time()
        );
    }

    #[test]
    fn delivery_rate_approaches_sustained_for_long_files() {
        let p = profile();
        let mut b = FileBuilder::new(p.track_bytes());
        for _ in 0..500 {
            b.append_record(&vec![0u8; p.track_bytes()]).unwrap();
        }
        let f = b.finish("long");
        let mut s = f.stream(&p);
        while s.next_track().is_some() {}
        let rate = s.stats().rate().unwrap();
        let sustained = p.sustained_rate().as_bytes_per_sec();
        assert!(
            rate.as_bytes_per_sec() > sustained * 0.85,
            "long scans amortise seeks: {rate} vs {}",
            p.sustained_rate()
        );
        assert!(rate.as_bytes_per_sec() <= sustained);
    }
}
