//! E16 — host wall-clock effect of the epoch-invalidated retrieval cache.
//!
//! The server-side cache ([`clare_core::CacheConfig`]) turns a repeated
//! query into a hash lookup instead of an FS1 scan + FS2 sweep. Its win
//! therefore depends on the *repeat ratio* of the workload: the fraction
//! of queries drawn from a small hot set rather than from the long tail.
//! This experiment sweeps that ratio, measures ns/query against one
//! cache-enabled and one cache-disabled [`ClauseRetrievalServer`] over
//! the identical query sequence, reports the observed hit rate, and
//! emits a machine-readable `BENCH_cache.json`.
//!
//! Between timed passes the cache is invalidated with a full
//! `server.update` (a global epoch bump), so every pass starts cold and
//! the measured hit rate stays tied to the repeat ratio instead of
//! accumulating across passes.

use clare_core::{CacheConfig, ClauseRetrievalServer, CrsOptions, SearchMode};
use clare_kb::{KbBuilder, KbConfig, KnowledgeBase};
use clare_term::parser::parse_term;
use clare_term::{SymbolTable, Term};
use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured repeat ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheWallclockRow {
    /// Fraction of the sequence drawn from the hot query set.
    pub repeat_ratio: f64,
    /// Observed cache hit rate over the cached pass (hits / queries).
    pub hit_rate: f64,
    /// Best observed ns/query with the cache disabled.
    pub uncached_ns: f64,
    /// Best observed ns/query with the cache enabled.
    pub cached_ns: f64,
}

impl CacheWallclockRow {
    /// Cached speedup over the uncached server on the same sequence.
    pub fn speedup(&self) -> f64 {
        self.uncached_ns / self.cached_ns
    }
}

/// The wall-clock report.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheWallclockReport {
    /// Facts in the knowledge base the servers answer against.
    pub facts: usize,
    /// Queries per timed pass.
    pub sequence_len: usize,
    /// One row per repeat ratio, ascending.
    pub rows: Vec<CacheWallclockRow>,
}

impl CacheWallclockReport {
    /// Renders the report as a small JSON document (hand-written — the
    /// workspace deliberately carries no serde dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"cache_wallclock\",\n");
        out.push_str("  \"unit\": \"ns_per_query\",\n");
        out.push_str(&format!("  \"facts\": {},\n", self.facts));
        out.push_str(&format!("  \"sequence_len\": {},\n", self.sequence_len));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"repeat_ratio\": {:.2},\n",
                row.repeat_ratio
            ));
            out.push_str(&format!("      \"hit_rate\": {:.3},\n", row.hit_rate));
            out.push_str(&format!(
                "      \"uncached_ns_per_query\": {:.0},\n",
                row.uncached_ns
            ));
            out.push_str(&format!(
                "      \"cached_ns_per_query\": {:.0},\n",
                row.cached_ns
            ));
            out.push_str(&format!("      \"cached_speedup\": {:.2}\n", row.speedup()));
            out.push_str(if i + 1 == self.rows.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

const KEYS: usize = 2_000;
const HOT: usize = 8;

/// `n` facts `p(k{i % KEYS}, v{i % 97})`: each key selects ~n/KEYS
/// clauses, so a miss pays a real FS1 + FS2 pass.
fn build_kb(n: usize, symbols: Option<&SymbolTable>) -> KnowledgeBase {
    let mut b = KbBuilder::new();
    if let Some(sy) = symbols {
        *b.symbols_mut() = sy.clone();
    }
    let facts: String = (0..n)
        .map(|i| format!("p(k{}, v{}).", i % KEYS, i % 97))
        .collect::<Vec<_>>()
        .join("\n");
    b.consult("bench", &facts).unwrap();
    b.finish(KbConfig::default())
}

/// A query sequence in which a `ratio` fraction is drawn from the `HOT`
/// hottest keys and the rest walks the full key space.
fn sequence(len: usize, ratio: f64, symbols: &mut SymbolTable, rng: &mut Rng) -> Vec<Term> {
    (0..len)
        .map(|_| {
            let key = if ((rng.next() % 1_000) as f64) < ratio * 1_000.0 {
                rng.next() as usize % HOT
            } else {
                rng.next() as usize % KEYS
            };
            parse_term(&format!("p(k{key}, X)"), symbols).unwrap()
        })
        .collect()
}

/// Best observed ns/query for `sequence` against `server`, invalidating
/// the cache (full update) before every timed pass so passes are
/// independent.
fn best_pass_ns(
    server: &ClauseRetrievalServer,
    symbols: &SymbolTable,
    facts: usize,
    sequence: &[Term],
    budget: Duration,
) -> f64 {
    let mut best = f64::INFINITY;
    let deadline = Instant::now() + budget;
    loop {
        server.update(build_kb(facts, Some(symbols)));
        let t = Instant::now();
        for query in sequence {
            black_box(server.retrieve(query, SearchMode::TwoStage));
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e9 / sequence.len() as f64);
        if Instant::now() >= deadline {
            return best;
        }
    }
}

/// Runs the experiment at the given repeat ratios. The checked-in
/// `BENCH_cache.json` uses `&[0.0, 0.5, 0.9, 0.99]`, 20 000 facts, a
/// 256-query sequence, and a 1 s budget per measurement.
pub fn run(
    ratios: &[f64],
    facts: usize,
    sequence_len: usize,
    budget: Duration,
) -> CacheWallclockReport {
    let kb = build_kb(facts, None);
    let mut symbols = kb.symbols().clone();
    let cached = ClauseRetrievalServer::new(build_kb(facts, Some(&symbols)), CrsOptions::default());
    let uncached = ClauseRetrievalServer::new(
        kb,
        CrsOptions {
            cache: CacheConfig::off(),
            ..CrsOptions::default()
        },
    );
    let mut rows = Vec::with_capacity(ratios.len());
    for &ratio in ratios {
        let mut rng = Rng(0xC0FFEE ^ (ratio * 1e6) as u64);
        let seq = sequence(sequence_len, ratio, &mut symbols, &mut rng);
        let uncached_ns = best_pass_ns(&uncached, &symbols, facts, &seq, budget);
        // Hit rate from one dedicated cold-start pass, outside the timing.
        cached.update(build_kb(facts, Some(&symbols)));
        let m = clare_trace::metrics();
        let (hits, misses) = (m.cache_hits.get(), m.cache_misses.get());
        for query in &seq {
            black_box(cached.retrieve(query, SearchMode::TwoStage));
        }
        let d_hits = (m.cache_hits.get() - hits) as f64;
        let d_misses = (m.cache_misses.get() - misses) as f64;
        let hit_rate = d_hits / (d_hits + d_misses).max(1.0);
        let cached_ns = best_pass_ns(&cached, &symbols, facts, &seq, budget);
        rows.push(CacheWallclockRow {
            repeat_ratio: ratio,
            hit_rate,
            uncached_ns,
            cached_ns,
        });
    }
    CacheWallclockReport {
        facts,
        sequence_len,
        rows,
    }
}

impl fmt::Display for CacheWallclockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E16: retrieval-cache wall-clock — hit rate and ns/query vs workload \
             repeat ratio ({} facts, {}-query sequences)\n",
            self.facts, self.sequence_len
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.2}", r.repeat_ratio),
                    format!("{:.1}%", r.hit_rate * 100.0),
                    format!("{:.0}", r.uncached_ns),
                    format!("{:.0}", r.cached_ns),
                    format!("{:.2}x", r.speedup()),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            crate::render_table(
                &[
                    "repeat ratio",
                    "hit rate",
                    "uncached ns/q",
                    "cached ns/q",
                    "speedup",
                ],
                &rows,
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_and_json() {
        let r = run(&[0.0, 0.9], 2_000, 64, Duration::from_millis(40));
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            assert!(row.uncached_ns > 0.0);
            assert!(row.cached_ns > 0.0);
            assert!((0.0..=1.0).contains(&row.hit_rate));
        }
        // A 90%-repeat workload must observe a materially higher hit
        // rate than an all-unique one.
        assert!(r.rows[1].hit_rate > r.rows[0].hit_rate);
        let json = r.to_json();
        assert!(json.contains("\"experiment\": \"cache_wallclock\""));
        assert!(json.contains("\"cached_speedup\""));
        assert!(format!("{r}").contains("repeat ratio"));
    }

    #[test]
    fn hot_workload_is_faster_cached() {
        // Perf assertions are deliberately loose for noisy CI hosts: at a
        // 90% repeat ratio the cache must at minimum not lose to the
        // uncached pipeline.
        let r = run(&[0.9], 4_000, 128, Duration::from_millis(150));
        assert!(
            r.rows[0].speedup() > 1.0,
            "cache slower than the pipeline on a hot workload: {:.2}x",
            r.rows[0].speedup()
        );
    }
}
