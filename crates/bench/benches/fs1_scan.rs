//! Criterion counterpart of E6/E14: FS1 secondary-file scanning —
//! codeword generation and index scan throughput at several index
//! sizes, comparing the retained scalar reference scan against the
//! packed columnar scan and the sharded parallel scan.

use clare_scw::{encode_query_descriptor, ClauseAddr, IndexFile, ScwConfig};
use clare_term::parser::parse_term;
use clare_term::SymbolTable;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn build_index(n: usize, symbols: &mut SymbolTable) -> IndexFile {
    let mut index = IndexFile::with_capacity(ScwConfig::paper(), n);
    for i in 0..n {
        let head = parse_term(&format!("p(k{}, v{})", i, i % 97), symbols).unwrap();
        index.insert(&head, ClauseAddr::new((i / 200) as u32, (i % 200) as u16));
    }
    index
}

fn bench_index_scan(c: &mut Criterion) {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let mut group = c.benchmark_group("fs1_index_scan");
    for n in [1_000usize, 10_000, 100_000] {
        let mut symbols = SymbolTable::new();
        let index = build_index(n, &mut symbols);
        let query = parse_term("p(k42, X)", &mut symbols).unwrap();
        let descriptor = encode_query_descriptor(&query, index.config());
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| black_box(index.scan_reference(black_box(&descriptor)).matches.len()))
        });
        group.bench_with_input(BenchmarkId::new("packed", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    index
                        .scan_with_descriptor(black_box(&descriptor))
                        .matches
                        .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    index
                        .scan_with(black_box(&descriptor), workers)
                        .matches
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn bench_signature_encoding(c: &mut Criterion) {
    let mut symbols = SymbolTable::new();
    let head = parse_term("p(k1, f(g(a), [1, 2, 3]), V, 3.5)", &mut symbols).unwrap();
    let config = ScwConfig::paper();
    c.bench_function("fs1_signature_encode", |b| {
        b.iter(|| {
            black_box(clare_scw::encode_clause_signature(
                black_box(&head),
                &config,
            ))
        })
    });
}

/// Short measurement windows keep the full suite fast while staying
/// statistically useful.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_index_scan, bench_signature_encoding
}
criterion_main!(benches);
