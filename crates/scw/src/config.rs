//! SCW+MB scheme parameters.

use clare_disk::ByteRate;

/// Parameters of the superimposed-codeword scheme.
///
/// The paper's FS1 prototype scans "at a rate of up to 4.5 Mbyte/sec"; the
/// codeword width and bits-set-per-key are the classic superimposed-coding
/// tuning knobs (they trade index size against false-drop probability), and
/// the 12-argument encoding limit is stated in §2.1.
///
/// # Examples
///
/// ```
/// use clare_scw::ScwConfig;
///
/// let c = ScwConfig::paper();
/// assert_eq!(c.encoded_args(), 12);
/// assert_eq!(c.width_bits(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScwConfig {
    width_bits: u16,
    bits_per_key: u8,
    encoded_args: usize,
    scan_rate: ByteRate,
    parallelism: usize,
    shard_entries: usize,
}

/// Default scan shard size: entries per shard for the parallel FS1 scan,
/// standing in for the span one disk head streams per rotation.
pub const DEFAULT_SHARD_ENTRIES: usize = 4096;

impl ScwConfig {
    /// The configuration used throughout the reproduction: 64-bit
    /// codewords, 3 bits per key, 12 encoded arguments, 4.5 MB/s scan rate,
    /// single-headed (sequential) scanning.
    pub fn paper() -> Self {
        ScwConfig {
            width_bits: 64,
            bits_per_key: 3,
            encoded_args: 12,
            scan_rate: ByteRate::from_mb_per_sec(4.5),
            parallelism: 1,
            shard_entries: DEFAULT_SHARD_ENTRIES,
        }
    }

    /// A custom configuration (for the width/density ablation benches).
    /// Widths need not be byte-aligned; serialized entries round the
    /// codeword up to whole bytes.
    ///
    /// # Panics
    ///
    /// Panics if `width_bits` is zero, if `bits_per_key` is zero or
    /// exceeds `width_bits`, or if `encoded_args` is zero or above 32
    /// (the packed index stores the 2-bit masks of one entry in a single
    /// 64-bit word).
    pub fn custom(width_bits: u16, bits_per_key: u8, encoded_args: usize) -> Self {
        assert!(width_bits > 0, "width must be positive");
        assert!(
            bits_per_key > 0 && (bits_per_key as u16) <= width_bits,
            "bits per key must be in 1..=width"
        );
        assert!(
            (1..=32).contains(&encoded_args),
            "encoded args must be in 1..=32"
        );
        ScwConfig {
            width_bits,
            bits_per_key,
            encoded_args,
            scan_rate: ByteRate::from_mb_per_sec(4.5),
            parallelism: 1,
            shard_entries: DEFAULT_SHARD_ENTRIES,
        }
    }

    /// Codeword width in bits.
    pub fn width_bits(&self) -> u16 {
        self.width_bits
    }

    /// Number of bits each hashed key sets in the codeword.
    pub fn bits_per_key(&self) -> u8 {
        self.bits_per_key
    }

    /// Number of leading argument positions that are encoded (12 in the
    /// paper; later arguments are invisible to FS1 — a false-drop source).
    pub fn encoded_args(&self) -> usize {
        self.encoded_args
    }

    /// The FS1 hardware scan rate (4.5 MB/s for the prototype).
    pub fn scan_rate(&self) -> ByteRate {
        self.scan_rate
    }

    /// Overrides the scan rate (for sensitivity experiments).
    pub fn with_scan_rate(mut self, rate: ByteRate) -> Self {
        self.scan_rate = rate;
        self
    }

    /// Number of worker threads the packed FS1 scan uses — the software
    /// analogue of scanning several tracks with parallel disk heads.
    /// 1 (the default) scans sequentially on the calling thread.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Sets the scan parallelism (clamped to at least 1). The scan result
    /// is identical at every level; only wall-clock time changes.
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers.max(1);
        self
    }

    /// Entries per scan shard — the unit of work a parallel scan hands to
    /// one worker, modelling the span a single head covers.
    pub fn shard_entries(&self) -> usize {
        self.shard_entries
    }

    /// Sets the shard size (clamped to at least 1).
    pub fn with_shard_entries(mut self, entries: usize) -> Self {
        self.shard_entries = entries.max(1);
        self
    }

    /// Size of one serialized index entry in bytes: the codeword (rounded
    /// up to whole bytes), a mask field (2 bits per encoded position,
    /// rounded up), and a 6-byte clause address.
    pub fn entry_bytes(&self) -> usize {
        (self.width_bits as usize).div_ceil(8) + self.mask_bytes() + 6
    }

    /// Bytes used by the mask field.
    pub fn mask_bytes(&self) -> usize {
        (self.encoded_args * 2).div_ceil(8)
    }
}

impl Default for ScwConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = ScwConfig::paper();
        assert_eq!(c.width_bits(), 64);
        assert_eq!(c.bits_per_key(), 3);
        assert_eq!(c.encoded_args(), 12);
        assert!((c.scan_rate().as_mb_per_sec() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn entry_bytes_accounting() {
        let c = ScwConfig::paper();
        // 8 (codeword) + 3 (24 mask bits) + 6 (address)
        assert_eq!(c.entry_bytes(), 17);
        let wide = ScwConfig::custom(128, 4, 12);
        assert_eq!(wide.entry_bytes(), 16 + 3 + 6);
        let narrow = ScwConfig::custom(16, 2, 4);
        assert_eq!(narrow.entry_bytes(), 2 + 1 + 6);
    }

    #[test]
    fn unaligned_width_rounds_entry_up() {
        // Widths no longer need byte alignment; the serialized codeword
        // rounds up to whole bytes.
        let c = ScwConfig::custom(65, 3, 12);
        assert_eq!(c.entry_bytes(), 9 + 3 + 6);
    }

    #[test]
    #[should_panic(expected = "encoded args")]
    fn too_many_encoded_args_rejected() {
        ScwConfig::custom(64, 3, 33);
    }

    #[test]
    fn parallelism_knobs_clamp() {
        let c = ScwConfig::paper().with_parallelism(0).with_shard_entries(0);
        assert_eq!(c.parallelism(), 1);
        assert_eq!(c.shard_entries(), 1);
        let c = ScwConfig::paper()
            .with_parallelism(4)
            .with_shard_entries(512);
        assert_eq!(c.parallelism(), 4);
        assert_eq!(c.shard_entries(), 512);
    }

    #[test]
    #[should_panic(expected = "bits per key")]
    fn zero_bits_per_key_rejected() {
        ScwConfig::custom(64, 0, 12);
    }
}
