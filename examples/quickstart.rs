//! Quickstart: build a knowledge base, ask a question, see how the CLARE
//! filters handled it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use clare::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Consult a program — facts and rules mix freely in one module.
    let mut builder = KbBuilder::new();
    builder.consult(
        "family",
        "
        parent(tom, bob).   parent(tom, liz).
        parent(bob, ann).   parent(bob, pat).
        parent(pat, jim).
        grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
        ",
    )?;

    // 2. Parse queries in the same symbol namespace, then compile the KB
    //    (clause files laid out on simulated disk tracks + SCW indexes).
    let (goal, names) = parse_term_with_vars("ancestor(tom, Who)", builder.symbols_mut())?;
    let kb = builder.finish(KbConfig::default());

    // 3. Solve: every clause lookup goes through the Clause Retrieval
    //    Server, with the search mode chosen per goal.
    let outcome = solve(&kb, &goal, &names, &SolveOptions::default());

    println!("?- ancestor(tom, Who).");
    for solution in &outcome.solutions {
        for (name, term) in &solution.bindings {
            println!("   {name} = {}", TermDisplay::new(term, kb.symbols()));
        }
    }
    println!(
        "\n{} solutions, {} retrievals, {} clause candidates examined",
        outcome.solutions.len(),
        outcome.stats.retrievals,
        outcome.stats.candidates,
    );
    println!(
        "modelled retrieval time on 1989 hardware: {}",
        outcome.stats.retrieval_elapsed
    );

    // 4. The same retrieval, mode by mode.
    let (query, _) = parse_term_with_vars("parent(bob, W)", &mut kb.symbols().clone())?;
    println!("\n?- parent(bob, W).  (single retrieval, per mode)");
    for mode in SearchMode::ALL {
        let r = retrieve(&kb, &query, mode, &CrsOptions::default());
        println!(
            "   {:<14} candidates={} answers={} elapsed={}",
            mode.to_string(),
            r.stats.candidates,
            r.stats.unified,
            r.stats.elapsed
        );
    }
    Ok(())
}
