//! Encoding clause heads into codeword+mask signatures and queries into
//! match descriptors.
//!
//! The key discipline (documented in DESIGN.md):
//!
//! * every argument position `i` below the encoding limit contributes a
//!   **shallow key** — its type and top-level content (atom/int/float
//!   value; functor and arity for structures; a bare type marker for
//!   lists, whose length a partial list does not pin);
//! * a fully ground argument additionally contributes a **deep key** —
//!   a structural hash of the whole term;
//! * a variable argument contributes nothing and sets its mask to
//!   [`ArgMask::Var`]; a complex argument containing variables contributes
//!   only its shallow key and sets [`ArgMask::Open`].
//!
//! At match time the query's required bits are checked per position,
//! relaxed by the clause's mask — exactly the role of the paper's "mask
//! bits" extension: without them, a clause head `p(X)` could never match a
//! query `p(a)` because the clause encoded no bits for the position.

use crate::codeword::{hash_term, splitmix64, Codeword};
use crate::config::ScwConfig;
use clare_term::Term;

/// Per-position mask bits stored in an index entry (2 bits each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArgMask {
    /// The argument is fully ground: both keys were encoded.
    Ground,
    /// The argument is complex but contains variables: only the shallow
    /// key was encoded.
    Open,
    /// The argument is a variable: nothing was encoded; any query bits for
    /// this position must be ignored.
    Var,
}

impl ArgMask {
    /// Encodes to the 2-bit field value.
    pub fn to_bits(self) -> u8 {
        match self {
            ArgMask::Ground => 0,
            ArgMask::Open => 1,
            ArgMask::Var => 2,
        }
    }

    /// Decodes a 2-bit field value (3 maps to `Var` defensively).
    pub fn from_bits(bits: u8) -> Self {
        match bits & 0b11 {
            0 => ArgMask::Ground,
            1 => ArgMask::Open,
            _ => ArgMask::Var,
        }
    }
}

/// A clause head's index signature: superimposed codeword plus mask bits.
#[derive(Debug, Clone, PartialEq)]
pub struct ClauseSignature {
    /// The superimposed codeword over all encoded argument keys.
    pub codeword: Codeword,
    /// Mask per encoded argument position.
    pub masks: Vec<ArgMask>,
}

/// Key domain separators so a shallow key can never collide with a deep
/// key of the same position by construction.
const DOMAIN_SHALLOW: u64 = 0x51;
const DOMAIN_DEEP: u64 = 0xDE;

fn position_key(position: usize, domain: u64, payload: u64) -> u64 {
    splitmix64(payload ^ splitmix64((position as u64) << 8 | domain))
}

/// The shallow (type + top content) key payload of an argument, or `None`
/// for variables.
fn shallow_payload(term: &Term) -> Option<u64> {
    match term {
        Term::Atom(s) => Some(0xA1_0000_0000 ^ s.offset() as u64),
        Term::Int(v) => Some(0x12_0000_0000 ^ (*v as u64)),
        Term::Float(id) => Some(0xF3_0000_0000 ^ id.offset() as u64),
        Term::Struct { functor, args } => {
            Some(0x57_0000_0000 ^ ((functor.offset() as u64) << 8) ^ args.len() as u64)
        }
        // Lists key on type only: a partial list does not pin its length,
        // so including the arity would create false negatives against
        // queries like [a, b] vs clause [a | T].
        Term::List { .. } => Some(0x4C_0000_0000),
        Term::Var(_) | Term::Anon => None,
    }
}

/// Encodes a clause head into its index signature.
///
/// Arguments beyond `config.encoded_args()` are ignored — the paper's
/// "restrictive codeword representation" truncation.
pub fn encode_clause_signature(head: &Term, config: &ScwConfig) -> ClauseSignature {
    let mut codeword = Codeword::zero(config);
    let mut masks = Vec::new();
    for (i, arg) in head.children().take(config.encoded_args()).enumerate() {
        match shallow_payload(arg) {
            None => masks.push(ArgMask::Var),
            Some(payload) => {
                codeword.set_key(config, position_key(i, DOMAIN_SHALLOW, payload));
                if arg.is_complex() {
                    if arg.is_ground() {
                        codeword.set_key(config, position_key(i, DOMAIN_DEEP, hash_term(arg)));
                        masks.push(ArgMask::Ground);
                    } else {
                        masks.push(ArgMask::Open);
                    }
                } else {
                    masks.push(ArgMask::Ground);
                }
            }
        }
    }
    ClauseSignature { codeword, masks }
}

/// One query argument's matching requirement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryArg {
    /// A variable: matches every clause (contributes no bits) — the
    /// shared-variable false-drop source.
    Any,
    /// Only the shallow key is required (complex argument containing
    /// variables, or a simple constant).
    Shallow(Codeword),
    /// Both keys are required against fully-ground clause arguments
    /// (ground complex argument).
    Ground {
        /// Shallow-key bits.
        shallow: Codeword,
        /// Deep-key bits, checked only when the clause argument is ground.
        deep: Codeword,
    },
}

/// A compiled query: per-position requirements.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryDescriptor {
    /// Requirements for each encoded argument position.
    pub args: Vec<QueryArg>,
}

impl QueryArg {
    /// The codewords a clause argument with mask state `mask` must be a
    /// superset of for this query argument to pass FS1.
    ///
    /// This is the single statement of the SCW+MB relaxation rules —
    /// `Var` relaxes everything, `Open` drops the deep key — consumed by
    /// both the reference matcher ([`QueryDescriptor::matches`]) and the
    /// packed-scan compiler, so the two paths cannot drift apart.
    pub fn required_codewords(&self, mask: ArgMask) -> impl Iterator<Item = &Codeword> {
        let (first, second): (Option<&Codeword>, Option<&Codeword>) = match (self, mask) {
            (QueryArg::Any, _) | (_, ArgMask::Var) => (None, None),
            (QueryArg::Shallow(cw), _) => (Some(cw), None),
            (QueryArg::Ground { shallow, .. }, ArgMask::Open) => (Some(shallow), None),
            (QueryArg::Ground { shallow, deep }, ArgMask::Ground) => (Some(shallow), Some(deep)),
        };
        first.into_iter().chain(second)
    }
}

impl QueryDescriptor {
    /// True if no position constrains anything — FS1 degenerates to
    /// retrieving the entire predicate (e.g. `married_couple(S, S)`).
    pub fn is_unconstrained(&self) -> bool {
        self.args.iter().all(|a| matches!(a, QueryArg::Any))
    }

    /// Tests this query against a clause signature.
    pub fn matches(&self, signature: &ClauseSignature) -> bool {
        self.args.iter().enumerate().all(|(i, req)| {
            // A clause position beyond the signature means the clause had
            // fewer encoded args (arity mismatch is caught before FS1).
            let mask = signature.masks.get(i).copied().unwrap_or(ArgMask::Var);
            req.required_codewords(mask)
                .all(|cw| cw.subset_of(&signature.codeword))
        })
    }
}

/// Encodes a query into its per-position requirements.
pub fn encode_query_descriptor(query: &Term, config: &ScwConfig) -> QueryDescriptor {
    let mut args = Vec::new();
    for (i, arg) in query.children().take(config.encoded_args()).enumerate() {
        match shallow_payload(arg) {
            None => args.push(QueryArg::Any),
            Some(payload) => {
                let shallow = Codeword::key_bits(config, position_key(i, DOMAIN_SHALLOW, payload));
                if arg.is_complex() && arg.is_ground() {
                    let deep =
                        Codeword::key_bits(config, position_key(i, DOMAIN_DEEP, hash_term(arg)));
                    args.push(QueryArg::Ground { shallow, deep });
                } else {
                    args.push(QueryArg::Shallow(shallow));
                }
            }
        }
    }
    QueryDescriptor { args }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_term::parser::parse_term;
    use clare_term::SymbolTable;

    // clare-scw deliberately does not depend on clare-unify; soundness
    // against full unification is property-tested at the integration level.

    fn accepts(query: &str, clause: &str) -> bool {
        let mut sy = SymbolTable::new();
        let q = parse_term(query, &mut sy).unwrap();
        let c = parse_term(clause, &mut sy).unwrap();
        let config = ScwConfig::paper();
        let sig = encode_clause_signature(&c, &config);
        encode_query_descriptor(&q, &config).matches(&sig)
    }

    #[test]
    fn ground_equality_accepted() {
        assert!(accepts("p(a, 1)", "p(a, 1)"));
        assert!(accepts("p(f(x), [1, 2])", "p(f(x), [1, 2])"));
    }

    #[test]
    fn distinct_constants_usually_rejected() {
        // With 64-bit codewords collisions are rare for single keys.
        assert!(!accepts("p(a)", "p(b)"));
        assert!(!accepts("p(1)", "p(2)"));
    }

    #[test]
    fn clause_variable_mask_prevents_false_negative() {
        assert!(accepts("p(a)", "p(X)"));
        assert!(accepts("p(f(a, b))", "p(Y)"));
        assert!(accepts("p(a, b)", "p(X, b)"));
    }

    #[test]
    fn open_structure_mask_relaxes_deep_key() {
        assert!(
            accepts("p(g(a))", "p(g(X))"),
            "open clause arg matches any g/1"
        );
        assert!(
            accepts("p(g(X))", "p(g(a))"),
            "open query arg requires only g/1"
        );
        assert!(!accepts("p(g(a))", "p(h(X))"), "different functor rejected");
        assert!(
            !accepts("p(g(a))", "p(g(X, Y))"),
            "different arity rejected"
        );
    }

    #[test]
    fn ground_structure_deep_key_discriminates() {
        assert!(!accepts("p(g(a))", "p(g(b))"));
        assert!(accepts("p(g(a))", "p(g(a))"));
    }

    #[test]
    fn query_variables_match_everything() {
        assert!(accepts("p(X)", "p(a)"));
        assert!(accepts("p(X, Y)", "p(f(1), [2])"));
        assert!(accepts("p(_, _)", "p(a, b)"));
    }

    #[test]
    fn shared_variables_are_invisible_to_fs1() {
        // The paper's motivating example: FS1 cannot distinguish these.
        assert!(accepts("married_couple(S, S)", "married_couple(ann, bob)"));
        assert!(accepts("married_couple(S, S)", "married_couple(sue, sue)"));
        let mut sy = SymbolTable::new();
        let q = parse_term("married_couple(S, S)", &mut sy).unwrap();
        let d = encode_query_descriptor(&q, &ScwConfig::paper());
        assert!(d.is_unconstrained());
    }

    #[test]
    fn partial_lists_do_not_false_negative() {
        assert!(accepts("p([a, b])", "p([a | T])"));
        assert!(accepts("p([a | T])", "p([a, b])"));
        assert!(accepts("p([a, b])", "p([a, b])"));
    }

    #[test]
    fn truncation_beyond_encoded_args() {
        // Arguments beyond position 12 are invisible: mismatches there
        // survive FS1 (a documented false-drop source).
        let args_q: Vec<String> = (0..13).map(|i| format!("q{i}")).collect();
        let mut args_c = args_q.clone();
        args_c[12] = "different".to_owned();
        let q = format!("p({})", args_q.join(", "));
        let c = format!("p({})", args_c.join(", "));
        assert!(accepts(&q, &c), "13th argument mismatch is not seen");
        // …but a mismatch within the first 12 is.
        let mut args_c2 = args_q.clone();
        args_c2[5] = "different".to_owned();
        let c2 = format!("p({})", args_c2.join(", "));
        assert!(!accepts(&q, &c2));
    }

    #[test]
    fn mask_bit_roundtrip() {
        for m in [ArgMask::Ground, ArgMask::Open, ArgMask::Var] {
            assert_eq!(ArgMask::from_bits(m.to_bits()), m);
        }
    }

    #[test]
    fn signature_codeword_density() {
        let mut sy = SymbolTable::new();
        let c = parse_term("p(a, b, c, d)", &mut sy).unwrap();
        let config = ScwConfig::paper();
        let sig = encode_clause_signature(&c, &config);
        let ones = sig.codeword.count_ones();
        assert!(ones > 0);
        assert!(ones <= 4 * config.bits_per_key() as u32);
        assert_eq!(sig.masks, vec![ArgMask::Ground; 4]);
    }
}
