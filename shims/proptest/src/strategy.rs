//! The [`Strategy`] trait and the built-in strategies the workspace uses.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic per-test random source (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so every test gets its own
    /// reproducible stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `usize` in `range`; an empty range yields its start.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        if range.start >= range.end {
            return range.start;
        }
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }
}

/// A source of random values of one type.
///
/// Unlike upstream proptest there is no value tree or shrinking: a
/// strategy is just a sampler.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case, `recurse`
    /// wraps an inner strategy into a deeper one. Recursion depth is
    /// bounded by `levels`; `_desired_size` and `_expected_branch` are
    /// accepted for upstream signature compatibility but unused (the
    /// uniform leaf/recurse choice already bounds expected size).
    fn prop_recursive<R, F>(
        self,
        levels: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..levels {
            strat = Union::new(vec![leaf.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }

    /// Type-erases this strategy behind a clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A clonable, type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among several strategies of one value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "Union requires at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// String strategies: a `&'static str` is interpreted as a small regex
/// subset — sequences of literal characters or `[..]` character classes
/// (with `a-z` style ranges), each optionally followed by `{n}` or
/// `{m,n}` repetition.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let mut set = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    assert!(lo <= hi, "bad range in pattern {pattern:?}");
                    set.extend(lo..=hi);
                    i += 3;
                } else {
                    set.push(chars[i]);
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unclosed class in pattern {pattern:?}");
            i += 1; // consume ']'
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed repeat in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().unwrap(),
                    n.trim().parse::<usize>().unwrap(),
                ),
                None => {
                    let n = body.trim().parse::<usize>().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = min + (rng.next_u64() as usize % (max - min + 1));
        for _ in 0..count {
            out.push(alphabet[(rng.next_u64() % alphabet.len() as u64) as usize]);
        }
    }
    out
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical full-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy for any value of `T`, like `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (i64::MIN..0).sample(&mut rng);
            assert!(w < 0);
            let x = (0..=i64::MAX).sample(&mut rng);
            assert!(x >= 0);
        }
    }

    #[test]
    fn pattern_sampler_matches_shape() {
        let mut rng = TestRng::from_name("patterns");
        for _ in 0..500 {
            let s = "[a-z][a-z0-9]{0,4}".sample(&mut rng);
            assert!(!s.is_empty() && s.len() <= 5, "bad sample {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));

            let t = "[ -~]{0,8}".sample(&mut rng);
            assert!(t.len() <= 8);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::from_name("recursive");
        for _ in 0..200 {
            let _ = strat.sample(&mut rng);
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut rng = TestRng::from_name("union");
        let draws: Vec<u8> = (0..64).map(|_| u.sample(&mut rng)).collect();
        assert!(draws.contains(&1) && draws.contains(&2));
    }
}
