//! E2 — Figures 6–12: the per-cycle route timing breakdowns.
//!
//! Each figure in the paper carries a timing box listing the components on
//! the database and query routes per cycle, their subtotals, and the
//! execution-time formula. [`run`] regenerates all seven boxes from the
//! simulator's route definitions.

use clare_fs2::{HwOp, RouteTrace};
use std::fmt;

/// The seven regenerated timing boxes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figures {
    /// One trace per operation, Figures 6–12 in order.
    pub traces: Vec<RouteTrace>,
}

/// Runs the experiment.
pub fn run() -> Figures {
    Figures {
        traces: HwOp::ALL.iter().map(|op| op.route_trace()).collect(),
    }
}

impl Figures {
    /// The subtotals (per-cycle max route times plus terminal) per op;
    /// used by tests to validate against the figures' printed arithmetic.
    pub fn subtotal_ns(&self, op: HwOp) -> u64 {
        op.execution_time().as_ns()
    }
}

impl fmt::Display for Figures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E2 / Figures 6-12: datapath route timing calculations\n")?;
        for trace in &self.traces {
            writeln!(f, "{trace}\n")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_figures() {
        let figs = run();
        assert_eq!(figs.traces.len(), 7);
        assert_eq!(figs.traces[0].op, HwOp::Match);
        assert_eq!(figs.traces[6].op, HwOp::QueryCrossBoundFetch);
    }

    #[test]
    fn printed_arithmetic_matches_figures() {
        // Spot-check the strings against the numbers printed in the paper.
        let text = run().to_string();
        assert!(text.contains("Sel6 20 -> Query Memory 35 -> Sel3 20 (=75)"));
        assert!(text.contains("Sel6 20 -> Query Memory 35 -> Reg3 20 (=75)"));
        assert!(text.contains("Double Buffer 20 -> Sel1 20 -> Sel5 20 -> Sel4 20 (=80)"));
        assert!(text.contains("execution time = 95 ns"));
        assert!(text.contains("execution time = 235 ns"));
        // Figure 10's famous 120 ns cycle-1 query route.
        assert!(text
            .contains("Sel6 20 -> Query Memory 35 -> Sel3 20 -> Sel2 20 -> DB Memory 25 (=120)"));
    }
}
