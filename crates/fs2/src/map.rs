//! The Map ROM: type-pair dispatch to microroutines (§3.1).
//!
//! "The Map ROM stores a list of jump vectors and its address port is
//! connected to the db-data and Q-data bus… Only the type fields of the
//! db-data and Q-data are effective. Depending on the combination of the
//! type fields, different microprogram routines are invoked."
//!
//! The simulated ROM is a real 256×256 table indexed by the two raw tag
//! bytes; every entry names one of six microroutines. Building the table
//! walks every valid tag pair and applies the §3.1 category rules, with
//! the Figure 1 precedence: the database-variable branch (case 5) is
//! checked before the query-variable branch (case 6).

use clare_pif::tags::TagCategory;
use clare_pif::TypeTag;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A microroutine entry point in the Writable Control Store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Routine {
    /// Either word is the anonymous variable: the match succeeds
    /// immediately ("a don't care object … causes a skip").
    Skip,
    /// Both words are simple terms (or a simple/complex mixture, which the
    /// comparator rejects by inequality): a single MATCH.
    SimpleMatch,
    /// The database word is a named variable: store / fetch / cross-bound
    /// fetch against the DB Memory (Figure 1 cases 5a–5c).
    DbVar,
    /// The query word is a named variable (database side is not): store /
    /// fetch / cross-bound fetch against the Query Memory (cases 6a–6c).
    QueryVar,
    /// Both words are complex: counter-driven repetitive matching.
    ComplexMatch,
    /// At least one tag byte is not a valid PIF tag: the stream is
    /// corrupt; the clause is rejected.
    Invalid,
}

impl fmt::Display for Routine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Routine::Skip => "SKIP",
            Routine::SimpleMatch => "SIMPLE_MATCH",
            Routine::DbVar => "DB_VAR",
            Routine::QueryVar => "QUERY_VAR",
            Routine::ComplexMatch => "COMPLEX_MATCH",
            Routine::Invalid => "INVALID",
        })
    }
}

/// The 64 K-entry jump table.
///
/// Engines normally hold the process-wide [`MapRom::shared`] handle;
/// cloning the ROM itself copies the 64 KB table directly (still far
/// cheaper than re-deriving the category rules).
#[derive(Clone)]
pub struct MapRom {
    table: Box<[Routine; 65536]>,
}

impl MapRom {
    /// The process-wide shared ROM. The table's contents depend only on
    /// the fixed §3.1 category rules — like the real mask-programmed part
    /// it is burned once; every engine holds a handle to the same copy,
    /// so constructing an engine never re-derives the 64 K entries.
    pub fn shared() -> Arc<MapRom> {
        static ROM: OnceLock<Arc<MapRom>> = OnceLock::new();
        Arc::clone(ROM.get_or_init(|| Arc::new(MapRom::new())))
    }

    /// Builds the ROM from the tag categories.
    pub fn new() -> Self {
        let mut table = vec![Routine::Invalid; 65536];
        for db_byte in 0u16..=255 {
            let Ok(db_tag) = TypeTag::from_byte(db_byte as u8) else {
                continue;
            };
            for q_byte in 0u16..=255 {
                let Ok(q_tag) = TypeTag::from_byte(q_byte as u8) else {
                    continue;
                };
                table[(db_byte as usize) << 8 | q_byte as usize] = Self::classify(db_tag, q_tag);
            }
        }
        MapRom {
            table: table
                .into_boxed_slice()
                .try_into()
                .expect("table has exactly 65536 entries"),
        }
    }

    fn classify(db_tag: TypeTag, q_tag: TypeTag) -> Routine {
        use TypeTag::{Anon, DbVar, QueryVar};
        // Anonymous variables skip before anything else.
        if matches!(db_tag, Anon) || matches!(q_tag, Anon) {
            return Routine::Skip;
        }
        // Figure 1 precedence: database-variable branch first.
        if matches!(db_tag, DbVar { .. } | QueryVar { .. }) {
            // A QV tag on the database bus would be a compiler error, but
            // the ROM still routes it through the variable machinery.
            return Routine::DbVar;
        }
        if matches!(q_tag, QueryVar { .. } | DbVar { .. }) {
            return Routine::QueryVar;
        }
        match (db_tag.category(), q_tag.category()) {
            (TagCategory::Complex, TagCategory::Complex) => Routine::ComplexMatch,
            // Simple/simple and simple/complex both go to the comparator;
            // a category mismatch simply never raises HIT.
            _ => Routine::SimpleMatch,
        }
    }

    /// Dispatches on the two raw tag bytes (db word, query word).
    pub fn dispatch(&self, db_tag: u8, q_tag: u8) -> Routine {
        self.table[(db_tag as usize) << 8 | q_tag as usize]
    }

    /// Dispatches on decoded tags.
    pub fn dispatch_tags(&self, db_tag: TypeTag, q_tag: TypeTag) -> Routine {
        self.dispatch(db_tag.to_byte(), q_tag.to_byte())
    }
}

impl Default for MapRom {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for MapRom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MapRom").field("entries", &65536).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_pif::tags::*;

    #[test]
    fn anon_skips_everything() {
        let rom = MapRom::new();
        for other in [TAG_ATOM_PTR, TAG_FIRST_DV, TAG_FIRST_QV, 0x10, 0xE2] {
            assert_eq!(rom.dispatch(TAG_ANON, other), Routine::Skip);
            assert_eq!(rom.dispatch(other, TAG_ANON), Routine::Skip);
        }
        assert_eq!(rom.dispatch(TAG_ANON, TAG_ANON), Routine::Skip);
    }

    #[test]
    fn db_variable_branch_takes_precedence() {
        let rom = MapRom::new();
        // Both sides variables: the DB branch wins (Figure 1 case order).
        assert_eq!(rom.dispatch(TAG_FIRST_DV, TAG_FIRST_QV), Routine::DbVar);
        assert_eq!(rom.dispatch(TAG_SUB_DV, TAG_SUB_QV), Routine::DbVar);
        assert_eq!(rom.dispatch(TAG_FIRST_DV, TAG_ATOM_PTR), Routine::DbVar);
        assert_eq!(rom.dispatch(TAG_ATOM_PTR, TAG_FIRST_QV), Routine::QueryVar);
    }

    #[test]
    fn simple_pairs_go_to_comparator() {
        let rom = MapRom::new();
        assert_eq!(
            rom.dispatch(TAG_ATOM_PTR, TAG_ATOM_PTR),
            Routine::SimpleMatch
        );
        assert_eq!(rom.dispatch(0x15, 0x10), Routine::SimpleMatch);
        assert_eq!(
            rom.dispatch(TAG_FLOAT_PTR, TAG_ATOM_PTR),
            Routine::SimpleMatch
        );
        // Simple vs complex also reaches the comparator (and fails there).
        assert_eq!(rom.dispatch(TAG_ATOM_PTR, 0xE2), Routine::SimpleMatch);
        assert_eq!(rom.dispatch(0x62, TAG_ATOM_PTR), Routine::SimpleMatch);
    }

    #[test]
    fn complex_pairs_go_to_repetitive_matching() {
        let rom = MapRom::new();
        assert_eq!(rom.dispatch(0x62, 0x62), Routine::ComplexMatch); // struct/struct
        assert_eq!(rom.dispatch(0xE2, 0xA1), Routine::ComplexMatch); // listT/listU
        assert_eq!(rom.dispatch(0x42, 0x62), Routine::ComplexMatch); // ptr/inline
    }

    #[test]
    fn invalid_tags_marked() {
        let rom = MapRom::new();
        assert_eq!(rom.dispatch(0x00, TAG_ATOM_PTR), Routine::Invalid);
        assert_eq!(rom.dispatch(TAG_ATOM_PTR, 0x3F), Routine::Invalid);
    }

    #[test]
    fn every_valid_pair_has_a_routine() {
        let rom = MapRom::new();
        let mut valid_pairs = 0;
        for a in 0u16..=255 {
            for b in 0u16..=255 {
                let valid =
                    TypeTag::from_byte(a as u8).is_ok() && TypeTag::from_byte(b as u8).is_ok();
                let routine = rom.dispatch(a as u8, b as u8);
                if valid {
                    assert_ne!(routine, Routine::Invalid, "pair ({a:#04x},{b:#04x})");
                    valid_pairs += 1;
                } else {
                    assert_eq!(routine, Routine::Invalid);
                }
            }
        }
        assert_eq!(valid_pairs, TAG_VALUE_COUNT * TAG_VALUE_COUNT);
    }
}
