//! The four CRS search modes and their timing pipelines (§2.2).
//!
//! Every mode ends with **full unification** of the surviving candidates
//! on the host CPU; what differs is which filters run first and what has
//! to come off the disk:
//!
//! | mode | index scanned | clause file read | filter |
//! |---|---|---|---|
//! | (a) `SoftwareOnly` | no | all of it (if disk resident) | host CPU |
//! | (b) `Fs1Only` | yes, via FS1 | candidate tracks | codewords only |
//! | (c) `Fs2Only` | no | all of it, streamed through FS2 | test unification |
//! | (d) `TwoStage` | yes, via FS1 | candidate tracks through FS2 | both |
//!
//! Because each filter is *complete* (no false negatives — property-tested
//! across the workspace), every mode returns the same answer set; the
//! modes differ in elapsed time and in how many false drops reach the full
//! unifier.

use crate::budget::{BudgetExceeded, BudgetReason, CancelToken};
use crate::cache::{CacheConfig, Fs1Cache};
use crate::cost::SoftwareCostModel;
use clare_disk::{DiskProfile, SimNanos, Track};
use clare_fs2::{Fs2Config, Fs2Engine};
use clare_kb::{KnowledgeBase, ModuleKind, Predicate};
use clare_pif::{encode_query, ClauseRecord};
use clare_scw::{encode_query_descriptor, ClauseAddr};
use clare_term::{term_size, ClauseId, Term};
use clare_unify::partial::{partial_match, PartialConfig};
use clare_unify::unify_query_clause;
use clare_wal::{Overlay, PredDelta};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// The four searching modes of §2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchMode {
    /// (a) The CRS performs all the search operations itself.
    SoftwareOnly,
    /// (b) The superimposed-codeword hardware only.
    Fs1Only,
    /// (c) The partial-test-unification hardware only.
    Fs2Only,
    /// (d) The two-stage hardware filter.
    TwoStage,
}

impl SearchMode {
    /// All four modes, in the paper's (a)–(d) order.
    pub const ALL: [SearchMode; 4] = [
        SearchMode::SoftwareOnly,
        SearchMode::Fs1Only,
        SearchMode::Fs2Only,
        SearchMode::TwoStage,
    ];
}

impl fmt::Display for SearchMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SearchMode::SoftwareOnly => "software only",
            SearchMode::Fs1Only => "FS1 only",
            SearchMode::Fs2Only => "FS2 only",
            SearchMode::TwoStage => "FS1+FS2",
        })
    }
}

/// CRS configuration: the disk the knowledge base lives on and the host
/// software cost model.
#[derive(Debug, Clone)]
pub struct CrsOptions {
    /// Disk profile for all streaming/fetch timing.
    pub disk: DiskProfile,
    /// Host CPU cost model.
    pub cost: SoftwareCostModel,
    /// Worker threads for the FS1 index scan. `None` (the default) defers
    /// to the index's own [`clare_scw::ScwConfig::parallelism`]; `Some(n)`
    /// overrides it per server. The answer set and all modelled times are
    /// identical at every level — only host wall-clock changes.
    pub fs1_parallelism: Option<usize>,
    /// FS2 track-pipeline knobs: worker count, shard granularity, and
    /// whether matching reads the pre-decoded [`clare_kb::ClauseArena`]
    /// instead of re-parsing record bytes. As with FS1, none of these
    /// change the answer set or any modelled time.
    pub fs2: Fs2Config,
    /// Per-server override for [`Fs2Config::parallelism`]. `None` (the
    /// default) defers to `fs2.parallelism()`.
    pub fs2_parallelism: Option<usize>,
    /// Epoch-invalidated retrieval cache served by
    /// [`crate::ClauseRetrievalServer`]. Hits are byte-identical to the
    /// uncached pipeline; the free [`retrieve`] function never caches.
    pub cache: CacheConfig,
    /// Auto-compaction size threshold: when a commit leaves the overlay
    /// holding at least this many logged operations, the server triggers
    /// a compaction pass on its own (`compaction.auto_triggers` counts
    /// them). Overlay clauses bypass the FS1 filter, so an unbounded
    /// overlay pays software-side filtering on every retrieval — this
    /// bound keeps that cost finite without any manual `compact_now`
    /// call. `None` disables the size trigger.
    pub overlay_auto_compact_ops: Option<usize>,
    /// Auto-compaction age threshold: when a commit finds the oldest
    /// uncompacted operation at least this old, a pass is triggered. The
    /// age is only examined at commit time (there is no timer thread), so
    /// a write-idle server keeps its overlay until the next commit.
    /// `None` (the default) disables the age trigger.
    pub overlay_auto_compact_age: Option<std::time::Duration>,
}

impl Default for CrsOptions {
    fn default() -> Self {
        CrsOptions {
            disk: DiskProfile::fujitsu_m2351a(),
            cost: SoftwareCostModel::m68020(),
            fs1_parallelism: None,
            fs2: Fs2Config::paper(),
            fs2_parallelism: None,
            cache: CacheConfig::default(),
            overlay_auto_compact_ops: Some(8192),
            overlay_auto_compact_age: None,
        }
    }
}

/// Timing and selectivity statistics for one retrieval.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrievalStats {
    /// The mode that ran.
    pub mode: SearchMode,
    /// Clauses in the predicate.
    pub clauses_total: usize,
    /// Candidates surviving FS1, when it ran. Counts base-file clauses
    /// only: memtable-overlay additions have no codewords yet and join
    /// the candidate set after the hardware phases.
    pub after_fs1: Option<usize>,
    /// Candidates surviving FS2, when it ran. Base-file clauses only,
    /// as for `after_fs1`.
    pub after_fs2: Option<usize>,
    /// Candidates handed to full unification.
    pub candidates: usize,
    /// Clauses that fully unify (the answer set — identical across modes).
    pub unified: usize,
    /// `candidates - unified`: filter false drops that reached the host.
    pub false_drops: usize,
    /// Simulated disk time (streaming + fetches).
    pub disk_time: SimNanos,
    /// FS1 hardware scan time.
    pub fs1_time: SimNanos,
    /// FS2 hardware matching time (sum of Table 1 costs).
    pub fs2_time: SimNanos,
    /// Host time spent software-filtering (mode (a) only).
    pub software_filter_time: SimNanos,
    /// Host time spent fully unifying the candidates.
    pub full_unify_time: SimNanos,
    /// Modelled wall-clock for the whole retrieval, with disk/filter
    /// overlap where the double-buffered hardware provides it.
    pub elapsed: SimNanos,
    /// Bytes that came off the disk.
    pub bytes_from_disk: u64,
    /// Tracks whose satisfier count exceeded the 64-slot Result Memory
    /// (each would force a re-read on the real hardware).
    pub result_memory_overflows: usize,
    /// Tracks whose CRC failed on read (or whose records would not parse):
    /// their FS2 pass was skipped and every clause re-served to the host
    /// unifier instead. A skipped filter passes a *superset*, so the answer
    /// set is unchanged — only `candidates`/`false_drops` grow.
    pub quarantined_tracks: usize,
    /// Whether any fault degraded this retrieval (quarantined tracks).
    /// Degraded answers are still *correct* — the filters are complete and
    /// full unification finishes every mode — but they cost more host work.
    pub degraded: bool,
}

impl RetrievalStats {
    pub(crate) fn empty(mode: SearchMode) -> Self {
        RetrievalStats {
            mode,
            clauses_total: 0,
            after_fs1: None,
            after_fs2: None,
            candidates: 0,
            unified: 0,
            false_drops: 0,
            disk_time: SimNanos::ZERO,
            fs1_time: SimNanos::ZERO,
            fs2_time: SimNanos::ZERO,
            software_filter_time: SimNanos::ZERO,
            full_unify_time: SimNanos::ZERO,
            elapsed: SimNanos::ZERO,
            bytes_from_disk: 0,
            result_memory_overflows: 0,
            quarantined_tracks: 0,
            degraded: false,
        }
    }
}

/// A retrieval's outcome: the candidate clause ids (in program order) that
/// survived the filters, plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrieval {
    /// Candidates for full unification, in clause order.
    pub candidates: Vec<ClauseId>,
    /// Timing and selectivity.
    pub stats: RetrievalStats,
}

impl Retrieval {
    /// Flags this answer degraded after the fact. The retrieval pipeline
    /// sets [`RetrievalStats::degraded`] itself for storage faults; this
    /// hook is for serving layers that learn of degradation elsewhere —
    /// e.g. a cluster router that had to serve the answer from a stale
    /// backup after a failover. A degraded answer is delivered, never
    /// dropped; the flag is the client's signal to treat it as possibly
    /// behind the acknowledged write frontier.
    pub fn mark_degraded(&mut self) {
        self.stats.degraded = true;
    }
}

/// Retrieves all candidate clauses for `query` using `mode`.
///
/// A query that cannot be compiled for the hardware (an integer outside
/// the 28-bit in-line range, or a stream larger than the Query Memory)
/// falls back to software-only retrieval; `stats.mode` reports what
/// actually ran.
pub fn retrieve(
    kb: &KnowledgeBase,
    query: &Term,
    mode: SearchMode,
    opts: &CrsOptions,
) -> Retrieval {
    unlimited(retrieve_inner(
        kb,
        None,
        query,
        mode,
        opts,
        Precomputed::default(),
        None,
        &CancelToken::unlimited(),
    ))
}

/// Unwraps a pipeline result produced under the unlimited token, which
/// cannot trip.
fn unlimited<T>(result: Result<T, BudgetExceeded>) -> T {
    match result {
        Ok(value) => value,
        Err(_) => unreachable!("the unlimited budget cannot trip"),
    }
}

/// [`retrieve`] under a request budget: the token's deadline and
/// candidate limit are checked at cooperative checkpoints (every FS1
/// shard claim, every FS2 track, every ~64 candidates of the full
/// unifier), and a tripped budget returns a typed [`BudgetExceeded`]
/// carrying the partial statistics — never a truncated candidate list.
pub fn retrieve_budgeted(
    kb: &KnowledgeBase,
    query: &Term,
    mode: SearchMode,
    opts: &CrsOptions,
    cancel: &CancelToken,
) -> Result<Retrieval, BudgetExceeded> {
    retrieve_inner(
        kb,
        None,
        query,
        mode,
        opts,
        Precomputed::default(),
        None,
        cancel,
    )
}

/// [`retrieve_merged`] under a request budget (see [`retrieve_budgeted`]).
pub fn retrieve_merged_budgeted(
    kb: &KnowledgeBase,
    overlay: &Overlay,
    query: &Term,
    mode: SearchMode,
    opts: &CrsOptions,
    cancel: &CancelToken,
) -> Result<Retrieval, BudgetExceeded> {
    retrieve_inner(
        kb,
        Some(overlay),
        query,
        mode,
        opts,
        Precomputed::default(),
        None,
        cancel,
    )
}

/// [`retrieve`] over the base snapshot *merged with* a memtable overlay
/// (see [`clare_wal::Overlay`]): retracted base clauses leave the
/// candidate set and overlay additions join it unconditionally, so the
/// answer is byte-identical to retrieving over a knowledge base rebuilt
/// from scratch with the overlay folded in. An empty overlay (or one
/// with no delta for the query's predicate) is byte-identical to
/// [`retrieve`]. Overlay additions carry synthetic [`ClauseId`]s
/// `base_len..base_len + added`, in assert order.
pub fn retrieve_merged(
    kb: &KnowledgeBase,
    overlay: &Overlay,
    query: &Term,
    mode: SearchMode,
    opts: &CrsOptions,
) -> Retrieval {
    unlimited(retrieve_inner(
        kb,
        Some(overlay),
        query,
        mode,
        opts,
        Precomputed::default(),
        None,
        &CancelToken::unlimited(),
    ))
}

/// [`retrieve_merged`] with an FS1 cache seam: the scan phase consults
/// `fs1` before sweeping the index and offers freshly computed outcomes
/// back. The answer — and every modelled stat — is identical to
/// [`retrieve_merged`]; only the host work changes. Used by the server's
/// retrieval cache. (An FS1 outcome depends only on the base index, so
/// it stays valid across overlay commits; the server's epoch bumps
/// invalidate it conservatively anyway.)
pub(crate) fn retrieve_cached(
    kb: &KnowledgeBase,
    overlay: Option<&Overlay>,
    query: &Term,
    mode: SearchMode,
    opts: &CrsOptions,
    fs1: Option<&dyn Fs1Cache>,
    cancel: &CancelToken,
) -> Result<Retrieval, BudgetExceeded> {
    retrieve_inner(
        kb,
        overlay,
        query,
        mode,
        opts,
        Precomputed::default(),
        fs1,
        cancel,
    )
}

/// Retrieves candidates for several queries, amortizing the hardware
/// passes: queries against the same predicate are compiled together, their
/// descriptors tested in one pass over the packed secondary file
/// ([`clare_scw::IndexFile::scan_batch`]), and their FS2 track sweeps run
/// over the shared pre-decoded arena through one worker pool. Results come
/// back in input order, and each is exactly what [`retrieve`] would return
/// for that query alone — the batch changes host wall-clock, not semantics
/// or modelled times.
pub fn retrieve_batch(
    kb: &KnowledgeBase,
    queries: &[Term],
    mode: SearchMode,
    opts: &CrsOptions,
) -> Vec<Retrieval> {
    unlimited(retrieve_batch_cached(
        kb,
        None,
        queries,
        mode,
        opts,
        &vec![None; queries.len()],
        &CancelToken::unlimited(),
    ))
}

/// [`retrieve_batch`] under one shared request budget: the whole batch
/// counts against the same deadline and candidate ceiling, and a tripped
/// budget abandons the batch with a typed [`BudgetExceeded`] — no member
/// gets a partial answer.
pub fn retrieve_batch_budgeted(
    kb: &KnowledgeBase,
    queries: &[Term],
    mode: SearchMode,
    opts: &CrsOptions,
    cancel: &CancelToken,
) -> Result<Vec<Retrieval>, BudgetExceeded> {
    retrieve_batch_cached(
        kb,
        None,
        queries,
        mode,
        opts,
        &vec![None; queries.len()],
        cancel,
    )
}

/// [`retrieve_batch`] over the base snapshot merged with a memtable
/// overlay. The grouped hardware passes run over the base file exactly as
/// in [`retrieve_batch`] — the delta merge happens after per-query
/// candidates are computed — so each result is exactly what
/// [`retrieve_merged`] would return for that query alone.
pub fn retrieve_batch_merged(
    kb: &KnowledgeBase,
    overlay: &Overlay,
    queries: &[Term],
    mode: SearchMode,
    opts: &CrsOptions,
) -> Vec<Retrieval> {
    unlimited(retrieve_batch_cached(
        kb,
        Some(overlay),
        queries,
        mode,
        opts,
        &vec![None; queries.len()],
        &CancelToken::unlimited(),
    ))
}

/// [`retrieve_batch`] with a per-query FS1 cache seam (parallel to
/// [`retrieve_cached`]): before the grouped index pass, each member's
/// cache is consulted; only the misses are scanned, and their fresh
/// outcomes are offered back. Results are identical to [`retrieve_batch`].
pub(crate) fn retrieve_batch_cached(
    kb: &KnowledgeBase,
    overlay: Option<&Overlay>,
    queries: &[Term],
    mode: SearchMode,
    opts: &CrsOptions,
    caches: &[Option<&dyn Fs1Cache>],
    cancel: &CancelToken,
) -> Result<Vec<Retrieval>, BudgetExceeded> {
    debug_assert_eq!(caches.len(), queries.len());
    let cache_of = |i: usize| caches.get(i).copied().flatten();
    // Group hardware-eligible queries by predicate so each group shares
    // the index pass and the FS2 worker pool.
    let wants_fs1 = matches!(mode, SearchMode::Fs1Only | SearchMode::TwoStage);
    let wants_fs2 = matches!(mode, SearchMode::Fs2Only | SearchMode::TwoStage);
    let mut groups: HashMap<(clare_term::Symbol, usize), Vec<usize>> = HashMap::new();
    if wants_fs1 || wants_fs2 {
        for (i, query) in queries.iter().enumerate() {
            if let Some(key) = query.functor_arity() {
                groups.entry(key).or_default().push(i);
            }
        }
    }

    let mut pre: Vec<Precomputed> = queries.iter().map(|_| Precomputed::default()).collect();
    for ((functor, arity), members) in groups {
        let Some((_, pred)) = kb.module_of(functor, arity) else {
            continue;
        };
        if wants_fs1 {
            let index = pred.index();
            // Cached outcomes first; only the misses join the shared pass.
            let mut need: Vec<usize> = Vec::new();
            for &i in &members {
                match cache_of(i).and_then(Fs1Cache::get) {
                    Some(outcome) => pre[i].fs1 = Some(outcome),
                    None => need.push(i),
                }
            }
            if !need.is_empty() {
                let descriptors: Vec<_> = need
                    .iter()
                    .map(|&i| encode_query_descriptor(&queries[i], index.config()))
                    .collect();
                let workers = opts.fs1_parallelism.unwrap_or(index.config().parallelism());
                let outcomes = if cancel.is_unlimited() {
                    index.scan_batch_with(&descriptors, workers)
                } else {
                    match index.scan_batch_with_cancel(&descriptors, workers, &|| {
                        cancel.checkpoint().is_err()
                    }) {
                        Some(outcomes) => outcomes,
                        None => return Err(exceeded(tripped_reason(cancel), None)),
                    }
                };
                for (&i, outcome) in need.iter().zip(outcomes) {
                    if let Some(cache) = cache_of(i) {
                        cache.put(&outcome);
                    }
                    pre[i].fs1 = Some(outcome);
                }
            }
        }
        if wants_fs2 {
            // One sweep job per encodable query; unencodable ones fall
            // back to software inside retrieve_inner, exactly as for a
            // single retrieval.
            let mut job_of: Vec<usize> = Vec::new();
            let mut jobs: Vec<(Fs2Engine, Vec<usize>)> = Vec::new();
            for &i in &members {
                let Ok(stream) = encode_query(&queries[i]) else {
                    continue;
                };
                let Ok(engine) = Fs2Engine::new(&stream) else {
                    continue;
                };
                let tracks = match mode {
                    SearchMode::Fs2Only => (0..pred.file().track_count()).collect(),
                    _ => match &pre[i].fs1 {
                        Some(outcome) => candidate_tracks(&outcome.matches),
                        None => continue,
                    },
                };
                job_of.push(i);
                jobs.push((engine, tracks));
            }
            let outcomes = match fs2_sweep_jobs(pred, &jobs, opts, cancel) {
                Ok(outcomes) => outcomes,
                Err(reason) => return Err(exceeded(reason, None)),
            };
            for ((i, (_, tracks)), outcomes) in job_of.iter().copied().zip(jobs).zip(outcomes) {
                pre[i].fs2 = Some(Fs2Sweep { tracks, outcomes });
            }
        }
    }

    queries
        .iter()
        .zip(pre)
        .enumerate()
        .map(|(i, (query, pre))| {
            retrieve_inner(kb, overlay, query, mode, opts, pre, cache_of(i), cancel)
        })
        .collect()
}

/// The reason stored in a tripped token (the caller just observed a
/// cancelled scan, so the token must be tripped; deadline is the
/// conservative fallback if a race hid the reason).
fn tripped_reason(cancel: &CancelToken) -> BudgetReason {
    cancel.checkpoint().err().unwrap_or(BudgetReason::Deadline)
}

/// Packages a tripped budget as the typed retrieval outcome.
fn exceeded(reason: BudgetReason, stats: Option<RetrievalStats>) -> BudgetExceeded {
    BudgetExceeded {
        reason: Some(reason),
        retrieval_stats: stats.map(Box::new),
        solve_stats: None,
    }
}

/// Hardware phases a batch has already run for one query: the FS1 scan
/// outcome and/or the FS2 track sweep. `retrieve_inner` consumes whichever
/// parts are present and match what it would compute itself.
#[derive(Default)]
struct Precomputed {
    fs1: Option<clare_scw::ScanOutcome>,
    fs2: Option<Fs2Sweep>,
}

/// A finished FS2 sweep: per-track match results for exactly `tracks`, in
/// that order.
struct Fs2Sweep {
    tracks: Vec<usize>,
    outcomes: Vec<TrackMatches>,
}

#[allow(clippy::too_many_arguments)]
fn retrieve_inner(
    kb: &KnowledgeBase,
    overlay: Option<&Overlay>,
    query: &Term,
    mode: SearchMode,
    opts: &CrsOptions,
    pre: Precomputed,
    fs1_cache: Option<&dyn Fs1Cache>,
    cancel: &CancelToken,
) -> Result<Retrieval, BudgetExceeded> {
    let Some((functor, arity)) = query.functor_arity() else {
        return Ok(Retrieval {
            candidates: Vec::new(),
            stats: RetrievalStats::empty(mode),
        });
    };
    let delta = overlay
        .and_then(|o| o.delta(functor, arity))
        .filter(|d| !d.is_empty());
    let Some((module, pred)) = kb.module_of(functor, arity) else {
        // A predicate that exists only in the overlay: no base file, no
        // codeword index, no track segment — nothing for the hardware to
        // filter. Every overlay clause is a candidate (the superset
        // invariant holds trivially) and full unification weeds them.
        if let Some(delta) = delta {
            return retrieve_overlay_only(delta, query, mode, opts, cancel);
        }
        return Ok(Retrieval {
            candidates: Vec::new(),
            stats: RetrievalStats::empty(mode),
        });
    };
    let disk_resident = module.kind() == ModuleKind::Large;

    // Hardware modes need an encodable query.
    let hw_query = match mode {
        SearchMode::SoftwareOnly => None,
        _ => match encode_query(query) {
            Ok(stream) => Fs2Engine::new(&stream).ok(),
            Err(_) => None,
        },
    };
    let effective_mode = match (mode, &hw_query) {
        (SearchMode::SoftwareOnly, _) => SearchMode::SoftwareOnly,
        // FS1 needs no query stream, only a descriptor, so it stays viable.
        (SearchMode::Fs1Only, _) => SearchMode::Fs1Only,
        (m, Some(_)) => m,
        (_, None) => SearchMode::SoftwareOnly,
    };

    let mut stats = RetrievalStats::empty(effective_mode);
    stats.clauses_total = pred.clauses().len();

    let mut candidates = match phase_candidates(
        pred,
        query,
        effective_mode,
        hw_query,
        disk_resident,
        opts,
        pre,
        fs1_cache,
        &mut stats,
        cancel,
    ) {
        Ok(candidates) => candidates,
        // A tripped budget surfaces the partial stats, never a partial
        // candidate list — and (structurally) never reaches any cache:
        // the Err path returns before the caller's note_outcome hook.
        Err(reason) => return Err(exceeded(reason, Some(stats))),
    };

    // Merge the memtable delta: retracted base clauses leave the
    // candidate set, and overlay additions join it unconditionally —
    // they have no codewords yet, so every filter must pass them (a
    // superset filter can only over-approximate, never drop an answer).
    // Synthetic ids `base_len + j` index the delta's added clauses; they
    // sort after every base id, so the candidate list stays in clause
    // order.
    let base_len = pred.clauses().len();
    if let Some(delta) = delta {
        candidates.retain(|id| !delta.is_retracted(id.index() as usize));
        let adds = delta.added().len();
        candidates.extend((0..adds).map(|j| ClauseId::new((base_len + j) as u32)));
        stats.clauses_total = base_len - delta.retracted_base().len() + adds;
    }

    // The candidate ceiling is charged on the final merged set, before
    // any full-unification work is spent on it.
    if let Err(reason) = cancel.note_candidates(candidates.len() as u64) {
        return Err(exceeded(reason, Some(stats)));
    }

    // Full unification of the survivors — the answer set.
    let query_nodes = term_size(query);
    let mut unified = 0usize;
    for (i, id) in candidates.iter().enumerate() {
        if i % 64 == 0 {
            if let Err(reason) = cancel.checkpoint() {
                return Err(exceeded(reason, Some(stats)));
            }
        }
        let idx = id.index() as usize;
        let clause = match delta {
            Some(d) if idx >= base_len => &d.added()[idx - base_len].clause,
            _ => &pred.clauses()[idx],
        };
        stats.full_unify_time += opts
            .cost
            .full_unify_cost(query_nodes, term_size(clause.head()));
        if unify_query_clause(query, clause.head()).is_some() {
            unified += 1;
        }
    }
    stats.candidates = candidates.len();
    stats.unified = unified;
    stats.false_drops = candidates.len() - unified;
    stats.elapsed += stats.full_unify_time;
    if stats.degraded {
        clare_trace::metrics().crs_degraded_answers.inc();
    }

    Ok(Retrieval { candidates, stats })
}

/// Runs the mode-selected filter phases, producing the base-file
/// candidate ids. Split out of [`retrieve_inner`] so a tripped budget can
/// return through one seam with the partial stats still in hand.
#[allow(clippy::too_many_arguments)]
fn phase_candidates(
    pred: &Predicate,
    query: &Term,
    effective_mode: SearchMode,
    hw_query: Option<Fs2Engine>,
    disk_resident: bool,
    opts: &CrsOptions,
    mut pre: Precomputed,
    fs1_cache: Option<&dyn Fs1Cache>,
    stats: &mut RetrievalStats,
    cancel: &CancelToken,
) -> Result<Vec<ClauseId>, BudgetReason> {
    Ok(match effective_mode {
        SearchMode::SoftwareOnly => {
            software_phase(pred, query, opts, disk_resident, stats, cancel)?
        }
        SearchMode::Fs1Only => {
            let addrs = fs1_phase(pred, query, opts, pre.fs1.take(), fs1_cache, stats, cancel)?;
            fetch_candidate_tracks(pred, &addrs, opts, stats);
            stats.after_fs1 = Some(addrs.len());
            addrs_to_ids(pred, &addrs)
        }
        SearchMode::Fs2Only => {
            let mut engine = hw_query.expect("checked above");
            let all_tracks: Vec<usize> = (0..pred.file().track_count()).collect();
            let sweep = take_sweep(&mut pre, &all_tracks);
            let satisfiers = fs2_phase(pred, &mut engine, &all_tracks, opts, stats, sweep, cancel)?;
            stats.after_fs2 = Some(satisfiers.len());
            addrs_to_ids(pred, &satisfiers)
        }
        SearchMode::TwoStage => {
            let mut engine = hw_query.expect("checked above");
            let fs1_addrs = fs1_phase(pred, query, opts, pre.fs1.take(), fs1_cache, stats, cancel)?;
            stats.after_fs1 = Some(fs1_addrs.len());
            let tracks = candidate_tracks(&fs1_addrs);
            let sweep = take_sweep(&mut pre, &tracks);
            let fs2_addrs = fs2_phase(pred, &mut engine, &tracks, opts, stats, sweep, cancel)?;
            // Intersect: only clauses selected by both stages go on.
            let fs1_set: BTreeSet<ClauseAddr> = fs1_addrs.into_iter().collect();
            let joint: Vec<ClauseAddr> = fs2_addrs
                .into_iter()
                .filter(|a| fs1_set.contains(a))
                .collect();
            // FS1 candidates the FS2 verdicts rejected: the numerator of
            // the FS1 false-drop rate (`fs1.false_drops / fs1.candidates_out`).
            clare_trace::metrics()
                .fs1_false_drops
                .add((fs1_set.len() - joint.len()) as u64);
            stats.after_fs2 = Some(joint.len());
            addrs_to_ids(pred, &joint)
        }
    })
}

/// Retrieval for a predicate that lives only in the memtable overlay.
/// Candidate ids are `0..added` (the base length is zero), matching the
/// synthetic-id convention of the merged path.
fn retrieve_overlay_only(
    delta: &PredDelta,
    query: &Term,
    mode: SearchMode,
    opts: &CrsOptions,
    cancel: &CancelToken,
) -> Result<Retrieval, BudgetExceeded> {
    let mut stats = RetrievalStats::empty(mode);
    stats.clauses_total = delta.added().len();
    let candidates: Vec<ClauseId> = (0..delta.added().len())
        .map(|j| ClauseId::new(j as u32))
        .collect();
    if let Err(reason) = cancel.note_candidates(candidates.len() as u64) {
        return Err(exceeded(reason, Some(stats)));
    }
    let query_nodes = term_size(query);
    let mut unified = 0usize;
    for (i, oc) in delta.added().iter().enumerate() {
        if i % 64 == 0 {
            if let Err(reason) = cancel.checkpoint() {
                return Err(exceeded(reason, Some(stats)));
            }
        }
        stats.full_unify_time += opts
            .cost
            .full_unify_cost(query_nodes, term_size(oc.clause.head()));
        if unify_query_clause(query, oc.clause.head()).is_some() {
            unified += 1;
        }
    }
    stats.candidates = candidates.len();
    stats.unified = unified;
    stats.false_drops = candidates.len() - unified;
    stats.elapsed += stats.full_unify_time;
    Ok(Retrieval { candidates, stats })
}

fn addrs_to_ids(pred: &Predicate, addrs: &[ClauseAddr]) -> Vec<ClauseId> {
    let mut ids: Vec<ClauseId> = addrs
        .iter()
        .map(|a| {
            pred.clause_id_at(*a)
                .expect("candidate addresses come from this predicate")
        })
        .collect();
    ids.sort();
    ids
}

/// The distinct tracks containing `addrs`, ascending.
fn candidate_tracks(addrs: &[ClauseAddr]) -> Vec<usize> {
    addrs
        .iter()
        .map(|a| a.track() as usize)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect()
}

/// Consumes a batch-precomputed FS2 sweep, but only if it covers exactly
/// the tracks this retrieval is about to visit.
fn take_sweep(pre: &mut Precomputed, tracks: &[usize]) -> Option<Vec<TrackMatches>> {
    pre.fs2
        .take()
        .filter(|s| s.tracks == tracks)
        .map(|s| s.outcomes)
}

/// Mode (a): stream everything (if disk resident) and filter on the host.
fn software_phase(
    pred: &Predicate,
    query: &Term,
    opts: &CrsOptions,
    disk_resident: bool,
    stats: &mut RetrievalStats,
    cancel: &CancelToken,
) -> Result<Vec<ClauseId>, BudgetReason> {
    if disk_resident {
        stats.disk_time = pred.file().scan_time(&opts.disk);
        stats.bytes_from_disk = pred.file().occupied_bytes() as u64;
    }
    let mut out = Vec::new();
    for (i, clause) in pred.clauses().iter().enumerate() {
        if i % 64 == 0 {
            cancel.checkpoint()?;
        }
        let report = partial_match(query, clause.head(), PartialConfig::fs2());
        stats.software_filter_time += opts.cost.partial_match_cost(report.ops.len().max(1));
        if report.matched {
            out.push(ClauseId::new(i as u32));
        }
    }
    // The host cannot overlap its own filtering with much else.
    stats.elapsed = stats.disk_time + stats.software_filter_time;
    Ok(out)
}

/// FS1 phase: stream the secondary file, scan codewords at 4.5 MB/s.
/// `precomputed` carries a batch scan's outcome so grouped queries do not
/// sweep the index again; `fs1_cache` is the server cache's seam — tried
/// after `precomputed`, and offered any freshly computed outcome. Either
/// short-circuit yields exactly the outcome the scan would produce, so
/// every downstream stat is unchanged.
fn fs1_phase(
    pred: &Predicate,
    query: &Term,
    opts: &CrsOptions,
    precomputed: Option<clare_scw::ScanOutcome>,
    fs1_cache: Option<&dyn Fs1Cache>,
    stats: &mut RetrievalStats,
    cancel: &CancelToken,
) -> Result<Vec<ClauseAddr>, BudgetReason> {
    let outcome = match precomputed.or_else(|| fs1_cache.and_then(Fs1Cache::get)) {
        Some(outcome) => outcome,
        None => {
            let index = pred.index();
            let outcome = if cancel.is_unlimited() {
                match opts.fs1_parallelism {
                    Some(workers) => {
                        let descriptor = encode_query_descriptor(query, index.config());
                        index.scan_with(&descriptor, workers)
                    }
                    None => index.scan(query),
                }
            } else {
                // Budgeted scans go through the cancel-aware driver: the
                // token is polled at every shard claim, and a cancelled
                // scan yields no partial match list.
                let descriptor = encode_query_descriptor(query, index.config());
                let workers = opts.fs1_parallelism.unwrap_or(index.config().parallelism());
                match index.scan_with_cancel(&descriptor, workers, &|| cancel.checkpoint().is_err())
                {
                    Some(outcome) => outcome,
                    None => return Err(tripped_reason(cancel)),
                }
            };
            if let Some(cache) = fs1_cache {
                cache.put(&outcome);
            }
            outcome
        }
    };
    let index_bytes = outcome.bytes_scanned as u64;
    let disk_transfer = opts.disk.sustained_rate().transfer_time(index_bytes);
    let positioning = opts.disk.avg_seek() + opts.disk.avg_rotational_latency();
    stats.fs1_time += outcome.fs1_time;
    stats.disk_time += positioning + disk_transfer;
    stats.bytes_from_disk += index_bytes;
    // FS1 filters on the fly: the scan overlaps the transfer.
    stats.elapsed += positioning + disk_transfer.max(outcome.fs1_time);
    Ok(outcome.matches)
}

/// Disk time to fetch the tracks containing `addrs` (mode (b): the host
/// reads candidate tracks whole, then unifies).
fn fetch_candidate_tracks(
    pred: &Predicate,
    addrs: &[ClauseAddr],
    opts: &CrsOptions,
    stats: &mut RetrievalStats,
) {
    let tracks: BTreeSet<u32> = addrs.iter().map(|a| a.track()).collect();
    let mut prev: Option<u32> = None;
    for &t in &tracks {
        let contiguous = prev.is_some_and(|p| t == p + 1);
        let positioning = if contiguous {
            SimNanos::ZERO
        } else {
            opts.disk.avg_seek() + opts.disk.avg_rotational_latency()
        };
        let transfer = opts.disk.track_transfer_time();
        stats.disk_time += positioning + transfer;
        stats.elapsed += positioning + transfer;
        stats.bytes_from_disk += pred.file().track_bytes() as u64;
        prev = Some(t);
    }
}

/// One track's FS2 outcome: total modelled matching time plus the slots
/// of the clauses that satisfied the partial test. A `degraded` track was
/// quarantined — its FS2 pass was skipped and every clause passes.
struct TrackMatches {
    fs2_time: SimNanos,
    hits: Vec<u16>,
    degraded: bool,
}

/// Quarantines track `t`: the hardware filter is skipped and every clause
/// on the track becomes a hit, so the filter's completeness contract (no
/// false negatives) holds even over data it could not trust. Downstream
/// full unification weeds the extra false drops; the answer set is exactly
/// the fault-free one. No FS2 time is charged — the hardware did not run.
fn quarantine_track(pred: &Predicate, t: usize) -> TrackMatches {
    let slots = pred.file().tracks().get(t).map_or(0, Track::record_count);
    let m = clare_trace::metrics();
    m.fs2_quarantined_tracks.inc();
    m.disk_track_crc_failures.inc();
    TrackMatches {
        fs2_time: SimNanos::ZERO,
        hits: (0..slots as u16).collect(),
        degraded: true,
    }
}

/// Streams one track's clauses through the engine. With `predecoded` the
/// head streams come straight out of the predicate's [`ClauseArena`]
/// (decoded once at build/load time); otherwise each record is re-parsed
/// from its on-disk bytes — the reference path the arena is property-tested
/// against.
///
/// [`ClauseArena`]: clare_kb::ClauseArena
fn match_track(
    pred: &Predicate,
    engine: &mut Fs2Engine,
    t: usize,
    predecoded: bool,
) -> TrackMatches {
    // Integrity gate *before* the arena-vs-byte choice, so both paths make
    // the same quarantine decision and stay byte-identical downstream. The
    // CRC verdict is memoized per track inside the stored file, so the
    // fault-free fast path pays the checksum exactly once per track.
    let Some(read) = pred.file().read_track(t) else {
        return quarantine_track(pred, t);
    };
    if !read.intact() {
        return quarantine_track(pred, t);
    }
    let mut fs2_time = SimNanos::ZERO;
    let mut hits = Vec::new();
    // Per-clause accounting stays in locals; the shared atomic registry
    // is touched once per track, keeping the hot loop unperturbed.
    let mut clauses = 0u64;
    let mut ops = [0u64; 7];
    if predecoded {
        let arena = pred.arena();
        let range = arena.track_clauses(t);
        let start = range.start;
        for i in range {
            let verdict = engine.match_clause_words(arena.stream(i));
            fs2_time += verdict.time;
            clauses += 1;
            for (total, n) in ops.iter_mut().zip(verdict.op_histogram) {
                *total += n as u64;
            }
            if verdict.matched {
                hits.push((i - start) as u16);
            }
        }
    } else {
        for (slot, record_bytes) in read.track().records().iter().enumerate() {
            // A record that fails to parse despite a good CRC means the
            // stored bytes themselves are bad: quarantine the whole track
            // rather than trust a partial sweep (or panic, as this path
            // once did).
            let Ok((record, _)) = ClauseRecord::from_bytes(record_bytes) else {
                return quarantine_track(pred, t);
            };
            let verdict = engine.match_clause_quiet(record.head_stream());
            fs2_time += verdict.time;
            clauses += 1;
            for (total, n) in ops.iter_mut().zip(verdict.op_histogram) {
                *total += n as u64;
            }
            if verdict.matched {
                hits.push(slot as u16);
            }
        }
    }
    let m = clare_trace::metrics();
    m.fs2_tracks.inc();
    m.fs2_clauses.add(clauses);
    m.fs2_satisfiers.add(hits.len() as u64);
    for (counter, n) in m.fs2_ops.iter().zip(ops) {
        counter.add(n);
    }
    TrackMatches {
        fs2_time,
        hits,
        degraded: false,
    }
}

/// Runs a set of FS2 sweep jobs — `(engine, tracks)` pairs, typically one
/// per query of a batch — through one worker pool.
///
/// With one worker each job's tracks are matched in order on the calling
/// thread. With more, every job's track list is split into shards of
/// [`Fs2Config::shard_tracks`] tracks and workers claim shards off a
/// shared counter, cloning the owning job's engine on first touch (cheap:
/// the MAP ROM is a flat 64 KB table). Results are stitched back in track
/// order per job, so the output — and everything downstream, including all
/// modelled times — is byte-identical at every worker count.
fn fs2_sweep_jobs(
    pred: &Predicate,
    jobs: &[(Fs2Engine, Vec<usize>)],
    opts: &CrsOptions,
    cancel: &CancelToken,
) -> Result<Vec<Vec<TrackMatches>>, BudgetReason> {
    let workers = fs2_workers(opts);
    let predecoded = opts.fs2.predecoded();
    if workers <= 1 || jobs.iter().map(|(_, t)| t.len()).sum::<usize>() <= 1 {
        let started = Instant::now();
        let mut out: Vec<Vec<TrackMatches>> = Vec::with_capacity(jobs.len());
        for (engine, tracks) in jobs {
            let mut engine = engine.clone();
            let mut matches = Vec::with_capacity(tracks.len());
            for &t in tracks {
                cancel.checkpoint()?;
                matches.push(match_track(pred, &mut engine, t, predecoded));
            }
            out.push(matches);
        }
        record_sweeps(&out, started.elapsed().as_nanos() as u64, 1);
        return Ok(out);
    }
    // (job, shard offset, shard tracks) work items, claimed off a counter.
    let shard = opts.fs2.shard_tracks().max(1);
    let mut items: Vec<(usize, usize, &[usize])> = Vec::new();
    for (j, (_, tracks)) in jobs.iter().enumerate() {
        let mut start = 0;
        while start < tracks.len() {
            let end = (start + shard).min(tracks.len());
            items.push((j, start, &tracks[start..end]));
            start = end;
        }
    }
    let started = Instant::now();
    let pool_workers = workers.min(items.len());
    let next = AtomicUsize::new(0);
    type Shards = Vec<(usize, usize, Vec<TrackMatches>)>;
    let (mut results, panicked): (Shards, usize) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..pool_workers)
            .map(|_| {
                scope.spawn(|| {
                    let busy = Instant::now();
                    let mut engines: Vec<Option<Fs2Engine>> = vec![None; jobs.len()];
                    let mut out = Vec::new();
                    loop {
                        // Cooperative cancellation at every shard claim:
                        // the token is sticky, so once any checkpoint
                        // trips, every worker bails at its next claim.
                        if cancel.checkpoint().is_err() {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(j, start, tracks)) = items.get(i) else {
                            break;
                        };
                        // Fault injection: a worker may stall or die at a
                        // shard boundary. The decision keys on (job, shard)
                        // — not on claim order — so a chaos schedule replays
                        // identically at every thread interleaving.
                        if clare_fault::active() {
                            let ctx = ((j as u64) << 32) | start as u64;
                            match clare_fault::decide(clare_fault::FaultSite::Fs2Worker, ctx) {
                                clare_fault::FaultAction::Delay { micros } => {
                                    std::thread::sleep(std::time::Duration::from_micros(micros));
                                }
                                clare_fault::FaultAction::Panic => {
                                    panic!(
                                        "injected fault: FS2 worker died on shard ({j}, {start})"
                                    );
                                }
                                _ => {}
                            }
                        }
                        let engine = engines[j].get_or_insert_with(|| jobs[j].0.clone());
                        let matches = tracks
                            .iter()
                            .map(|&t| match_track(pred, engine, t, predecoded))
                            .collect();
                        out.push((j, start, matches));
                    }
                    clare_trace::metrics()
                        .fs2_worker_busy_ns
                        .add(busy.elapsed().as_nanos() as u64);
                    out
                })
            })
            .collect();
        let mut all = Vec::new();
        let mut panicked = 0usize;
        for h in handles {
            match h.join() {
                Ok(shards) => all.extend(shards),
                Err(_payload) => {
                    // A dead worker takes every shard it had finished with
                    // it. Count the death and fall through: the missing
                    // shards are recomputed serially below, so the sweep
                    // degrades to slower — never to wrong, never to a
                    // re-raised panic on the serving thread.
                    clare_trace::metrics().fs2_worker_panics.inc();
                    panicked += 1;
                }
            }
        }
        (all, panicked)
    });
    // A tripped budget abandons the sweep before any serial recovery —
    // no partial results leave this function.
    cancel.checkpoint()?;
    if panicked > 0 {
        // Serial recovery of the lost shards. `match_track` still consults
        // the disk-fault site (its decisions key on the track, so recovery
        // sees the same corruption the worker would have), but the
        // Fs2Worker site is only consulted at pool claim time — recovery
        // cannot re-panic and always terminates.
        let done: HashSet<(usize, usize)> = results.iter().map(|&(j, s, _)| (j, s)).collect();
        let mut engines: Vec<Option<Fs2Engine>> = vec![None; jobs.len()];
        for &(j, start, tracks) in &items {
            if done.contains(&(j, start)) {
                continue;
            }
            let engine = engines[j].get_or_insert_with(|| jobs[j].0.clone());
            let matches = tracks
                .iter()
                .map(|&t| match_track(pred, engine, t, predecoded))
                .collect();
            clare_trace::metrics().fs2_worker_recoveries.inc();
            results.push((j, start, matches));
        }
    }
    // Stitch shards back per job, in track order.
    results.sort_by_key(|&(j, start, _)| (j, start));
    let mut out: Vec<Vec<TrackMatches>> = jobs
        .iter()
        .map(|(_, tracks)| Vec::with_capacity(tracks.len()))
        .collect();
    for (j, _, matches) in results {
        out[j].extend(matches);
    }
    record_sweeps(&out, started.elapsed().as_nanos() as u64, pool_workers);
    Ok(out)
}

/// Rolls one finished sweep pool into the registry: one `fs2.sweeps`
/// tick and one modelled-time observation per job, one wall-clock
/// observation for the pool. On the serial path busy time equals wall
/// time (the caller's thread was the one worker).
fn record_sweeps(jobs: &[Vec<TrackMatches>], wall_ns: u64, workers: usize) {
    let m = clare_trace::metrics();
    m.fs2_sweeps.add(jobs.len() as u64);
    for outcomes in jobs {
        let modelled: SimNanos = outcomes.iter().map(|tm| tm.fs2_time).sum();
        m.fs2_modelled_ns.record(modelled.as_ns());
    }
    m.fs2_wall_ns.record(wall_ns);
    if workers <= 1 {
        m.fs2_worker_busy_ns.add(wall_ns);
    }
}

/// Effective FS2 worker count: the per-server override, else the config's.
fn fs2_workers(opts: &CrsOptions) -> usize {
    opts.fs2_parallelism
        .unwrap_or_else(|| opts.fs2.parallelism())
        .max(1)
}

/// FS2 phase over the given tracks: each track streams from disk into the
/// Double Buffer while the previous track's clauses are matched, so the
/// per-track elapsed time is `max(transfer, matching)`.
///
/// The matching sweep may run sharded across worker threads (and a batch
/// may hand in a `precomputed` sweep), but the timing accounting below
/// always walks the tracks serially in order — the modelled disk and
/// filter times are those of the single hardware pipeline of the paper,
/// identical at every worker count.
fn fs2_phase(
    pred: &Predicate,
    engine: &mut Fs2Engine,
    tracks: &[usize],
    opts: &CrsOptions,
    stats: &mut RetrievalStats,
    precomputed: Option<Vec<TrackMatches>>,
    cancel: &CancelToken,
) -> Result<Vec<ClauseAddr>, BudgetReason> {
    let outcomes = match precomputed {
        Some(outcomes) => outcomes,
        None if fs2_workers(opts) <= 1 => {
            // Serial fast path: reuse the caller's engine, no clones.
            // The token is polled once per track, so cancellation
            // latency is one track sweep.
            let started = Instant::now();
            let predecoded = opts.fs2.predecoded();
            let mut outcomes: Vec<TrackMatches> = Vec::with_capacity(tracks.len());
            for &t in tracks {
                cancel.checkpoint()?;
                outcomes.push(match_track(pred, engine, t, predecoded));
            }
            record_sweeps(
                std::slice::from_ref(&outcomes),
                started.elapsed().as_nanos() as u64,
                1,
            );
            outcomes
        }
        None => {
            let jobs = [(engine.clone(), tracks.to_vec())];
            fs2_sweep_jobs(pred, &jobs, opts, cancel)?
                .pop()
                .expect("one job in, one sweep out")
        }
    };
    debug_assert_eq!(outcomes.len(), tracks.len());
    let mut satisfiers = Vec::new();
    let mut prev: Option<usize> = None;
    for (&t, tm) in tracks.iter().zip(&outcomes) {
        for &slot in &tm.hits {
            satisfiers.push(ClauseAddr::new(t as u32, slot));
        }
        if tm.hits.len() > clare_fs2::result::SATISFIER_SLOTS {
            stats.result_memory_overflows += 1;
        }
        if tm.degraded {
            stats.quarantined_tracks += 1;
            stats.degraded = true;
        }
        // Adjacent tracks continue the sweep for free; the first track and
        // any gap cost a fresh positioning (seek + rotational latency).
        let contiguous = prev.is_some_and(|p| t == p + 1);
        let positioning = if contiguous {
            SimNanos::ZERO
        } else {
            opts.disk.avg_seek() + opts.disk.avg_rotational_latency()
        };
        let transfer = opts.disk.track_transfer_time();
        stats.fs2_time += tm.fs2_time;
        stats.disk_time += positioning + transfer;
        stats.bytes_from_disk += pred.file().track_bytes() as u64;
        // Double buffering overlaps matching with the next transfer.
        stats.elapsed += positioning + transfer.max(tm.fs2_time);
        prev = Some(t);
    }
    Ok(satisfiers)
}

/// The mode-selection heuristic the paper sketches: "depending on the
/// nature of a query (e.g. whether it contains cross bound variables) and
/// the knowledge base (e.g. whether it is rule or fact intensive)".
pub fn choose_mode(kb: &KnowledgeBase, query: &Term) -> SearchMode {
    let Some((functor, arity)) = query.functor_arity() else {
        return SearchMode::SoftwareOnly;
    };
    let Some((module, pred)) = kb.module_of(functor, arity) else {
        return SearchMode::SoftwareOnly;
    };
    // Memory-resident modules are searched by the host directly.
    if module.kind() == ModuleKind::Small {
        return SearchMode::SoftwareOnly;
    }
    let descriptor = encode_query_descriptor(query, pred.index().config());
    let shared_vars = clare_term::visit::has_repeated_vars(query);
    if descriptor.is_unconstrained() {
        // FS1 would retrieve the whole predicate (the married_couple
        // case); go straight to FS2, which shared variables need anyway.
        return SearchMode::Fs2Only;
    }
    if pred.rule_fraction() > 0.5 {
        // Rule-intensive predicate: heads are mostly non-ground, so their
        // index masks make FS1 unselective — the paper's "rule or fact
        // intensive" criterion.
        return SearchMode::Fs2Only;
    }
    if query.is_ground() && pred.rule_fraction() < 0.2 && !shared_vars {
        // Ground queries against fact-intensive predicates: FS1's deep
        // keys are already highly selective.
        return SearchMode::Fs1Only;
    }
    SearchMode::TwoStage
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_kb::{KbBuilder, KbConfig};
    use clare_term::parser::parse_term;

    fn kb_with(source: &str) -> (KnowledgeBase, Vec<Term>) {
        (build(source, &[]).0, vec![])
    }

    fn build(source: &str, queries: &[&str]) -> (KnowledgeBase, Vec<Term>) {
        let mut b = KbBuilder::new();
        b.consult("m", source).unwrap();
        let terms: Vec<Term> = queries
            .iter()
            .map(|q| parse_term(q, b.symbols_mut()).unwrap())
            .collect();
        (b.finish(KbConfig::default()), terms)
    }

    fn big_facts(n: usize) -> String {
        (0..n)
            .map(|i| format!("fact(k{i}, v{}).", i % 10))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn all_modes_agree_on_answer_set() {
        let (kb, queries) = build(
            &big_facts(500),
            &["fact(k42, X)", "fact(K, v3)", "fact(S, S)", "fact(k1, v1)"],
        );
        let opts = CrsOptions::default();
        for q in &queries {
            let unified: Vec<usize> = SearchMode::ALL
                .iter()
                .map(|m| retrieve(&kb, q, *m, &opts).stats.unified)
                .collect();
            assert!(
                unified.windows(2).all(|w| w[0] == w[1]),
                "modes disagree for query: {unified:?}"
            );
        }
    }

    #[test]
    fn candidates_superset_of_answers_and_ordered() {
        let (kb, queries) = build(&big_facts(300), &["fact(k7, X)"]);
        let opts = CrsOptions::default();
        for mode in SearchMode::ALL {
            let r = retrieve(&kb, &queries[0], mode, &opts);
            assert!(r.stats.candidates >= r.stats.unified);
            assert_eq!(r.stats.false_drops, r.stats.candidates - r.stats.unified);
            assert!(
                r.candidates.windows(2).all(|w| w[0] < w[1]),
                "clause order preserved"
            );
        }
    }

    #[test]
    fn two_stage_never_more_candidates_than_single_stages() {
        let (kb, queries) = build(&big_facts(400), &["fact(k9, X)", "fact(K, v2)"]);
        let opts = CrsOptions::default();
        for q in &queries {
            let fs1 = retrieve(&kb, q, SearchMode::Fs1Only, &opts);
            let fs2 = retrieve(&kb, q, SearchMode::Fs2Only, &opts);
            let two = retrieve(&kb, q, SearchMode::TwoStage, &opts);
            assert!(two.stats.candidates <= fs1.stats.candidates);
            assert!(two.stats.candidates <= fs2.stats.candidates);
        }
    }

    #[test]
    fn shared_variable_query_defeats_fs1_but_not_fs2() {
        let mut src = big_facts(100);
        src.push_str("\nfact(same, same).");
        let (kb, queries) = build(&src, &["fact(S, S)"]);
        let opts = CrsOptions::default();
        let fs1 = retrieve(&kb, &queries[0], SearchMode::Fs1Only, &opts);
        let fs2 = retrieve(&kb, &queries[0], SearchMode::Fs2Only, &opts);
        assert_eq!(
            fs1.stats.candidates, 101,
            "FS1 retrieves the entire predicate"
        );
        assert!(
            fs2.stats.candidates < 15,
            "FS2 cross-binding checks cut it down: {}",
            fs2.stats.candidates
        );
        assert_eq!(fs2.stats.unified, fs1.stats.unified);
    }

    #[test]
    fn timing_fields_populated_per_mode() {
        let (kb, queries) = build(&big_facts(2000), &["fact(k100, X)"]);
        let opts = CrsOptions::default();
        let q = &queries[0];
        let sw = retrieve(&kb, q, SearchMode::SoftwareOnly, &opts);
        assert!(sw.stats.software_filter_time.as_ns() > 0);
        assert_eq!(sw.stats.fs1_time, SimNanos::ZERO);
        assert_eq!(sw.stats.fs2_time, SimNanos::ZERO);
        let fs1 = retrieve(&kb, q, SearchMode::Fs1Only, &opts);
        assert!(fs1.stats.fs1_time.as_ns() > 0);
        assert_eq!(fs1.stats.fs2_time, SimNanos::ZERO);
        let fs2 = retrieve(&kb, q, SearchMode::Fs2Only, &opts);
        assert!(fs2.stats.fs2_time.as_ns() > 0);
        assert_eq!(fs2.stats.fs1_time, SimNanos::ZERO);
        let two = retrieve(&kb, q, SearchMode::TwoStage, &opts);
        assert!(two.stats.fs1_time.as_ns() > 0);
        assert!(two.stats.fs2_time.as_ns() > 0);
        // The two-stage filter reads fewer bytes than a full FS2 scan.
        assert!(two.stats.bytes_from_disk < fs2.stats.bytes_from_disk);
    }

    #[test]
    fn missing_predicate_is_empty() {
        let (kb, queries) = build("p(a).", &["q(a)"]);
        let r = retrieve(
            &kb,
            &queries[0],
            SearchMode::TwoStage,
            &CrsOptions::default(),
        );
        assert!(r.candidates.is_empty());
        assert_eq!(r.stats.unified, 0);
    }

    #[test]
    fn unencodable_query_falls_back_to_software() {
        let (kb, queries) = build("p(1).", &["p(999999999999)"]);
        let r = retrieve(
            &kb,
            &queries[0],
            SearchMode::Fs2Only,
            &CrsOptions::default(),
        );
        assert_eq!(r.stats.mode, SearchMode::SoftwareOnly);
        assert_eq!(r.stats.unified, 0);
    }

    #[test]
    fn mode_selection_heuristic() {
        let mut src = big_facts(3000); // large module
        src.push_str("\nrule_pred(X) :- fact(X, v0).\n");
        let (kb, queries) = build(&src, &["fact(S, S)", "fact(k1, v1)", "fact(k1, X)"]);
        assert_eq!(choose_mode(&kb, &queries[0]), SearchMode::Fs2Only);
        assert_eq!(choose_mode(&kb, &queries[1]), SearchMode::Fs1Only);
        assert_eq!(choose_mode(&kb, &queries[2]), SearchMode::TwoStage);
        // Small module -> software.
        let (small_kb, small_q) = build("p(a).", &["p(a)"]);
        assert_eq!(
            choose_mode(&small_kb, &small_q[0]),
            SearchMode::SoftwareOnly
        );
    }

    #[test]
    fn rules_are_retrieved_too() {
        let (kb, queries) = build(
            "anc(X, Y) :- parent(X, Y).
             anc(X, Z) :- parent(X, Y), anc(Y, Z).
             parent(a, b).",
            &["anc(a, Q)"],
        );
        let r = retrieve(
            &kb,
            &queries[0],
            SearchMode::TwoStage,
            &CrsOptions::default(),
        );
        assert_eq!(r.stats.unified, 2, "both rule heads unify");
    }

    #[test]
    fn empty_source_ignored() {
        let (kb, _) = kb_with("p(a).");
        assert_eq!(kb.clause_count(), 1);
    }

    #[test]
    fn fs2_positioning_charged_per_gap_not_per_track() {
        // Enough facts to span several tracks.
        let (kb, queries) = build(&big_facts(3000), &["fact(k100, X)"]);
        let pred = kb.lookup("fact", 2).unwrap();
        assert!(pred.file().track_count() >= 4, "predicate spans 4+ tracks");
        let opts = CrsOptions::default();
        let engine = Fs2Engine::new(&encode_query(&queries[0]).unwrap()).unwrap();
        let sweep = |tracks: &[usize]| {
            let mut stats = RetrievalStats::empty(SearchMode::Fs2Only);
            let mut e = engine.clone();
            fs2_phase(
                pred,
                &mut e,
                tracks,
                &opts,
                &mut stats,
                None,
                &CancelToken::unlimited(),
            )
            .unwrap();
            stats
        };
        let contiguous = sweep(&[0, 1, 2]);
        let gapped = sweep(&[0, 2, 3]);
        // [0, 1, 2] positions once (at track 0); [0, 2, 3] re-positions
        // after the 0 -> 2 gap, so it pays exactly one extra positioning.
        let positioning = opts.disk.avg_seek() + opts.disk.avg_rotational_latency();
        assert_eq!(gapped.disk_time, contiguous.disk_time + positioning);
        assert_eq!(gapped.bytes_from_disk, contiguous.bytes_from_disk);
    }

    #[test]
    fn parallel_fs2_identical_to_serial_at_every_worker_count() {
        let (kb, queries) = build(&big_facts(2500), &["fact(k7, X)", "fact(K, v3)"]);
        let serial = CrsOptions {
            fs2_parallelism: Some(1),
            ..CrsOptions::default()
        };
        for q in &queries {
            for mode in [SearchMode::Fs2Only, SearchMode::TwoStage] {
                let reference = retrieve(&kb, q, mode, &serial);
                for workers in [2, 4, 7] {
                    let opts = CrsOptions {
                        fs2_parallelism: Some(workers),
                        ..CrsOptions::default()
                    };
                    let got = retrieve(&kb, q, mode, &opts);
                    assert_eq!(got, reference, "workers = {workers}, mode = {mode}");
                }
            }
        }
    }

    #[test]
    fn predecoded_and_byte_decoded_paths_agree() {
        let (kb, queries) = build(&big_facts(1500), &["fact(k3, X)", "fact(S, S)"]);
        let bytes = CrsOptions {
            fs2: Fs2Config::paper().with_predecoded(false),
            ..CrsOptions::default()
        };
        let opts = CrsOptions::default();
        assert!(opts.fs2.predecoded(), "arena path is the default");
        for q in &queries {
            for mode in [SearchMode::Fs2Only, SearchMode::TwoStage] {
                assert_eq!(
                    retrieve(&kb, q, mode, &opts),
                    retrieve(&kb, q, mode, &bytes),
                    "mode = {mode}"
                );
            }
        }
    }

    /// Runs `f` with panics silenced (worker-death tests would otherwise
    /// spray backtraces into the test log), restoring the previous hook.
    fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn disk_faults_degrade_but_never_change_the_answer_set() {
        use clare_fault::{DeterministicInjector, FaultPlan, FaultSite};
        let (kb, queries) = build(&big_facts(3000), &["fact(k100, X)", "fact(K, v3)"]);
        let opts = CrsOptions::default();
        // Fault-free references first (the injector is not installed yet).
        let reference: Vec<Retrieval> = queries
            .iter()
            .flat_map(|q| {
                [SearchMode::Fs2Only, SearchMode::TwoStage]
                    .into_iter()
                    .map(|m| retrieve(&kb, q, m, &opts))
            })
            .collect();
        for seed in 0..8u64 {
            let plan = FaultPlan::none().with(FaultSite::DiskTrackRead, 600);
            let _guard =
                clare_fault::install(std::sync::Arc::new(DeterministicInjector::new(seed, plan)));
            let mut degraded_seen = false;
            for (q, want) in queries
                .iter()
                .flat_map(|q| {
                    [SearchMode::Fs2Only, SearchMode::TwoStage]
                        .into_iter()
                        .map(move |m| (q, m))
                })
                .zip(&reference)
            {
                let (query, mode) = q;
                let got = retrieve(&kb, query, mode, &opts);
                // Correct or flagged: the answer set never moves, and any
                // quarantine must be visible in the stats.
                assert_eq!(got.stats.unified, want.stats.unified, "seed {seed}");
                assert!(got.stats.candidates >= want.stats.unified);
                if got.stats.quarantined_tracks > 0 {
                    assert!(got.stats.degraded, "quarantine must flag the answer");
                    degraded_seen = true;
                }
            }
            assert!(
                degraded_seen,
                "60% per-track fault rate should quarantine something (seed {seed})"
            );
        }
    }

    #[test]
    fn fs2_worker_deaths_are_recovered_without_changing_the_sweep() {
        use clare_fault::{DeterministicInjector, FaultPlan, FaultSite};
        let (kb, queries) = build(&big_facts(2500), &["fact(k7, X)", "fact(K, v3)"]);
        let opts = CrsOptions {
            fs2_parallelism: Some(4),
            ..CrsOptions::default()
        };
        let reference: Vec<Retrieval> = queries
            .iter()
            .map(|q| retrieve(&kb, q, SearchMode::Fs2Only, &opts))
            .collect();
        let recoveries_before = clare_trace::metrics().fs2_worker_recoveries.get();
        quiet_panics(|| {
            for seed in 0..12u64 {
                let plan = FaultPlan::none().with(FaultSite::Fs2Worker, 700);
                let _guard = clare_fault::install(std::sync::Arc::new(DeterministicInjector::new(
                    seed, plan,
                )));
                for (q, want) in queries.iter().zip(&reference) {
                    let got = retrieve(&kb, q, SearchMode::Fs2Only, &opts);
                    // Worker faults never reach the answer: lost shards are
                    // recomputed serially, and no panic crosses the API.
                    assert_eq!(&got, want, "seed {seed}");
                }
            }
        });
        assert!(
            clare_trace::metrics().fs2_worker_recoveries.get() > recoveries_before,
            "a 70% shard fault rate across 12 seeds should kill at least one worker"
        );
    }

    #[test]
    fn batch_fs2_matches_individual_retrievals() {
        let (kb, queries) = build(
            &big_facts(2000),
            &[
                "fact(k11, X)",
                "fact(K, v5)",
                "fact(k11, v1)",
                "unknown(x)",
                "fact(S, S)",
            ],
        );
        let opts = CrsOptions {
            fs2_parallelism: Some(3),
            ..CrsOptions::default()
        };
        for mode in [SearchMode::Fs2Only, SearchMode::TwoStage] {
            let batch = retrieve_batch(&kb, &queries, mode, &opts);
            assert_eq!(batch.len(), queries.len());
            for (q, got) in queries.iter().zip(&batch) {
                assert_eq!(got, &retrieve(&kb, q, mode, &opts), "mode = {mode}");
            }
        }
    }
}
