//! End-to-end system tests: whole programs, concurrent clients, and the
//! integrated-knowledge-base properties the paper contrasts with coupled
//! EDB/IDB designs.

use clare::core::resolve::ModeChoice;
use clare::prelude::*;
use std::sync::Arc;

fn family_server() -> (Arc<ClauseRetrievalServer>, SymbolTable) {
    let mut builder = KbBuilder::new();
    builder
        .consult(
            "family",
            "
            parent(tom, bob). parent(tom, liz). parent(bob, ann).
            parent(bob, pat). parent(pat, jim). parent(liz, joe).
            male(tom). male(bob). male(pat). male(jim). male(joe).
            female(liz). female(ann).
            grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
            ancestor(X, Y) :- parent(X, Y).
            ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
            grandfather(G, C) :- grandparent(G, C), male(G).
            ",
        )
        .unwrap();
    let kb = builder.finish(KbConfig::default());
    let symbols = kb.symbols().clone();
    (
        Arc::new(ClauseRetrievalServer::new(kb, CrsOptions::default())),
        symbols,
    )
}

fn solutions(server: &ClauseRetrievalServer, symbols: &SymbolTable, query: &str) -> Vec<String> {
    let mut local = symbols.clone();
    let (goal, names) = parse_term_with_vars(query, &mut local).unwrap();
    server
        .solve(&goal, &names, &SolveOptions::default())
        .solutions
        .iter()
        .map(|s| TermDisplay::new(&s.term, &local).to_string())
        .collect()
}

#[test]
fn multi_goal_rules_resolve() {
    let (server, symbols) = family_server();
    assert_eq!(
        solutions(&server, &symbols, "grandfather(G, jim)"),
        vec!["grandfather(bob, jim)"]
    );
    assert_eq!(
        solutions(&server, &symbols, "grandparent(tom, W)"),
        vec![
            "grandparent(tom, ann)",
            "grandparent(tom, pat)",
            "grandparent(tom, joe)"
        ]
    );
}

#[test]
fn recursion_terminates_with_all_answers() {
    let (server, symbols) = family_server();
    let anc = solutions(&server, &symbols, "ancestor(tom, W)");
    assert_eq!(anc.len(), 6, "{anc:?}");
    assert_eq!(anc[0], "ancestor(tom, bob)", "program order first");
    assert!(anc.contains(&"ancestor(tom, jim)".to_owned()), "transitive");
}

#[test]
fn concurrent_clients_share_the_server() {
    let (server, symbols) = family_server();
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let server = Arc::clone(&server);
            let symbols = symbols.clone();
            scope.spawn(move || {
                for _ in 0..5 {
                    assert_eq!(solutions(&server, &symbols, "grandfather(G, jim)").len(), 1);
                    assert_eq!(solutions(&server, &symbols, "parent(tom, X)").len(), 2);
                }
            });
        }
    });
    assert_eq!(server.stats().solves, 6 * 5 * 2);
}

#[test]
fn every_fixed_mode_solves_identically() {
    let (server, symbols) = family_server();
    let mut local = symbols.clone();
    let (goal, names) = parse_term_with_vars("ancestor(A, jim)", &mut local).unwrap();
    let reference = server.solve(&goal, &names, &SolveOptions::default());
    for mode in SearchMode::ALL {
        let outcome = server.solve(
            &goal,
            &names,
            &SolveOptions {
                mode: ModeChoice::Fixed(mode),
                ..SolveOptions::default()
            },
        );
        assert_eq!(outcome.solutions, reference.solutions, "mode {mode}");
    }
}

#[test]
fn mixed_relations_are_first_class() {
    // The paper: coupled systems disallow predicates mixing ground facts
    // with rules; the integrated system must handle them, in user order.
    let mut builder = KbBuilder::new();
    builder
        .consult(
            "m",
            "
            status(web1, up).
            status(S, degraded) :- alarm(S).
            status(db1, down).
            alarm(cache1).
            ",
        )
        .unwrap();
    let (goal, names) = parse_term_with_vars("status(S, What)", builder.symbols_mut()).unwrap();
    let kb = builder.finish(KbConfig::default());
    assert!(kb.lookup("status", 2).unwrap().is_mixed());
    let outcome = solve(&kb, &goal, &names, &SolveOptions::default());
    let rendered: Vec<String> = outcome
        .solutions
        .iter()
        .map(|s| TermDisplay::new(&s.term, kb.symbols()).to_string())
        .collect();
    // Clause order: the fact, then the rule's answers, then the last fact.
    assert_eq!(
        rendered,
        vec![
            "status(web1, up)",
            "status(cache1, degraded)",
            "status(db1, down)"
        ]
    );
}

#[test]
fn atom_headed_and_list_heavy_programs() {
    let mut builder = KbBuilder::new();
    builder
        .consult(
            "m",
            "
            ready.
            member(X, [X | _]).
            member(X, [_ | T]) :- member(X, T).
            ",
        )
        .unwrap();
    let (ready, names0) = parse_term_with_vars("ready", builder.symbols_mut()).unwrap();
    let (mem, names) = parse_term_with_vars("member(E, [a, b, c])", builder.symbols_mut()).unwrap();
    let kb = builder.finish(KbConfig::default());
    assert_eq!(
        solve(&kb, &ready, &names0, &SolveOptions::default())
            .solutions
            .len(),
        1
    );
    let outcome = solve(&kb, &mem, &names, &SolveOptions::default());
    let es: Vec<String> = outcome
        .solutions
        .iter()
        .map(|s| TermDisplay::new(&s.bindings[0].1, kb.symbols()).to_string())
        .collect();
    assert_eq!(es, vec!["a", "b", "c"]);
}

#[test]
fn large_disk_module_solves_through_hardware() {
    let mut builder = KbBuilder::new();
    let mut source = String::new();
    for i in 0..5000 {
        source.push_str(&format!("edge(n{}, n{}).\n", i, (i + 1) % 5000));
    }
    source.push_str("linked(A, B) :- edge(A, B).\n");
    source.push_str("linked(A, C) :- edge(A, B), edge(B, C).\n");
    builder.consult("graph", &source).unwrap();
    let (goal, names) = parse_term_with_vars("linked(n10, X)", builder.symbols_mut()).unwrap();
    let kb = builder.finish(KbConfig::default());
    assert_eq!(
        kb.modules()[0].kind(),
        clare::kb::ModuleKind::Large,
        "big module is disk resident"
    );
    let outcome = solve(
        &kb,
        &goal,
        &names,
        &SolveOptions {
            mode: ModeChoice::Fixed(SearchMode::TwoStage),
            ..SolveOptions::default()
        },
    );
    let xs: Vec<String> = outcome
        .solutions
        .iter()
        .map(|s| TermDisplay::new(&s.bindings[0].1, kb.symbols()).to_string())
        .collect();
    assert_eq!(xs, vec!["n11", "n12"]);
}

#[test]
fn conjunction_queries_share_bindings() {
    let (server, symbols) = family_server();
    let mut local = symbols.clone();
    let (goals, names) =
        clare::term::parser::parse_goals("parent(tom, X), parent(X, Y)", &mut local).unwrap();
    let outcome = server.solve_goals(&goals, &names, &SolveOptions::default());
    // X ranges over {bob, liz}; only bob has children (ann, pat), liz has joe.
    let bindings: Vec<(String, String)> = outcome
        .solutions
        .iter()
        .map(|s| {
            (
                TermDisplay::new(&s.bindings[0].1, &local).to_string(),
                TermDisplay::new(&s.bindings[1].1, &local).to_string(),
            )
        })
        .collect();
    assert_eq!(
        bindings,
        vec![
            ("bob".to_owned(), "ann".to_owned()),
            ("bob".to_owned(), "pat".to_owned()),
            ("liz".to_owned(), "joe".to_owned()),
        ]
    );
}

#[test]
fn conjunction_with_no_shared_solutions_fails() {
    let (server, symbols) = family_server();
    let mut local = symbols.clone();
    let (goals, names) =
        clare::term::parser::parse_goals("parent(tom, X), female(X), male(X)", &mut local).unwrap();
    let outcome = server.solve_goals(&goals, &names, &SolveOptions::default());
    assert!(outcome.solutions.is_empty());
}
