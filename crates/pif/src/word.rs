//! PIF words and argument streams.
//!
//! A word is an 8-bit type tag plus a 24-bit content field, packed into
//! 32 bits, optionally followed by a 32-bit extension (used by pointer
//! words). This is what travels over the In-bus to the FS2 comparator.

use crate::error::PifError;
use crate::tags::TypeTag;
use bytes::{Buf, BufMut};
use std::fmt;

/// Maximum value of the 24-bit content field.
pub const CONTENT_MAX: u32 = 0x00FF_FFFF;

/// Smallest integer encodable in-line (28-bit two's complement).
pub const INT_MIN: i64 = -(1 << 27);
/// Largest integer encodable in-line (28-bit two's complement).
pub const INT_MAX: i64 = (1 << 27) - 1;

/// One PIF word: tag byte, 24-bit content, optional 32-bit extension.
///
/// # Examples
///
/// ```
/// use clare_pif::{PifWord, TypeTag};
///
/// let w = PifWord::new(TypeTag::AtomPtr, 42);
/// assert_eq!(w.tag(), 0x08);
/// assert_eq!(w.content(), 42);
/// assert_eq!(PifWord::from_u32(w.to_u32()).unwrap(), w);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PifWord {
    type_tag: TypeTag,
    content: u32,
    extension: Option<u32>,
}

impl PifWord {
    /// Creates a word with no extension.
    ///
    /// # Panics
    ///
    /// Panics if `content` exceeds the 24-bit field; encoders validate
    /// ranges with [`PifError`] before constructing words.
    pub fn new(type_tag: TypeTag, content: u32) -> Self {
        assert!(content <= CONTENT_MAX, "content exceeds 24-bit field");
        PifWord {
            type_tag,
            content,
            extension: None,
        }
    }

    /// Creates a word carrying a 32-bit extension (pointer words).
    ///
    /// # Panics
    ///
    /// Panics if `content` exceeds the 24-bit field.
    pub fn with_extension(type_tag: TypeTag, content: u32, extension: u32) -> Self {
        assert!(content <= CONTENT_MAX, "content exceeds 24-bit field");
        PifWord {
            type_tag,
            content,
            extension: Some(extension),
        }
    }

    /// Encodes an in-line integer word.
    ///
    /// # Errors
    ///
    /// Returns [`PifError::IntOutOfRange`] outside the 28-bit range.
    pub fn int(value: i64) -> Result<Self, PifError> {
        if !(INT_MIN..=INT_MAX).contains(&value) {
            return Err(PifError::IntOutOfRange(value));
        }
        let bits = (value as u32) & 0x0FFF_FFFF; // 28-bit two's complement
        Ok(PifWord {
            type_tag: TypeTag::IntInline {
                high_nibble: (bits >> 24) as u8,
            },
            content: bits & CONTENT_MAX,
            extension: None,
        })
    }

    /// Decodes the value of an in-line integer word.
    ///
    /// Returns `None` if the word is not an integer.
    pub fn int_value(&self) -> Option<i64> {
        match self.type_tag {
            TypeTag::IntInline { high_nibble } => {
                let bits = ((high_nibble as u32) << 24) | self.content;
                // Sign-extend from 28 bits.
                let extended = ((bits << 4) as i32) >> 4;
                Some(extended as i64)
            }
            _ => None,
        }
    }

    /// The decoded type tag.
    pub fn type_tag(&self) -> TypeTag {
        self.type_tag
    }

    /// The raw tag byte (Table A1 value).
    pub fn tag(&self) -> u8 {
        self.type_tag.to_byte()
    }

    /// The 24-bit content field.
    pub fn content(&self) -> u32 {
        self.content
    }

    /// The optional 32-bit extension.
    pub fn extension(&self) -> Option<u32> {
        self.extension
    }

    /// Packs tag and content into the 32-bit bus representation
    /// (tag in the most significant byte). The extension is not included.
    pub fn to_u32(&self) -> u32 {
        ((self.tag() as u32) << 24) | self.content
    }

    /// Unpacks a 32-bit bus word (no extension).
    ///
    /// # Errors
    ///
    /// Returns [`PifError::Malformed`] for an invalid tag byte.
    pub fn from_u32(raw: u32) -> Result<Self, PifError> {
        let type_tag = TypeTag::from_byte((raw >> 24) as u8)?;
        Ok(PifWord {
            type_tag,
            content: raw & CONTENT_MAX,
            extension: None,
        })
    }

    /// Size of this word on disk/bus in bytes (4, or 8 with an extension).
    pub fn byte_len(&self) -> usize {
        if self.extension.is_some() {
            8
        } else {
            4
        }
    }
}

impl fmt::Display for PifWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:#04x} {} c={:#08x}",
            self.tag(),
            self.type_tag,
            self.content
        )?;
        if let Some(ext) = self.extension {
            write!(f, " ext={ext:#010x}")?;
        }
        f.write_str("]")
    }
}

/// An argument stream: the sequence of PIF words the FS2 hardware walks for
/// one query or one clause head.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PifStream {
    words: Vec<PifWord>,
}

impl PifStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// The words in stream order.
    pub fn words(&self) -> &[PifWord] {
        &self.words
    }

    /// Appends a word.
    pub fn push(&mut self, word: PifWord) {
        self.words.push(word);
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the stream has no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Total size in bytes when written to disk (words plus extensions).
    /// This is the quantity the paper's MB/s filtering rates are measured
    /// over.
    pub fn byte_len(&self) -> usize {
        self.words.iter().map(PifWord::byte_len).sum()
    }

    /// Serializes the stream: each word as 4 big-endian bytes, pointer
    /// words followed by a 4-byte extension. A leading `u16` word count and
    /// `u16` extension bitmap-length make the encoding self-delimiting.
    pub fn write_to(&self, buf: &mut impl BufMut) {
        buf.put_u16(self.words.len() as u16);
        for word in &self.words {
            buf.put_u32(word.to_u32());
            buf.put_u8(word.extension.is_some() as u8);
            if let Some(ext) = word.extension {
                buf.put_u32(ext);
            }
        }
    }

    /// Deserializes a stream written by [`Self::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`PifError::Malformed`] on truncated or invalid data.
    pub fn read_from(buf: &mut impl Buf) -> Result<Self, PifError> {
        let malformed = |reason: &str| PifError::Malformed {
            offset: 0,
            reason: reason.to_owned(),
        };
        if buf.remaining() < 2 {
            return Err(malformed("truncated stream header"));
        }
        let count = buf.get_u16() as usize;
        let mut words = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 5 {
                return Err(malformed("truncated word"));
            }
            let mut word = PifWord::from_u32(buf.get_u32())?;
            // The extension flag is strictly 0 or 1: anything else means the
            // stream is corrupt (or adversarial), not merely sloppy.
            let has_ext = match buf.get_u8() {
                0 => false,
                1 => true,
                other => {
                    return Err(malformed(&format!("invalid extension flag {other:#04x}")));
                }
            };
            if has_ext {
                if buf.remaining() < 4 {
                    return Err(malformed("truncated extension"));
                }
                word.extension = Some(buf.get_u32());
            }
            words.push(word);
        }
        Ok(PifStream { words })
    }
}

impl FromIterator<PifWord> for PifStream {
    fn from_iter<I: IntoIterator<Item = PifWord>>(iter: I) -> Self {
        PifStream {
            words: iter.into_iter().collect(),
        }
    }
}

impl Extend<PifWord> for PifStream {
    fn extend<I: IntoIterator<Item = PifWord>>(&mut self, iter: I) {
        self.words.extend(iter);
    }
}

impl<'a> IntoIterator for &'a PifStream {
    type Item = &'a PifWord;
    type IntoIter = std::slice::Iter<'a, PifWord>;
    fn into_iter(self) -> Self::IntoIter {
        self.words.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_encoding_roundtrip() {
        for v in [0i64, 1, -1, 1000, -1000, INT_MAX, INT_MIN] {
            let w = PifWord::int(v).unwrap();
            assert_eq!(w.int_value(), Some(v), "roundtrip {v}");
        }
    }

    #[test]
    fn int_out_of_range_rejected() {
        assert_eq!(
            PifWord::int(INT_MAX + 1),
            Err(PifError::IntOutOfRange(INT_MAX + 1))
        );
        assert_eq!(
            PifWord::int(INT_MIN - 1),
            Err(PifError::IntOutOfRange(INT_MIN - 1))
        );
        assert!(PifWord::int(i64::MAX).is_err());
    }

    #[test]
    fn int_tag_nibble_is_high_nibble() {
        // Value 0x7123456: tag nibble must be the most significant nibble
        // of the 28-bit value, content the remaining 24 bits.
        let w = PifWord::int(0x712_3456).unwrap();
        assert_eq!(w.tag(), 0x17);
        assert_eq!(w.content(), 0x12_3456);
    }

    #[test]
    fn u32_pack_unpack() {
        let w = PifWord::new(TypeTag::AtomPtr, 0x00AB_CDEF);
        let raw = w.to_u32();
        assert_eq!(raw >> 24, 0x08);
        assert_eq!(PifWord::from_u32(raw).unwrap(), w);
    }

    #[test]
    fn from_u32_rejects_bad_tag() {
        assert!(PifWord::from_u32(0x00_000000).is_err());
    }

    #[test]
    fn byte_len_counts_extension() {
        let plain = PifWord::new(TypeTag::AtomPtr, 1);
        assert_eq!(plain.byte_len(), 4);
        let ptr = PifWord::with_extension(TypeTag::StructPtr { arity: 31 }, 7, 0xDEAD_BEEF);
        assert_eq!(ptr.byte_len(), 8);
    }

    #[test]
    fn stream_serialization_roundtrip() {
        let mut s = PifStream::new();
        s.push(PifWord::new(TypeTag::AtomPtr, 3));
        s.push(PifWord::int(-42).unwrap());
        s.push(PifWord::with_extension(
            TypeTag::StructPtr { arity: 31 },
            9,
            12345,
        ));
        let mut buf = Vec::new();
        s.write_to(&mut buf);
        let back = PifStream::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut s = PifStream::new();
        s.push(PifWord::new(TypeTag::AtomPtr, 3));
        let mut buf = Vec::new();
        s.write_to(&mut buf);
        buf.truncate(buf.len() - 1);
        assert!(PifStream::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    #[should_panic(expected = "24-bit")]
    fn oversized_content_panics() {
        PifWord::new(TypeTag::AtomPtr, CONTENT_MAX + 1);
    }

    #[test]
    fn stream_byte_len() {
        let mut s = PifStream::new();
        s.push(PifWord::new(TypeTag::AtomPtr, 1));
        s.push(PifWord::with_extension(
            TypeTag::StructPtr { arity: 2 },
            2,
            3,
        ));
        assert_eq!(s.byte_len(), 12);
    }
}
