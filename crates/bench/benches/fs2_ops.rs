//! Criterion counterpart of E1/E2 (Table 1, Figures 6–12): how fast the
//! *simulator* executes each of the seven hardware operations, and the
//! route-derivation cost itself.

use clare_fs2::{Fs2Engine, HwOp};
use clare_pif::{encode_clause_head, encode_query};
use clare_term::parser::parse_term;
use clare_term::SymbolTable;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Query/clause pairs whose match is dominated by one operation each.
const OP_CASES: [(&str, &str, &str); 7] = [
    ("match", "f(a, b, c)", "f(a, b, c)"),
    ("db_store", "f(a, b, c)", "f(A, B, C)"),
    ("query_store", "f(X, Y, Z)", "f(a, b, c)"),
    ("db_fetch", "f(a, a, a)", "f(A, A, A)"),
    ("query_fetch", "f(X, X, X)", "f(a, a, a)"),
    ("db_cross_bound_fetch", "f(X, a, a)", "f(A, A, A)"),
    ("query_cross_bound_fetch", "f(X, Y, X, Y)", "f(B, B, c, c)"),
];

fn bench_op_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("fs2_op_matching");
    for (label, query, clause) in OP_CASES {
        let mut symbols = SymbolTable::new();
        let q = parse_term(query, &mut symbols).unwrap();
        let cl = parse_term(clause, &mut symbols).unwrap();
        let q_stream = encode_query(&q).unwrap();
        let c_stream = encode_clause_head(&cl).unwrap();
        let mut engine = Fs2Engine::new(&q_stream).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| black_box(engine.match_clause_stream(black_box(&c_stream)).matched))
        });
    }
    group.finish();
}

fn bench_route_derivation(c: &mut Criterion) {
    c.bench_function("table1_derivation", |b| {
        b.iter(|| {
            let total: u64 = HwOp::ALL.iter().map(|op| op.execution_time().as_ns()).sum();
            black_box(total)
        })
    });
}

/// Short measurement windows keep the full suite fast while staying
/// statistically useful.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_op_matching, bench_route_derivation
}
criterion_main!(benches);
