//! Host-side execution parameters for the software FS2 sweep.
//!
//! The real FS2 board keeps pace with the disk because the Double Buffer
//! overlaps one track's transfer with the previous track's matching; the
//! *simulated* sweep has no such free lunch — it pays host CPU time per
//! clause. [`Fs2Config`] tunes how that host work is executed (worker
//! threads, tracks per shard, pre-decoded streams), the exact analogue of
//! [`ScwConfig`]'s parallelism knobs for the FS1 scan. None of these
//! knobs affect the answer set or any modelled time: satisfiers, FS2
//! matching time, disk time, and double-buffer overlap accounting are
//! byte-identical at every setting — only host wall-clock changes.
//!
//! [`ScwConfig`]: https://docs.rs/clare-scw

/// Default tracks per shard for the parallel FS2 sweep — the unit of work
/// one worker claims, standing in for the span one disk head streams
/// before the arm repositions.
pub const DEFAULT_SHARD_TRACKS: usize = 4;

/// Host-side FS2 sweep configuration.
///
/// # Examples
///
/// ```
/// use clare_fs2::Fs2Config;
///
/// let c = Fs2Config::paper();
/// assert_eq!(c.parallelism(), 1);
/// assert!(c.predecoded());
///
/// let parallel = c.with_parallelism(4).with_shard_tracks(2);
/// assert_eq!(parallel.parallelism(), 4);
/// assert_eq!(parallel.shard_tracks(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fs2Config {
    parallelism: usize,
    shard_tracks: usize,
    predecoded: bool,
}

impl Fs2Config {
    /// The default configuration: sequential matching on the calling
    /// thread over pre-decoded clause streams (one FS2 board, one head).
    pub fn paper() -> Self {
        Fs2Config {
            parallelism: 1,
            shard_tracks: DEFAULT_SHARD_TRACKS,
            predecoded: true,
        }
    }

    /// Number of worker threads the track sweep uses — the software
    /// analogue of several FS2 boards filtering different tracks.
    /// 1 (the default) matches sequentially on the calling thread.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Sets the sweep parallelism (clamped to at least 1). Satisfiers and
    /// every modelled time are identical at every level; only host
    /// wall-clock changes.
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers.max(1);
        self
    }

    /// Tracks per sweep shard — the unit of work one parallel worker
    /// claims at a time.
    pub fn shard_tracks(&self) -> usize {
        self.shard_tracks
    }

    /// Sets the shard size (clamped to at least 1).
    pub fn with_shard_tracks(mut self, tracks: usize) -> Self {
        self.shard_tracks = tracks.max(1);
        self
    }

    /// True (the default) if the sweep matches pre-decoded clause-head
    /// streams from the knowledge base's arena; false re-decodes every
    /// record's bytes per retrieval — the retained reference path, kept
    /// for equivalence tests and as the bench baseline.
    pub fn predecoded(&self) -> bool {
        self.predecoded
    }

    /// Selects between the pre-decoded arena path and the byte-decoding
    /// reference path. The verdicts and modelled times are identical.
    pub fn with_predecoded(mut self, predecoded: bool) -> Self {
        self.predecoded = predecoded;
        self
    }
}

impl Default for Fs2Config {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = Fs2Config::paper();
        assert_eq!(c.parallelism(), 1);
        assert_eq!(c.shard_tracks(), DEFAULT_SHARD_TRACKS);
        assert!(c.predecoded());
        assert_eq!(Fs2Config::default(), c);
    }

    #[test]
    fn knobs_clamp_and_chain() {
        let c = Fs2Config::paper()
            .with_parallelism(0)
            .with_shard_tracks(0)
            .with_predecoded(false);
        assert_eq!(c.parallelism(), 1);
        assert_eq!(c.shard_tracks(), 1);
        assert!(!c.predecoded());
        let c = c.with_parallelism(7).with_shard_tracks(16);
        assert_eq!(c.parallelism(), 7);
        assert_eq!(c.shard_tracks(), 16);
    }
}
