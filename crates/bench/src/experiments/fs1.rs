//! E6 — §2.1/§4: the FS1 index scan against exhaustive search.
//!
//! "The size of a secondary file is generally much smaller than that of a
//! compiled clause file, thereby enabling quicker retrieval to be achieved
//! by scanning the former than by searching the latter exhaustively."
//! The FS1 prototype "can search data at a rate of up to 4.5 Mbyte/sec".

use clare_disk::DiskProfile;
use clare_kb::{KbBuilder, KbConfig};
use clare_scw::ScwConfig;
use clare_workload::WarrenSpec;
use std::fmt;

/// The FS1 report.
#[derive(Debug, Clone, PartialEq)]
pub struct Fs1Report {
    /// Clauses in the measured predicate.
    pub clauses: usize,
    /// Compiled clause file size (bytes, whole tracks).
    pub clause_file_bytes: usize,
    /// Secondary index file size (bytes).
    pub index_bytes: usize,
    /// FS1 prototype scan rate (MB/s).
    pub fs1_rate_mb: f64,
    /// Time to scan the secondary file: max(disk delivery, FS1), ms.
    pub index_scan_ms: f64,
    /// Time to stream the whole clause file (exhaustive search floor), ms.
    pub exhaustive_ms: f64,
}

impl Fs1Report {
    /// Clause-file-to-index size ratio.
    pub fn size_ratio(&self) -> f64 {
        self.clause_file_bytes as f64 / self.index_bytes as f64
    }

    /// Exhaustive-to-index time speedup.
    pub fn speedup(&self) -> f64 {
        self.exhaustive_ms / self.index_scan_ms
    }
}

/// Runs the experiment on a Warren-style knowledge base.
pub fn run(scale: f64) -> Fs1Report {
    let spec = WarrenSpec::scaled(scale);
    let mut builder = KbBuilder::new();
    spec.generate(&mut builder, "warren");
    let kb = builder.finish(KbConfig::default());
    // Aggregate over every predicate: the secondary files together against
    // the clause files together.
    let disk = DiskProfile::fujitsu_m2351a();
    let scw = ScwConfig::paper();
    let mut clauses = 0usize;
    let mut clause_file_bytes = 0usize;
    let mut index_bytes = 0usize;
    let mut exhaustive_ns = 0u64;
    for module in kb.modules() {
        for pred in module.predicates() {
            clauses += pred.clauses().len();
            clause_file_bytes += pred.file().occupied_bytes();
            index_bytes += pred.index().file_bytes();
            exhaustive_ns += pred.file().scan_time(&disk).as_ns();
        }
    }
    let disk_delivery = disk.sustained_rate().transfer_time(index_bytes as u64);
    let fs1_processing = scw.scan_rate().transfer_time(index_bytes as u64);
    let positioning = disk.avg_seek() + disk.avg_rotational_latency();
    let index_scan_ns = (positioning + disk_delivery.max(fs1_processing)).as_ns();
    Fs1Report {
        clauses,
        clause_file_bytes,
        index_bytes,
        fs1_rate_mb: scw.scan_rate().as_mb_per_sec(),
        index_scan_ms: index_scan_ns as f64 / 1e6,
        exhaustive_ms: exhaustive_ns as f64 / 1e6,
    }
}

impl fmt::Display for Fs1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E6 / §2.1+§4: FS1 secondary-file scan vs exhaustive search\n"
        )?;
        writeln!(f, "clauses                  : {}", self.clauses)?;
        writeln!(
            f,
            "compiled clause files    : {:.1} KB",
            self.clause_file_bytes as f64 / 1024.0
        )?;
        writeln!(
            f,
            "secondary (index) files  : {:.1} KB ({:.1}x smaller)",
            self.index_bytes as f64 / 1024.0,
            self.size_ratio()
        )?;
        writeln!(f, "FS1 scan rate            : {:.1} MB/s", self.fs1_rate_mb)?;
        writeln!(f, "index scan time          : {:.2} ms", self.index_scan_ms)?;
        writeln!(f, "exhaustive stream time   : {:.2} ms", self.exhaustive_ms)?;
        writeln!(f, "speedup                  : {:.1}x", self.speedup())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_much_smaller_and_faster() {
        let r = run(0.002);
        assert!(
            r.size_ratio() > 3.0,
            "index is much smaller: {}",
            r.size_ratio()
        );
        assert!(r.speedup() > 2.0, "index scan is faster: {}", r.speedup());
    }

    #[test]
    fn fs1_rate_is_4_5() {
        let r = run(0.0005);
        assert!((r.fs1_rate_mb - 4.5).abs() < 1e-9);
    }

    #[test]
    fn fs1_outruns_disk_delivery() {
        // 4.5 MB/s FS1 vs 2 MB/s disk: the scan is disk-bound, matching
        // the paper's conclusion for the whole CLARE pipeline.
        let r = run(0.001);
        let disk_ms = r.index_bytes as f64
            / DiskProfile::fujitsu_m2351a()
                .sustained_rate()
                .as_bytes_per_sec()
            * 1e3;
        // positioning + disk-bound transfer: FS1 adds nothing on top.
        assert!(r.index_scan_ms >= disk_ms);
        let fs1_ms = r.index_bytes as f64 / (r.fs1_rate_mb * 1e6) * 1e3;
        assert!(fs1_ms < disk_ms);
    }
}
