//! `clare-tables` — regenerates every table and figure of the paper.
//!
//! ```text
//! clare-tables                  # print every experiment
//! clare-tables table1 fs1       # print selected experiments
//! clare-tables --list           # list experiment names
//! clare-tables fs2bench --quick # small sizes, no BENCH_*.json write
//! clare-tables metrics --json   # dump the metrics registry as JSON
//! ```

use clare_bench::experiments;

const EXPERIMENTS: &[(&str, &str)] = &[
    ("table1", "E1: Table 1 — FS2 operation execution times"),
    ("figures", "E2: Figures 6-12 — datapath route timings"),
    ("tableA1", "E3: Table A1 — PIF data type scheme"),
    ("fig1", "E4: Figure 1 — matching algorithm validation"),
    ("throughput", "E5: FS2 filtering rate vs disks"),
    ("fs1", "E6: FS1 index scan vs exhaustive search"),
    ("falsedrops", "E7: SCW+MB false-drop sources"),
    ("modes", "E8: the four search modes"),
    ("levels", "E9: matching levels 1-5 ablation"),
    ("warren", "E10: Warren-scale scalability"),
    ("resultmem", "E11: Result Memory sizing"),
    ("suite", "E12: database benchmark suite (refs [6,7] style)"),
    ("lists", "E13: unlimited-list matching (two-counter rule)"),
    (
        "fs1bench",
        "E14: FS1 host scan wall-clock (writes BENCH_fs1.json)",
    ),
    (
        "fs2bench",
        "E15: FS2 two-stage host wall-clock (writes BENCH_fs2.json)",
    ),
    (
        "cachebench",
        "E16: retrieval cache wall-clock (writes BENCH_cache.json)",
    ),
    (
        "netbench",
        "E17: serving-core wall-clock, reactor vs threaded (writes BENCH_net.json)",
    ),
    (
        "walbench",
        "E18: mutable-KB write path + compaction wall-clock (writes BENCH_wal.json)",
    ),
    (
        "clusterbench",
        "E19: sharded-cluster wall-clock, 1/2/4 shards (writes BENCH_cluster.json)",
    ),
    (
        "microprogram",
        "appendix: the assembled WCS microprogram listing",
    ),
    (
        "metrics",
        "observability: run a retrieval mix, dump the metrics registry (--json)",
    ),
];

fn run_one(name: &str, quick: bool, json: bool) -> bool {
    let divider = "=".repeat(72);
    println!("{divider}");
    match name {
        "table1" => println!("{}", experiments::table1::run()),
        "figures" => println!("{}", experiments::figures::run()),
        "tableA1" => println!("{}", experiments::table_a1::run()),
        "fig1" => println!("{}", experiments::fig1::run(5000, 0xF1_61)),
        "throughput" => println!("{}", experiments::throughput::run(0.002)),
        "fs1" => println!("{}", experiments::fs1::run(0.002)),
        "falsedrops" => println!("{}", experiments::false_drops::run()),
        "modes" => println!("{}", experiments::modes::run()),
        "levels" => println!("{}", experiments::levels::run(4)),
        "warren" => println!(
            "{}",
            experiments::warren_scale::run(&[0.0005, 0.001, 0.002, 0.005])
        ),
        "resultmem" => println!("{}", experiments::result_memory::run()),
        "suite" => println!("{}", experiments::bench_suite::run(1)),
        "lists" => println!("{}", experiments::lists::run()),
        "fs1bench" => {
            if quick {
                // CI smoke run: small sizes, tight budget, no file write.
                let report = experiments::fs1_wallclock::run(
                    &[1_000, 5_000],
                    std::time::Duration::from_millis(60),
                );
                println!("{report}");
            } else {
                let report = experiments::fs1_wallclock::run(
                    &[1_000, 10_000, 100_000],
                    std::time::Duration::from_secs(1),
                );
                println!("{report}");
                match std::fs::write("BENCH_fs1.json", report.to_json()) {
                    Ok(()) => println!("wrote BENCH_fs1.json"),
                    Err(e) => eprintln!("could not write BENCH_fs1.json: {e}"),
                }
            }
        }
        "fs2bench" => {
            if quick {
                // CI smoke run: small sizes, tight budget, no file write.
                let report = experiments::fs2_wallclock::run(
                    &[1_000, 5_000],
                    std::time::Duration::from_millis(60),
                );
                println!("{report}");
            } else {
                let report = experiments::fs2_wallclock::run(
                    &[1_000, 10_000, 100_000],
                    std::time::Duration::from_secs(1),
                );
                println!("{report}");
                match std::fs::write("BENCH_fs2.json", report.to_json()) {
                    Ok(()) => println!("wrote BENCH_fs2.json"),
                    Err(e) => eprintln!("could not write BENCH_fs2.json: {e}"),
                }
            }
        }
        "cachebench" => {
            if quick {
                // CI smoke run: small sizes, tight budget, no file write.
                let report = experiments::cache_wallclock::run(
                    &[0.0, 0.9],
                    2_000,
                    64,
                    std::time::Duration::from_millis(60),
                );
                println!("{report}");
            } else {
                let report = experiments::cache_wallclock::run(
                    &[0.0, 0.5, 0.9, 0.99],
                    20_000,
                    256,
                    std::time::Duration::from_secs(1),
                );
                println!("{report}");
                match std::fs::write("BENCH_cache.json", report.to_json()) {
                    Ok(()) => println!("wrote BENCH_cache.json"),
                    Err(e) => eprintln!("could not write BENCH_cache.json: {e}"),
                }
            }
        }
        "netbench" => {
            use clare_net::ServerMode::{Reactor, Threaded};
            use experiments::net_wallclock::NetCase;
            let case = |mode, connections, depth| NetCase {
                mode,
                connections,
                depth,
            };
            if quick {
                // CI smoke run: 64/256 connections x depth 1/8 on both
                // intake cores. The report file IS written in quick mode —
                // CI uploads it as the net-bench-smoke artifact.
                let cases = [
                    case(Threaded, 64, 1),
                    case(Threaded, 64, 8),
                    case(Threaded, 256, 1),
                    case(Threaded, 256, 8),
                    case(Reactor, 64, 1),
                    case(Reactor, 64, 8),
                    case(Reactor, 256, 1),
                    case(Reactor, 256, 8),
                ];
                let report = experiments::net_wallclock::run(&cases, 2_000, 2);
                println!("{report}");
                match std::fs::write("BENCH_net.json", report.to_json()) {
                    Ok(()) => println!("wrote BENCH_net.json"),
                    Err(e) => eprintln!("could not write BENCH_net.json: {e}"),
                }
            } else {
                // The full matrix adds the C10K-scale point the threaded
                // core is never asked to serve: the reactor at 1024
                // concurrent connections.
                let cases = [
                    case(Threaded, 64, 1),
                    case(Threaded, 64, 8),
                    case(Threaded, 256, 1),
                    case(Threaded, 256, 8),
                    case(Reactor, 64, 1),
                    case(Reactor, 64, 8),
                    case(Reactor, 256, 1),
                    case(Reactor, 256, 8),
                    case(Reactor, 1024, 1),
                    case(Reactor, 1024, 8),
                ];
                let report = experiments::net_wallclock::run(&cases, 5_000, 4);
                println!("{report}");
                match std::fs::write("BENCH_net.json", report.to_json()) {
                    Ok(()) => println!("wrote BENCH_net.json"),
                    Err(e) => eprintln!("could not write BENCH_net.json: {e}"),
                }
            }
        }
        "walbench" => {
            if quick {
                // CI smoke run: small base, tight budget. The report file
                // IS written in quick mode — CI uploads it as the
                // wal-bench-smoke artifact.
                let report = experiments::wal_wallclock::run(
                    2_000,
                    16,
                    &[1, 8],
                    500,
                    std::time::Duration::from_millis(60),
                );
                println!("{report}");
                match std::fs::write("BENCH_wal.json", report.to_json()) {
                    Ok(()) => println!("wrote BENCH_wal.json"),
                    Err(e) => eprintln!("could not write BENCH_wal.json: {e}"),
                }
            } else {
                let report = experiments::wal_wallclock::run(
                    20_000,
                    32,
                    &[1, 8, 64],
                    2_000,
                    std::time::Duration::from_secs(1),
                );
                println!("{report}");
                match std::fs::write("BENCH_wal.json", report.to_json()) {
                    Ok(()) => println!("wrote BENCH_wal.json"),
                    Err(e) => eprintln!("could not write BENCH_wal.json: {e}"),
                }
            }
        }
        "clusterbench" => {
            if quick {
                // CI smoke run: 1 and 2 shards, small base. The report
                // file IS written in quick mode — CI uploads it as the
                // cluster-bench-smoke artifact.
                let report = experiments::cluster_wallclock::run(&[1, 2], 200, 8, 2_000);
                println!("{report}");
                match std::fs::write("BENCH_cluster.json", report.to_json()) {
                    Ok(()) => println!("wrote BENCH_cluster.json"),
                    Err(e) => eprintln!("could not write BENCH_cluster.json: {e}"),
                }
            } else {
                let report = experiments::cluster_wallclock::run(&[1, 2, 4], 2_400, 16, 8_000);
                println!("{report}");
                match std::fs::write("BENCH_cluster.json", report.to_json()) {
                    Ok(()) => println!("wrote BENCH_cluster.json"),
                    Err(e) => eprintln!("could not write BENCH_cluster.json: {e}"),
                }
            }
        }
        "microprogram" => println!("{}", clare_fs2::Microprogram::standard()),
        "metrics" => print!("{}", experiments::metrics_dump::run(json)),
        other => {
            eprintln!("unknown experiment `{other}`; try --list");
            return false;
        }
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        for (name, description) in EXPERIMENTS {
            println!("{name:<12} {description}");
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let json = args.iter().any(|a| a == "--json");
    let selected: Vec<&str> = if args.iter().all(|a| a.starts_with('-')) {
        EXPERIMENTS.iter().map(|(n, _)| *n).collect()
    } else {
        args.iter()
            .filter(|a| !a.starts_with('-'))
            .map(String::as_str)
            .collect()
    };
    let mut ok = true;
    for name in selected {
        ok &= run_one(name, quick, json);
    }
    if !ok {
        std::process::exit(1);
    }
}
