//! Knowledge-base layer of the CLARE reproduction.
//!
//! The PDBM project stores clauses in Prolog-X **modules**: "small modules
//! which are loaded into main memory when required, and large modules which
//! are disk resident" (§2). Within a module, "predicates with the same
//! functor names and arities are stored in a compiled clause file" (§2.1),
//! each with a **secondary file** of SCW+MB index entries.
//!
//! This crate models exactly that:
//!
//! * [`Predicate`] — a clause set in user order, compiled to a
//!   track-organised [`StoredFile`](clare_disk::StoredFile) of
//!   [`ClauseRecord`](clare_pif::ClauseRecord)s plus an
//!   [`IndexFile`](clare_scw::IndexFile).
//! * [`Module`] — a named group of predicates, classified
//!   [`ModuleKind::Small`] (memory resident) or [`ModuleKind::Large`]
//!   (disk resident) by a size threshold.
//! * [`KnowledgeBase`] / [`KbBuilder`] — the whole store with its shared
//!   [`SymbolTable`](clare_term::SymbolTable). Facts and rules mix freely
//!   in one predicate and keep their order — the integrated-system
//!   property the paper contrasts with coupled EDB/IDB designs.
//!
//! # Examples
//!
//! ```
//! use clare_kb::{KbBuilder, KbConfig};
//!
//! let mut builder = KbBuilder::new();
//! builder.consult("family", "
//!     parent(tom, bob).
//!     parent(bob, ann).
//!     grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
//! ")?;
//! let kb = builder.finish(KbConfig::default());
//! assert_eq!(kb.clause_count(), 3);
//! let parent = kb.lookup("parent", 2).expect("predicate exists");
//! assert_eq!(parent.clauses().len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod arena;
pub mod build;
pub mod io;
pub mod predicate;
pub mod stats;

pub use arena::ClauseArena;
pub use build::{KbBuilder, KbConfig, KbError};
pub use io::{load_from_path, save_to_path, KbIoError};
pub use predicate::{KnowledgeBase, Module, ModuleKind, Predicate};
pub use stats::KbStats;
