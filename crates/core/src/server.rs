//! Multi-client access: the Clause Retrieval Server proper.
//!
//! "The CRS will also support simultaneous access by multiple clients
//! which involves procedures for concurrency control and transaction
//! handling." (§2.2.) The server holds the knowledge base behind a
//! read/write lock: retrievals and solves run concurrently (each client
//! gets its own FS2 engine state — the simulated hardware is virtualised
//! per call, as a time-sliced CRS would do), while updates swap in a new
//! compiled knowledge base atomically.

use crate::cache::{Fs1Cache, QueryKey, RetrievalCache, Stamp};
use crate::crs::{retrieve, CrsOptions, Retrieval, SearchMode};
use crate::resolve::{SolveOptions, SolveOutcome};
use clare_disk::SimNanos;
use clare_kb::KnowledgeBase;
use clare_scw::ScanOutcome;
use clare_term::Term;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Aggregate service statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Retrievals served (batch members count individually).
    pub retrievals: u64,
    /// Batch retrieval calls served (each also bumps `retrievals` by the
    /// batch size).
    pub batches: u64,
    /// Solve calls served.
    pub solves: u64,
    /// Knowledge-base updates committed.
    pub updates: u64,
    /// Requests refused by admission control (e.g. a network front-end
    /// shedding load when its queue is full); see
    /// [`ClauseRetrievalServer::note_rejected`].
    pub rejected: u64,
    /// Answers (retrievals or solves) served degraded: a storage fault
    /// quarantined at least one track, so the hardware filter was skipped
    /// there and the clauses re-served via software unification. Degraded
    /// answers are still correct — the count is a health signal, not an
    /// error count.
    pub degraded: u64,
    /// Total modelled retrieval time across clients.
    pub total_elapsed: SimNanos,
}

/// Seqlock-style holder of the server statistics: writers serialise on a
/// mutex and publish every field to an atomic mirror between two version
/// bumps (odd while a publication is in flight); readers copy the mirror
/// lock-free and retry if the version was odd or moved. Readers therefore
/// never block the serving path, and a [`ClauseRetrievalServer::stats`]
/// snapshot can never tear — e.g. observe a `retrieve_batch`'s `batches`
/// bump without its `retrievals` bump.
#[derive(Debug, Default)]
struct StatsCell {
    /// Authoritative copy; also the writer lock.
    write: Mutex<ServerStats>,
    /// Publication version: odd while the mirror is being rewritten.
    version: AtomicU64,
    retrievals: AtomicU64,
    batches: AtomicU64,
    solves: AtomicU64,
    updates: AtomicU64,
    rejected: AtomicU64,
    degraded: AtomicU64,
    total_elapsed_ns: AtomicU64,
}

impl StatsCell {
    /// Applies `f` to the authoritative copy, then publishes it.
    fn update(&self, f: impl FnOnce(&mut ServerStats)) {
        let mut guard = self.write.lock();
        f(&mut guard);
        let s = *guard;
        // Enter the write-side critical section: the acquire half keeps
        // the field stores from hoisting above the bump to odd.
        self.version.fetch_add(1, Ordering::Acquire);
        self.retrievals.store(s.retrievals, Ordering::Relaxed);
        self.batches.store(s.batches, Ordering::Relaxed);
        self.solves.store(s.solves, Ordering::Relaxed);
        self.updates.store(s.updates, Ordering::Relaxed);
        self.rejected.store(s.rejected, Ordering::Relaxed);
        self.degraded.store(s.degraded, Ordering::Relaxed);
        self.total_elapsed_ns
            .store(s.total_elapsed.as_ns(), Ordering::Relaxed);
        // Exit: the release half keeps the stores from sinking below the
        // bump back to even.
        self.version.fetch_add(1, Ordering::Release);
    }

    /// A consistent lock-free snapshot.
    fn snapshot(&self) -> ServerStats {
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let s = ServerStats {
                retrievals: self.retrievals.load(Ordering::Relaxed),
                batches: self.batches.load(Ordering::Relaxed),
                solves: self.solves.load(Ordering::Relaxed),
                updates: self.updates.load(Ordering::Relaxed),
                rejected: self.rejected.load(Ordering::Relaxed),
                degraded: self.degraded.load(Ordering::Relaxed),
                total_elapsed: SimNanos::from_ns(self.total_elapsed_ns.load(Ordering::Relaxed)),
            };
            std::sync::atomic::fence(Ordering::Acquire);
            if self.version.load(Ordering::Relaxed) == v1 {
                return s;
            }
        }
    }
}

/// A shared, thread-safe clause retrieval service.
///
/// # Examples
///
/// ```
/// use clare_core::{ClauseRetrievalServer, CrsOptions, SearchMode};
/// use clare_kb::{KbBuilder, KbConfig};
/// use clare_term::parser::parse_term;
///
/// let mut b = KbBuilder::new();
/// b.consult("m", "p(a). p(b).")?;
/// let query = parse_term("p(a)", b.symbols_mut())?;
/// let server = ClauseRetrievalServer::new(b.finish(KbConfig::default()), CrsOptions::default());
///
/// let outcome = server.retrieve(&query, SearchMode::TwoStage);
/// assert_eq!(outcome.stats.unified, 1);
/// assert_eq!(server.stats().retrievals, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ClauseRetrievalServer {
    kb: RwLock<Arc<KnowledgeBase>>,
    options: CrsOptions,
    stats: StatsCell,
    /// Epoch-invalidated answer/FS1 cache ([`crate::cache`]). Epoch
    /// stamps are read under the same `kb` read lock the snapshot comes
    /// from, and updates bump epochs under the write lock, so a stamp and
    /// its snapshot are always mutually consistent.
    cache: RetrievalCache,
}

/// The server's [`Fs1Cache`] seam: key and stamp are captured here so the
/// retrieval pipeline stays ignorant of epochs.
struct ServerFs1Cache<'a> {
    cache: &'a RetrievalCache,
    key: &'a QueryKey,
    stamp: Stamp,
}

impl Fs1Cache for ServerFs1Cache<'_> {
    fn get(&self) -> Option<ScanOutcome> {
        self.cache.get_fs1(self.key, self.stamp)
    }

    fn put(&self, outcome: &ScanOutcome) {
        self.cache
            .put_fs1(self.key.clone(), self.stamp, outcome.clone());
    }
}

/// The `functor/arity` metric key of a query, if it has one.
fn pred_key(kb: &KnowledgeBase, query: &Term) -> Option<String> {
    let (functor, arity) = query.functor_arity()?;
    Some(format!("{}/{arity}", kb.symbols().atom_text(functor)))
}

impl ClauseRetrievalServer {
    /// Wraps a compiled knowledge base.
    pub fn new(kb: KnowledgeBase, options: CrsOptions) -> Self {
        let cache = RetrievalCache::new(&options.cache);
        ClauseRetrievalServer {
            kb: RwLock::new(Arc::new(kb)),
            options,
            stats: StatsCell::default(),
            cache,
        }
    }

    /// A snapshot of the current knowledge base (clients keep a consistent
    /// view even across a concurrent update).
    pub fn snapshot(&self) -> Arc<KnowledgeBase> {
        self.kb.read().clone()
    }

    /// The CRS configuration this server retrieves with. Front-ends (e.g.
    /// the network daemon) use this to build solve options that match the
    /// server's own retrieval path.
    pub fn options(&self) -> &CrsOptions {
        &self.options
    }

    /// Serves one retrieval. With the cache enabled (the default), a
    /// repeat of a recently served query skips the filter pipeline
    /// entirely and returns the byte-identical cached [`Retrieval`];
    /// degraded answers are never cached, and any knowledge-base update
    /// or track quarantine invalidates the affected entries.
    pub fn retrieve(&self, query: &Term, mode: SearchMode) -> Retrieval {
        let started = Instant::now();
        let (kb, outcome) = self.retrieve_through_cache(query, mode);
        self.stats.update(|stats| {
            stats.retrievals += 1;
            stats.degraded += u64::from(outcome.stats.degraded);
            stats.total_elapsed += outcome.stats.elapsed;
        });
        let m = clare_trace::metrics();
        m.crs_retrieve_wall_ns
            .record(started.elapsed().as_nanos() as u64);
        if let Some(key) = pred_key(&kb, query) {
            m.crs_predicates.record(&key, outcome.stats.elapsed.as_ns());
        }
        outcome
    }

    /// One retrieval through the cache: answer-layer hit, else the filter
    /// pipeline with the FS1 layer as a seam, then insertion of clean
    /// (non-degraded, mode-as-requested) answers.
    fn retrieve_through_cache(
        &self,
        query: &Term,
        mode: SearchMode,
    ) -> (Arc<KnowledgeBase>, Retrieval) {
        let key = if self.cache.enabled() {
            QueryKey::new(query)
        } else {
            None
        };
        let Some(key) = key else {
            // No canonical encoding (or cache off): the uncached pipeline.
            let kb = self.snapshot();
            let outcome = retrieve(&kb, query, mode, &self.options);
            return (kb, outcome);
        };
        let (kb, stamp) = self.snapshot_with_stamp(key.pred());
        if let Some(hit) = self.cache.get_answer(&key, mode, stamp) {
            return (kb, hit);
        }
        let fs1 = ServerFs1Cache {
            cache: &self.cache,
            key: &key,
            stamp,
        };
        let outcome = crate::crs::retrieve_cached(&kb, query, mode, &self.options, Some(&fs1));
        self.note_outcome(&key, mode, stamp, &outcome);
        (kb, outcome)
    }

    /// A knowledge-base snapshot plus the epoch stamp for `pred`, read
    /// under one read-lock acquisition. Updates bump epochs while holding
    /// the write lock, so the pair can never mix an old base with a new
    /// stamp or vice versa — the soundness core of the cache.
    fn snapshot_with_stamp(
        &self,
        pred: (clare_term::Symbol, usize),
    ) -> (Arc<KnowledgeBase>, Stamp) {
        let guard = self.kb.read();
        let stamp = self.cache.stamp(pred);
        (Arc::clone(&guard), stamp)
    }

    /// Post-retrieval cache bookkeeping: a quarantine invalidates the
    /// predicate (the stored file memoizes CRC verdicts, so later runs
    /// may legitimately differ); clean answers in the requested mode are
    /// inserted.
    fn note_outcome(&self, key: &QueryKey, mode: SearchMode, stamp: Stamp, outcome: &Retrieval) {
        if outcome.stats.quarantined_tracks > 0 {
            self.cache.bump_predicate(key.pred());
        }
        if !outcome.stats.degraded && outcome.stats.mode == mode {
            self.cache
                .put_answer(key.clone(), mode, stamp, outcome.clone());
        }
    }

    /// Serves a batch of retrievals against one consistent snapshot: the
    /// knowledge base is read once, same-predicate queries share a single
    /// FS1 index sweep plus one FS2 worker pool over the shared clause
    /// arena ([`crate::crs::retrieve_batch`]), and the service statistics
    /// are updated under one lock acquisition. Results are in query order
    /// and identical to issuing each query via
    /// [`ClauseRetrievalServer::retrieve`].
    pub fn retrieve_batch(&self, queries: &[Term], mode: SearchMode) -> Vec<Retrieval> {
        let started = Instant::now();
        let (kb, outcomes) = self.retrieve_batch_through_cache(queries, mode);
        self.stats.update(|stats| {
            stats.batches += 1;
            stats.retrievals += outcomes.len() as u64;
            for outcome in &outcomes {
                stats.degraded += u64::from(outcome.stats.degraded);
                stats.total_elapsed += outcome.stats.elapsed;
            }
        });
        let m = clare_trace::metrics();
        m.crs_batch_size.record(queries.len() as u64);
        m.crs_retrieve_wall_ns
            .record(started.elapsed().as_nanos() as u64);
        for (query, outcome) in queries.iter().zip(&outcomes) {
            if let Some(key) = pred_key(&kb, query) {
                m.crs_predicates.record(&key, outcome.stats.elapsed.as_ns());
            }
        }
        outcomes
    }

    /// Batch variant of [`retrieve_through_cache`]: answer-layer hits are
    /// taken per query, and only the misses flow through the shared
    /// batched pipeline (each with its own FS1-layer seam), preserving
    /// both query order and the coalescing wins for the cold subset.
    fn retrieve_batch_through_cache(
        &self,
        queries: &[Term],
        mode: SearchMode,
    ) -> (Arc<KnowledgeBase>, Vec<Retrieval>) {
        let keys: Vec<Option<QueryKey>> = if self.cache.enabled() {
            queries.iter().map(QueryKey::new).collect()
        } else {
            vec![None; queries.len()]
        };
        // One read-lock acquisition covers the snapshot and every stamp
        // (see snapshot_with_stamp for why that pairing matters).
        let (kb, stamps) = {
            let guard = self.kb.read();
            let stamps: Vec<Option<Stamp>> = keys
                .iter()
                .map(|key| key.as_ref().map(|key| self.cache.stamp(key.pred())))
                .collect();
            (Arc::clone(&guard), stamps)
        };
        let mut outcomes: Vec<Option<Retrieval>> = keys
            .iter()
            .zip(&stamps)
            .map(|(key, stamp)| match (key, stamp) {
                (Some(key), Some(stamp)) => self.cache.get_answer(key, mode, *stamp),
                _ => None,
            })
            .collect();
        let miss_idx: Vec<usize> = (0..queries.len())
            .filter(|&i| outcomes[i].is_none())
            .collect();
        if !miss_idx.is_empty() {
            let miss_queries: Vec<Term> = miss_idx.iter().map(|&i| queries[i].clone()).collect();
            let handles: Vec<Option<ServerFs1Cache<'_>>> = miss_idx
                .iter()
                .map(|&i| {
                    keys[i].as_ref().map(|key| ServerFs1Cache {
                        cache: &self.cache,
                        key,
                        stamp: stamps[i].unwrap_or_default(),
                    })
                })
                .collect();
            let handle_refs: Vec<Option<&dyn Fs1Cache>> = handles
                .iter()
                .map(|handle| handle.as_ref().map(|handle| handle as &dyn Fs1Cache))
                .collect();
            let computed = crate::crs::retrieve_batch_cached(
                &kb,
                &miss_queries,
                mode,
                &self.options,
                &handle_refs,
            );
            for (&i, outcome) in miss_idx.iter().zip(computed) {
                if let (Some(key), Some(stamp)) = (&keys[i], stamps[i]) {
                    self.note_outcome(key, mode, stamp, &outcome);
                }
                outcomes[i] = Some(outcome);
            }
        }
        let outcomes = outcomes
            .into_iter()
            .map(|outcome| outcome.unwrap_or_else(|| unreachable!("every slot filled above")))
            .collect();
        (kb, outcomes)
    }

    /// Serves one solve call.
    pub fn solve(
        &self,
        query: &Term,
        var_names: &[String],
        options: &SolveOptions,
    ) -> SolveOutcome {
        self.solve_goals(std::slice::from_ref(query), var_names, options)
    }

    /// Serves a conjunction of goals sharing one variable scope.
    pub fn solve_goals(
        &self,
        goals: &[Term],
        var_names: &[String],
        options: &SolveOptions,
    ) -> SolveOutcome {
        let started = Instant::now();
        let kb = self.snapshot();
        let outcome = crate::resolve::solve_goals(&kb, goals, var_names, options);
        self.stats.update(|stats| {
            stats.solves += 1;
            stats.degraded += u64::from(outcome.stats.degraded);
            stats.total_elapsed += outcome.stats.retrieval_elapsed;
        });
        clare_trace::metrics()
            .crs_solve_wall_ns
            .record(started.elapsed().as_nanos() as u64);
        outcome
    }

    /// Commits a new compiled knowledge base atomically. In-flight clients
    /// finish against their snapshot; new calls see the update.
    pub fn update(&self, kb: KnowledgeBase) {
        let mut guard = self.kb.write();
        // Bump cache epochs *while holding the write lock*: readers take
        // (snapshot, stamp) under the read lock, so they can never pair
        // the outgoing base with the incoming stamp or vice versa.
        self.cache.bump_for_update(&guard, &kb);
        *guard = Arc::new(kb);
        drop(guard);
        self.stats.update(|stats| stats.updates += 1);
    }

    /// Begins an update transaction against the current knowledge base:
    /// the returned [`UpdateTransaction`] accumulates new clauses and
    /// recompiles + swaps atomically on [`commit`](UpdateTransaction::commit).
    /// Readers are never blocked; concurrent transactions are
    /// last-writer-wins (the paper's CRS promises "procedures for
    /// concurrency control and transaction handling" — this is the
    /// optimistic variant).
    pub fn begin_update(&self) -> UpdateTransaction<'_> {
        UpdateTransaction {
            server: self,
            builder: self.snapshot().to_builder(),
        }
    }

    /// Records one admission-control refusal. Front-ends (such as the
    /// `clare-net` daemon) call this when they shed a request *before* it
    /// reaches the retrieval pipeline, so refusals stay observable in one
    /// place alongside the work that was served.
    pub fn note_rejected(&self) {
        self.stats.update(|stats| stats.rejected += 1);
    }

    /// Service statistics so far: a consistent snapshot that never tears
    /// (readers retry instead of observing a half-published update) and
    /// never blocks the serving path.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }
}

/// An in-progress knowledge-base update. Dropping it without
/// [`commit`](Self::commit) discards every change.
#[derive(Debug)]
pub struct UpdateTransaction<'a> {
    server: &'a ClauseRetrievalServer,
    builder: clare_kb::KbBuilder,
}

impl UpdateTransaction<'_> {
    /// Parses and appends clauses to `module` (created on first use).
    ///
    /// # Errors
    ///
    /// Returns the parse error; the transaction stays usable.
    pub fn consult(&mut self, module: &str, source: &str) -> Result<(), clare_kb::KbError> {
        self.builder.consult(module, source)
    }

    /// Appends one clause to `module`.
    pub fn add_clause(&mut self, module: &str, clause: clare_term::Clause) {
        self.builder.add_clause(module, clause);
    }

    /// The transaction's symbol table (parse queries/terms against it).
    pub fn symbols_mut(&mut self) -> &mut clare_term::SymbolTable {
        self.builder.symbols_mut()
    }

    /// Recompiles and atomically publishes the updated knowledge base.
    ///
    /// # Errors
    ///
    /// Returns the compilation error; nothing is published on failure.
    pub fn commit(self, config: clare_kb::KbConfig) -> Result<(), clare_kb::KbError> {
        let kb = self.builder.try_finish(config)?;
        self.server.update(kb);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_kb::{KbBuilder, KbConfig};
    use clare_term::parser::parse_term;

    fn server_with(source: &str, queries: &[&str]) -> (ClauseRetrievalServer, Vec<Term>) {
        let mut b = KbBuilder::new();
        b.consult("m", source).unwrap();
        let terms: Vec<Term> = queries
            .iter()
            .map(|q| parse_term(q, b.symbols_mut()).unwrap())
            .collect();
        (
            ClauseRetrievalServer::new(b.finish(KbConfig::default()), CrsOptions::default()),
            terms,
        )
    }

    #[test]
    fn concurrent_clients_get_consistent_answers() {
        let facts: String = (0..400)
            .map(|i| format!("item(k{i}, v{}).", i % 7))
            .collect::<Vec<_>>()
            .join("\n");
        let (server, queries) = server_with(&facts, &["item(k13, X)", "item(K, v3)"]);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                for (qi, expected) in [(0usize, 1usize), (1, 57)] {
                    let server = &server;
                    let q = &queries[qi];
                    scope.spawn(move || {
                        for mode in SearchMode::ALL {
                            let r = server.retrieve(q, mode);
                            assert_eq!(r.stats.unified, expected);
                        }
                    });
                }
            }
        });
        assert_eq!(server.stats().retrievals, 8 * 2 * 4);
        assert!(server.stats().total_elapsed.as_ns() > 0);
    }

    #[test]
    fn batch_and_rejection_counters() {
        let (server, queries) = server_with("p(a). p(b).", &["p(a)", "p(X)"]);
        assert_eq!(server.stats(), ServerStats::default());
        server.retrieve_batch(&queries, SearchMode::TwoStage);
        server.retrieve(&queries[0], SearchMode::TwoStage);
        server.note_rejected();
        server.note_rejected();
        let stats = server.stats();
        assert_eq!(stats.batches, 1, "one batch call");
        assert_eq!(stats.retrievals, 3, "batch members count individually");
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.solves, 0);
    }

    #[test]
    fn stats_snapshots_never_tear() {
        // Writers serve only 2-query batches, so `retrievals == 2 * batches`
        // holds after every update. A snapshot that tore a batch's
        // `batches += 1` apart from its `retrievals += 2` (or caught the
        // mirror mid-publication) would break the equality.
        let (server, queries) = server_with("p(a). p(b).", &["p(a)", "p(X)"]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let server = &server;
                let queries = &queries;
                scope.spawn(move || {
                    for _ in 0..50 {
                        server.retrieve_batch(queries, SearchMode::SoftwareOnly);
                    }
                });
            }
            for _ in 0..4 {
                let server = &server;
                scope.spawn(move || {
                    for _ in 0..2000 {
                        let s = server.stats();
                        assert_eq!(s.retrievals, 2 * s.batches, "torn stats snapshot: {s:?}");
                    }
                });
            }
        });
        let s = server.stats();
        assert_eq!(s.batches, 4 * 50);
        assert_eq!(s.retrievals, 2 * 4 * 50);
    }

    #[test]
    fn update_swaps_atomically() {
        let (server, queries) = server_with("p(a).", &["p(a)"]);
        assert_eq!(
            server
                .retrieve(&queries[0], SearchMode::TwoStage)
                .stats
                .unified,
            1
        );
        // Build a replacement KB in the *same* symbol-table lineage so the
        // query's interned atoms stay valid.
        let snapshot = server.snapshot();
        let mut b = KbBuilder::new();
        *b.symbols_mut() = snapshot.symbols().clone();
        b.consult("m", "p(a). p(a).").unwrap();
        server.update(b.finish(KbConfig::default()));
        assert_eq!(
            server
                .retrieve(&queries[0], SearchMode::TwoStage)
                .stats
                .unified,
            2
        );
        assert_eq!(server.stats().updates, 1);
    }

    #[test]
    fn update_transaction_appends_clauses() {
        let (server, queries) = server_with("p(a).", &["p(a)"]);
        let mut tx = server.begin_update();
        tx.consult("m", "p(a). q(new_thing).").unwrap();
        tx.commit(KbConfig::default()).unwrap();
        // The old clause survived, the new ones joined.
        assert_eq!(
            server
                .retrieve(&queries[0], SearchMode::SoftwareOnly)
                .stats
                .unified,
            2
        );
        assert!(server.snapshot().lookup("q", 1).is_some());
        assert_eq!(server.stats().updates, 1);
        // Symbol offsets stayed stable across the transaction: the old
        // query term still resolves.
        assert_eq!(
            server
                .retrieve(&queries[0], SearchMode::TwoStage)
                .stats
                .unified,
            2
        );
    }

    #[test]
    fn dropped_transaction_changes_nothing() {
        let (server, queries) = server_with("p(a).", &["p(a)"]);
        {
            let mut tx = server.begin_update();
            tx.consult("m", "p(a).").unwrap();
            // dropped without commit
        }
        assert_eq!(
            server
                .retrieve(&queries[0], SearchMode::SoftwareOnly)
                .stats
                .unified,
            1
        );
        assert_eq!(server.stats().updates, 0);
    }

    #[test]
    fn failing_commit_publishes_nothing() {
        let (server, queries) = server_with("p(a).", &["p(a)"]);
        let mut tx = server.begin_update();
        tx.consult("m", "p(999999999999).").unwrap(); // un-encodable int
        assert!(tx.commit(KbConfig::default()).is_err());
        assert_eq!(
            server
                .retrieve(&queries[0], SearchMode::SoftwareOnly)
                .stats
                .unified,
            1
        );
    }

    #[test]
    fn snapshot_isolated_from_update() {
        let (server, queries) = server_with("p(a).", &["p(a)"]);
        let before = server.snapshot();
        let mut b = KbBuilder::new();
        *b.symbols_mut() = before.symbols().clone();
        b.consult("m", "q(z).").unwrap();
        server.update(b.finish(KbConfig::default()));
        // The old snapshot still answers the old query.
        let r = crate::crs::retrieve(
            &before,
            &queries[0],
            SearchMode::SoftwareOnly,
            &CrsOptions::default(),
        );
        assert_eq!(r.stats.unified, 1);
        // The server's new view does not.
        assert_eq!(
            server
                .retrieve(&queries[0], SearchMode::SoftwareOnly)
                .stats
                .unified,
            0
        );
    }
}
