//! Spawns the real `clare-served` binary and exercises the full client
//! lifecycle against it: readiness line, handshake, retrieval, consult,
//! stats, and the stdin-close drain-and-exit contract.

use clare_core::SearchMode;
use clare_net::{ClientConfig, NetClient};
use clare_term::parser::parse_term;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra_args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_clare-served"))
            .arg("--addr")
            .arg("127.0.0.1:0")
            .args(extra_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn clare-served");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let ready = lines
            .next()
            .expect("daemon printed a readiness line")
            .expect("readable stdout");
        let addr = ready
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected readiness line: {ready}"))
            .to_owned();
        Daemon { child, addr }
    }

    /// Closes stdin and asserts a clean exit.
    fn stop(mut self) {
        drop(self.child.stdin.take());
        let status = self.child.wait().expect("daemon exit status");
        assert!(status.success(), "daemon exited with {status}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn daemon_serves_the_builtin_demo_end_to_end() {
    let daemon = Daemon::spawn(&["--workers", "2"]);
    let mut client = NetClient::connect(daemon.addr.as_str(), ClientConfig::default())
        .expect("connect to daemon");
    client.ping().unwrap();

    let mut symbols = client.symbols().unwrap();
    let query = parse_term("parent(tom, X)", &mut symbols).unwrap();
    let retrieval = client.retrieve(&query, SearchMode::TwoStage).unwrap();
    assert_eq!(
        retrieval.stats.unified, 2,
        "tom has two children in the demo"
    );

    // Pipelined + batch paths through the real process.
    let queries: Vec<_> = ["parent(bob, X)", "parent(X, Y)", "grandparent(tom, X)"]
        .iter()
        .map(|q| parse_term(q, &mut symbols).unwrap())
        .collect();
    let pipelined = client
        .retrieve_pipelined(&queries, SearchMode::TwoStage)
        .unwrap();
    let batched = client
        .retrieve_batch(&queries, SearchMode::TwoStage)
        .unwrap();
    assert_eq!(pipelined, batched, "pipelined and batch answers agree");

    client.consult("user", "parent(ann, sue).").unwrap();
    let mut symbols = client.symbols().unwrap();
    let query = parse_term("parent(ann, X)", &mut symbols).unwrap();
    assert_eq!(
        client
            .retrieve(&query, SearchMode::TwoStage)
            .unwrap()
            .stats
            .unified,
        1
    );

    let stats = client.stats().unwrap();
    assert!(stats.retrievals >= 5);
    assert_eq!(stats.updates, 1);

    drop(client);
    daemon.stop();
}

#[test]
fn daemon_serves_a_program_file() {
    let dir = std::env::temp_dir().join(format!("clare-served-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("kb.pl");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "fact(one). fact(two). fact(three).").unwrap();
    drop(f);

    let daemon = Daemon::spawn(&["--module", "facts", path.to_str().unwrap()]);
    let mut client = NetClient::connect(daemon.addr.as_str(), ClientConfig::default()).unwrap();
    let mut symbols = client.symbols().unwrap();
    let query = parse_term("fact(X)", &mut symbols).unwrap();
    assert_eq!(
        client
            .retrieve(&query, SearchMode::TwoStage)
            .unwrap()
            .stats
            .unified,
        3
    );
    drop(client);
    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
