//! Disk model for the CLARE reproduction.
//!
//! The paper's headline claim is a *rate comparison*: the FS2 filter
//! processes data at ≈ 4.25 MB/s worst case, faster than either disk the
//! target SUN3/160 could mount — a SCSI Micropolis 1325 or an SMD Fujitsu
//! M2351A "tuned to operate at its peak rate (circa 2 Mbytes/second)". To
//! reproduce that comparison we need a disk that delivers bytes on a
//! simulated clock:
//!
//! * [`SimNanos`] — simulated time, in nanoseconds (the unit of every
//!   figure in the paper).
//! * [`DiskProfile`] — geometry plus timing (seek, rotation, sustained
//!   transfer rate), with presets for the paper's two drives.
//! * [`StoredFile`] / [`FileBuilder`] — record-oriented files laid out
//!   track by track. Records never span tracks, which is what lets the
//!   paper size the FS2 Result Memory for "all clause satisfiers of one
//!   disk track — the worst case of a single FS2 search call".
//! * [`TrackStream`] — a streaming read of a file that accounts seek,
//!   rotational latency, and per-track transfer time on the simulated
//!   clock.
//!
//! # Examples
//!
//! ```
//! use clare_disk::{DiskProfile, FileBuilder};
//!
//! let profile = DiskProfile::fujitsu_m2351a();
//! let mut builder = FileBuilder::new(profile.track_bytes());
//! builder.append_record(&[0u8; 100])?;
//! builder.append_record(&[1u8; 200])?;
//! let file = builder.finish("facts.pdb");
//! assert_eq!(file.record_count(), 2);
//! assert_eq!(file.track_count(), 1);
//! # Ok::<(), clare_disk::RecordTooLargeError>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod profile;
pub mod time;
pub mod volume;

pub use profile::DiskProfile;
pub use time::{ByteRate, SimNanos, TimeError};
pub use volume::{
    FileBuilder, InvalidTrackSizeError, RecordTooLargeError, StoredFile, Track, TrackRead,
    TrackStream, TransferStats,
};
