//! Synthetic workloads for the CLARE experiments.
//!
//! The paper's evaluation plan leans on the Heriot-Watt database
//! benchmarks (refs \[6,7\], unpublished data) and on D.H.D. Warren's
//! medium-knowledge-base estimate — "3000 predicates, 30000 rules,
//! 3000000 facts, and 30 Mbytes total size". This crate generates
//! structurally equivalent synthetic workloads:
//!
//! * [`family`] — a genealogy knowledge base: `parent/2`, `male/1`,
//!   `female/1`, `married_couple/2` facts plus recursive rules; it
//!   includes the paper's `married_couple(Same, Same)` shared-variable
//!   scenario with a controllable fraction of reflexive couples.
//! * [`warren`] — Warren-scale knowledge bases, scalable from
//!   laptop-friendly fractions up to the full 3 M facts.
//! * [`deep`] — nested-structure predicates whose discriminating argument
//!   sits at a controlled depth, for the matching-level ablation (the
//!   paper's Levels 1–5 trade-off).
//! * [`query`] — query sets derived from generated clause heads:
//!   ground hits and misses, half-open queries, shared-variable queries,
//!   fully open scans.
//!
//! All generators are deterministic from a seed.

#![warn(missing_docs)]

pub mod deep;
pub mod family;
pub mod query;
pub mod random;
pub mod suite;
pub mod warren;

pub use deep::DeepSpec;
pub use family::FamilySpec;
pub use query::{derive_queries, QueryShape};
pub use random::{RandomTermSpec, RandomTerms};
pub use suite::{SuiteQuery, SuiteSpec, SuiteSummary};
pub use warren::{WarrenSpec, WarrenSummary};
