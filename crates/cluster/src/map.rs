//! The shard map: which backend owns which predicate.
//!
//! Every backend holds the *full* base knowledge base (same build, same
//! symbol namespace — enforced by the hello fingerprint), so sharding is
//! purely a routing discipline over the mutable overlay: each predicate's
//! writes land on exactly one primary, and reads for it go to the same
//! place. The map hashes `functor/arity` with FNV-1a; a predicate listed
//! as *hot* is split one level further by its first argument, so a
//! write-heavy predicate spreads over every shard while queries with a
//! bound first argument still touch exactly one.

/// One shard: a primary backend and an optional log-shipping backup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Address of the primary `clare-served` backend (`host:port`).
    pub primary: String,
    /// Address of the backup, if the shard is replicated.
    pub backup: Option<String>,
}

/// The cluster topology handed to the router.
#[derive(Debug, Clone, Default)]
pub struct ShardMap {
    /// The shards, in hash order (the routing hash indexes this vector).
    pub shards: Vec<ShardSpec>,
    /// Predicates (`functor`, arity) split by first argument across all
    /// shards instead of living on one.
    ///
    /// Hot predicates are best kept *overlay-only* (no base clauses,
    /// functor merely interned in the base namespace): every shard holds
    /// the full base, so base clauses of a hot predicate would be
    /// answered once per shard when an unbound first argument forces a
    /// broadcast.
    pub hot: Vec<(String, usize)>,
    /// When set, every backend's hello must report exactly this
    /// knowledge-base fingerprint; when `None`, the first backend's
    /// fingerprint becomes the cluster's.
    pub fingerprint: Option<u64>,
}

/// 64-bit FNV-1a — stable across processes and platforms, unlike
/// `DefaultHasher`, so router instances always agree on placement.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Where a retrieval (or a single-clause write) must go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Exactly one shard owns the predicate (or the hot sub-shard).
    One(usize),
    /// A hot predicate queried without a bound first argument: every
    /// shard may hold matching overlay clauses, so ask all and merge.
    All,
}

impl ShardMap {
    /// The home shard of a non-hot predicate.
    pub fn route(&self, functor: &str, arity: usize) -> usize {
        let mut key = Vec::with_capacity(functor.len() + 9);
        key.extend_from_slice(functor.as_bytes());
        key.push(b'/');
        key.extend_from_slice(&(arity as u64).to_le_bytes());
        (fnv1a64(&key) % self.shards.len().max(1) as u64) as usize
    }

    /// The sub-shard of a hot predicate for one bound first argument,
    /// identified by a stable byte signature (`arg_sig`).
    pub fn route_hot(&self, functor: &str, arity: usize, arg_sig: &[u8]) -> usize {
        let mut key = Vec::with_capacity(functor.len() + arg_sig.len() + 10);
        key.extend_from_slice(functor.as_bytes());
        key.push(b'/');
        key.extend_from_slice(&(arity as u64).to_le_bytes());
        key.push(0xff);
        key.extend_from_slice(arg_sig);
        (fnv1a64(&key) % self.shards.len().max(1) as u64) as usize
    }

    /// Whether the predicate is first-argument-split.
    pub fn is_hot(&self, functor: &str, arity: usize) -> bool {
        self.hot.iter().any(|(f, a)| f == functor && *a == arity)
    }

    /// Routes one predicate occurrence: `arg_sig` is the stable byte
    /// signature of the bound first argument, or `None` when it is
    /// unbound (or the predicate has no arguments).
    pub fn place(&self, functor: &str, arity: usize, arg_sig: Option<&[u8]>) -> Placement {
        if self.is_hot(functor, arity) {
            match arg_sig {
                Some(sig) => Placement::One(self.route_hot(functor, arity, sig)),
                None => Placement::All,
            }
        } else {
            Placement::One(self.route(functor, arity))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(n: usize) -> ShardMap {
        ShardMap {
            shards: (0..n)
                .map(|i| ShardSpec {
                    primary: format!("127.0.0.1:{}", 7000 + i),
                    backup: None,
                })
                .collect(),
            hot: vec![("hot".to_owned(), 2)],
            fingerprint: None,
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let m = map(4);
        for (f, a) in [("p", 2), ("q", 0), ("edge", 3), ("p", 3)] {
            let s = m.route(f, a);
            assert!(s < 4);
            assert_eq!(s, m.route(f, a), "same key must route identically");
        }
        // Arity is part of the key: p/2 and p/3 may differ (and the hash
        // must at least distinguish the byte encodings).
        assert_eq!(m.place("p", 2, None), Placement::One(m.route("p", 2)));
    }

    #[test]
    fn hot_predicates_split_by_first_argument() {
        let m = map(4);
        assert_eq!(m.place("hot", 2, None), Placement::All);
        let one = m.place("hot", 2, Some(b"k1"));
        assert!(matches!(one, Placement::One(s) if s < 4));
        assert_eq!(one, m.place("hot", 2, Some(b"k1")));
        // Different first arguments spread over the shards: with 64 keys
        // and 4 shards, seeing only one shard would be a broken hash.
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..64 {
            if let Placement::One(s) = m.place("hot", 2, Some(format!("k{i}").as_bytes())) {
                seen.insert(s);
            }
        }
        assert!(seen.len() > 1, "first-arg split never left one shard");
    }
}
