//! # clare-trace — lock-cheap observability for the CLARE reproduction
//!
//! The paper's argument is quantitative: per-op combinational timings
//! (Table 1) and filter selectivity. This crate gives every layer of
//! the reproduction a place to record those numbers without perturbing
//! them: a process-wide registry of atomic [`Counter`]s, [`Gauge`]s,
//! and fixed-bucket log2 [`Histogram`]s, plus a [`span`] API whose
//! events go to a pluggable [`Sink`] (no-op by default, with
//! [`RingSink`] and [`JsonlSink`] provided).
//!
//! Recording is a handful of `Relaxed` atomic adds — no locks, no
//! allocation — so the instrumentation stays enabled permanently; the
//! criterion bench `trace_overhead` pins the FS2 hot-path cost at under
//! 2%. Readers call [`metrics()`]`.snapshot()` for a plain-data,
//! name-keyed [`MetricsSnapshot`] that renders as text or JSON and
//! crosses the wire in the extended `stats` reply.
//!
//! This crate is a leaf: it depends only on `parking_lot` so every
//! other crate in the workspace (scw, fs2, core, net, bench) can record
//! into the same registry.

pub mod metric;
pub mod registry;
pub mod span;

pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{
    fs2_op_name, metrics, net_op_name, Metrics, MetricsSnapshot, PredicateLatencies, FS2_OPS,
    NET_OPS,
};
pub use span::{
    clear_sink, set_sink, sink_enabled, span, JsonlSink, RingSink, Sink, Span, SpanEvent,
};
