//! Saving and loading knowledge bases.
//!
//! The persistent format (`.ckb`) stores the shared symbol table plus
//! every module's clauses as PIF clause records — the same bytes the
//! simulated disk holds. Loading rebuilds the compiled form (track
//! layout, secondary indexes) through [`KbBuilder`], so a loaded
//! knowledge base is bit-identical to recompiling the original source
//! under the same [`KbConfig`].

use crate::build::{KbBuilder, KbConfig, KbError};
use crate::predicate::KnowledgeBase;
use clare_pif::ClauseRecord;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes opening a `.ckb` stream.
pub const MAGIC: &[u8; 4] = b"CKB1";

/// Errors from [`save`]/[`load`].
#[derive(Debug)]
pub enum KbIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream is not a well-formed `.ckb`.
    Malformed(String),
    /// A stored clause failed to recompile.
    Build(KbError),
}

impl fmt::Display for KbIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbIoError::Io(e) => write!(f, "i/o error: {e}"),
            KbIoError::Malformed(why) => write!(f, "malformed knowledge base file: {why}"),
            KbIoError::Build(e) => write!(f, "rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for KbIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KbIoError::Io(e) => Some(e),
            KbIoError::Build(e) => Some(e),
            KbIoError::Malformed(_) => None,
        }
    }
}

impl From<std::io::Error> for KbIoError {
    fn from(e: std::io::Error) -> Self {
        KbIoError::Io(e)
    }
}

fn write_u32(w: &mut impl Write, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_be_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_be_bytes())
}

fn write_str(w: &mut impl Write, s: &str) -> std::io::Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn read_u32(r: &mut impl Read) -> Result<u32, KbIoError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_be_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> Result<u64, KbIoError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_be_bytes(buf))
}

fn read_str(r: &mut impl Read) -> Result<String, KbIoError> {
    let len = read_u32(r)? as usize;
    if len > 1 << 24 {
        return Err(KbIoError::Malformed("string length implausible".into()));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| KbIoError::Malformed("non-UTF-8 string".into()))
}

/// Serializes a knowledge base.
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn save(kb: &KnowledgeBase, writer: &mut impl Write) -> Result<(), KbIoError> {
    writer.write_all(MAGIC)?;
    // Symbol table: atoms then floats, in offset order (so that interning
    // on load reproduces identical offsets).
    let symbols = kb.symbols();
    write_u32(writer, symbols.atom_count() as u32)?;
    for (_, text) in symbols.atoms() {
        write_str(writer, text)?;
    }
    write_u32(writer, symbols.float_count() as u32)?;
    for offset in 0..symbols.float_count() {
        let value = symbols.float_value(clare_term::FloatId::from_offset(offset as u32));
        write_u64(writer, value.to_bits())?;
    }
    // Modules: name + clause records in predicate-grouped order.
    write_u32(writer, kb.modules().len() as u32)?;
    for module in kb.modules() {
        write_str(writer, module.name())?;
        let clause_count: usize = module.predicates().iter().map(|p| p.clauses().len()).sum();
        write_u32(writer, clause_count as u32)?;
        for pred in module.predicates() {
            for clause in pred.clauses() {
                let record =
                    ClauseRecord::compile(clause).expect("stored clauses compiled once already");
                let bytes = record.to_bytes();
                write_u32(writer, bytes.len() as u32)?;
                writer.write_all(&bytes)?;
            }
        }
    }
    Ok(())
}

/// Deserializes and recompiles a knowledge base under `config`.
///
/// # Errors
///
/// Returns [`KbIoError`] on I/O failure, malformed data, or recompilation
/// failure.
pub fn load(reader: &mut impl Read, config: KbConfig) -> Result<KnowledgeBase, KbIoError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(KbIoError::Malformed("bad magic".into()));
    }
    let mut builder = KbBuilder::new();
    let atom_count = read_u32(reader)? as usize;
    for _ in 0..atom_count {
        let text = read_str(reader)?;
        builder.symbols_mut().intern_atom(&text);
    }
    let float_count = read_u32(reader)? as usize;
    for _ in 0..float_count {
        let bits = read_u64(reader)?;
        builder.symbols_mut().intern_float(f64::from_bits(bits));
    }
    let module_count = read_u32(reader)? as usize;
    for _ in 0..module_count {
        let name = read_str(reader)?;
        let clause_count = read_u32(reader)? as usize;
        for _ in 0..clause_count {
            let len = read_u32(reader)? as usize;
            if len > 1 << 24 {
                return Err(KbIoError::Malformed("record length implausible".into()));
            }
            let mut bytes = vec![0u8; len];
            reader.read_exact(&mut bytes)?;
            let (record, used) = ClauseRecord::from_bytes(&bytes)
                .map_err(|e| KbIoError::Malformed(format!("bad clause record: {e}")))?;
            if used != len {
                return Err(KbIoError::Malformed("trailing record bytes".into()));
            }
            builder.add_clause(&name, record.clause().clone());
        }
    }
    builder.try_finish(config).map_err(KbIoError::Build)
}

/// Saves to a filesystem path.
///
/// # Errors
///
/// As for [`save`].
pub fn save_to_path(kb: &KnowledgeBase, path: impl AsRef<Path>) -> Result<(), KbIoError> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    save(kb, &mut file)
}

/// Loads from a filesystem path.
///
/// # Errors
///
/// As for [`load`].
pub fn load_from_path(
    path: impl AsRef<Path>,
    config: KbConfig,
) -> Result<KnowledgeBase, KbIoError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    load(&mut file, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::KbStats;

    fn sample_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        b.consult(
            "family",
            "parent(tom, bob). parent(bob, ann).
             weight('heavy item', 2.5).
             gp(X, Z) :- parent(X, Y), parent(Y, Z).",
        )
        .unwrap();
        b.consult("other", "colour(red). colour(blue).").unwrap();
        b.finish(KbConfig::default())
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let kb = sample_kb();
        let mut buf = Vec::new();
        save(&kb, &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice(), KbConfig::default()).unwrap();
        assert_eq!(KbStats::gather(&loaded), KbStats::gather(&kb));
        assert_eq!(loaded.modules().len(), 2);
        assert_eq!(loaded.modules()[0].name(), "family");
        // Symbol offsets identical: terms compare equal across the trip.
        for (module, loaded_module) in kb.modules().iter().zip(loaded.modules()) {
            for (pred, loaded_pred) in module.predicates().iter().zip(loaded_module.predicates()) {
                assert_eq!(pred.clauses(), loaded_pred.clauses());
                assert_eq!(pred.addrs(), loaded_pred.addrs());
            }
        }
        // Float survives by bit pattern.
        assert!(loaded.symbols().lookup_float(2.5).is_some());
    }

    #[test]
    fn loaded_kb_answers_queries_identically() {
        use clare_term::parser::parse_term;
        let kb = sample_kb();
        let mut buf = Vec::new();
        save(&kb, &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice(), KbConfig::default()).unwrap();
        let mut symbols = loaded.symbols().clone();
        let q = parse_term("parent(tom, X)", &mut symbols).unwrap();
        let pred = loaded.lookup("parent", 2).unwrap();
        let scan = pred.index().scan(&q);
        assert_eq!(
            scan.matches.len(),
            kb.lookup("parent", 2)
                .unwrap()
                .index()
                .scan(&q)
                .matches
                .len()
        );
    }

    #[test]
    fn file_roundtrip() {
        let kb = sample_kb();
        let path =
            std::env::temp_dir().join(format!("clare_kb_io_test_{}.ckb", std::process::id()));
        save_to_path(&kb, &path).unwrap();
        let loaded = load_from_path(&path, KbConfig::default()).unwrap();
        assert_eq!(loaded.clause_count(), kb.clause_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load(&mut b"NOPE".as_slice(), KbConfig::default()).unwrap_err();
        assert!(matches!(err, KbIoError::Malformed(_)));
    }

    #[test]
    fn truncation_detected() {
        let kb = sample_kb();
        let mut buf = Vec::new();
        save(&kb, &mut buf).unwrap();
        for cut in [3, buf.len() / 2, buf.len() - 1] {
            assert!(
                load(&mut buf[..cut].to_vec().as_slice(), KbConfig::default()).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn empty_kb_roundtrips() {
        let kb = KbBuilder::new().finish(KbConfig::default());
        let mut buf = Vec::new();
        save(&kb, &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice(), KbConfig::default()).unwrap();
        assert_eq!(loaded.clause_count(), 0);
    }
}
