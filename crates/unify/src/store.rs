//! Variable binding store with a backtracking trail.
//!
//! All variables live in a single global numbering. To unify a query against
//! a stored clause, the clause's variables are first shifted past the
//! query's with [`shift_vars`] — the software analogue of the WAM-style
//! renaming the paper's Prolog-X system performs when it activates a clause.

use clare_term::{Term, VarId};

/// A growable store of variable bindings, indexed by [`VarId`].
///
/// Bindings may chain (a variable bound to another variable); [`walk`]
/// follows chains to the representative. A [`mark`]/[`undo`] trail supports
/// backtracking in the resolution engine.
///
/// [`walk`]: BindingStore::walk
/// [`mark`]: BindingStore::mark
/// [`undo`]: BindingStore::undo
///
/// # Examples
///
/// ```
/// use clare_term::{Term, VarId};
/// use clare_unify::BindingStore;
///
/// let mut store = BindingStore::with_capacity(2);
/// store.bind(VarId::new(0), Term::Int(7));
/// assert_eq!(store.resolve(&Term::Var(VarId::new(0))), Term::Int(7));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BindingStore {
    slots: Vec<Option<Term>>,
    trail: Vec<VarId>,
}

impl BindingStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store with `n` unbound slots.
    pub fn with_capacity(n: usize) -> Self {
        BindingStore {
            slots: vec![None; n],
            trail: Vec::new(),
        }
    }

    /// Ensures slots `0..n` exist.
    pub fn ensure(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize(n, None);
        }
    }

    /// Number of slots currently allocated.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no slots are allocated.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Allocates a fresh unbound variable and returns its id.
    pub fn fresh(&mut self) -> VarId {
        let id = VarId::new(self.slots.len() as u32);
        self.slots.push(None);
        id
    }

    /// The binding of `v`, if any (one step, no chain following).
    pub fn lookup(&self, v: VarId) -> Option<&Term> {
        self.slots.get(v.index() as usize).and_then(Option::as_ref)
    }

    /// Binds `v` to `term`, recording the binding on the trail.
    ///
    /// # Panics
    ///
    /// Panics if `v` is already bound — rebinding without undoing is always
    /// a logic error in the unifier.
    pub fn bind(&mut self, v: VarId, term: Term) {
        self.ensure(v.index() as usize + 1);
        let slot = &mut self.slots[v.index() as usize];
        assert!(slot.is_none(), "variable {v} is already bound");
        *slot = Some(term);
        self.trail.push(v);
    }

    /// Follows binding chains from `term` until an unbound variable or a
    /// non-variable term is reached.
    ///
    /// Returns `term` itself if it is not a bound variable.
    pub fn walk<'a>(&'a self, term: &'a Term) -> &'a Term {
        let mut current = term;
        let mut steps = 0usize;
        while let Term::Var(v) = current {
            match self.lookup(*v) {
                Some(next) => current = next,
                None => break,
            }
            steps += 1;
            assert!(
                steps <= self.slots.len(),
                "binding chain cycle — bindings must be acyclic"
            );
        }
        current
    }

    /// Deep substitution: replaces every bound variable in `term` by its
    /// (recursively resolved) binding. Unbound variables stay as they are.
    pub fn resolve(&self, term: &Term) -> Term {
        let walked = self.walk(term);
        match walked {
            Term::Struct { functor, args } => Term::Struct {
                functor: *functor,
                args: args.iter().map(|a| self.resolve(a)).collect(),
            },
            Term::List { items, tail } => {
                let items: Vec<Term> = items.iter().map(|i| self.resolve(i)).collect();
                match tail {
                    None => Term::List { items, tail: None },
                    Some(t) => {
                        let resolved_tail = self.resolve(t);
                        // Normalise: if the tail resolved to a list, splice it.
                        if let Term::List {
                            items: tail_items,
                            tail: tail_tail,
                        } = resolved_tail
                        {
                            let mut all = items;
                            all.extend(tail_items);
                            Term::List {
                                items: all,
                                tail: tail_tail,
                            }
                        } else {
                            Term::List {
                                items,
                                tail: Some(Box::new(resolved_tail)),
                            }
                        }
                    }
                }
            }
            other => other.clone(),
        }
    }

    /// True if the (resolved) term contains variable `v` — the occurs check.
    pub fn occurs(&self, v: VarId, term: &Term) -> bool {
        let walked = self.walk(term);
        match walked {
            Term::Var(w) => *w == v,
            Term::Struct { args, .. } => args.iter().any(|a| self.occurs(v, a)),
            Term::List { items, tail } => {
                items.iter().any(|i| self.occurs(v, i))
                    || tail.as_deref().is_some_and(|t| self.occurs(v, t))
            }
            _ => false,
        }
    }

    /// Returns a trail mark; pass it to [`undo`](Self::undo) to roll back.
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Unbinds every variable bound since `mark`.
    pub fn undo(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("trail length checked");
            self.slots[v.index() as usize] = None;
        }
    }
}

/// Returns `term` with every named variable id shifted up by `offset`.
///
/// Used to move a clause's variables into a disjoint range from the query's
/// before unification. Anonymous variables are untouched (they never bind).
pub fn shift_vars(term: &Term, offset: u32) -> Term {
    match term {
        Term::Var(v) => Term::Var(VarId::new(v.index() + offset)),
        Term::Struct { functor, args } => Term::Struct {
            functor: *functor,
            args: args.iter().map(|a| shift_vars(a, offset)).collect(),
        },
        Term::List { items, tail } => Term::List {
            items: items.iter().map(|i| shift_vars(i, offset)).collect(),
            tail: tail.as_deref().map(|t| Box::new(shift_vars(t, offset))),
        },
        other => other.clone(),
    }
}

/// Largest named-variable index in `term` plus one (0 if none) — the size of
/// the variable scope the term needs.
pub fn var_span(term: &Term) -> u32 {
    clare_term::collect_vars(term)
        .into_iter()
        .map(|v| v.index() + 1)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_term::parser::parse_term;
    use clare_term::SymbolTable;

    #[test]
    fn bind_walk_resolve() {
        let mut s = BindingStore::with_capacity(3);
        // v0 -> v1 -> 42
        s.bind(VarId::new(0), Term::Var(VarId::new(1)));
        s.bind(VarId::new(1), Term::Int(42));
        assert_eq!(s.walk(&Term::Var(VarId::new(0))), &Term::Int(42));
        assert_eq!(s.resolve(&Term::Var(VarId::new(0))), Term::Int(42));
        // v2 unbound walks to itself
        assert_eq!(s.walk(&Term::Var(VarId::new(2))), &Term::Var(VarId::new(2)));
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn rebinding_panics() {
        let mut s = BindingStore::with_capacity(1);
        s.bind(VarId::new(0), Term::Int(1));
        s.bind(VarId::new(0), Term::Int(2));
    }

    #[test]
    fn trail_undo_restores_unbound() {
        let mut s = BindingStore::with_capacity(2);
        s.bind(VarId::new(0), Term::Int(1));
        let m = s.mark();
        s.bind(VarId::new(1), Term::Int(2));
        s.undo(m);
        assert!(s.lookup(VarId::new(1)).is_none());
        assert_eq!(s.lookup(VarId::new(0)), Some(&Term::Int(1)));
    }

    #[test]
    fn resolve_splices_list_tails() {
        let mut sy = SymbolTable::new();
        let mut s = BindingStore::with_capacity(1);
        let partial = parse_term("[a, b | T]", &mut sy).unwrap();
        let rest = parse_term("[c, d]", &mut sy).unwrap();
        s.bind(VarId::new(0), rest);
        let resolved = s.resolve(&partial);
        let expected = parse_term("[a, b, c, d]", &mut sy).unwrap();
        assert_eq!(resolved, expected);
    }

    #[test]
    fn occurs_check_detects_nesting() {
        let mut sy = SymbolTable::new();
        let s = BindingStore::with_capacity(2);
        let t = parse_term("f(g(X), Y)", &mut sy).unwrap();
        assert!(s.occurs(VarId::new(0), &t));
        assert!(s.occurs(VarId::new(1), &t));
        assert!(!s.occurs(VarId::new(2), &t));
    }

    #[test]
    fn occurs_check_through_bindings() {
        let mut sy = SymbolTable::new();
        let mut s = BindingStore::with_capacity(2);
        let g_of_v1 = parse_term("g(B)", &mut sy).unwrap(); // B = var 0 in this term's scope
        s.bind(VarId::new(1), shift_vars(&g_of_v1, 0)); // v1 -> g(v0)
        assert!(s.occurs(VarId::new(0), &Term::Var(VarId::new(1))));
    }

    #[test]
    fn shift_vars_offsets_named_only() {
        let mut sy = SymbolTable::new();
        let t = parse_term("f(X, _, g(Y))", &mut sy).unwrap();
        let shifted = shift_vars(&t, 10);
        let vars = clare_term::collect_vars(&shifted);
        assert_eq!(
            vars,
            vec![VarId::new(10), VarId::new(11)],
            "named vars shifted, anon untouched"
        );
    }

    #[test]
    fn var_span_counts_scope() {
        let mut sy = SymbolTable::new();
        assert_eq!(var_span(&parse_term("f(a)", &mut sy).unwrap()), 0);
        assert_eq!(var_span(&parse_term("f(X, Y, X)", &mut sy).unwrap()), 2);
    }

    #[test]
    fn fresh_allocates_sequentially() {
        let mut s = BindingStore::with_capacity(2);
        assert_eq!(s.fresh(), VarId::new(2));
        assert_eq!(s.fresh(), VarId::new(3));
        assert_eq!(s.len(), 4);
    }
}
