//! E5 — §4: the FS2 filtering rate against the target disks.
//!
//! The paper's claim: the slowest operation (QUERY_CROSS_BOUND_FETCH,
//! 235 ns) yields a worst-case execution rate of ≈ 4.25 MB/s, which still
//! outruns both disks the SUN3/160 can mount (the SMD Fujitsu at a tuned
//! ~2 MB/s peak, the SCSI Micropolis slower still) — so FS2 never
//! throttles the disk. This experiment reproduces the worst-case formula
//! *and* measures effective filtering rates over synthetic workloads.

use clare_core::{retrieve, CrsOptions, SearchMode};
use clare_disk::{ByteRate, DiskProfile};
use clare_fs2::HwOp;
use clare_kb::{KbBuilder, KbConfig};
use clare_workload::{derive_queries, QueryShape, WarrenSpec};
use std::fmt;

/// A measured filtering rate for one query shape.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredRate {
    /// Query shape label.
    pub shape: &'static str,
    /// Bytes streamed off the disk during the FS2 phase.
    pub bytes: u64,
    /// FS2 busy time in nanoseconds.
    pub fs2_ns: u64,
    /// Effective rate in MB/s (bytes over FS2 busy time).
    pub rate_mb: f64,
}

/// The throughput report.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Worst-case operation name.
    pub worst_op: &'static str,
    /// Worst-case per-byte rate (the paper's 4.25 MB/s figure).
    pub worst_case_mb: f64,
    /// Per-operation byte rates under the paper's one-byte-per-op
    /// assumption.
    pub per_op_mb: Vec<(&'static str, u64, f64)>,
    /// The two candidate disks and their sustained rates.
    pub disks: Vec<(String, f64)>,
    /// Measured effective rates per query shape.
    pub measured: Vec<MeasuredRate>,
}

impl ThroughputReport {
    /// True if even the worst-case FS2 rate beats the fast (SMD) disk —
    /// the paper's conclusion.
    pub fn fs2_outruns_fast_disk(&self) -> bool {
        self.disks
            .iter()
            .all(|(_, disk_mb)| self.worst_case_mb > *disk_mb)
    }
}

/// Runs the experiment. `scale` sizes the measured workload
/// (0.002 ≈ 6 000 facts is plenty).
pub fn run(scale: f64) -> ThroughputReport {
    let worst = HwOp::slowest();
    let per_op_mb = HwOp::ALL
        .iter()
        .map(|op| {
            let ns = op.execution_time().as_ns();
            (
                op.name(),
                ns,
                ByteRate::per_byte_time(op.execution_time()).as_mb_per_sec(),
            )
        })
        .collect();
    let disks = vec![
        (
            DiskProfile::fujitsu_m2351a().name().to_owned(),
            DiskProfile::fujitsu_m2351a()
                .sustained_rate()
                .as_mb_per_sec(),
        ),
        (
            DiskProfile::micropolis_1325().name().to_owned(),
            DiskProfile::micropolis_1325()
                .sustained_rate()
                .as_mb_per_sec(),
        ),
    ];

    // Measured: stream a Warren-style predicate through FS2 for several
    // query shapes and compute bytes / FS2-busy-time.
    let spec = WarrenSpec::scaled(scale);
    let mut builder = KbBuilder::new();
    let summary = spec.generate(&mut builder, "warren");
    let miss = builder.symbols_mut().intern_atom("never_stored_atom");
    let kb = builder.finish(KbConfig::default());
    let opts = CrsOptions::default();
    let mut measured = Vec::new();
    for shape in [
        QueryShape::GroundHit,
        QueryShape::GroundMiss,
        QueryShape::HalfOpen,
        QueryShape::SharedVar,
        QueryShape::OpenAll,
    ] {
        let queries = derive_queries(&summary.sample_heads, shape, 3, miss, 0x7157);
        let mut bytes = 0u64;
        let mut fs2_ns = 0u64;
        for q in &queries {
            let r = retrieve(&kb, q, SearchMode::Fs2Only, &opts);
            bytes += r.stats.bytes_from_disk;
            fs2_ns += r.stats.fs2_time.as_ns();
        }
        let rate_mb = if fs2_ns == 0 {
            f64::INFINITY
        } else {
            bytes as f64 / (fs2_ns as f64 / 1e9) / 1e6
        };
        measured.push(MeasuredRate {
            shape: shape.label(),
            bytes,
            fs2_ns,
            rate_mb,
        });
    }

    ThroughputReport {
        worst_op: worst.name(),
        worst_case_mb: ByteRate::per_byte_time(worst.execution_time()).as_mb_per_sec(),
        per_op_mb,
        disks,
        measured,
    }
}

impl fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E5 / §4: FS2 filtering rate vs disk transfer rate\n")?;
        writeln!(
            f,
            "worst-case operation: {} -> {:.2} MB/s (1 byte per op, the paper's 4.25 MB/s)",
            self.worst_op, self.worst_case_mb
        )?;
        writeln!(f, "\nper-operation worst-case rates:")?;
        let rows: Vec<Vec<String>> = self
            .per_op_mb
            .iter()
            .map(|(name, ns, mb)| vec![name.to_string(), ns.to_string(), format!("{mb:.2}")])
            .collect();
        f.write_str(&crate::render_table(&["operation", "ns", "MB/s"], &rows))?;
        writeln!(f, "\ndisks:")?;
        for (name, mb) in &self.disks {
            writeln!(f, "  {name}: {mb:.2} MB/s sustained")?;
        }
        writeln!(f, "\nmeasured effective FS2 rates (bytes / FS2 busy time):")?;
        let rows: Vec<Vec<String>> = self
            .measured
            .iter()
            .map(|m| {
                vec![
                    m.shape.to_owned(),
                    m.bytes.to_string(),
                    format!("{:.3} ms", m.fs2_ns as f64 / 1e6),
                    format!("{:.1}", m.rate_mb),
                ]
            })
            .collect();
        f.write_str(&crate::render_table(
            &["query shape", "bytes", "FS2 busy", "MB/s"],
            &rows,
        ))?;
        writeln!(
            f,
            "\nconclusion: FS2 worst case {} both disks -> the filter never throttles the disk",
            if self.fs2_outruns_fast_disk() {
                "outruns"
            } else {
                "DOES NOT outrun"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_reproduces_4_25() {
        let r = run(0.0005);
        assert_eq!(r.worst_op, "QUERY_CROSS_BOUND_FETCH");
        assert!((r.worst_case_mb - 4.2553).abs() < 0.01);
        assert!(r.fs2_outruns_fast_disk());
    }

    #[test]
    fn measured_rates_beat_worst_case() {
        // Real streams carry ≥4 bytes per operation (words plus the full
        // clause payload), so measured MB/s is far above the per-byte
        // worst case.
        let r = run(0.0005);
        for m in &r.measured {
            assert!(
                m.rate_mb > r.worst_case_mb,
                "{}: measured {} <= worst case",
                m.shape,
                m.rate_mb
            );
        }
    }

    #[test]
    fn per_op_table_is_complete() {
        let r = run(0.0005);
        assert_eq!(r.per_op_mb.len(), 7);
        // MATCH: 1 byte / 105 ns = 9.52 MB/s.
        let match_row = r.per_op_mb.iter().find(|(n, _, _)| *n == "MATCH").unwrap();
        assert!((match_row.2 - 9.52).abs() < 0.01);
    }
}
