//! The paper's `married_couple(Same_surname, Same_surname)` scenario on a
//! generated genealogy: shared variables defeat the FS1 index (it
//! retrieves the whole predicate) while FS2's cross-binding checks cut the
//! candidate set down to the real couples.
//!
//! ```text
//! cargo run --release --example family_kb
//! ```

use clare::prelude::*;
use clare_workload::FamilySpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = FamilySpec {
        couples: 2000,
        children_per_couple: 2,
        reflexive_fraction: 0.01,
        seed: 42,
    };
    let mut builder = KbBuilder::new();
    let summary = spec.generate(&mut builder, "family");
    let (query, _) = parse_term_with_vars("married_couple(Same, Same)", builder.symbols_mut())?;
    let kb = builder.finish(KbConfig::default());

    println!("{}", KbStats::gather(&kb));
    println!(
        "\n?- married_couple(Same, Same).   ({} reflexive couples hidden among {})\n",
        summary.reflexive_couples,
        summary.couple_heads.len()
    );

    let opts = CrsOptions::default();
    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>12}",
        "mode", "candidates", "answers", "drops", "elapsed"
    );
    for mode in SearchMode::ALL {
        let r = retrieve(&kb, &query, mode, &opts);
        println!(
            "{:<14} {:>10} {:>10} {:>8} {:>12}",
            mode.to_string(),
            r.stats.candidates,
            r.stats.unified,
            r.stats.false_drops,
            r.stats.elapsed.to_string()
        );
    }

    println!("\nautomatic mode choice: {}", choose_mode(&kb, &query));
    println!(
        "(FS1 is blind to shared variables — \"a large proportion of false drops\", §2.1 — \
         so the selector goes straight to FS2)"
    );
    Ok(())
}
