//! C10K-class smoke test for the epoll reactor: one server, ≥1000
//! concurrent client connections, pipelined retrieves on every one of
//! them, byte-identical answers, and a hard deadline so starvation (a
//! connection whose replies never come) fails the test instead of
//! hanging it.
//!
//! The clients speak the raw wire protocol over plain `TcpStream`s (no
//! `NetClient`) so a thousand of them fit in one test process without a
//! thousand reader threads.

use clare_core::{ClauseRetrievalServer, CrsOptions, SearchMode};
use clare_kb::{KbBuilder, KbConfig};
use clare_net::protocol::{
    decode_server_hello, encode_client_hello_caps, encode_retrieval, encode_retrieve, opcode,
    BudgetExt, Frame, FrameReader, HelloStatus, RetrieveReq, PROTOCOL_VERSION, SERVER_HELLO_LEN,
};
use clare_net::{NetConfig, NetServer, ServerMode};
use clare_term::parser::parse_term;
use clare_term::Term;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrent connections held open through the whole test.
const CONNECTIONS: usize = 1000;
/// Pipelined retrieves per connection.
const DEPTH: usize = 4;
/// Whole-test budget; any starved connection trips this, not a hang.
const TEST_BUDGET: Duration = Duration::from_secs(120);

#[test]
fn reactor_serves_a_thousand_concurrent_pipelined_connections() {
    let start = Instant::now();

    let mut b = KbBuilder::new();
    let facts: String = (0..60)
        .map(|i| format!("item(k{}, v{}).", i % 12, i % 5))
        .collect::<Vec<_>>()
        .join("\n");
    b.consult("m", &facts).unwrap();
    let crs = Arc::new(ClauseRetrievalServer::new(
        b.finish(KbConfig::default()),
        CrsOptions::default(),
    ));

    let cfg = NetConfig {
        server_mode: ServerMode::Reactor,
        max_connections: CONNECTIONS + 50,
        queue_depth: 4 * CONNECTIONS,
        workers: 4,
        ..NetConfig::default()
    };
    let server = NetServer::bind(Arc::clone(&crs), "127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();

    // The query set cycles over the key space; precompute the expected
    // reply payload for each (the byte-identity oracle).
    let mut symbols = crs.snapshot().symbols().clone();
    let queries: Vec<Term> = (0..12)
        .map(|k| parse_term(&format!("item(k{k}, X)"), &mut symbols).unwrap())
        .collect();
    let expected: Vec<Vec<u8>> = queries
        .iter()
        .map(|q| encode_retrieval(&crs.retrieve(q, SearchMode::TwoStage)))
        .collect();

    // Phase 1: open every connection and complete its hello exchange.
    // Connects retry briefly: a thousand rapid SYNs can outrun the
    // accept loop's listen backlog.
    let mut conns: Vec<TcpStream> = Vec::with_capacity(CONNECTIONS);
    for i in 0..CONNECTIONS {
        let mut stream = connect_with_retry(addr, i);
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
            .write_all(&encode_client_hello_caps(PROTOCOL_VERSION, 0))
            .unwrap();
        conns.push(stream);
    }
    for (i, stream) in conns.iter_mut().enumerate() {
        let mut hello = [0u8; SERVER_HELLO_LEN];
        stream
            .read_exact(&mut hello)
            .unwrap_or_else(|e| panic!("conn {i}: no server hello: {e}"));
        let hello = decode_server_hello(&hello).unwrap();
        assert_eq!(
            hello.status,
            HelloStatus::Ok,
            "conn {i} was refused below the connection limit"
        );
    }

    // Phase 2: pipeline DEPTH retrieves down every connection before
    // reading anything back — 4000 requests in flight at once.
    for (i, stream) in conns.iter_mut().enumerate() {
        let mut batch = Vec::new();
        for d in 0..DEPTH {
            let q = (i + d) % queries.len();
            let req = RetrieveReq {
                mode: SearchMode::TwoStage,
                deadline_micros: 0,
                budget: BudgetExt::NONE,
                query: queries[q].clone(),
            };
            let id = (i * DEPTH + d) as u64 + 1;
            batch.extend_from_slice(
                &Frame::new(id, opcode::RETRIEVE, encode_retrieve(&req)).encoded(),
            );
        }
        stream.write_all(&batch).unwrap();
    }

    // Phase 3: collect every reply. Replies within one connection may
    // arrive in any order (out-of-order completion is part of the
    // contract), so match them up by request id.
    for (i, stream) in conns.iter_mut().enumerate() {
        let mut fr = FrameReader::new(16 << 20);
        let mut got: HashMap<u64, Vec<u8>> = HashMap::new();
        while got.len() < DEPTH {
            let frame = fr
                .read_frame(stream)
                .unwrap_or_else(|e| panic!("conn {i}: reply stream died: {e}"));
            assert_eq!(
                frame.opcode,
                opcode::RETRIEVE | opcode::REPLY,
                "conn {i}: unexpected opcode {:#04x}",
                frame.opcode
            );
            got.insert(frame.request_id, frame.payload);
        }
        for d in 0..DEPTH {
            let id = (i * DEPTH + d) as u64 + 1;
            let q = (i + d) % queries.len();
            assert_eq!(
                got.get(&id).expect("reply for every pipelined id"),
                &expected[q],
                "conn {i} req {d}: networked bytes diverge from the direct call"
            );
        }
        assert!(
            start.elapsed() < TEST_BUDGET,
            "starvation: conn {i} pushed the test past its deadline"
        );
    }

    // Every socket is still open: the server really is holding
    // CONNECTIONS concurrent connections on a handful of threads.
    assert!(
        clare_trace::metrics().net_reactor_connections.get() >= CONNECTIONS as i64,
        "reactor connection gauge never reached {CONNECTIONS}"
    );

    drop(conns);
    server.shutdown();
    assert!(start.elapsed() < TEST_BUDGET, "test exceeded its budget");
}

fn connect_with_retry(addr: std::net::SocketAddr, i: usize) -> TcpStream {
    for _ in 0..200 {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    panic!("conn {i}: could not connect after retries");
}
