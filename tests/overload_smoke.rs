//! Overload smoke: a saturating client mix — runaway solves under tight
//! deadlines, budgeted and unbudgeted retrievals — fired at the serving
//! stack (the same `NetServer` core `clare-served` wraps) from many
//! threads at once. The stack must hold three lines under saturation:
//!
//! 1. **No worker is ever pinned past a deadline.** Every runaway solve
//!    comes back within seconds as a typed refusal, never by finishing
//!    its minutes-long search and never by wedging a worker.
//! 2. **Overload is shed, and the sheds are counted.** Deadline trips
//!    must land in `budget.exceeded_deadline`, and at least one request
//!    must be refused without execution (queue expiry, CoDel shed, or a
//!    `Busy` at admission).
//! 3. **Completed answers stay correct.** Every `Ok` the storm produces
//!    — and a fresh unloaded client afterwards — is byte-identical to
//!    the in-process reference. Load may slow answers or refuse them; it
//!    may never change them.
//!
//! Gated behind `CLARE_OVERLOAD_SMOKE=1` (the CI `overload-smoke` job)
//! so the default `cargo test` stays fast.

use clare::prelude::*;
use clare_core::ModeChoice;
use clare_net::ErrorCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn kb() -> KnowledgeBase {
    let mut b = KbBuilder::new();
    let goals: Vec<String> = (0..26).map(|i| format!("p(A{i})")).collect();
    let src = format!(
        "p(a). p(b).\n\
         item(k1, v1). item(k2, v2). item(k3, v1). item(k4, v2).\n\
         absent(never).\n\
         runaway :- {}, absent(A0).\n",
        goals.join(", ")
    );
    b.consult("m", &src).unwrap();
    b.finish(KbConfig::default())
}

fn solve_options() -> SolveOptions {
    SolveOptions {
        mode: ModeChoice::Fixed(SearchMode::SoftwareOnly),
        max_solutions: usize::MAX,
        max_depth: 64,
        crs: CrsOptions::default(),
    }
}

#[test]
fn saturating_mix_sheds_load_without_pinning_workers_or_corrupting_answers() {
    if std::env::var("CLARE_OVERLOAD_SMOKE").is_err() {
        eprintln!("overload_smoke: skipped (set CLARE_OVERLOAD_SMOKE=1 to run)");
        return;
    }

    let crs = Arc::new(ClauseRetrievalServer::new(kb(), CrsOptions::default()));
    let server = NetServer::bind(
        Arc::clone(&crs),
        "127.0.0.1:0",
        NetConfig {
            workers: 2,
            coalesce: false,
            // A short queue plus CoDel keeps the backlog honest: when the
            // workers can't keep up, refuse early instead of queueing
            // jobs that will only expire later.
            queue_depth: 8,
            codel_target: Some(Duration::from_millis(5)),
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let metrics = clare_trace::metrics();
    let deadline_trips_before = metrics.budget_exceeded_deadline.get();
    let expired_before = metrics.budget_expired_in_queue.get();
    let codel_before = metrics.budget_codel_sheds.get();

    // The unloaded reference, captured before the storm.
    let reference = {
        let mut c = NetClient::connect(addr, ClientConfig::default()).unwrap();
        let mut symbols = c.symbols().unwrap();
        let query = parse_term("item(K, v1)", &mut symbols).unwrap();
        (query.clone(), crs.retrieve(&query, SearchMode::TwoStage))
    };

    let threads = 6;
    let rounds = 20;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let (query, want) = reference.clone();
            std::thread::spawn(move || {
                let cfg = ClientConfig {
                    busy_retries: 0,
                    reconnect_retries: 1,
                    read_timeout: Duration::from_secs(30),
                    ..ClientConfig::default()
                };
                let mut client = NetClient::connect(addr, cfg).unwrap();
                let mut symbols = client.symbols().unwrap();
                let runaway = parse_term("runaway", &mut symbols).unwrap();
                let mut busy = 0u64;
                for round in 0..rounds {
                    if (t + round) % 3 == 0 {
                        // The saturating half of the mix: a solve whose
                        // full search takes minutes, on a 40 ms deadline.
                        client.set_deadline(Some(Duration::from_millis(40)));
                        let t0 = Instant::now();
                        let outcome = client.solve_goals(
                            std::slice::from_ref(&runaway),
                            &[],
                            &solve_options(),
                        );
                        let elapsed = t0.elapsed();
                        assert!(
                            elapsed < Duration::from_secs(10),
                            "thread {t} round {round}: runaway held its worker {elapsed:?}"
                        );
                        match outcome {
                            Err(NetError::Remote { code, .. })
                                if code == ErrorCode::DeadlineExpired
                                    || code == ErrorCode::Busy =>
                            {
                                busy += u64::from(code == ErrorCode::Busy);
                            }
                            Err(e) if e.is_connection_fatal() => {
                                // A reconnect that itself was refused
                                // under load; re-establish and move on.
                                let _ = client.reconnect();
                            }
                            other => panic!(
                                "thread {t} round {round}: runaway must be refused, got {other:?}"
                            ),
                        }
                    } else {
                        // The victim half: cheap retrievals on a humane
                        // deadline. Served answers must be the truth.
                        client.set_deadline(Some(Duration::from_millis(500)));
                        match client.retrieve(&query, SearchMode::TwoStage) {
                            Ok(got) => assert_eq!(
                                got, want,
                                "thread {t} round {round}: answer under load diverged"
                            ),
                            Err(NetError::Remote { code, .. })
                                if code == ErrorCode::DeadlineExpired
                                    || code == ErrorCode::Busy =>
                            {
                                busy += u64::from(code == ErrorCode::Busy);
                            }
                            Err(e) if e.is_connection_fatal() => {
                                let _ = client.reconnect();
                            }
                            Err(e) => panic!("thread {t} round {round}: {e}"),
                        }
                    }
                }
                busy
            })
        })
        .collect();
    let busy_refusals: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

    // Line 2: the storm was shed somewhere, and the sheds were counted.
    let deadline_trips = metrics.budget_exceeded_deadline.get() - deadline_trips_before;
    let queue_expiries = metrics.budget_expired_in_queue.get() - expired_before;
    let codel_sheds = metrics.budget_codel_sheds.get() - codel_before;
    assert!(
        deadline_trips > 0,
        "a storm of 40 ms runaways must trip the deadline counter"
    );
    assert!(
        queue_expiries + codel_sheds + busy_refusals > 0,
        "saturation must shed at least one request before execution"
    );
    eprintln!(
        "overload_smoke: {deadline_trips} deadline trips, {queue_expiries} queue expiries, \
         {codel_sheds} codel sheds, {busy_refusals} busy refusals"
    );

    // Line 3, after the storm: an unloaded client gets the exact
    // reference bytes — nothing the shed work touched is still visible.
    let mut after = NetClient::connect(addr, ClientConfig::default()).unwrap();
    let got = after.retrieve(&reference.0, SearchMode::TwoStage).unwrap();
    assert_eq!(
        got, reference.1,
        "post-storm answer diverged from reference"
    );
    server.shutdown();
}
