//! Knowledge-base statistics: the shape metrics the paper's discussion
//! turns on (EDB/IDB split, rule intensity, Warren's medium-KB estimate).

use crate::predicate::KnowledgeBase;
use std::fmt;

/// Aggregate statistics over a knowledge base.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KbStats {
    /// Number of predicates.
    pub predicates: usize,
    /// Total clauses.
    pub clauses: usize,
    /// Ground facts (the extensional part).
    pub ground_facts: usize,
    /// Non-ground facts (facts containing variables).
    pub open_facts: usize,
    /// Rules (clauses with bodies — the intensional part).
    pub rules: usize,
    /// Predicates mixing ground facts with rules/open facts.
    pub mixed_predicates: usize,
    /// Compiled size on disk (clause files + secondary files), bytes.
    pub compiled_bytes: usize,
    /// Estimated bytes to hold everything in main memory instead.
    pub in_memory_bytes: usize,
}

impl KbStats {
    /// Gathers statistics from a knowledge base.
    pub fn gather(kb: &KnowledgeBase) -> Self {
        let mut s = KbStats {
            predicates: 0,
            clauses: 0,
            ground_facts: 0,
            open_facts: 0,
            rules: 0,
            mixed_predicates: 0,
            compiled_bytes: kb.compiled_bytes(),
            in_memory_bytes: kb.in_memory_bytes(),
        };
        for module in kb.modules() {
            for pred in module.predicates() {
                s.predicates += 1;
                s.clauses += pred.clauses().len();
                if pred.is_mixed() {
                    s.mixed_predicates += 1;
                }
                for clause in pred.clauses() {
                    if !clause.is_fact() {
                        s.rules += 1;
                    } else if clause.is_ground_fact() {
                        s.ground_facts += 1;
                    } else {
                        s.open_facts += 1;
                    }
                }
            }
        }
        s
    }

    /// Fraction of clauses that are rules.
    pub fn rule_fraction(&self) -> f64 {
        if self.clauses == 0 {
            0.0
        } else {
            self.rules as f64 / self.clauses as f64
        }
    }
}

impl fmt::Display for KbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} predicates, {} clauses ({} ground facts, {} open facts, {} rules)",
            self.predicates, self.clauses, self.ground_facts, self.open_facts, self.rules
        )?;
        write!(
            f,
            "{} mixed predicates; {:.1} KB compiled, {:.1} KB if memory-resident",
            self.mixed_predicates,
            self.compiled_bytes as f64 / 1024.0,
            self.in_memory_bytes as f64 / 1024.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{KbBuilder, KbConfig};

    #[test]
    fn classification_counts() {
        let mut b = KbBuilder::new();
        b.consult(
            "m",
            "f(a). f(b).
             open(X, tag).
             r(X) :- f(X).
             mixed(ground). mixed(Y) :- open(Y, tag).",
        )
        .unwrap();
        let kb = b.finish(KbConfig::default());
        let s = KbStats::gather(&kb);
        assert_eq!(s.predicates, 4);
        assert_eq!(s.clauses, 6);
        assert_eq!(s.ground_facts, 3); // f(a), f(b), mixed(ground)
        assert_eq!(s.open_facts, 1); // open(X, tag)
        assert_eq!(s.rules, 2);
        assert_eq!(s.mixed_predicates, 1);
        assert!((s.rule_fraction() - 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let mut b = KbBuilder::new();
        b.consult("m", "p(a).").unwrap();
        let kb = b.finish(KbConfig::default());
        let text = KbStats::gather(&kb).to_string();
        assert!(text.contains("1 predicates"));
        assert!(text.contains("1 clauses"));
    }

    #[test]
    fn empty_kb() {
        let kb = KbBuilder::new().finish(KbConfig::default());
        let s = KbStats::gather(&kb);
        assert_eq!(s.clauses, 0);
        assert_eq!(s.rule_fraction(), 0.0);
    }
}
