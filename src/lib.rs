//! # CLARE — a type-driven engine for Prolog clause retrieval
//!
//! A faithful, route-accurate Rust reproduction of *Wong & Williams, "A
//! Type Driven Hardware Engine for Prolog Clause Retrieval over a Large
//! Knowledge Base" (ISCA 1989)*: the two-stage CLARE filter (FS1
//! superimposed codewords + mask bits, FS2 partial test unification), the
//! PDBM knowledge-base system around it, and the full experiment harness.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`term`] | Prolog terms, symbol table, reader |
//! | [`unify`] | full unification oracle + matching levels 1–5 |
//! | [`pif`] | Pseudo In-line Format (Table A1 tags, clause records) |
//! | [`scw`] | FS1: SCW+MB codewords, masks, index scanner |
//! | [`disk`] | disk geometry/timing, track-organised files |
//! | [`fs2`] | FS2 simulator: datapath, Map ROM, engine, result memory |
//! | [`kb`] | modules, predicates, compiled clause files |
//! | [`wal`] | write-ahead log, memtable overlay, compaction support |
//! | [`core`] | Clause Retrieval Server, search modes, resolution |
//! | [`workload`] | synthetic knowledge bases and query sets |
//! | [`net`] | PIF-over-TCP wire protocol, serving daemon, client |
//! | [`cluster`] | predicate-sharded router, log-shipping replication |
//! | [`trace`] | process-wide metrics registry, spans, sinks |
//!
//! # Quickstart
//!
//! ```
//! use clare::prelude::*;
//!
//! let mut builder = KbBuilder::new();
//! builder.consult("family", "
//!     parent(tom, bob). parent(bob, ann).
//!     grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
//! ")?;
//! let (query, names) = parse_term_with_vars("grandparent(tom, Who)", builder.symbols_mut())?;
//! let kb = builder.finish(KbConfig::default());
//!
//! let outcome = solve(&kb, &query, &names, &SolveOptions::default());
//! assert_eq!(outcome.solutions.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use clare_cluster as cluster;
pub use clare_core as core;
pub use clare_disk as disk;
pub use clare_fs2 as fs2;
pub use clare_kb as kb;
pub use clare_net as net;
pub use clare_pif as pif;
pub use clare_scw as scw;
pub use clare_term as term;
pub use clare_trace as trace;
pub use clare_unify as unify;
pub use clare_wal as wal;
pub use clare_workload as workload;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use clare_core::{
        choose_mode, retrieve, retrieve_batch, solve, solve_goals, ClauseRetrievalServer,
        CommitError, CommitReceipt, CompactionOutcome, CrsOptions, ReplayReport, Retrieval,
        SearchMode, ServerStats, SolveOptions, UpdateTransaction, WalError, WalOp,
    };
    pub use clare_disk::{ByteRate, DiskProfile, SimNanos};
    pub use clare_fs2::{Fs2Config, Fs2Device, Fs2Engine, HwOp};
    pub use clare_kb::{KbBuilder, KbConfig, KbStats, KnowledgeBase};
    pub use clare_net::{ClientConfig, NetClient, NetConfig, NetError, NetServer};
    pub use clare_pif::{encode_clause_head, encode_query, ClauseRecord};
    pub use clare_scw::{IndexFile, ScwConfig};
    pub use clare_term::parser::{
        parse_clause, parse_goals, parse_program, parse_term, parse_term_with_vars,
    };
    pub use clare_term::{Clause, SymbolTable, Term, TermDisplay};
    pub use clare_unify::partial::{partial_match, MatchLevel, PartialConfig};
    pub use clare_unify::unify_query_clause;
}
