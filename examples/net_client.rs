//! Clause retrieval over the network, verified against the in-process
//! engine query for query.
//!
//! ```text
//! cargo run --release --example net_client [--warren SCALE] [--queries N]
//! ```
//!
//! Starts a [`NetServer`] on a loopback port, connects a [`NetClient`],
//! and drives a query mix through all three request paths — single
//! retrieves, a pipelined burst (which the server coalesces into hardware
//! batch passes), and an explicit batch. Every networked answer is
//! compared against a direct call on the same Clause Retrieval Server;
//! **any mismatch exits nonzero**, which is what the CI `net-smoke` step
//! relies on.
//!
//! By default the knowledge base is the small family demo. With
//! `--warren SCALE` it is a Warren-style workload at that scale and the
//! query mix is derived across all five query shapes (`--queries` per
//! shape and mode, default 15 — with 5 shapes and 4 modes that is already
//! several hundred networked retrievals).

use clare::prelude::*;
use clare_workload::{derive_queries, QueryShape, WarrenSpec};
use std::sync::Arc;

const FAMILY: &str = "
    parent(tom, bob). parent(tom, liz). parent(bob, ann).
    parent(bob, pat). parent(pat, jim). parent(liz, joe).
    male(tom). male(bob). male(jim). male(pat). male(joe).
    female(liz). female(ann).
    grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut warren: Option<f64> = None;
    let mut per_shape: usize = 15;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--warren" => warren = Some(args.next().ok_or("missing --warren value")?.parse()?),
            "--queries" => per_shape = args.next().ok_or("missing --queries value")?.parse()?,
            other => return Err(format!("unknown argument {other}").into()),
        }
    }

    // Build the knowledge base and derive the query mix.
    let mut builder = KbBuilder::new();
    let queries: Vec<Term> = if let Some(scale) = warren {
        let spec = WarrenSpec::scaled(scale);
        println!(
            "generating Warren-style KB at scale {scale}: {} predicates, {} rules, {} facts",
            spec.predicates, spec.rules, spec.facts
        );
        let summary = spec.generate(&mut builder, "warren");
        let miss = builder.symbols_mut().intern_atom("never_stored_atom");
        QueryShape::ALL
            .iter()
            .flat_map(|&shape| derive_queries(&summary.sample_heads, shape, per_shape, miss, 11))
            .collect()
    } else {
        builder.consult("family", FAMILY)?;
        [
            "parent(tom, X)",
            "parent(X, jim)",
            "parent(X, Y)",
            "parent(bob, ann)",
            "parent(nobody, X)",
            "male(X)",
            "female(ann)",
            "grandparent(tom, X)",
        ]
        .iter()
        .map(|q| parse_term(q, builder.symbols_mut()))
        .collect::<Result<_, _>>()?
    };
    let kb = builder.finish(KbConfig::default());

    // Serve it on a loopback port and connect.
    let crs = Arc::new(ClauseRetrievalServer::new(kb, CrsOptions::default()));
    let server = NetServer::bind(Arc::clone(&crs), "127.0.0.1:0", NetConfig::default())?;
    println!(
        "serving on {} (protocol v{})",
        server.local_addr(),
        clare::net::PROTOCOL_VERSION
    );
    let mut client = NetClient::connect(server.local_addr(), ClientConfig::default())?;
    client.ping()?;

    // The client parses queries against the server's own namespace; here
    // the queries were parsed pre-finish from the same table, so just
    // confirm the downloaded table agrees.
    let symbols = client.symbols()?;
    assert_eq!(
        symbols.atom_count(),
        crs.snapshot().symbols().atom_count(),
        "downloaded symbol table must mirror the server's"
    );

    let mut sent = 0usize;
    let mut mismatches = 0usize;
    let mut check = |label: &str, networked: &Retrieval, direct: &Retrieval| {
        sent += 1;
        if networked != direct {
            mismatches += 1;
            eprintln!("MISMATCH ({label}): {networked:?} != {direct:?}");
        }
    };

    for mode in SearchMode::ALL {
        // Path 1: single retrieves.
        for query in &queries {
            let networked = client.retrieve(query, mode)?;
            check("single", &networked, &crs.retrieve(query, mode));
        }
        // Path 2: one pipelined burst (server-side coalescing).
        let burst = client.retrieve_pipelined(&queries, mode)?;
        for (query, networked) in queries.iter().zip(&burst) {
            check("pipelined", networked, &crs.retrieve(query, mode));
        }
        // Path 3: an explicit batch against one snapshot.
        let batch = client.retrieve_batch(&queries, mode)?;
        for (networked, direct) in batch.iter().zip(crs.retrieve_batch(&queries, mode).iter()) {
            check("batch", networked, direct);
        }
    }

    let stats = client.stats()?;
    println!(
        "{} networked retrievals verified against the in-process engine \
         ({} batched calls on the server, {} rejected)",
        sent, stats.batches, stats.rejected
    );

    // The extended stats opcode carries the per-layer metrics registry
    // alongside the same legacy struct; after the run above every layer
    // must show activity. CI's metrics-smoke step relies on this failing
    // nonzero.
    let (extended_stats, metrics) = client.metrics()?;
    assert_eq!(
        extended_stats, stats,
        "legacy struct inside the extended reply must match the legacy opcode"
    );
    for counter in [
        "fs1.scans",
        "fs2.tracks",
        "fs2.clauses",
        "net.frames_in.retrieve",
        "net.frames_out",
        "net.bytes_in",
    ] {
        let value = metrics
            .counter(counter)
            .ok_or_else(|| format!("{counter} missing from the wire metrics snapshot"))?;
        if value == 0 {
            return Err(format!("{counter} stayed zero over a full networked run").into());
        }
    }
    let latency = metrics
        .histogram("crs.retrieve_wall_ns")
        .ok_or("retrieval latency histogram missing")?;
    println!(
        "wire metrics: fs1.scans={} fs2.clauses={} net.frames_in.retrieve={} \
         retrieval p50={}ns p99={}ns",
        metrics.counter("fs1.scans").unwrap_or(0),
        metrics.counter("fs2.clauses").unwrap_or(0),
        metrics.counter("net.frames_in.retrieve").unwrap_or(0),
        latency.p50(),
        latency.p99(),
    );
    server.shutdown();

    if mismatches > 0 {
        eprintln!("{mismatches} mismatches");
        std::process::exit(1);
    }
    println!("all networked answers byte-identical");
    Ok(())
}
