//! Replication-shipping round-trip at the frame-encoding boundaries.
//!
//! A WAL op crosses the cluster's replication stream as the raw frame
//! payload (`encode_ship_record` → wire → `decode_ship_record`) and is
//! applied on the backup through the same `Overlay::apply` path the
//! primary used. These tests pin the contract at the length boundaries
//! of the encoding: module names of 0 / 1 / 65535 bytes (the `u16`
//! prefix) and sources of 0 / 1 / 65535 / 65536 bytes (bounded only by
//! `MAX_PAYLOAD`), with 65536-byte modules refused as a typed
//! `WalError::OpTooLarge` — never a silently truncated frame.

use clare_kb::{KbBuilder, KbConfig, KnowledgeBase};
use clare_wal::{decode_ship_record, encode_ship_record, Overlay, WalError, WalOp};
use proptest::prelude::*;

/// Module-name boundary lengths that must encode (the u16 prefix caps
/// at 65535; 65536 is the typed-refusal case below).
const MOD_BOUNDS: [usize; 3] = [0, 1, 65535];
/// Source boundary lengths; the source prefix is u32, so 65536 must
/// round-trip like any other length.
const SRC_BOUNDS: [usize; 4] = [0, 1, 65535, 65536];

fn base_kb() -> KnowledgeBase {
    let mut b = KbBuilder::new();
    b.consult("user", "p(a). p(b). q(c).").unwrap();
    b.finish(KbConfig::default())
}

/// A parseable source of exactly `len` bytes: whitespace (zero clauses)
/// below the smallest fact, else one fact padded through its atom name.
fn fact_of_len(len: usize) -> String {
    if len < 5 {
        " ".repeat(len)
    } else {
        format!("p({}).", "a".repeat(len - 4))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn boundary_ops_apply_identically_after_shipping(
        mlen_i in 0usize..3,
        slen_i in 0usize..4,
        retract in any::<bool>(),
        seq in 1u64..1_000_000,
    ) {
        let module = "m".repeat(MOD_BOUNDS[mlen_i]);
        let source = if retract {
            // Retract demands exactly one clause; pad to the boundary
            // where one fits, else use the smallest fact.
            fact_of_len(SRC_BOUNDS[slen_i].max(5))
        } else {
            fact_of_len(SRC_BOUNDS[slen_i])
        };
        let op = if retract {
            WalOp::Retract { module, source }
        } else {
            WalOp::Assert { module, source }
        };
        prop_assert!(op.validate().is_ok());

        // Ship: the exact bytes a LOG_FRAME carries.
        let bytes = encode_ship_record(seq, &op);
        let shipped = decode_ship_record(&bytes).expect("boundary op decodes");
        prop_assert_eq!(shipped.seq, seq);
        prop_assert_eq!(&shipped.op, &op);

        // Apply locally and apply the shipped copy; the overlays must be
        // indistinguishable.
        let kb = base_kb();
        let config = KbConfig::default();
        let mut local = Overlay::new(kb.symbols().clone());
        let mut remote = Overlay::new(kb.symbols().clone());
        let a = local.apply(seq, &op, &kb, &config);
        let b = remote.apply(shipped.seq, &shipped.op, &kb, &config);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(x), Err(y)) => prop_assert_eq!(format!("{x:?}"), format!("{y:?}")),
            (a, b) => prop_assert!(false, "divergent apply: {a:?} vs {b:?}"),
        }
        prop_assert_eq!(local.ops(), remote.ops());
        prop_assert_eq!(local.added_clauses(), remote.added_clauses());
        prop_assert_eq!(local.max_seq(), remote.max_seq());
        for (key, delta) in local.predicates() {
            let mirrored = remote.delta(key.0, key.1).expect("delta shipped");
            prop_assert_eq!(delta.module(), mirrored.module());
            prop_assert_eq!(delta.added(), mirrored.added());
            prop_assert_eq!(delta.retracted_base(), mirrored.retracted_base());
        }
        // Re-encoding the applied record is byte-identical: shipping is
        // lossless end to end.
        prop_assert_eq!(encode_ship_record(shipped.seq, &shipped.op), bytes);
    }
}

#[test]
fn past_boundary_module_is_a_typed_refusal() {
    let op = WalOp::Assert {
        module: "m".repeat(65536),
        source: "p(a).".into(),
    };
    match op.validate() {
        Err(WalError::OpTooLarge { what, len, max }) => {
            assert_eq!(what, "module name");
            assert_eq!(len, 65536);
            assert_eq!(max, 65535);
        }
        other => panic!("expected OpTooLarge, got {other:?}"),
    }
}
