//! Property tests for the unification laws.

use clare_term::parser::parse_term;
use clare_term::SymbolTable;
use clare_unify::full::{unify, UnifyOptions};
use clare_unify::partial::{match_at_all_levels, partial_match, PartialConfig};
use clare_unify::store::{shift_vars, var_span, BindingStore};
use clare_unify::unify_query_clause;
use proptest::prelude::*;

/// Source strategy for clause-head-shaped terms over a small vocabulary
/// (small = collisions = interesting unifications).
fn head_source() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(str::to_owned),
        (0i64..4).prop_map(|v| v.to_string()),
        prop_oneof![Just("X"), Just("Y"), Just("Z")].prop_map(str::to_owned),
        Just("_".to_owned()),
    ];
    let term = leaf.prop_recursive(2, 12, 3, |inner| {
        let args = prop::collection::vec(inner.clone(), 1..3);
        prop_oneof![
            ("[fg]", args.clone()).prop_map(|(f, a)| format!("{f}({})", a.join(", "))),
            prop::collection::vec(inner.clone(), 0..3)
                .prop_map(|items| format!("[{}]", items.join(", "))),
            (
                prop::collection::vec(inner, 1..3),
                prop_oneof![Just("X"), Just("T")]
            )
                .prop_map(|(items, t)| format!("[{} | {t}]", items.join(", "))),
        ]
    });
    prop::collection::vec(term, 1..4).prop_map(|args| format!("p({})", args.join(", ")))
}

fn parse_pair(q: &str, c: &str) -> (clare_term::Term, clare_term::Term) {
    let mut symbols = SymbolTable::new();
    let qt = parse_term(q, &mut symbols).unwrap();
    let ct = parse_term(c, &mut symbols).unwrap();
    (qt, ct)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Success is symmetric: q unifies with c iff c unifies with q.
    #[test]
    fn unification_is_symmetric(q in head_source(), c in head_source()) {
        let (qt, ct) = parse_pair(&q, &c);
        prop_assert_eq!(
            unify_query_clause(&qt, &ct).is_some(),
            unify_query_clause(&ct, &qt).is_some(),
            "{} vs {}", q, c
        );
    }

    /// A term always unifies with itself (its variables simply co-bind).
    #[test]
    fn unification_is_reflexive(q in head_source()) {
        let (qt, qt2) = parse_pair(&q, &q);
        prop_assert!(unify_query_clause(&qt, &qt2).is_some(), "{}", q);
    }

    /// The resolved query after a successful unification unifies with the
    /// clause again (stability of the answer substitution).
    #[test]
    fn answers_are_stable(q in head_source(), c in head_source()) {
        let (qt, ct) = parse_pair(&q, &c);
        if let Some(store) = unify_query_clause(&qt, &ct) {
            let answer = store.resolve(&qt);
            prop_assert!(
                unify_query_clause(&answer, &ct).is_some(),
                "answer {:?} no longer unifies", answer
            );
        }
    }

    /// Failure leaves no bindings behind (the trail rolls back).
    #[test]
    fn failure_rolls_back(q in head_source(), c in head_source()) {
        let (qt, ct) = parse_pair(&q, &c);
        let offset = var_span(&qt);
        let renamed = shift_vars(&ct, offset);
        let mut store = BindingStore::with_capacity((offset + var_span(&renamed)) as usize);
        if !unify(&qt, &renamed, &mut store, UnifyOptions { occurs_check: true }) {
            for i in 0..store.len() {
                prop_assert!(
                    store.lookup(clare_term::VarId::new(i as u32)).is_none(),
                    "binding survived failed unification"
                );
            }
        }
    }

    /// The level ladder is monotone and FS2 config sits between L3 and
    /// the oracle.
    #[test]
    fn level_ladder(q in head_source(), c in head_source()) {
        let (qt, ct) = parse_pair(&q, &c);
        let ladder = match_at_all_levels(&qt, &ct);
        for w in ladder.windows(2) {
            prop_assert!(w[0] || !w[1], "ladder not monotone: {:?}", ladder);
        }
        let fs2 = partial_match(&qt, &ct, PartialConfig::fs2()).matched;
        let full = unify_query_clause(&qt, &ct).is_some();
        // Completeness: full ⊆ fs2 ⊆ L3.
        prop_assert!(!full || fs2);
        prop_assert!(!fs2 || ladder[2], "fs2 accepts only within L3");
    }

    /// The op trace never mixes store/fetch families incorrectly: a
    /// variable's first effective touch is a store, so per side the number
    /// of stores never exceeds the number of distinct variables.
    #[test]
    fn op_trace_counts_are_plausible(q in head_source(), c in head_source()) {
        use clare_unify::partial::PartialOp;
        let (qt, ct) = parse_pair(&q, &c);
        let report = partial_match(&qt, &ct, PartialConfig::fs2());
        let hist = report.op_histogram();
        let q_vars = var_span(&qt) as usize;
        let c_vars = var_span(&ct) as usize;
        let idx = |op: PartialOp| PartialOp::ALL.iter().position(|o| *o == op).unwrap();
        prop_assert!(hist[idx(PartialOp::QueryStore)] <= q_vars + c_vars);
        prop_assert!(hist[idx(PartialOp::DbStore)] <= q_vars + c_vars);
    }
}
