//! The FS2 matching engine: Map ROM dispatch over PIF word streams.
//!
//! This is the simulator's heart. The query stream sits pre-loaded in
//! Query Memory; each clause-head stream arrives (via the Double Buffer)
//! and is walked in lockstep with the query. Every word pair dispatches
//! through the `MapRom` to a microroutine which
//! drives one of the seven hardware operations; execution time accumulates
//! from the route-derived [`HwOp::execution_time`] values, so the verdict
//! comes with an exact Table 1-based cost.
//!
//! The matching semantics are Level 3 partial test unification with
//! variable cross-binding checks — the configuration the paper adopts —
//! and they agree verdict-for-verdict with the software reference
//! (`clare_unify::partial` at `PartialConfig::fs2()`); a property test in
//! the workspace's integration suite asserts exactly that.

use crate::map::{MapRom, Routine};
use crate::memory::{CellBank, QueryMemory, QueryTooLargeError};
use crate::ops::HwOp;
use clare_disk::SimNanos;
use clare_pif::{PifStream, PifWord, TagCategory, TypeTag};

/// Outcome of matching one clause-head stream against the loaded query.
#[derive(Debug, Clone, PartialEq)]
pub struct ClauseVerdict {
    /// True if the clause survives the filter (a potential unifier).
    pub matched: bool,
    /// The hardware operations performed, in order.
    pub ops: Vec<HwOp>,
    /// Total execution time (sum of Table 1 entries for `ops`).
    pub time: SimNanos,
}

impl ClauseVerdict {
    /// Histogram over [`HwOp::ALL`].
    pub fn op_histogram(&self) -> [usize; 7] {
        let mut h = [0usize; 7];
        for op in &self.ops {
            h[op.index()] += 1;
        }
        h
    }
}

/// Outcome of matching one clause-head stream on the allocation-free path
/// ([`Fs2Engine::match_clause_words`]): the verdict, the exact Table 1
/// time, and an operation histogram instead of the per-operation vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamVerdict {
    /// True if the clause survives the filter (a potential unifier).
    pub matched: bool,
    /// Total execution time (sum of Table 1 entries).
    pub time: SimNanos,
    /// Count of each operation performed, indexed per [`HwOp::ALL`].
    pub op_histogram: [usize; 7],
}

impl StreamVerdict {
    /// Total operations performed.
    pub fn op_count(&self) -> usize {
        self.op_histogram.iter().sum()
    }
}

/// One traced word-pair comparison (see
/// [`Fs2Engine::match_clause_stream_traced`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// Index of the query word in the query stream.
    pub q_index: usize,
    /// Index of the database word in the clause-head stream.
    pub d_index: usize,
    /// The Map ROM routine that fired.
    pub routine: crate::map::Routine,
    /// The first hardware operation the routine performed, if any.
    pub op: Option<HwOp>,
    /// True if the pair passed (matching continued).
    pub passed: bool,
}

/// Which memory bank a variable lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarSide {
    Query,
    Db,
}

/// Result of chasing a variable's reference chain through the memories.
#[derive(Debug, Clone, Copy)]
enum Resolved {
    Unbound {
        side: VarSide,
        offset: u32,
        hops: usize,
    },
    Value {
        raw: u32,
        hops: usize,
    },
}

/// The FS2 matching engine, holding the loaded query and the two variable
/// memories.
///
/// # Examples
///
/// ```
/// use clare_term::{SymbolTable, parser::parse_term};
/// use clare_pif::{encode_clause_head, encode_query};
/// use clare_fs2::Fs2Engine;
///
/// let mut sy = SymbolTable::new();
/// let query = parse_term("married_couple(S, S)", &mut sy)?;
/// let mut engine = Fs2Engine::new(&encode_query(&query)?)?;
///
/// let hit = parse_term("married_couple(sue, sue)", &mut sy)?;
/// assert!(engine.match_clause_stream(&encode_clause_head(&hit)?).matched);
///
/// let miss = parse_term("married_couple(ann, bob)", &mut sy)?;
/// assert!(!engine.match_clause_stream(&encode_clause_head(&miss)?).matched);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fs2Engine {
    query: QueryMemory,
    q_cells: CellBank,
    db_cells: CellBank,
    /// Handle to the process-wide Map ROM ([`MapRom::shared`]): the table
    /// is burned once, so engine construction and cloning never pay the
    /// 64 K-entry derivation.
    rom: std::sync::Arc<MapRom>,
    /// Reusable op buffer for the allocation-free path; cleared per
    /// clause, its capacity persists across the whole sweep.
    scratch_ops: Vec<HwOp>,
    /// The query stream's raw words when every word is a simple value
    /// (atom/float/int pointer or in-line integer) — the precondition for
    /// the all-simple fast path of [`Self::match_clause_words`].
    simple_query: Option<Vec<u32>>,
    /// Reusable raw-word buffer for the fast path's view of the clause
    /// stream.
    scratch_raw: Vec<u32>,
}

impl Fs2Engine {
    /// Loads a query stream (the Set Query phase).
    ///
    /// # Errors
    ///
    /// Returns [`QueryTooLargeError`] if the stream exceeds the Query
    /// Memory's 8-bit address space.
    pub fn new(query_stream: &PifStream) -> Result<Self, QueryTooLargeError> {
        let query = QueryMemory::load(query_stream)?;
        let n_vars = query.var_count();
        clare_trace::metrics().fs2_queries_loaded.inc();
        let simple_query = query
            .stream()
            .iter()
            .all(|w| w.type_tag().category() == TagCategory::Simple)
            .then(|| query.stream().iter().map(|w| w.to_u32()).collect());
        Ok(Fs2Engine {
            query,
            q_cells: CellBank::query_vars(n_vars),
            db_cells: CellBank::db_vars(0),
            rom: MapRom::shared(),
            scratch_ops: Vec::new(),
            simple_query,
            scratch_raw: Vec::new(),
        })
    }

    /// The loaded query stream.
    pub fn query_stream(&self) -> &[PifWord] {
        self.query.stream()
    }

    /// Matches one clause-head stream and records a per-pair trace: which
    /// words were compared, which Map ROM routine fired, which hardware
    /// operation ran, and whether the pair passed. The verdict is
    /// identical to [`Self::match_clause_stream`].
    pub fn match_clause_stream_traced(
        &mut self,
        db_stream: &PifStream,
    ) -> (ClauseVerdict, Vec<TraceStep>) {
        self.run_match(db_stream, true)
    }

    /// Matches one clause-head stream, resetting both variable memories
    /// first (the per-clause "reset to pointing to itself").
    pub fn match_clause_stream(&mut self, db_stream: &PifStream) -> ClauseVerdict {
        self.run_match(db_stream, false).0
    }

    /// Allocation-free variant of [`Self::match_clause_stream`] for tight
    /// sweep loops: matches a clause-head word slice (e.g. out of a
    /// pre-decoded arena), reusing the engine's scratch op buffer, and
    /// returns an op *histogram* plus time instead of the op vector. The
    /// verdict and time are identical to the vector-returning path.
    pub fn match_clause_words(&mut self, db_words: &[PifWord]) -> StreamVerdict {
        if let Some(verdict) = self.match_simple_fast(db_words) {
            return verdict;
        }
        self.reset_cells(db_words);
        let mut scratch = std::mem::take(&mut self.scratch_ops);
        scratch.clear();
        let mut run = Run {
            rom: &self.rom,
            q_cells: &mut self.q_cells,
            db_cells: &mut self.db_cells,
            ops: &mut scratch,
            op_histogram: [0; 7],
            time: SimNanos::ZERO,
            traced: false,
            trace: Vec::new(),
        };
        let q = self.query.stream();
        let matched = run.run(q, db_words);
        let verdict = StreamVerdict {
            matched,
            time: run.time,
            op_histogram: run.op_histogram,
        };
        self.scratch_ops = scratch;
        verdict
    }

    /// [`Self::match_clause_words`] over a [`PifStream`].
    pub fn match_clause_quiet(&mut self, db_stream: &PifStream) -> StreamVerdict {
        self.match_clause_words(db_stream.words())
    }

    /// The all-simple fast path: when every query word and every clause
    /// word is a simple value, the Map ROM routes every pair to
    /// `SimpleMatch`, so the sweep collapses to a raw-word comparison —
    /// one MATCH op per pair up to and including the first mismatch, with
    /// no cell-bank resets and no per-op dispatch. The comparison runs
    /// through [`clare_simd::first_mismatch_u32`]. Returns `None` (and
    /// leaves no state behind) when either stream has a variable or
    /// complex word, falling back to the full Map ROM walk.
    ///
    /// The verdict is bit-identical to the scalar path: the lockstep loop
    /// advances one word per side, charges MATCH before comparing, stops
    /// at the first mismatch, and accepts only when both streams end
    /// together.
    fn match_simple_fast(&mut self, db_words: &[PifWord]) -> Option<StreamVerdict> {
        let q = self.simple_query.as_deref()?;
        self.scratch_raw.clear();
        for w in db_words {
            if w.type_tag().category() != TagCategory::Simple {
                return None;
            }
            self.scratch_raw.push(w.to_u32());
        }
        let d = self.scratch_raw.as_slice();
        let (matched, match_ops) = match clare_simd::first_mismatch_u32(clare_simd::level(), q, d) {
            Some(k) => (false, k + 1),
            None => (q.len() == d.len(), q.len().min(d.len())),
        };
        let mut op_histogram = [0usize; 7];
        op_histogram[HwOp::Match.index()] = match_ops;
        Some(StreamVerdict {
            matched,
            time: HwOp::Match.execution_time() * match_ops as u64,
            op_histogram,
        })
    }

    /// Per-clause reset: DB Memory sized to the clause's variables, both
    /// banks "pointing to themselves".
    fn reset_cells(&mut self, db_words: &[PifWord]) {
        let db_vars = db_words
            .iter()
            .filter_map(|w| match w.type_tag() {
                TypeTag::DbVar { .. } => Some(w.content() + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0) as usize;
        self.db_cells.reset(db_vars);
        self.q_cells.reset(self.query.var_count());
    }

    fn run_match(
        &mut self,
        db_stream: &PifStream,
        traced: bool,
    ) -> (ClauseVerdict, Vec<TraceStep>) {
        let d = db_stream.words();
        self.reset_cells(d);

        let mut ops = Vec::new();
        let mut run = Run {
            rom: &self.rom,
            q_cells: &mut self.q_cells,
            db_cells: &mut self.db_cells,
            ops: &mut ops,
            op_histogram: [0; 7],
            time: SimNanos::ZERO,
            traced,
            trace: Vec::new(),
        };
        // Clone-free view of the two streams.
        let q = self.query.stream();
        let matched = run.run(q, d);
        let time = run.time;
        let trace = run.trace;
        (ClauseVerdict { matched, ops, time }, trace)
    }
}

struct Run<'a> {
    rom: &'a MapRom,
    q_cells: &'a mut CellBank,
    db_cells: &'a mut CellBank,
    ops: &'a mut Vec<HwOp>,
    op_histogram: [usize; 7],
    time: SimNanos,
    traced: bool,
    trace: Vec<TraceStep>,
}

/// Advance past a word and its in-line elements.
fn skip(words: &[PifWord], i: usize) -> usize {
    i + 1 + words[i].type_tag().inline_elements()
}

/// The variable-reference word written into cells when two unbound
/// variables are bound together.
fn ref_word(side: VarSide, offset: u32) -> u32 {
    match side {
        VarSide::Query => crate::memory::qv_self_word(offset),
        VarSide::Db => crate::memory::dv_self_word(offset),
    }
}

/// Side a variable *tag* addresses.
fn tag_side(tag: TypeTag) -> Option<VarSide> {
    match tag {
        TypeTag::QueryVar { .. } => Some(VarSide::Query),
        TypeTag::DbVar { .. } => Some(VarSide::Db),
        _ => None,
    }
}

/// Conservative raw-word comparison for values whose element data is not
/// available (fetched bindings, pointer words): false only when the words
/// prove unification impossible.
fn could_unify_raw(a: u32, b: u32) -> bool {
    let (Ok(ta), Ok(tb)) = (
        TypeTag::from_byte((a >> 24) as u8),
        TypeTag::from_byte((b >> 24) as u8),
    ) else {
        return false;
    };
    use TypeTag::*;
    match (ta, tb) {
        // A variable word reaching a raw comparison is conservative-true.
        (Anon | QueryVar { .. } | DbVar { .. }, _) => true,
        (_, Anon | QueryVar { .. } | DbVar { .. }) => true,
        (AtomPtr, AtomPtr) | (FloatPtr, FloatPtr) | (IntInline { .. }, IntInline { .. }) => a == b,
        (
            StructInline { arity: aa } | StructPtr { arity: aa },
            StructInline { arity: ab } | StructPtr { arity: ab },
        ) => aa == ab && (a & 0x00FF_FFFF) == (b & 0x00FF_FFFF),
        (
            ListInline {
                arity: aa,
                terminated: true,
            }
            | ListPtr {
                arity: aa,
                terminated: true,
            },
            ListInline {
                arity: ab,
                terminated: true,
            }
            | ListPtr {
                arity: ab,
                terminated: true,
            },
        ) => aa == ab,
        // Any list pairing involving an unterminated list could unify.
        (ListInline { .. } | ListPtr { .. }, ListInline { .. } | ListPtr { .. }) => true,
        _ => false,
    }
}

impl Run<'_> {
    fn op(&mut self, op: HwOp) {
        self.time += op.execution_time();
        self.op_histogram[op.index()] += 1;
        self.ops.push(op);
    }

    fn run(&mut self, q: &[PifWord], d: &[PifWord]) -> bool {
        let mut qi = 0;
        let mut di = 0;
        while qi < q.len() && di < d.len() {
            match self.pair(q, qi, d, di) {
                Some((nq, nd)) => {
                    qi = nq;
                    di = nd;
                }
                None => return false,
            }
        }
        // Both streams must end together (same predicate indicator is
        // guaranteed upstream; a desync means a malformed stream).
        qi == q.len() && di == d.len()
    }

    /// Processes one aligned word pair; `None` is a failed match,
    /// `Some((qi', di'))` the positions after the pair.
    fn pair(
        &mut self,
        q: &[PifWord],
        qi: usize,
        d: &[PifWord],
        di: usize,
    ) -> Option<(usize, usize)> {
        if !self.traced {
            return self.pair_inner(q, qi, d, di);
        }
        let routine = self.rom.dispatch(d[di].tag(), q[qi].tag());
        let ops_before = self.ops.len();
        let step_slot = self.trace.len();
        self.trace.push(TraceStep {
            q_index: qi,
            d_index: di,
            routine,
            op: None,
            passed: false,
        });
        let outcome = self.pair_inner(q, qi, d, di);
        self.trace[step_slot].op = self.ops.get(ops_before).copied();
        self.trace[step_slot].passed = outcome.is_some();
        outcome
    }

    fn pair_inner(
        &mut self,
        q: &[PifWord],
        qi: usize,
        d: &[PifWord],
        di: usize,
    ) -> Option<(usize, usize)> {
        let qw = q[qi];
        let dw = d[di];
        match self.rom.dispatch(dw.tag(), qw.tag()) {
            Routine::Skip => {
                self.op(HwOp::Match);
                Some((skip(q, qi), skip(d, di)))
            }
            Routine::SimpleMatch => {
                self.op(HwOp::Match);
                if qw.to_u32() == dw.to_u32() {
                    Some((skip(q, qi), skip(d, di)))
                } else {
                    None
                }
            }
            Routine::DbVar => self.var_routine(dw, qw, q, qi, d, di),
            Routine::QueryVar => self.var_routine(qw, dw, q, qi, d, di),
            Routine::ComplexMatch => self.complex(q, qi, d, di),
            Routine::Invalid => None,
        }
    }

    /// Follows a variable's reference chain through the two memories.
    fn resolve(&self, mut side: VarSide, mut offset: u32) -> Resolved {
        let mut hops = 0usize;
        loop {
            let bank = match side {
                VarSide::Query => &self.q_cells,
                VarSide::Db => &self.db_cells,
            };
            if offset as usize >= bank.len() {
                // Malformed stream; treat as unbound so matching stays
                // total (the record will fail full unification anyway).
                return Resolved::Unbound { side, offset, hops };
            }
            let raw = bank.read(offset);
            let tag = TypeTag::from_byte((raw >> 24) as u8).ok();
            let next_side = tag.and_then(tag_side);
            match next_side {
                Some(ns) => {
                    let next_offset = raw & 0x00FF_FFFF;
                    if ns == side && next_offset == offset {
                        return Resolved::Unbound { side, offset, hops };
                    }
                    side = ns;
                    offset = next_offset;
                    hops += 1;
                }
                None => return Resolved::Value { raw, hops },
            }
        }
    }

    fn write_cell(&mut self, side: VarSide, offset: u32, raw: u32) {
        let bank = match side {
            VarSide::Query => &mut self.q_cells,
            VarSide::Db => &mut self.db_cells,
        };
        // A corrupt stream can reference a cell that does not exist; the
        // write is dropped (the clause can only be over-accepted, which
        // full unification cleans up — never under-accepted).
        if (offset as usize) < bank.len() {
            bank.write(offset, raw);
        }
    }

    /// Figure 1 cases 5/6: a variable word (`var_word`) against the other
    /// bus's word (`other`). Operation classification follows the paper:
    /// unbound ⇒ STORE, bound-to-value ⇒ FETCH, bound-through-a-variable ⇒
    /// CROSS_BOUND_FETCH — each against the memory the variable's tag
    /// addresses.
    fn var_routine(
        &mut self,
        var_word: PifWord,
        other: PifWord,
        q: &[PifWord],
        qi: usize,
        d: &[PifWord],
        di: usize,
    ) -> Option<(usize, usize)> {
        let side = tag_side(var_word.type_tag()).expect("routed by a variable tag");
        let (store_op, fetch_op, cross_op) = match side {
            VarSide::Db => (HwOp::DbStore, HwOp::DbFetch, HwOp::DbCrossBoundFetch),
            VarSide::Query => (
                HwOp::QueryStore,
                HwOp::QueryFetch,
                HwOp::QueryCrossBoundFetch,
            ),
        };
        let advance = Some((skip(q, qi), skip(d, di)));
        let other_side = tag_side(other.type_tag());
        match self.resolve(side, var_word.content()) {
            Resolved::Unbound {
                side: end_side,
                offset: end_off,
                hops,
            } => {
                self.op(if hops == 0 { store_op } else { cross_op });
                match other_side {
                    Some(os) => match self.resolve(os, other.content()) {
                        Resolved::Unbound {
                            side: o_side,
                            offset: o_off,
                            ..
                        } => {
                            if (o_side, o_off) != (end_side, end_off) {
                                self.write_cell(end_side, end_off, ref_word(o_side, o_off));
                            }
                            advance
                        }
                        Resolved::Value { raw, .. } => {
                            self.write_cell(end_side, end_off, raw);
                            advance
                        }
                    },
                    None => {
                        self.write_cell(end_side, end_off, other.to_u32());
                        advance
                    }
                }
            }
            Resolved::Value { raw, hops } => {
                self.op(if hops == 0 { fetch_op } else { cross_op });
                match other_side {
                    Some(os) => match self.resolve(os, other.content()) {
                        Resolved::Unbound {
                            side: o_side,
                            offset: o_off,
                            ..
                        } => {
                            self.write_cell(o_side, o_off, raw);
                            advance
                        }
                        Resolved::Value { raw: other_raw, .. } => {
                            if could_unify_raw(raw, other_raw) {
                                advance
                            } else {
                                None
                            }
                        }
                    },
                    None => {
                        if could_unify_raw(raw, other.to_u32()) {
                            advance
                        } else {
                            None
                        }
                    }
                }
            }
        }
    }

    /// Repetitive matching of two complex words (§3.1): arity counters
    /// loaded, element pairs compared until a counter reaches zero.
    fn complex(
        &mut self,
        q: &[PifWord],
        qi: usize,
        d: &[PifWord],
        di: usize,
    ) -> Option<(usize, usize)> {
        self.op(HwOp::Match);
        let qw = q[qi];
        let dw = d[di];
        use TypeTag::*;
        let compatible = match (dw.type_tag(), qw.type_tag()) {
            (StructInline { .. } | StructPtr { .. }, StructInline { .. } | StructPtr { .. }) => {
                // Functor symbol offsets must agree…
                dw.content() == qw.content()
                    // …and so must the arity fields (saturated for pointers).
                    && arity_field(dw) == arity_field(qw)
            }
            (
                ListInline {
                    terminated: true, ..
                }
                | ListPtr {
                    terminated: true, ..
                },
                ListInline {
                    terminated: true, ..
                }
                | ListPtr {
                    terminated: true, ..
                },
            ) => arity_field(dw) == arity_field(qw),
            // An unterminated list word does not pin a length.
            (ListInline { .. } | ListPtr { .. }, ListInline { .. } | ListPtr { .. }) => true,
            _ => false, // struct vs list
        };
        if !compatible {
            return None;
        }
        // Element comparison happens only when both sides carry their
        // elements in-line; pointer words have nothing in the stream.
        let q_elems = qw.type_tag().inline_elements();
        let d_elems = dw.type_tag().inline_elements();
        // A truncated stream (an in-line tag whose declared elements run
        // past the end) is corrupt; reject the clause rather than read
        // out of bounds.
        if qi + 1 + q_elems > q.len() || di + 1 + d_elems > d.len() {
            return None;
        }
        if q_elems > 0 && d_elems > 0 {
            // The two-counter rule: compare until either counter is zero.
            let n = q_elems.min(d_elems);
            for k in 0..n {
                // Elements are single words (nested complex terms are
                // pointers), so positions advance by exactly one.
                self.pair(q, qi + 1 + k, d, di + 1 + k)?;
            }
        }
        Some((qi + 1 + q_elems, di + 1 + d_elems))
    }
}

fn arity_field(word: PifWord) -> u8 {
    word.tag() & 0x1F
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_pif::{encode_clause_head, encode_query};
    use clare_term::parser::parse_term;
    use clare_term::SymbolTable;

    fn verdict(query: &str, clause: &str) -> ClauseVerdict {
        let mut sy = SymbolTable::new();
        let q = parse_term(query, &mut sy).unwrap();
        let c = parse_term(clause, &mut sy).unwrap();
        let mut engine = Fs2Engine::new(&encode_query(&q).unwrap()).unwrap();
        engine.match_clause_stream(&encode_clause_head(&c).unwrap())
    }

    fn fs2(query: &str, clause: &str) -> bool {
        verdict(query, clause).matched
    }

    #[test]
    fn ground_matching() {
        assert!(fs2("f(a, 1)", "f(a, 1)"));
        assert!(!fs2("f(a)", "f(b)"));
        assert!(!fs2("f(1)", "f(2)"));
        assert!(!fs2("f(1)", "f(1.0)"));
        assert!(fs2("f(2.5)", "f(2.5)"));
    }

    #[test]
    fn married_couple_example() {
        assert!(fs2("married_couple(S, S)", "married_couple(sue, sue)"));
        assert!(!fs2("married_couple(S, S)", "married_couple(ann, bob)"));
    }

    #[test]
    fn paper_cross_binding_example() {
        // §3.3.6: f(X, a, b) against f(A, a, A) needs a
        // DB_CROSS_BOUND_FETCH for the second A.
        let v = verdict("f(X, a, b)", "f(A, a, A)");
        assert!(v.matched);
        assert!(v.ops.contains(&HwOp::DbStore));
        assert!(v.ops.contains(&HwOp::DbCrossBoundFetch));
    }

    #[test]
    fn db_variable_consistency() {
        assert!(!fs2("f(a, b)", "f(A, A)"));
        assert!(fs2("f(a, a)", "f(A, A)"));
    }

    #[test]
    fn anon_skips() {
        assert!(fs2("f(_, b)", "f(anything, b)"));
        assert!(fs2("f(a, b)", "f(_, b)"));
        let v = verdict("f(_)", "f(g(a, b))");
        assert!(v.matched, "anon skips a whole complex argument");
        assert_eq!(v.ops, vec![HwOp::Match]);
    }

    #[test]
    fn first_level_structure_matching() {
        assert!(fs2("p(g(a, X))", "p(g(a, b))"));
        assert!(!fs2("p(g(a))", "p(g(b))"));
        assert!(!fs2("p(g(a))", "p(h(a))"));
        assert!(!fs2("p(g(a))", "p(g(a, b))"));
        // Level-3 cut: depth-2 mismatch passes.
        assert!(fs2("p(g(h(a)))", "p(g(h(b)))"));
    }

    #[test]
    fn list_rules() {
        assert!(fs2("p([a, b])", "p([a, b])"));
        assert!(!fs2("p([a, b])", "p([a, c])"));
        assert!(!fs2("p([a, b])", "p([a, b, c])"));
        assert!(fs2("p([a, b])", "p([a | T])"));
        assert!(fs2("p([a | T])", "p([a, b, c])"));
        assert!(!fs2("p([b | T])", "p([a, b, c])"));
        assert!(fs2("p([])", "p([])"));
        assert!(!fs2("p([])", "p([a])"));
        assert!(!fs2("p([a])", "p(f(a))"));
    }

    #[test]
    fn timing_accumulates_table_1_values() {
        // Two ground atoms: exactly two MATCH operations at 105 ns.
        let v = verdict("f(a, b)", "f(a, b)");
        assert_eq!(v.ops, vec![HwOp::Match, HwOp::Match]);
        assert_eq!(v.time.as_ns(), 210);
        // QUERY_STORE (115) then QUERY_FETCH (170).
        let v = verdict("f(X, X)", "f(a, a)");
        assert_eq!(v.ops, vec![HwOp::QueryStore, HwOp::QueryFetch]);
        assert_eq!(v.time.as_ns(), 285);
        // DB_STORE (95) then DB_FETCH (105).
        let v = verdict("f(a, a)", "f(A, A)");
        assert_eq!(v.ops, vec![HwOp::DbStore, HwOp::DbFetch]);
        assert_eq!(v.time.as_ns(), 200);
    }

    #[test]
    fn query_cross_bound_fetch_chain() {
        let v = verdict("f(X, Y, X, Y)", "f(B, B, c, c)");
        assert!(v.matched);
        assert!(
            v.ops.contains(&HwOp::QueryCrossBoundFetch),
            "ops: {:?}",
            v.ops
        );
        assert!(!fs2("f(X, Y, X, Y)", "f(B, B, c, d)"));
    }

    #[test]
    fn word_level_binding_comparison_false_drop() {
        // Bindings store words: g/1 == g/1 even though elements differ.
        assert!(fs2("f(g(a), g(b))", "f(A, A)"));
    }

    #[test]
    fn fetched_list_binding_is_conservative() {
        assert!(fs2("f(X, X)", "f([a | T], [a, b])"));
    }

    #[test]
    fn variable_in_structure_elements() {
        assert!(fs2("p(g(X, X))", "p(g(a, a))"));
        assert!(!fs2("p(g(X, X))", "p(g(a, b))"));
        assert!(fs2("p(g(X), X)", "p(g(a), a)"));
        assert!(!fs2("p(g(X), X)", "p(g(a), b)"));
    }

    #[test]
    fn empty_streams_match() {
        // Zero-arity predicates have empty argument streams.
        let v = verdict("halt", "halt");
        assert!(v.matched);
        assert!(v.ops.is_empty());
        assert_eq!(v.time, SimNanos::ZERO);
    }

    #[test]
    fn engine_is_reusable_across_clauses() {
        let mut sy = SymbolTable::new();
        let q = parse_term("f(X, X)", &mut sy).unwrap();
        let mut engine = Fs2Engine::new(&encode_query(&q).unwrap()).unwrap();
        let yes = parse_term("f(a, a)", &mut sy).unwrap();
        let no = parse_term("f(a, b)", &mut sy).unwrap();
        // Interleave to prove per-clause memory resets work.
        for _ in 0..3 {
            assert!(
                engine
                    .match_clause_stream(&encode_clause_head(&yes).unwrap())
                    .matched
            );
            assert!(
                !engine
                    .match_clause_stream(&encode_clause_head(&no).unwrap())
                    .matched
            );
        }
    }

    #[test]
    fn op_histogram_sums() {
        let v = verdict("f(X, X, a)", "f(A, A, a)");
        assert_eq!(v.op_histogram().iter().sum::<usize>(), v.ops.len());
    }

    #[test]
    fn quiet_path_agrees_with_vector_path() {
        let cases = [
            ("f(a, 1)", "f(a, 1)"),
            ("f(a)", "f(b)"),
            ("married_couple(S, S)", "married_couple(sue, sue)"),
            ("married_couple(S, S)", "married_couple(ann, bob)"),
            ("f(X, a, b)", "f(A, a, A)"),
            ("f(X, Y, X, Y)", "f(B, B, c, c)"),
            ("p(g(a, X))", "p(g(a, b))"),
            ("p([a, b])", "p([a | T])"),
            ("halt", "halt"),
        ];
        let mut sy = SymbolTable::new();
        for (qs, cs) in cases {
            let q = parse_term(qs, &mut sy).unwrap();
            let c = parse_term(cs, &mut sy).unwrap();
            let stream = encode_clause_head(&c).unwrap();
            let mut engine = Fs2Engine::new(&encode_query(&q).unwrap()).unwrap();
            let full = engine.match_clause_stream(&stream);
            let quiet = engine.match_clause_quiet(&stream);
            assert_eq!(quiet.matched, full.matched, "{qs} vs {cs}");
            assert_eq!(quiet.time, full.time, "{qs} vs {cs}");
            assert_eq!(quiet.op_histogram, full.op_histogram(), "{qs} vs {cs}");
            assert_eq!(quiet.op_count(), full.ops.len(), "{qs} vs {cs}");
        }
    }

    #[test]
    fn simple_fast_path_agrees_with_map_rom_walk() {
        // Random all-simple streams (the fast path) and mixed streams
        // (the fallback) must both agree with the vector path verdict,
        // time, and histogram — including around the 8-lane SIMD width.
        let mut state = 0x5EED_F52Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let simple_word = |r: u64| match r % 3 {
            0 => PifWord::new(TypeTag::AtomPtr, (r / 3 % 5) as u32),
            1 => PifWord::new(
                TypeTag::IntInline {
                    high_nibble: (r / 3 % 3) as u8,
                },
                (r / 9 % 4) as u32,
            ),
            _ => PifWord::new(TypeTag::FloatPtr, (r / 3 % 3) as u32),
        };
        for _ in 0..300 {
            let q_len = (next() % 20) as usize;
            let d_len = if next() % 2 == 0 {
                q_len
            } else {
                (next() % 20) as usize
            };
            let mut q_stream = PifStream::new();
            for _ in 0..q_len {
                q_stream.push(simple_word(next()));
            }
            let mut d_stream = PifStream::new();
            for _ in 0..d_len {
                d_stream.push(simple_word(next()));
            }
            // Half the time, poison the clause stream with a variable so
            // the fallback path is exercised against the same oracle.
            if next() % 2 == 0 && d_len > 0 {
                let mut words: Vec<PifWord> = d_stream.words().to_vec();
                words[(next() as usize) % d_len] = PifWord::new(TypeTag::Anon, 0);
                d_stream = PifStream::new();
                for w in words {
                    d_stream.push(w);
                }
            }
            let mut engine = Fs2Engine::new(&q_stream).unwrap();
            let full = engine.match_clause_stream(&d_stream);
            let quiet = engine.match_clause_quiet(&d_stream);
            assert_eq!(quiet.matched, full.matched);
            assert_eq!(quiet.time, full.time);
            assert_eq!(quiet.op_histogram, full.op_histogram());
        }
    }

    #[test]
    fn fast_path_mismatch_charges_the_failing_pair() {
        // f(a, b) vs f(a, c): MATCH for the hit, MATCH for the miss.
        let quiet = {
            let mut sy = SymbolTable::new();
            let q = parse_term("f(a, b)", &mut sy).unwrap();
            let c = parse_term("f(a, c)", &mut sy).unwrap();
            let mut engine = Fs2Engine::new(&encode_query(&q).unwrap()).unwrap();
            engine.match_clause_quiet(&encode_clause_head(&c).unwrap())
        };
        assert!(!quiet.matched);
        assert_eq!(quiet.op_histogram[HwOp::Match.index()], 2);
        assert_eq!(quiet.time.as_ns(), 210);
    }

    #[test]
    fn cloned_engine_matches_independently() {
        let mut sy = SymbolTable::new();
        let q = parse_term("f(X, X)", &mut sy).unwrap();
        let yes = encode_clause_head(&parse_term("f(a, a)", &mut sy).unwrap()).unwrap();
        let no = encode_clause_head(&parse_term("f(a, b)", &mut sy).unwrap()).unwrap();
        let mut original = Fs2Engine::new(&encode_query(&q).unwrap()).unwrap();
        // Clone mid-sweep: per-clause resets make the copy's state fresh.
        original.match_clause_quiet(&yes);
        let mut copy = original.clone();
        assert!(copy.match_clause_quiet(&yes).matched);
        assert!(!copy.match_clause_quiet(&no).matched);
        assert_eq!(
            original.match_clause_quiet(&yes),
            copy.match_clause_quiet(&yes)
        );
    }

    #[test]
    fn agreement_with_software_reference_on_examples() {
        use clare_unify::partial::{partial_match, PartialConfig};
        let cases = [
            ("f(a, 1)", "f(a, 1)"),
            ("f(a)", "f(b)"),
            ("married_couple(S, S)", "married_couple(ann, bob)"),
            ("married_couple(S, S)", "married_couple(m, m)"),
            ("f(X, a, b)", "f(A, a, A)"),
            ("f(a, b)", "f(A, A)"),
            ("p(g(a, X))", "p(g(a, b))"),
            ("p(g(h(a)))", "p(g(h(b)))"),
            ("p([a, b])", "p([a | T])"),
            ("p([b | T])", "p([a, b, c])"),
            ("f(X, Y, X, Y)", "f(B, B, c, d)"),
            ("f(g(a), g(b))", "f(A, A)"),
            ("f(X, X)", "f([a | T], [a, b])"),
            ("p(g(X), X)", "p(g(a), b)"),
            ("f(_, g(a))", "f(q, _)"),
        ];
        let mut sy = SymbolTable::new();
        for (qs, cs) in cases {
            let q = parse_term(qs, &mut sy).unwrap();
            let c = parse_term(cs, &mut sy).unwrap();
            let mut engine = Fs2Engine::new(&encode_query(&q).unwrap()).unwrap();
            let hw = engine.match_clause_stream(&encode_clause_head(&c).unwrap());
            let sw = partial_match(&q, &c, PartialConfig::fs2());
            assert_eq!(
                hw.matched, sw.matched,
                "hardware vs software verdict for {qs} vs {cs}"
            );
            let sw_ops: Vec<&str> = sw.ops.iter().map(|o| o.name()).collect();
            let hw_ops: Vec<&str> = hw.ops.iter().map(|o| o.name()).collect();
            assert_eq!(hw_ops, sw_ops, "op traces for {qs} vs {cs}");
        }
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use clare_pif::{encode_clause_head, encode_query};
    use clare_term::parser::parse_term;
    use clare_term::SymbolTable;

    fn traced(query: &str, clause: &str) -> (ClauseVerdict, Vec<TraceStep>) {
        let mut sy = SymbolTable::new();
        let q = parse_term(query, &mut sy).unwrap();
        let c = parse_term(clause, &mut sy).unwrap();
        let mut engine = Fs2Engine::new(&encode_query(&q).unwrap()).unwrap();
        engine.match_clause_stream_traced(&encode_clause_head(&c).unwrap())
    }

    #[test]
    fn trace_covers_every_pair_with_ops() {
        let (verdict, trace) = traced("f(X, a, X)", "f(b, a, b)");
        assert!(verdict.matched);
        assert_eq!(trace.len(), 3);
        assert!(trace.iter().all(|s| s.passed));
        let ops: Vec<_> = trace.iter().filter_map(|s| s.op).collect();
        assert_eq!(ops, vec![HwOp::QueryStore, HwOp::Match, HwOp::QueryFetch]);
        assert_eq!(trace[0].q_index, 0);
        assert_eq!(trace[2].d_index, 2);
    }

    #[test]
    fn trace_marks_the_failing_pair() {
        let (verdict, trace) = traced("f(a, b, c)", "f(a, x, c)");
        assert!(!verdict.matched);
        assert_eq!(trace.len(), 2, "matching stops at the failure");
        assert!(trace[0].passed);
        assert!(!trace[1].passed);
        assert_eq!(trace[1].q_index, 1);
    }

    #[test]
    fn traced_and_untraced_agree() {
        let cases = [
            ("f(X, X)", "f(a, a)"),
            ("f(X, X)", "f(a, b)"),
            ("p(g(a, X))", "p(g(a, b))"),
            ("p([a | T])", "p([a, b])"),
        ];
        for (q, c) in cases {
            let (v1, trace) = traced(q, c);
            let mut sy = SymbolTable::new();
            let qt = parse_term(q, &mut sy).unwrap();
            let ct = parse_term(c, &mut sy).unwrap();
            let mut engine = Fs2Engine::new(&encode_query(&qt).unwrap()).unwrap();
            let v2 = engine.match_clause_stream(&encode_clause_head(&ct).unwrap());
            assert_eq!(v1, v2, "{q} vs {c}");
            assert!(!trace.is_empty());
        }
    }

    #[test]
    fn nested_elements_appear_in_trace() {
        let (_, trace) = traced("p(g(a, b))", "p(g(a, b))");
        // Pair for g/2 word, then pairs for both elements.
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].routine, crate::map::Routine::ComplexMatch);
        assert_eq!(trace[1].q_index, 1);
        assert_eq!(trace[2].q_index, 2);
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;
    use clare_pif::{encode_query, PifStream, PifWord, TypeTag};
    use clare_term::parser::parse_term;
    use clare_term::SymbolTable;

    /// A truncated in-line structure (declares 3 elements, carries 1) must
    /// be rejected, never panic.
    #[test]
    fn truncated_inline_elements_rejected() {
        let mut sy = SymbolTable::new();
        let q = parse_term("p(g(a, b, c))", &mut sy).unwrap();
        let mut engine = Fs2Engine::new(&encode_query(&q).unwrap()).unwrap();
        let mut bad = PifStream::new();
        bad.push(PifWord::new(TypeTag::StructInline { arity: 3 }, 0));
        bad.push(PifWord::new(TypeTag::AtomPtr, 1)); // only one element
        let verdict = engine.match_clause_stream(&bad);
        assert!(!verdict.matched);
    }

    /// A malformed variable offset beyond the cell banks is dropped, not
    /// a panic.
    #[test]
    fn out_of_range_variable_offset_is_tolerated() {
        let mut sy = SymbolTable::new();
        let q = parse_term("p(X)", &mut sy).unwrap();
        let mut engine = Fs2Engine::new(&encode_query(&q).unwrap()).unwrap();
        for tag in [
            TypeTag::QueryVar { first: true },
            TypeTag::QueryVar { first: false },
            TypeTag::DbVar { first: false },
        ] {
            let mut bad = PifStream::new();
            bad.push(PifWord::new(tag, 63));
            let _ = engine.match_clause_stream(&bad);
        }
    }

    /// Arbitrary well-tagged word soups never panic the engine.
    #[test]
    fn random_word_soup_is_total() {
        use clare_pif::tags::TAG_VALUE_COUNT;
        let _ = TAG_VALUE_COUNT;
        let mut sy = SymbolTable::new();
        let q = parse_term("p(X, g(a), [1, 2], 7)", &mut sy).unwrap();
        let mut engine = Fs2Engine::new(&encode_query(&q).unwrap()).unwrap();
        // Deterministic pseudo-random byte walk over all valid tags.
        let mut state = 0x0123_4567_89AB_CDEFu64;
        for _ in 0..500 {
            let mut stream = PifStream::new();
            let len = (state % 9) as usize;
            for _ in 0..len {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let tag_byte = (state >> 32) as u8;
                if let Ok(tag) = TypeTag::from_byte(tag_byte) {
                    let content = ((state >> 8) as u32) & 0x00FF_FFFF;
                    stream.push(PifWord::new(tag, content % 64));
                }
            }
            // Must not panic, whatever the verdict.
            let _ = engine.match_clause_stream(&stream);
        }
    }
}
