//! Query derivation: turn generated clause heads into query sets of known
//! shape.

use clare_term::{Term, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The query shapes the experiments sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryShape {
    /// An exact copy of a stored head: one guaranteed answer.
    GroundHit,
    /// A stored head with one argument replaced by a fresh atom that
    /// occurs nowhere: zero answers (pure filter-selectivity probe).
    GroundMiss,
    /// A stored head with half its arguments replaced by distinct
    /// variables.
    HalfOpen,
    /// Every argument is the *same* variable — the paper's
    /// `married_couple(Same, Same)` shape that defeats FS1.
    SharedVar,
    /// Every argument is a distinct variable: retrieve the predicate.
    OpenAll,
}

impl QueryShape {
    /// All shapes.
    pub const ALL: [QueryShape; 5] = [
        QueryShape::GroundHit,
        QueryShape::GroundMiss,
        QueryShape::HalfOpen,
        QueryShape::SharedVar,
        QueryShape::OpenAll,
    ];

    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            QueryShape::GroundHit => "ground-hit",
            QueryShape::GroundMiss => "ground-miss",
            QueryShape::HalfOpen => "half-open",
            QueryShape::SharedVar => "shared-var",
            QueryShape::OpenAll => "open-all",
        }
    }
}

/// Derives `count` queries of `shape` from a pool of stored heads.
///
/// `miss_atom` must be a symbol that occurs nowhere in the knowledge base
/// (callers intern something like `"never_stored"`); it makes
/// [`QueryShape::GroundMiss`] queries answer-free by construction.
///
/// # Panics
///
/// Panics if `heads` is empty.
pub fn derive_queries(
    heads: &[Term],
    shape: QueryShape,
    count: usize,
    miss_atom: clare_term::Symbol,
    seed: u64,
) -> Vec<Term> {
    assert!(!heads.is_empty(), "need at least one head to derive from");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD4_11E7);
    (0..count)
        .map(|_| {
            let head = &heads[rng.gen_range(0..heads.len())];
            reshape(head, shape, miss_atom, &mut rng)
        })
        .collect()
}

fn reshape(
    head: &Term,
    shape: QueryShape,
    miss_atom: clare_term::Symbol,
    rng: &mut StdRng,
) -> Term {
    let Term::Struct { functor, args } = head else {
        return head.clone();
    };
    let n = args.len();
    let new_args: Vec<Term> = match shape {
        QueryShape::GroundHit => args.clone(),
        QueryShape::GroundMiss => {
            let victim = rng.gen_range(0..n);
            args.iter()
                .enumerate()
                .map(|(i, a)| {
                    if i == victim {
                        Term::Atom(miss_atom)
                    } else {
                        a.clone()
                    }
                })
                .collect()
        }
        QueryShape::HalfOpen => args
            .iter()
            .enumerate()
            .map(|(i, a)| {
                if i % 2 == 1 {
                    Term::Var(VarId::new((i / 2) as u32))
                } else {
                    a.clone()
                }
            })
            .collect(),
        QueryShape::SharedVar => (0..n).map(|_| Term::Var(VarId::new(0))).collect(),
        QueryShape::OpenAll => (0..n).map(|i| Term::Var(VarId::new(i as u32))).collect(),
    };
    Term::Struct {
        functor: *functor,
        args: new_args,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_term::parser::parse_term;
    use clare_term::{collect_vars, SymbolTable};

    fn heads(sy: &mut SymbolTable) -> Vec<Term> {
        ["p(a, b, c)", "p(d, e, f)", "p(g, h, i)"]
            .iter()
            .map(|s| parse_term(s, sy).unwrap())
            .collect()
    }

    #[test]
    fn ground_hit_is_identical() {
        let mut sy = SymbolTable::new();
        let hs = heads(&mut sy);
        let miss = sy.intern_atom("never_stored");
        let qs = derive_queries(&hs, QueryShape::GroundHit, 10, miss, 1);
        for q in &qs {
            assert!(hs.contains(q));
        }
    }

    #[test]
    fn ground_miss_contains_miss_atom() {
        let mut sy = SymbolTable::new();
        let hs = heads(&mut sy);
        let miss = sy.intern_atom("never_stored");
        let qs = derive_queries(&hs, QueryShape::GroundMiss, 10, miss, 2);
        for q in &qs {
            assert!(q.is_ground());
            assert!(q.children().any(|c| *c == Term::Atom(miss)));
        }
    }

    #[test]
    fn half_open_mixes_vars_and_constants() {
        let mut sy = SymbolTable::new();
        let hs = heads(&mut sy);
        let miss = sy.intern_atom("never_stored");
        let qs = derive_queries(&hs, QueryShape::HalfOpen, 5, miss, 3);
        for q in &qs {
            assert!(!q.is_ground());
            assert!(q.children().any(|c| !c.is_var()));
        }
    }

    #[test]
    fn shared_var_uses_one_variable() {
        let mut sy = SymbolTable::new();
        let hs = heads(&mut sy);
        let miss = sy.intern_atom("never_stored");
        let qs = derive_queries(&hs, QueryShape::SharedVar, 5, miss, 4);
        for q in &qs {
            let vars = collect_vars(q);
            assert_eq!(vars.len(), 3);
            assert!(vars.iter().all(|v| *v == vars[0]));
        }
    }

    #[test]
    fn open_all_uses_distinct_variables() {
        let mut sy = SymbolTable::new();
        let hs = heads(&mut sy);
        let miss = sy.intern_atom("never_stored");
        let qs = derive_queries(&hs, QueryShape::OpenAll, 5, miss, 5);
        for q in &qs {
            let vars = collect_vars(q);
            assert_eq!(vars.len(), 3);
            assert_ne!(vars[0], vars[1]);
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let mut sy = SymbolTable::new();
        let hs = heads(&mut sy);
        let miss = sy.intern_atom("never_stored");
        let a = derive_queries(&hs, QueryShape::HalfOpen, 20, miss, 9);
        let b = derive_queries(&hs, QueryShape::HalfOpen, 20, miss, 9);
        assert_eq!(a, b);
    }
}
