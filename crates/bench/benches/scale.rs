//! Criterion counterpart of E10: knowledge-base compilation and two-stage
//! retrieval as the relation grows toward Warren scale.

use clare_core::{retrieve, CrsOptions, SearchMode};
use clare_kb::{KbBuilder, KbConfig};
use clare_term::builder::TermBuilder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn build(facts: usize) -> (clare_kb::KnowledgeBase, clare_term::Term) {
    let mut builder = KbBuilder::new();
    let mut clauses = Vec::with_capacity(facts);
    {
        let mut t = TermBuilder::new(builder.symbols_mut());
        for i in 0..facts {
            let k = t.atom(&format!("k{}", i % (facts / 10).max(10)));
            let v = t.atom(&format!("v{}", i % 97));
            clauses.push(t.fact("rel", vec![k, v]));
        }
    }
    for c in clauses {
        builder.add_clause("m", c);
    }
    let q = clare_term::parser::parse_term("rel(k7, X)", builder.symbols_mut()).unwrap();
    (builder.finish(KbConfig::default()), q)
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("kb_compile");
    group.sample_size(10);
    for facts in [2_000usize, 10_000] {
        group.throughput(Throughput::Elements(facts as u64));
        group.bench_with_input(BenchmarkId::from_parameter(facts), &facts, |b, &n| {
            b.iter(|| black_box(build(n).0.clause_count()))
        });
    }
    group.finish();
}

fn bench_retrieval_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_stage_retrieval");
    group.sample_size(20);
    let opts = CrsOptions::default();
    for facts in [2_000usize, 10_000, 40_000] {
        let (kb, query) = build(facts);
        group.throughput(Throughput::Elements(facts as u64));
        group.bench_with_input(BenchmarkId::from_parameter(facts), &facts, |b, _| {
            b.iter(|| {
                black_box(
                    retrieve(&kb, &query, SearchMode::TwoStage, &opts)
                        .stats
                        .unified,
                )
            })
        });
    }
    group.finish();
}

/// Short measurement windows keep the full suite fast while staying
/// statistically useful.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_compile, bench_retrieval_scale
}
criterion_main!(benches);
