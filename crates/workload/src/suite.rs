//! A database-benchmark suite in the spirit of the paper's refs \[6,7\]
//! (Williams, Massey & Crammond, "Benchmarks for Prolog from a Database
//! Viewpoint"), whose data never appeared in print. The suite models the
//! classic supplier/part/supply schema with a representative query mix:
//! key selection, non-key selection, scans, two-goal joins through rules,
//! and a shared-variable query — the spectrum the CLARE modes are chosen
//! over. The paper closes by promising CLARE "will be subjected to
//! benchmark tests similar to the ones devised in \[7\]"; this module is
//! that test bed.

use clare_kb::KbBuilder;
use clare_term::builder::TermBuilder;
use clare_term::parser::parse_term_with_vars;
use clare_term::Term;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size parameters of the supplier/part/supply database.
#[derive(Debug, Clone)]
pub struct SuiteSpec {
    /// Number of suppliers (`supplier/2`: supplier, city).
    pub suppliers: usize,
    /// Number of parts (`part/3`: part, colour, weight class).
    pub parts: usize,
    /// Number of supply facts (`supply/3`: supplier, part, quantity).
    pub supplies: usize,
    /// Number of cities suppliers spread over.
    pub cities: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SuiteSpec {
    fn default() -> Self {
        SuiteSpec {
            suppliers: 200,
            parts: 1000,
            supplies: 10_000,
            cities: 10,
            seed: 0x5B17E,
        }
    }
}

/// One benchmark query: a label, the goal, and its variable names.
#[derive(Debug, Clone)]
pub struct SuiteQuery {
    /// Short label for reports.
    pub label: &'static str,
    /// The goal term.
    pub goal: Term,
    /// Variable names for binding reports.
    pub var_names: Vec<String>,
}

/// The generated database plus its query mix.
#[derive(Debug, Clone)]
pub struct SuiteSummary {
    /// The benchmark queries, in suite order.
    pub queries: Vec<SuiteQuery>,
}

impl SuiteSpec {
    /// Populates `module` with the database and its rule layer, returning
    /// the query mix (parsed in the same symbol namespace).
    pub fn generate(&self, builder: &mut KbBuilder, module: &str) -> SuiteSummary {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let colours = ["red", "green", "blue", "black", "white"];
        let mut clauses = Vec::new();
        {
            let mut t = TermBuilder::new(builder.symbols_mut());
            for s in 0..self.suppliers {
                let sup = t.atom(&format!("s{s}"));
                let city = t.atom(&format!("city{}", s % self.cities));
                clauses.push(t.fact("supplier", vec![sup, city]));
            }
            for p in 0..self.parts {
                let part = t.atom(&format!("p{p}"));
                let colour = t.atom(colours[p % colours.len()]);
                let weight = t.atom(if p % 3 == 0 { "heavy" } else { "light" });
                clauses.push(t.fact("part", vec![part, colour, weight]));
            }
            for _ in 0..self.supplies {
                let s = rng.gen_range(0..self.suppliers);
                let p = rng.gen_range(0..self.parts);
                let sup = t.atom(&format!("s{s}"));
                let part = t.atom(&format!("p{p}"));
                let qty = t.int(rng.gen_range(1..1000));
                clauses.push(t.fact("supply", vec![sup, part, qty]));
            }
        }
        for c in clauses {
            builder.add_clause(module, c);
        }
        builder
            .consult(
                module,
                "supplies_part(S, P) :- supply(S, P, _).
                 part_in_city(City, P) :- supplier(S, City), supply(S, P, _).
                 heavy_part(P) :- part(P, _, heavy).
                 co_supplied(P1, P2) :- supply(S, P1, _), supply(S, P2, _).",
            )
            .expect("rule text parses");

        let mut queries = Vec::new();
        let mut add = |label, src: String| {
            let (goal, names) =
                parse_term_with_vars(&src, builder.symbols_mut()).expect("query parses");
            queries.push(SuiteQuery {
                label,
                goal,
                var_names: names,
            });
        };
        let key_s = rng.gen_range(0..self.suppliers);
        let key_p = rng.gen_range(0..self.parts);
        add("key-selection", format!("supply(s{key_s}, p{key_p}, Q)"));
        add("nonkey-selection", format!("supply(S, p{}, Q)", key_p));
        add("colour-selection", "part(P, red, W)".to_owned());
        add(
            "join-via-rule",
            format!("part_in_city(city{}, P)", key_s % self.cities),
        );
        add(
            "rule-over-facts",
            format!("heavy_part(p{})", (key_p / 3) * 3),
        );
        add("shared-variable", "co_supplied(P, P)".to_owned());
        SuiteSummary { queries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_kb::{KbConfig, KbStats};

    fn small_spec() -> SuiteSpec {
        SuiteSpec {
            suppliers: 20,
            parts: 50,
            supplies: 300,
            cities: 4,
            seed: 1,
        }
    }

    #[test]
    fn generates_schema_and_rules() {
        let mut b = KbBuilder::new();
        let summary = small_spec().generate(&mut b, "db");
        let kb = b.finish(KbConfig::default());
        assert_eq!(kb.lookup("supplier", 2).unwrap().clauses().len(), 20);
        assert_eq!(kb.lookup("part", 3).unwrap().clauses().len(), 50);
        assert_eq!(kb.lookup("supply", 3).unwrap().clauses().len(), 300);
        assert!(kb.lookup("co_supplied", 2).is_some());
        assert_eq!(summary.queries.len(), 6);
        let stats = KbStats::gather(&kb);
        assert_eq!(stats.rules, 4);
    }

    #[test]
    fn queries_are_answerable() {
        use clare_core::{solve, SolveOptions};
        let mut b = KbBuilder::new();
        let summary = small_spec().generate(&mut b, "db");
        let kb = b.finish(KbConfig::default());
        for q in &summary.queries {
            let outcome = solve(
                &kb,
                &q.goal,
                &q.var_names,
                &SolveOptions {
                    max_solutions: 2000,
                    ..SolveOptions::default()
                },
            );
            match q.label {
                "key-selection" => assert!(outcome.solutions.len() <= 4, "{}", q.label),
                "colour-selection" => assert_eq!(outcome.solutions.len(), 10, "{}", q.label),
                "rule-over-facts" => assert!(!outcome.solutions.is_empty(), "{}", q.label),
                "join-via-rule" | "nonkey-selection" => {
                    // Statistically present in any non-trivial instance.
                }
                "shared-variable" => {
                    // Every supply co-supplies its own part with itself.
                    assert!(outcome.solutions.len() >= 300, "{}", q.label);
                }
                other => panic!("unknown label {other}"),
            }
        }
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut b = KbBuilder::new();
            let s = small_spec().generate(&mut b, "db");
            (
                b.finish(KbConfig::default()).clause_count(),
                s.queries.len(),
            )
        };
        assert_eq!(run(), run());
    }
}
