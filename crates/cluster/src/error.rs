//! Typed cluster-layer errors.

use clare_net::NetError;

/// Everything that can go wrong routing a request through the cluster.
#[derive(Debug)]
pub enum ClusterError {
    /// A backend's hello reported a knowledge-base build fingerprint
    /// different from the cluster's. Pairing it would ship WAL records
    /// into a foreign symbol namespace, so the connection is refused.
    FingerprintMismatch {
        /// The backend that was refused.
        addr: String,
        /// The fingerprint the rest of the cluster agrees on.
        expected: u64,
        /// What the backend reported.
        got: u64,
    },
    /// The query (or clause head) has no functor/arity to route by —
    /// e.g. a bare variable.
    Unroutable(String),
    /// The clauses in one write resolve to different shards; a commit
    /// must land on exactly one primary to stay atomic.
    CrossShardWrite {
        /// The shard the first clause routed to.
        first: usize,
        /// The shard a later clause routed to.
        other: usize,
    },
    /// The shard index is out of range or the shard cannot serve the
    /// request (e.g. promoting a shard that has no backup).
    NoBackup(usize),
    /// The shard's circuit breaker is open: its backend failed (or was
    /// overloaded) enough times in a row that the router fast-fails
    /// requests instead of queueing more work behind a sick node. The
    /// breaker admits a half-open probe after `retry_after`.
    ShardUnavailable {
        /// The shard whose breaker is open.
        shard: usize,
        /// How long until the breaker admits a probe request.
        retry_after: std::time::Duration,
    },
    /// A backend conversation failed.
    Net(NetError),
    /// The source text failed to parse on the router (routing needs the
    /// clause heads before the backend ever sees the write).
    Parse(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::FingerprintMismatch {
                addr,
                expected,
                got,
            } => write!(
                f,
                "backend {addr} serves a different knowledge base \
                 (fingerprint {got:#018x}, cluster expects {expected:#018x})"
            ),
            ClusterError::Unroutable(what) => write!(f, "cannot route {what}"),
            ClusterError::CrossShardWrite { first, other } => write!(
                f,
                "write spans shards {first} and {other}; a commit must land on one primary"
            ),
            ClusterError::NoBackup(shard) => {
                write!(f, "shard {shard} has no backup to promote")
            }
            ClusterError::ShardUnavailable { shard, retry_after } => write!(
                f,
                "shard {shard} circuit breaker is open; retry in {retry_after:?}"
            ),
            ClusterError::Net(e) => write!(f, "backend error: {e}"),
            ClusterError::Parse(e) => write!(f, "router-side parse failed: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for ClusterError {
    fn from(e: NetError) -> Self {
        ClusterError::Net(e)
    }
}
