//! The serving front-ends: connection intake feeding a bounded worker
//! pool over one shared [`ClauseRetrievalServer`].
//!
//! Two interchangeable intake cores implement the same wire contract
//! (selected by [`NetConfig::server_mode`]):
//!
//! - [`ServerMode::Reactor`] (default): the epoll event loop in
//!   [`crate::reactor`] — a fixed number of shard threads multiplexing
//!   every connection over nonblocking sockets, scaling to thousands of
//!   concurrent clients.
//! - [`ServerMode::Threaded`]: the original acceptor + one blocking
//!   reader thread per connection, kept as the portable fallback and as
//!   the differential-testing baseline for the reactor.
//!
//! ```text
//!   acceptor ──► reader (per connection) ──► bounded job queue ──► workers
//!                      │                                             │
//!                      └────────────── shared ConnWriter ◄───────────┘
//! ```
//!
//! Readers decode frames and enqueue jobs; workers execute them against
//! the CRS and write replies through the connection's shared writer, so
//! pipelined requests complete out of order (responses are matched by
//! request id, not position). A reader that finds several same-predicate
//! retrievals already buffered coalesces them into one
//! `retrieve_batch` job — safe because the core pins batch results to be
//! identical to individual retrievals — and a full queue sheds load with a
//! `Busy` error frame carrying a retry hint instead of stalling the
//! socket. Both cores share `process_burst`, the worker pool, and the
//! shedding path, so replies are byte-identical between them.

// The serving loop handles untrusted input and must degrade, not abort:
// fallible results are matched or turned into error frames. CI greps for
// this gate; do not remove it.
#![deny(clippy::unwrap_used)]

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use clare_core::{ClauseRetrievalServer, SolveOptions};
use clare_kb::KbConfig;
use clare_term::{Symbol, Term};

use crate::protocol::{
    decode_client_hello_caps, decode_consult, decode_repl_ack, decode_retrieve,
    decode_retrieve_batch, decode_solve, decode_subscribe_log, encode_commit_receipt, encode_error,
    encode_retrieval, encode_retrievals, encode_seq_reply, encode_server_hello,
    encode_server_stats, encode_server_stats_extended, encode_solve_outcome, encode_symbols,
    opcode, BudgetExt, ConsultReq, ErrorCode, ErrorReply, Frame, FrameReader, HelloStatus,
    RetrieveBatchReq, RetrieveReq, ServerHello, SolveReq, CAP_FRAME_CRC, CAP_QUERY_BUDGET,
    CLIENT_HELLO_LEN, MAX_FRAME_LEN, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION, STATS_REQ_EXTENDED,
};

/// Which connection-intake core a [`NetServer`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// Acceptor plus one blocking reader thread per connection. Portable
    /// baseline; thread count grows with the connection count.
    Threaded,
    /// Epoll event loop: a fixed number of shard threads multiplex every
    /// connection (see [`crate::reactor`]). Linux-only; on other targets
    /// [`NetServer::bind`] silently falls back to [`ServerMode::Threaded`].
    Reactor,
}

/// Tuning knobs for [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Connection-intake core (see [`ServerMode`]).
    pub server_mode: ServerMode,
    /// Reactor shard threads (ignored in threaded mode). Each shard owns
    /// an epoll instance and a subset of the connections; shard 0 also
    /// owns the listener. More than one shard only helps once a single
    /// event loop saturates a core.
    pub reactor_shards: usize,
    /// Per-connection outbound reply queue capacity in bytes (reactor
    /// mode). A worker finding the queue at capacity parks until the
    /// event loop flushes room — bounded by `write_timeout`, after which
    /// the non-consuming peer is dropped.
    pub outbound_queue_bytes: usize,
    /// Worker threads executing retrievals (the service parallelism).
    pub workers: usize,
    /// Concurrent connections accepted before new ones are refused with a
    /// busy hello.
    pub max_connections: usize,
    /// Jobs buffered before readers shed load with `Busy` error frames.
    pub queue_depth: usize,
    /// Reader poll tick: how long a blocking read waits before re-checking
    /// the shutdown flag.
    pub poll_interval: Duration,
    /// Write timeout on reply sockets.
    pub write_timeout: Duration,
    /// Retry hint attached to busy hellos and `Busy` error frames.
    pub retry_after_ms: u32,
    /// Frame length cap enforced on incoming frames.
    pub max_frame_len: u32,
    /// Coalesce pipelined same-predicate retrieves into one batch job.
    pub coalesce: bool,
    /// Knowledge-base compilation config for consult-updates.
    pub kb_config: KbConfig,
    /// Drop a connection after this long without a byte from the client
    /// (half-open peers otherwise pin a reader thread and a connection
    /// slot forever). `None` disables the reap.
    pub idle_timeout: Option<Duration>,
    /// Accept the [`CAP_FRAME_CRC`] capability when a client requests it.
    /// Checksums only apply on connections where the client asked for
    /// them, so old clients are unaffected either way.
    pub frame_checksums: bool,
    /// CoDel-style queue-sojourn shedding target. When set, the worker
    /// pool notes each job's queue sojourn at dequeue; once sojourns stay
    /// above the target for a full target-length window the intake starts
    /// refusing *new* jobs with `Busy` (counted by `budget.codel_sheds`)
    /// until a dequeued job has waited less than the target again. Under
    /// sustained overload this keeps queue time bounded near the target
    /// instead of letting every request absorb the full queue depth.
    /// `None` (the default) disables sojourn shedding; the queue-full
    /// bound still applies.
    pub codel_target: Option<Duration>,
    /// Fault injection for tests: a worker panics when it picks up a
    /// `stats` job. Exercises the panic-isolation path (Internal error
    /// replies + `net.worker_panics`) without any adversarial input.
    #[doc(hidden)]
    pub debug_panic_on_stats: bool,
    /// Test-only throttle: every worker sleeps this long before executing
    /// a job, so shutdown-drain tests can reliably catch replies still in
    /// flight.
    #[doc(hidden)]
    pub debug_worker_delay: Option<Duration>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            server_mode: ServerMode::Reactor,
            reactor_shards: 1,
            outbound_queue_bytes: 1 << 20,
            workers: 4,
            max_connections: 64,
            queue_depth: 256,
            poll_interval: Duration::from_millis(25),
            write_timeout: Duration::from_secs(10),
            retry_after_ms: 100,
            max_frame_len: MAX_FRAME_LEN,
            coalesce: true,
            kb_config: KbConfig::default(),
            idle_timeout: Some(Duration::from_secs(300)),
            frame_checksums: true,
            codel_target: None,
            debug_panic_on_stats: false,
            debug_worker_delay: None,
        }
    }
}

/// How a [`ConnWriter`] delivers encoded bytes to its socket.
enum WriterBackend {
    /// Threaded core: exclusive blocking writes through a cloned stream
    /// handle. Workers finish in any order; the lock keeps frames whole.
    Direct(Mutex<TcpStream>),
    /// Reactor core: bytes go onto the connection's bounded outbound
    /// queue; the owning shard flushes them from its event loop.
    Queued(Arc<crate::reactor::Outbound>),
}

/// Serialized writer for one connection, shared by every worker holding a
/// job from it.
pub(crate) struct ConnWriter {
    backend: WriterBackend,
    pub(crate) dead: AtomicBool,
    /// Jobs decoded from this connection still queued or executing. A
    /// half-closed connection owes a reply per in-flight job, so the
    /// reactor may not release it while this is nonzero.
    in_flight: AtomicUsize,
    /// Negotiated on this connection's handshake: append a CRC32C
    /// trailer to every outgoing frame.
    checksums: bool,
}

impl ConnWriter {
    fn new(stream: TcpStream, checksums: bool) -> Self {
        ConnWriter {
            backend: WriterBackend::Direct(Mutex::new(stream)),
            dead: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            checksums,
        }
    }

    /// A writer delivering through a reactor outbound queue.
    pub(crate) fn queued(outbound: Arc<crate::reactor::Outbound>, checksums: bool) -> Self {
        ConnWriter {
            backend: WriterBackend::Queued(outbound),
            dead: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            checksums,
        }
    }

    /// Accounts one decoded job headed for the worker pool. Must happen
    /// before the job becomes visible to workers, or the job could finish
    /// (and the connection close) before it was ever counted.
    pub(crate) fn job_started(&self) {
        self.in_flight.fetch_add(1, Ordering::AcqRel);
    }

    /// The job is done — reply sent, shed, or panicked. The last
    /// decrement kicks the owning shard (reactor mode) so a half-closed
    /// connection parked on outstanding replies proceeds to its final
    /// flush-and-close.
    pub(crate) fn job_finished(&self) {
        if self.in_flight.fetch_sub(1, Ordering::AcqRel) == 1 {
            if let WriterBackend::Queued(outbound) = &self.backend {
                outbound.kick();
            }
        }
    }

    /// No decoded jobs are outstanding on this connection.
    pub(crate) fn idle(&self) -> bool {
        self.in_flight.load(Ordering::Acquire) == 0
    }

    /// Backend dispatch: `true` when the bytes were accepted for the wire.
    fn deliver(&self, bytes: &[u8]) -> bool {
        match &self.backend {
            WriterBackend::Direct(stream) => {
                let mut stream = stream.lock().unwrap_or_else(|e| e.into_inner());
                stream.write_all(bytes).is_ok()
            }
            WriterBackend::Queued(outbound) => outbound.enqueue(bytes.to_vec()),
        }
    }

    /// Writes one frame; a failed write marks the connection dead and
    /// later sends become no-ops (the intake core will notice the hangup
    /// or the condemned queue and drop the connection).
    ///
    /// This is the server-side network fault-injection point
    /// ([`clare_fault::FaultSite::NetServerSend`], keyed by request id and
    /// opcode): a reply frame can be silently dropped, cut short (after
    /// which the byte stream is unrecoverable, so the connection is marked
    /// dead), or bit-flipped in flight.
    pub(crate) fn send(&self, frame: &Frame) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let mut bytes = frame.encoded_with(self.checksums);
        if clare_fault::active() {
            let ctx = frame.request_id ^ (u64::from(frame.opcode) << 56);
            match clare_fault::decide(clare_fault::FaultSite::NetServerSend, ctx) {
                clare_fault::FaultAction::Drop => return,
                action @ clare_fault::FaultAction::Truncate { .. } => {
                    clare_fault::corrupt_in_place(action, &mut bytes);
                    let _ = self.deliver(&bytes);
                    self.dead.store(true, Ordering::Relaxed);
                    if let WriterBackend::Queued(outbound) = &self.backend {
                        outbound.mark_dead();
                    }
                    return;
                }
                action @ clare_fault::FaultAction::FlipBit { .. } => {
                    clare_fault::corrupt_in_place(action, &mut bytes);
                }
                _ => {}
            }
        }
        if !self.deliver(&bytes) {
            self.dead.store(true, Ordering::Relaxed);
            return;
        }
        let m = clare_trace::metrics();
        m.net_frames_out.inc();
        m.net_bytes_out.add(bytes.len() as u64);
    }

    pub(crate) fn send_error(
        &self,
        request_id: u64,
        code: ErrorCode,
        retry_after_ms: u32,
        message: String,
    ) {
        let reply = ErrorReply {
            code,
            retry_after_ms,
            message,
        };
        self.send(&Frame::new(request_id, opcode::ERROR, encode_error(&reply)));
    }
}

/// One unit of work for the pool.
enum Work {
    Retrieve(RetrieveReq),
    Batch(RetrieveBatchReq),
    /// Pipelined same-predicate retrieves folded into one batch; each
    /// member keeps its own request id and is answered as a plain
    /// `Retrieve` reply.
    Coalesced {
        req: RetrieveBatchReq,
        member_ids: Vec<u64>,
    },
    Solve(SolveReq),
    Consult(ConsultReq),
    /// Durable assert through the WAL-serialized commit path; answered
    /// with a commit receipt.
    Assert(ConsultReq),
    /// Durable retract of one structurally matching clause; answered with
    /// a commit receipt.
    Retract(ConsultReq),
    Stats {
        /// The request carried [`STATS_REQ_EXTENDED`]: reply with the
        /// legacy struct plus the versioned metrics snapshot.
        extended: bool,
    },
    Symbols,
    /// Replication: register this connection as a log subscriber from the
    /// given frontier; every commit is then pushed to it as a
    /// request-id-0 `LOG_FRAME`.
    SubscribeLog {
        /// Resume point — the subscriber already holds ops `1..=from_seq`.
        from_seq: u64,
    },
    /// Replication: one shipped WAL record to apply to this (backup)
    /// server's overlay; answered with the applied-through sequence.
    LogFrame(clare_wal::WalRecord),
    /// Replication: the downstream backup has durably applied through
    /// `seq`; updates the primary's lag gauge.
    ReplAck {
        /// Highest sequence the backup reports applied.
        seq: u64,
    },
}

struct Job {
    request_id: u64,
    work: Work,
    writer: Arc<ConnWriter>,
    accepted: Instant,
    deadline_micros: u64,
    /// Work ceilings from the request's v4 budget extension
    /// ([`BudgetExt::NONE`] for v3 clients and unlimited requests).
    budget: BudgetExt,
}

/// Queue-sojourn controller state (see [`NetConfig::codel_target`]).
#[derive(Default)]
struct CodelState {
    /// When dequeued sojourns first went (and stayed) above the target.
    above_since: Option<Instant>,
    /// Sojourn has been above target for a full window: refuse new jobs.
    shedding: bool,
}

pub(crate) struct Shared {
    pub(crate) crs: Arc<ClauseRetrievalServer>,
    pub(crate) cfg: NetConfig,
    /// Stops the intake (acceptor/readers or reactor input processing);
    /// no new work enters the queue.
    pub(crate) shutdown: AtomicBool,
    /// Set once the intake has drained; lets idle workers exit.
    drained: AtomicBool,
    /// Tells reactor shards the workers are gone: final-flush outbound
    /// queues, close every fd, and exit.
    pub(crate) reactor_exit: AtomicBool,
    /// Shards that have acknowledged `shutdown` (stopped producing jobs).
    /// Workers may only drain once every shard has quiesced, or a job
    /// enqueued late would be dropped with its reply unsent.
    pub(crate) quiesced_shards: AtomicUsize,
    /// Epoll token allocator (reactor mode).
    pub(crate) next_token: AtomicU64,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    /// Sojourn-shedding controller; inert unless `cfg.codel_target` is set.
    codel: Mutex<CodelState>,
    pub(crate) connections: AtomicUsize,
    /// Over-limit connections currently held for a polite busy hello
    /// (reactor mode). Bounds the fd cost of refusal: accepts beyond the
    /// courtesy budget are dropped outright.
    pub(crate) refused: AtomicUsize,
}

impl Shared {
    /// Enqueues a job unless the queue is full or the sojourn controller
    /// is shedding. On refusal the caller sheds load; admission control
    /// is accounted on the CRS stats.
    fn try_enqueue(&self, job: Job) -> Result<(), Box<Job>> {
        if self.cfg.codel_target.is_some() {
            let mut codel = self.codel.lock().unwrap_or_else(|e| e.into_inner());
            if codel.shedding {
                // An empty queue is CoDel's exit condition: the backlog
                // has drained, so the next sojourn is below target by
                // construction. Without this unlatch a burst could leave
                // the gate shedding forever — refusals never enqueue, so
                // no dequeue would ever observe the recovery.
                let drained = self
                    .queue
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .is_empty();
                if drained {
                    codel.shedding = false;
                    codel.above_since = None;
                } else {
                    drop(codel);
                    clare_trace::metrics().budget_codel_sheds.inc();
                    return Err(Box::new(job));
                }
            }
        }
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if queue.len() >= self.cfg.queue_depth {
            return Err(Box::new(job));
        }
        queue.push_back(job);
        clare_trace::metrics()
            .net_queue_depth
            .set(queue.len() as i64);
        drop(queue);
        self.queue_cv.notify_one();
        Ok(())
    }

    /// Feeds one dequeued job's queue sojourn to the controller: a
    /// below-target sojourn resets it (stop shedding); sojourns that stay
    /// above target for a full target-length window start shedding.
    fn note_sojourn(&self, sojourn: Duration) {
        let Some(target) = self.cfg.codel_target else {
            return;
        };
        let mut codel = self.codel.lock().unwrap_or_else(|e| e.into_inner());
        if sojourn < target {
            codel.above_since = None;
            codel.shedding = false;
        } else {
            let since = *codel.above_since.get_or_insert_with(Instant::now);
            if since.elapsed() >= target {
                codel.shedding = true;
            }
        }
    }

    /// Blocks for the next job; `None` means the pool is draining and the
    /// queue is empty, i.e. the worker should exit.
    fn dequeue(&self) -> Option<Job> {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = queue.pop_front() {
                let sojourn = job.accepted.elapsed();
                let m = clare_trace::metrics();
                m.net_queue_depth.set(queue.len() as i64);
                m.net_queue_wait_ns.record(sojourn.as_nanos() as u64);
                drop(queue);
                self.note_sojourn(sojourn);
                return Some(job);
            }
            if self.drained.load(Ordering::Acquire) {
                return None;
            }
            let (q, _) = self
                .queue_cv
                .wait_timeout(queue, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            queue = q;
        }
    }
}

/// A running PIF-over-TCP front-end for a [`ClauseRetrievalServer`].
///
/// Bind with [`NetServer::bind`], connect with
/// [`NetClient`](crate::NetClient), stop with [`NetServer::shutdown`]
/// (dropping the server also shuts it down). The underlying CRS is shared:
/// in-process callers and networked clients observe the same knowledge
/// base, statistics, and update stream.
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    /// Reactor shard threads (empty in threaded mode).
    reactors: Vec<std::thread::JoinHandle<()>>,
    /// Shard mailboxes, kept to kick shards awake during shutdown.
    shards: Vec<Arc<crate::reactor::ShardQueue>>,
}

impl NetServer {
    /// Binds `addr` and starts serving `crs`.
    ///
    /// `addr` may use port 0 to let the OS pick; the bound address is
    /// reported by [`NetServer::local_addr`].
    pub fn bind(
        crs: Arc<ClauseRetrievalServer>,
        addr: impl ToSocketAddrs,
        cfg: NetConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        // The reactor needs epoll; everywhere else falls back to the
        // portable threaded core.
        let mode = if cfg!(target_os = "linux") {
            cfg.server_mode
        } else {
            ServerMode::Threaded
        };

        let shared = Arc::new(Shared {
            crs,
            cfg: cfg.clone(),
            shutdown: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            reactor_exit: AtomicBool::new(false),
            quiesced_shards: AtomicUsize::new(0),
            next_token: AtomicU64::new(crate::reactor::TOKEN_FIRST_CONN),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            codel: Mutex::new(CodelState::default()),
            connections: AtomicUsize::new(0),
            refused: AtomicUsize::new(0),
        });

        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("clare-net-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();

        let readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let mut acceptor = None;
        let mut reactors = Vec::new();
        let mut shards = Vec::new();
        match mode {
            ServerMode::Threaded => {
                let shared = Arc::clone(&shared);
                let readers = Arc::clone(&readers);
                acceptor = Some(
                    std::thread::Builder::new()
                        .name("clare-net-acceptor".to_owned())
                        .spawn(move || acceptor_loop(&listener, &shared, &readers))
                        .expect("spawn acceptor thread"),
                );
            }
            ServerMode::Reactor => {
                let nshards = cfg.reactor_shards.max(1);
                for _ in 0..nshards {
                    shards.push(crate::reactor::ShardQueue::new()?);
                }
                let mut listener = Some(listener);
                for i in 0..nshards {
                    let shards_all = shards.clone();
                    let shared = Arc::clone(&shared);
                    let l = listener.take(); // shard 0 owns the listener
                    reactors.push(
                        std::thread::Builder::new()
                            .name(format!("clare-net-reactor-{i}"))
                            .spawn(move || crate::reactor::run_shard(i, l, shards_all, shared))
                            .expect("spawn reactor shard"),
                    );
                }
            }
        }

        Ok(NetServer {
            shared,
            local_addr,
            acceptor,
            workers,
            readers,
            reactors,
            shards,
        })
    }

    /// The bound listening address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared retrieval service behind this listener.
    pub fn crs(&self) -> &Arc<ClauseRetrievalServer> {
        &self.shared.crs
    }

    /// Gracefully stops the server: the listener closes, the intake stops
    /// at the next poll tick, queued requests are drained by the workers,
    /// their replies are flushed to the peers (the reactor keeps its
    /// event loop alive until every outbound queue is empty or the write
    /// timeout passes), and all threads join.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // After readers join, no new jobs can arrive; only then may idle
        // workers exit, so nothing queued is dropped on the floor.
        let readers = std::mem::take(&mut *self.readers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in readers {
            let _ = h.join();
        }
        if !self.reactors.is_empty() {
            // Reactor intake quiesce: wake every shard, then wait for each
            // to acknowledge it has stopped turning input into jobs. The
            // shards keep running — they still have replies to flush.
            for shard in &self.shards {
                shard.kick();
            }
            let nshards = self.reactors.len();
            while self.shared.quiesced_shards.load(Ordering::SeqCst) < nshards {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        self.shared.drained.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if !self.reactors.is_empty() {
            // The workers are gone, so every reply that will ever exist is
            // now queued: tell the shards to final-flush and release their
            // fds (connections, listener, epoll, eventfd).
            self.shared.reactor_exit.store(true, Ordering::SeqCst);
            for shard in &self.shards {
                shard.kick();
            }
            for h in self.reactors.drain(..) {
                let _ = h.join();
            }
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    readers: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let active = shared.connections.load(Ordering::Relaxed);
                if active >= shared.cfg.max_connections {
                    refuse_connection(stream, shared);
                    continue;
                }
                shared.connections.fetch_add(1, Ordering::Relaxed);
                clare_trace::metrics().net_connections.add(1);
                let shared2 = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("clare-net-conn".to_owned())
                    .spawn(move || {
                        connection_loop(stream, &shared2);
                        shared2.connections.fetch_sub(1, Ordering::Relaxed);
                        clare_trace::metrics().net_connections.add(-1);
                    })
                    .expect("spawn connection thread");
                readers
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.cfg.poll_interval);
            }
            Err(_) => std::thread::sleep(shared.cfg.poll_interval),
        }
    }
}

/// Refuses a connection at the limit: still performs the hello exchange so
/// the client learns *why* (busy + retry hint) instead of seeing a bare
/// hangup, then closes.
fn refuse_connection(mut stream: TcpStream, shared: &Shared) {
    shared.crs.note_rejected();
    clare_trace::metrics().net_busy_rejections.inc();
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = stream.set_read_timeout(Some(
        shared.cfg.poll_interval.max(Duration::from_millis(100)),
    ));
    let mut hello_raw = [0u8; CLIENT_HELLO_LEN];
    let _ = stream.read_exact(&mut hello_raw); // best-effort: drain their hello
    let hello = ServerHello {
        version: PROTOCOL_VERSION,
        status: HelloStatus::Busy,
        retry_after_ms: shared.cfg.retry_after_ms,
        caps: 0,
        fingerprint: shared.crs.snapshot().content_fingerprint(),
    };
    let _ = stream.write_all(&encode_server_hello(&hello));
}

/// The capability bits this server will accept on a connection speaking
/// `version`: CRC trailers when configured, plus the query-budget
/// extension on v4+ connections. Shared by both intake cores so the
/// negotiation is identical.
pub(crate) fn allowed_caps(cfg: &NetConfig, version: u16) -> u8 {
    let mut caps = 0;
    if cfg.frame_checksums {
        caps |= CAP_FRAME_CRC;
    }
    if version >= 4 {
        caps |= CAP_QUERY_BUDGET;
    }
    caps
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    if stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .is_err()
        || stream
            .set_write_timeout(Some(shared.cfg.write_timeout))
            .is_err()
    {
        return;
    }

    // Hello exchange: version gate before any frames.
    let mut hello_raw = [0u8; CLIENT_HELLO_LEN];
    if stream.read_exact(&mut hello_raw).is_err() {
        return;
    }
    let (status, requested_caps, version) = match decode_client_hello_caps(&hello_raw) {
        Ok((v @ MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION, caps)) => (HelloStatus::Ok, caps, v),
        Ok(_) | Err(_) => (HelloStatus::VersionMismatch, 0, PROTOCOL_VERSION),
    };
    // Capabilities are the intersection of what the client asked for and
    // what this server's config allows; the budget extension additionally
    // needs a v4 connection (v3 peers predate it).
    let caps = requested_caps & allowed_caps(&shared.cfg, version);
    // Echo the *negotiated* version: an old client keeps its exact wire
    // dialect for the whole connection.
    let hello = ServerHello {
        version,
        status,
        retry_after_ms: 0,
        caps,
        fingerprint: shared.crs.snapshot().content_fingerprint(),
    };
    if stream.write_all(&encode_server_hello(&hello)).is_err() || status != HelloStatus::Ok {
        return;
    }
    if stream
        .set_read_timeout(Some(shared.cfg.poll_interval))
        .is_err()
    {
        return;
    }

    let checksums = caps & CAP_FRAME_CRC != 0;
    let writer = Arc::new(ConnWriter::new(
        match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        },
        checksums,
    ));

    let mut fr = FrameReader::new(shared.cfg.max_frame_len);
    fr.set_checksums(checksums);
    let mut tmp = [0u8; 16 * 1024];
    let mut last_activity = Instant::now();
    'conn: loop {
        // Pull every complete frame already buffered.
        let mut burst = Vec::new();
        loop {
            match fr.try_frame() {
                Ok(Some(frame)) => burst.push(frame),
                Ok(None) => break,
                Err(e) => {
                    // The stream cannot be resynchronised after a length
                    // violation: report once, then drop the connection.
                    writer.send_error(0, ErrorCode::Malformed, 0, e.to_string());
                    break 'conn;
                }
            }
        }

        if burst.is_empty() {
            if shared.shutdown.load(Ordering::Relaxed) || writer.dead.load(Ordering::Relaxed) {
                break;
            }
            match stream.read(&mut tmp) {
                Ok(0) => break,
                Ok(n) => {
                    fr.feed(&tmp[..n]);
                    last_activity = Instant::now();
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // A half-open peer never sends another byte; reap it
                    // rather than pinning this thread and a connection
                    // slot forever.
                    if let Some(limit) = shared.cfg.idle_timeout {
                        if last_activity.elapsed() >= limit {
                            clare_trace::metrics().net_idle_reaps.inc();
                            break;
                        }
                    }
                    continue;
                }
                Err(_) => break,
            }
            continue;
        }

        // A burst is in hand: opportunistically drain whatever else has
        // already arrived (without blocking) so pipelined requests can be
        // coalesced below.
        if shared.cfg.coalesce && stream.set_nonblocking(true).is_ok() {
            loop {
                match stream.read(&mut tmp) {
                    Ok(0) => break,
                    Ok(n) => fr.feed(&tmp[..n]),
                    Err(_) => break,
                }
            }
            if stream.set_nonblocking(false).is_err() {
                break;
            }
            // Restore the poll-tick timeout cleared by nonblocking mode.
            if stream
                .set_read_timeout(Some(shared.cfg.poll_interval))
                .is_err()
            {
                break;
            }
            loop {
                match fr.try_frame() {
                    Ok(Some(frame)) => burst.push(frame),
                    Ok(None) => break,
                    Err(e) => {
                        writer.send_error(0, ErrorCode::Malformed, 0, e.to_string());
                        process_burst(shared, &writer, burst);
                        break 'conn;
                    }
                }
            }
        }

        process_burst(shared, &writer, burst);
    }
}

/// Decodes a burst of frames into jobs — coalescing runs of same-predicate
/// retrieves — and enqueues them, shedding load when the queue is full.
/// Malformed payloads are answered with error frames; the connection
/// stays up.
pub(crate) fn process_burst(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, burst: Vec<Frame>) {
    /// A decoded retrieve waiting to be grouped.
    struct PendingRetrieve {
        id: u64,
        req: RetrieveReq,
        key: Option<(Symbol, usize)>,
    }

    let mut pending: Vec<PendingRetrieve> = Vec::new();
    let mut jobs: Vec<Job> = Vec::new();

    let flush_pending = |pending: &mut Vec<PendingRetrieve>, jobs: &mut Vec<Job>| {
        while !pending.is_empty() {
            // Take the head's group: the longest prefix sharing its
            // coalescing key (same predicate, mode, deadline, and budget).
            let head_key = pending[0].key;
            let head_mode = pending[0].req.mode;
            let head_deadline = pending[0].req.deadline_micros;
            let head_budget = pending[0].req.budget;
            let groupable = head_key.is_some();
            let mut n = 1;
            while groupable
                && n < pending.len()
                && pending[n].key == head_key
                && pending[n].req.mode == head_mode
                && pending[n].req.deadline_micros == head_deadline
                && pending[n].req.budget == head_budget
            {
                n += 1;
            }
            let group: Vec<PendingRetrieve> = pending.drain(..n).collect();
            if group.len() == 1 {
                let p = group.into_iter().next().expect("nonempty group");
                jobs.push(Job {
                    request_id: p.id,
                    work: Work::Retrieve(p.req),
                    writer: Arc::clone(writer),
                    accepted: Instant::now(),
                    deadline_micros: head_deadline,
                    budget: head_budget,
                });
            } else {
                let m = clare_trace::metrics();
                m.net_coalesced_groups.inc();
                m.net_coalesced_members.add(group.len() as u64);
                let member_ids: Vec<u64> = group.iter().map(|p| p.id).collect();
                let queries: Vec<Term> = group.into_iter().map(|p| p.req.query).collect();
                jobs.push(Job {
                    request_id: member_ids[0],
                    work: Work::Coalesced {
                        req: RetrieveBatchReq {
                            mode: head_mode,
                            deadline_micros: head_deadline,
                            budget: head_budget,
                            queries,
                        },
                        member_ids,
                    },
                    writer: Arc::clone(writer),
                    accepted: Instant::now(),
                    deadline_micros: head_deadline,
                    budget: head_budget,
                });
            }
        }
    };

    for frame in burst {
        let id = frame.request_id;
        if let op @ opcode::PING..=opcode::REPL_ACK = frame.opcode {
            let m = clare_trace::metrics();
            m.net_frames_in[(op - opcode::PING) as usize].inc();
            m.net_bytes_in.add(frame.payload.len() as u64);
        }
        let work = match frame.opcode {
            opcode::PING => {
                flush_pending(&mut pending, &mut jobs);
                writer.send(&Frame::new(id, opcode::PING | opcode::REPLY, Vec::new()));
                continue;
            }
            opcode::RETRIEVE => match decode_retrieve(&frame.payload) {
                Ok(req) => {
                    if shared.cfg.coalesce {
                        let key = req.query.functor_arity();
                        pending.push(PendingRetrieve { id, req, key });
                        continue;
                    }
                    Work::Retrieve(req)
                }
                Err(e) => {
                    writer.send_error(id, ErrorCode::Malformed, 0, e.to_string());
                    continue;
                }
            },
            opcode::RETRIEVE_BATCH => match decode_retrieve_batch(&frame.payload) {
                Ok(req) => Work::Batch(req),
                Err(e) => {
                    writer.send_error(id, ErrorCode::Malformed, 0, e.to_string());
                    continue;
                }
            },
            opcode::SOLVE => match decode_solve(&frame.payload) {
                Ok(req) => Work::Solve(req),
                Err(e) => {
                    writer.send_error(id, ErrorCode::Malformed, 0, e.to_string());
                    continue;
                }
            },
            opcode::CONSULT => match decode_consult(&frame.payload) {
                Ok(req) => Work::Consult(req),
                Err(e) => {
                    writer.send_error(id, ErrorCode::Malformed, 0, e.to_string());
                    continue;
                }
            },
            // Assert/retract reuse the consult payload shape (module +
            // source text); they differ only in which commit op runs.
            opcode::ASSERT => match decode_consult(&frame.payload) {
                Ok(req) => Work::Assert(req),
                Err(e) => {
                    writer.send_error(id, ErrorCode::Malformed, 0, e.to_string());
                    continue;
                }
            },
            opcode::RETRACT => match decode_consult(&frame.payload) {
                Ok(req) => Work::Retract(req),
                Err(e) => {
                    writer.send_error(id, ErrorCode::Malformed, 0, e.to_string());
                    continue;
                }
            },
            // The request payload selects the reply shape: empty keeps the
            // plain 56-byte struct; a leading STATS_REQ_EXTENDED byte
            // asks for the versioned metrics snapshot appended to it.
            opcode::STATS => Work::Stats {
                extended: frame.payload.first() == Some(&STATS_REQ_EXTENDED),
            },
            opcode::SYMBOLS => Work::Symbols,
            opcode::SUBSCRIBE_LOG => match decode_subscribe_log(&frame.payload) {
                Ok(req) => Work::SubscribeLog {
                    from_seq: req.from_seq,
                },
                Err(e) => {
                    writer.send_error(id, ErrorCode::Malformed, 0, e.to_string());
                    continue;
                }
            },
            // The payload is one WAL ship record (`encode_ship_record`),
            // exactly the bytes a subscriber push carries.
            opcode::LOG_FRAME => match clare_wal::decode_ship_record(&frame.payload) {
                Some(record) => Work::LogFrame(record),
                None => {
                    writer.send_error(
                        id,
                        ErrorCode::Malformed,
                        0,
                        "malformed WAL ship record".to_owned(),
                    );
                    continue;
                }
            },
            opcode::REPL_ACK => match decode_repl_ack(&frame.payload) {
                Ok(ack) => Work::ReplAck { seq: ack.seq },
                Err(e) => {
                    writer.send_error(id, ErrorCode::Malformed, 0, e.to_string());
                    continue;
                }
            },
            other => {
                writer.send_error(
                    id,
                    ErrorCode::Unsupported,
                    0,
                    format!("unknown opcode {other:#04x}"),
                );
                continue;
            }
        };
        flush_pending(&mut pending, &mut jobs);
        let (deadline_micros, budget) = match &work {
            Work::Retrieve(req) => (req.deadline_micros, req.budget),
            Work::Solve(req) => (req.deadline_micros, req.budget),
            Work::Batch(req) => (req.deadline_micros, req.budget),
            _ => (0, BudgetExt::NONE),
        };
        jobs.push(Job {
            request_id: id,
            work,
            writer: Arc::clone(writer),
            accepted: Instant::now(),
            deadline_micros,
            budget,
        });
    }
    flush_pending(&mut pending, &mut jobs);

    for job in jobs {
        job.writer.job_started();
        if let Err(job) = shared.try_enqueue(job) {
            shed(shared, &job);
            job.writer.job_finished();
        }
    }
}

/// Sheds one refused job: every affected request id gets a `Busy` error
/// frame with the retry hint, and the rejection is counted on the CRS.
fn shed(shared: &Shared, job: &Job) {
    let ids: Vec<u64> = match &job.work {
        Work::Coalesced { member_ids, .. } => member_ids.clone(),
        _ => vec![job.request_id],
    };
    for id in ids {
        shared.crs.note_rejected();
        clare_trace::metrics().net_busy_rejections.inc();
        job.writer.send_error(
            id,
            ErrorCode::Busy,
            shared.cfg.retry_after_ms,
            "request queue full".to_owned(),
        );
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.dequeue() {
        // A panic while serving one request (e.g. on adversarial input)
        // must not take the worker down or leave the client hanging: the
        // affected ids get an Internal error and the pool keeps serving.
        let ids: Vec<u64> = match &job.work {
            Work::Coalesced { member_ids, .. } => member_ids.clone(),
            _ => vec![job.request_id],
        };
        let writer = Arc::clone(&job.writer);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute(shared, job)));
        if outcome.is_err() {
            clare_trace::metrics().net_worker_panics.inc();
            for id in ids {
                writer.send_error(
                    id,
                    ErrorCode::Internal,
                    0,
                    "request processing panicked".to_owned(),
                );
            }
        }
        writer.job_finished();
    }
}

/// True when the job's deadline elapsed while it sat in the queue.
fn deadline_expired(job: &Job) -> bool {
    job.deadline_micros > 0 && job.accepted.elapsed() > Duration::from_micros(job.deadline_micros)
}

/// Sends the typed error for a tripped budget. Deadline trips reuse the
/// v3-era `DeadlineExpired` code (old clients understand it); step and
/// candidate ceilings — which only a v4 budget can set — report the v4
/// `BudgetExceeded` code with the trip reason in the message.
fn send_budget_exceeded(writer: &ConnWriter, ids: &[u64], e: &clare_core::BudgetExceeded) {
    clare_core::CancelToken::record_trip(e.reason.unwrap_or(clare_core::BudgetReason::Deadline));
    let (code, message) = match e.reason {
        Some(clare_core::BudgetReason::Deadline) | None => (
            ErrorCode::DeadlineExpired,
            "deadline expired mid-execution; partial work discarded".to_owned(),
        ),
        Some(reason) => (ErrorCode::BudgetExceeded, format!("{e}: {reason}")),
    };
    for &id in ids {
        writer.send_error(id, code, 0, message.clone());
    }
}

fn execute(shared: &Arc<Shared>, job: Job) {
    if let Some(delay) = shared.cfg.debug_worker_delay {
        std::thread::sleep(delay);
    }
    // Worker-side stall fault point (chaos schedules only): pins this
    // worker for a bounded delay *before* the queue-expiry check, so a
    // deterministic schedule can force jobs to outlive their deadline in
    // the queue and prove they are shed, not executed.
    if clare_fault::active() {
        if let clare_fault::FaultAction::Delay { micros } =
            clare_fault::decide(clare_fault::FaultSite::WorkerStall, job.request_id)
        {
            std::thread::sleep(Duration::from_micros(micros));
        }
    }
    let ids: Vec<u64> = match &job.work {
        Work::Coalesced { member_ids, .. } => member_ids.clone(),
        _ => vec![job.request_id],
    };
    if deadline_expired(&job) {
        // The deadline elapsed while the job sat in the queue: shed it
        // without executing — running it would waste a worker on an
        // answer the client has already given up on.
        clare_trace::metrics().budget_expired_in_queue.inc();
        for id in ids {
            job.writer.send_error(
                id,
                ErrorCode::DeadlineExpired,
                0,
                "deadline elapsed before execution".to_owned(),
            );
        }
        return;
    }
    // The end-to-end cancellation token: the deadline is anchored at
    // *arrival* (queue time counts against it), the work ceilings come
    // from the v4 budget extension. Unlimited for v3 / no-budget requests
    // — CancelToken::starting_at returns the zero-cost unlimited token.
    let cancel = clare_core::CancelToken::starting_at(
        &clare_core::QueryBudget {
            deadline_micros: job.deadline_micros,
            solve_step_limit: job.budget.solve_step_limit,
            candidate_limit: job.budget.candidate_limit,
        },
        job.accepted,
    );

    let crs = &shared.crs;
    match job.work {
        Work::Retrieve(req) => match crs.retrieve_budgeted(&req.query, req.mode, &cancel) {
            Ok(retrieval) => job.writer.send(&Frame::new(
                job.request_id,
                opcode::RETRIEVE | opcode::REPLY,
                encode_retrieval(&retrieval),
            )),
            Err(e) => send_budget_exceeded(&job.writer, &ids, &e),
        },
        Work::Coalesced { req, member_ids } => {
            // One hardware pass; each member answered as if it had been a
            // lone retrieve. Identical bytes are guaranteed by the core's
            // batch-equals-individual property. A budget trip anywhere
            // fails the whole group — members share one (identical)
            // budget, so none of them would have finished either.
            match crs.retrieve_batch_budgeted(&req.queries, req.mode, &cancel) {
                Ok(retrievals) => {
                    for (id, retrieval) in member_ids.into_iter().zip(&retrievals) {
                        job.writer.send(&Frame::new(
                            id,
                            opcode::RETRIEVE | opcode::REPLY,
                            encode_retrieval(retrieval),
                        ));
                    }
                }
                Err(e) => send_budget_exceeded(&job.writer, &member_ids, &e),
            }
        }
        Work::Batch(req) => match crs.retrieve_batch_budgeted(&req.queries, req.mode, &cancel) {
            Ok(retrievals) => job.writer.send(&Frame::new(
                job.request_id,
                opcode::RETRIEVE_BATCH | opcode::REPLY,
                encode_retrievals(&retrievals),
            )),
            Err(e) => send_budget_exceeded(&job.writer, &ids, &e),
        },
        Work::Solve(req) => {
            let options = SolveOptions {
                mode: req.mode,
                max_solutions: usize::try_from(req.max_solutions).unwrap_or(usize::MAX),
                max_depth: usize::try_from(req.max_depth).unwrap_or(usize::MAX),
                crs: crs.options().clone(),
            };
            match crs.solve_goals_budgeted(&req.goals, &req.var_names, &options, &cancel) {
                Ok(outcome) => job.writer.send(&Frame::new(
                    job.request_id,
                    opcode::SOLVE | opcode::REPLY,
                    encode_solve_outcome(&outcome),
                )),
                Err(e) => send_budget_exceeded(&job.writer, &ids, &e),
            }
        }
        Work::Consult(req) => {
            let mut tx = crs.begin_update();
            let result = tx
                .consult(&req.module, &req.source)
                .map_err(|e| e.to_string())
                .and_then(|()| {
                    tx.commit(shared.cfg.kb_config.clone())
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                });
            match result {
                Ok(()) => job.writer.send(&Frame::new(
                    job.request_id,
                    opcode::CONSULT | opcode::REPLY,
                    encode_consult_ok(),
                )),
                Err(reason) => {
                    job.writer
                        .send_error(job.request_id, ErrorCode::ConsultRejected, 0, reason)
                }
            }
        }
        Work::Assert(req) => match crs.assert_source(&req.module, &req.source) {
            Ok(receipt) => job.writer.send(&Frame::new(
                job.request_id,
                opcode::ASSERT | opcode::REPLY,
                encode_commit_receipt(&receipt),
            )),
            Err(e) => {
                job.writer
                    .send_error(job.request_id, ErrorCode::ConsultRejected, 0, e.to_string())
            }
        },
        Work::Retract(req) => match crs.retract_source(&req.module, &req.source) {
            Ok(receipt) => job.writer.send(&Frame::new(
                job.request_id,
                opcode::RETRACT | opcode::REPLY,
                encode_commit_receipt(&receipt),
            )),
            Err(e) => {
                job.writer
                    .send_error(job.request_id, ErrorCode::ConsultRejected, 0, e.to_string())
            }
        },
        Work::Stats { extended } => {
            if shared.cfg.debug_panic_on_stats {
                panic!("debug_panic_on_stats fault injection");
            }
            let payload = if extended {
                encode_server_stats_extended(&crs.stats(), &clare_trace::metrics().snapshot())
            } else {
                encode_server_stats(&crs.stats())
            };
            job.writer.send(&Frame::new(
                job.request_id,
                opcode::STATS | opcode::REPLY,
                payload,
            ));
        }
        Work::Symbols => {
            // The overlay symbols are a strict superset of the base's, so
            // clients can parse queries against overlay-only predicates.
            let symbols = crs.symbols();
            job.writer.send(&Frame::new(
                job.request_id,
                opcode::SYMBOLS | opcode::REPLY,
                encode_symbols(&symbols),
            ));
        }
        Work::SubscribeLog { from_seq } => {
            // Catch-up and live pushes both ride the connection's writer
            // as request-id-0 LOG_FRAMEs; the watcher unregisters itself
            // (returns false) once the connection dies.
            let writer = Arc::clone(&job.writer);
            let watcher: clare_core::LogWatcher = Box::new(move |records| {
                for record in records {
                    if writer.dead.load(Ordering::Relaxed) {
                        return false;
                    }
                    writer.send(&Frame::new(
                        0,
                        opcode::LOG_FRAME,
                        clare_wal::encode_ship_record(record.seq, &record.op),
                    ));
                }
                !writer.dead.load(Ordering::Relaxed)
            });
            match crs.subscribe_ops(from_seq, watcher) {
                Ok(current) => job.writer.send(&Frame::new(
                    job.request_id,
                    opcode::SUBSCRIBE_LOG | opcode::REPLY,
                    encode_seq_reply(current),
                )),
                Err(clare_core::SubscribeError::Gap { folded_through }) => {
                    job.writer.send_error(
                        job.request_id,
                        ErrorCode::ReplGap,
                        0,
                        format!("log folded through seq {folded_through}; resync from a snapshot"),
                    );
                }
            }
        }
        Work::LogFrame(record) => {
            // Backup-side apply fault point: a chaos schedule can refuse
            // the frame (the router must retry/resend) or stall it.
            if clare_fault::active() {
                match clare_fault::decide(clare_fault::FaultSite::ReplApply, record.seq) {
                    clare_fault::FaultAction::Drop => {
                        job.writer.send_error(
                            job.request_id,
                            ErrorCode::Busy,
                            1,
                            "replication apply refused (injected)".to_owned(),
                        );
                        return;
                    }
                    clare_fault::FaultAction::Delay { micros } => {
                        std::thread::sleep(Duration::from_micros(micros));
                    }
                    _ => {}
                }
            }
            match crs.apply_replicated(&record) {
                Ok(applied) => job.writer.send(&Frame::new(
                    job.request_id,
                    opcode::LOG_FRAME | opcode::REPLY,
                    encode_seq_reply(applied),
                )),
                Err(clare_core::CommitError::ReplicaGap { expected }) => {
                    job.writer.send_error(
                        job.request_id,
                        ErrorCode::ReplGap,
                        0,
                        format!("expected seq {expected}, got {}", record.seq),
                    );
                }
                Err(e) => {
                    job.writer.send_error(
                        job.request_id,
                        ErrorCode::ConsultRejected,
                        0,
                        e.to_string(),
                    );
                }
            }
        }
        Work::ReplAck { seq } => {
            // The primary's view of how far its backup trails; reads can
            // consult this to judge failover staleness.
            let lag = crs.current_seq().saturating_sub(seq);
            clare_trace::metrics()
                .cluster_repl_lag_frames
                .set(i64::try_from(lag).unwrap_or(i64::MAX));
            job.writer.send(&Frame::new(
                job.request_id,
                opcode::REPL_ACK | opcode::REPLY,
                Vec::new(),
            ));
        }
    }
}

/// The (empty) payload of a successful consult reply.
fn encode_consult_ok() -> Vec<u8> {
    Vec::new()
}
