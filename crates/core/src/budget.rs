//! Request budgets and cooperative cancellation.
//!
//! The serving north-star is millions of concurrent users, and under
//! that kind of load a request that can no longer be useful must stop
//! consuming the engine. This module is the contract between the wire
//! and the retrieval pipeline:
//!
//! * [`QueryBudget`] — the client-declared limits a request carries:
//!   a wall-clock deadline, a resolution-step ceiling for solve, and a
//!   candidate ceiling for retrieval. Zero means unlimited; the whole
//!   struct is plain data and crosses the wire in the protocol-v4 frame
//!   extension.
//! * [`CancelToken`] — the runtime form. The serving layer mints one
//!   token per request (capturing the absolute deadline) and threads it
//!   through FS1 shard claims, FS2 track sweeps, the full-unification
//!   loop, and every solve expansion. Checkpoints are cooperative: the
//!   engine polls the token at coarse strides, so cancellation latency
//!   is one checkpoint interval, not one instruction.
//! * [`BudgetExceeded`] — the typed outcome when a checkpoint trips.
//!   It carries the partial statistics gathered so far and the
//!   [`BudgetReason`] that tripped, and it is **never** a partial
//!   answer: callers get `Err(BudgetExceeded)`, not a truncated match
//!   list, and the retrieval cache never sees the attempt.
//!
//! The unlimited token is `None` inside — cloning and checking it is
//! free, so every pre-existing entry point pays nothing for the new
//! layer.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client-declared limits for one request. Zero fields are unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryBudget {
    /// Wall-clock budget in microseconds, measured from admission
    /// (0 = no deadline).
    pub deadline_micros: u64,
    /// Maximum solve resolution steps — goal expansions — before the
    /// solve is cancelled (0 = unlimited).
    pub solve_step_limit: u64,
    /// Maximum candidate clauses examined by one retrieval before it is
    /// cancelled (0 = unlimited).
    pub candidate_limit: u64,
}

impl QueryBudget {
    /// The no-limits budget.
    pub const UNLIMITED: QueryBudget = QueryBudget {
        deadline_micros: 0,
        solve_step_limit: 0,
        candidate_limit: 0,
    };

    /// True when every field is zero (nothing to enforce).
    pub fn is_unlimited(&self) -> bool {
        *self == Self::UNLIMITED
    }
}

/// Which limit a cancelled request ran into first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The solve resolution-step ceiling was reached.
    SolveSteps,
    /// The retrieval candidate ceiling was reached.
    Candidates,
}

impl BudgetReason {
    fn from_code(code: u8) -> BudgetReason {
        match code {
            2 => BudgetReason::SolveSteps,
            3 => BudgetReason::Candidates,
            _ => BudgetReason::Deadline,
        }
    }

    fn code(self) -> u8 {
        match self {
            BudgetReason::Deadline => 1,
            BudgetReason::SolveSteps => 2,
            BudgetReason::Candidates => 3,
        }
    }
}

impl fmt::Display for BudgetReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetReason::Deadline => "deadline",
            BudgetReason::SolveSteps => "solve step limit",
            BudgetReason::Candidates => "candidate limit",
        })
    }
}

/// The typed outcome of a cancelled request: which limit tripped, plus
/// the partial statistics gathered before the engine let go. Never a
/// partial answer — the match list / binding set is discarded, and the
/// retrieval cache is structurally unreachable from this path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BudgetExceeded {
    /// The first limit that tripped.
    pub reason: Option<BudgetReason>,
    /// Retrieval statistics accumulated up to the checkpoint (when the
    /// cancellation landed inside a retrieval). Boxed to keep the error
    /// arm of every budgeted `Result` pointer-small.
    pub retrieval_stats: Option<Box<crate::crs::RetrievalStats>>,
    /// Solve statistics accumulated up to the checkpoint (when the
    /// cancellation landed inside a solve). Boxed like the above.
    pub solve_stats: Option<Box<crate::resolve::SolveStats>>,
}

impl BudgetExceeded {
    /// An exceeded outcome with just a reason (stats attached by the
    /// layer that owns them).
    pub fn new(reason: BudgetReason) -> Self {
        BudgetExceeded {
            reason: Some(reason),
            retrieval_stats: None,
            solve_stats: None,
        }
    }
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason {
            Some(r) => write!(f, "query budget exceeded: {r}"),
            None => f.write_str("query budget exceeded"),
        }
    }
}

impl std::error::Error for BudgetExceeded {}

#[derive(Debug)]
struct TokenInner {
    /// Absolute deadline; `None` when the budget carries no deadline.
    deadline: Option<Instant>,
    /// Candidate ceiling (0 = unlimited) and running count.
    candidate_limit: u64,
    candidates: AtomicU64,
    /// Solve-step ceiling (0 = unlimited) and running count.
    step_limit: u64,
    steps: AtomicU64,
    /// Set once by the first checkpoint that observes a blown limit;
    /// every later checkpoint (on any worker thread) trips on the flag
    /// alone without consulting the clock.
    tripped: AtomicBool,
    reason: AtomicU8,
}

/// The runtime form of a [`QueryBudget`]: one per request, cloned freely
/// into worker closures. The unlimited token is `None` inside — checking
/// it is a single branch.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<TokenInner>>,
}

impl CancelToken {
    /// The token that never cancels (what every non-budgeted entry point
    /// uses; checkpoints cost one `is_none` branch).
    pub fn unlimited() -> CancelToken {
        CancelToken { inner: None }
    }

    /// Mints a token for `budget`, measuring the deadline from
    /// `started`. The serving layer passes the job's admission instant
    /// so queue time counts against the deadline; in-process callers
    /// pass `Instant::now()`.
    pub fn starting_at(budget: &QueryBudget, started: Instant) -> CancelToken {
        if budget.is_unlimited() {
            return CancelToken::unlimited();
        }
        CancelToken {
            inner: Some(Arc::new(TokenInner {
                deadline: (budget.deadline_micros > 0)
                    .then(|| started + Duration::from_micros(budget.deadline_micros)),
                candidate_limit: budget.candidate_limit,
                candidates: AtomicU64::new(0),
                step_limit: budget.solve_step_limit,
                steps: AtomicU64::new(0),
                tripped: AtomicBool::new(false),
                reason: AtomicU8::new(0),
            })),
        }
    }

    /// Mints a token for `budget` starting now.
    pub fn new(budget: &QueryBudget) -> CancelToken {
        Self::starting_at(budget, Instant::now())
    }

    /// True when this token can never cancel.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    fn trip(inner: &TokenInner, reason: BudgetReason) -> BudgetReason {
        // First tripper wins; later observers report the stored reason
        // so every layer agrees on which limit fired.
        if inner
            .tripped
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            inner.reason.store(reason.code(), Ordering::Release);
            return reason;
        }
        BudgetReason::from_code(inner.reason.load(Ordering::Acquire))
    }

    /// The cooperative checkpoint: returns `Err` once the deadline has
    /// passed (or another checkpoint already tripped the token). Called
    /// at coarse strides — per FS1 shard claim, per FS2 track, per solve
    /// expansion, every ~64 candidates — so the clock read is amortized.
    pub fn checkpoint(&self) -> Result<(), BudgetReason> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.tripped.load(Ordering::Acquire) {
            return Err(BudgetReason::from_code(
                inner.reason.load(Ordering::Acquire),
            ));
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(Self::trip(inner, BudgetReason::Deadline));
            }
        }
        Ok(())
    }

    /// Charges `n` candidate clauses against the budget, then runs a
    /// checkpoint. The count is cumulative across retrieval phases.
    pub fn note_candidates(&self, n: u64) -> Result<(), BudgetReason> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.candidate_limit > 0 {
            let total = inner.candidates.fetch_add(n, Ordering::Relaxed) + n;
            if total > inner.candidate_limit {
                return Err(Self::trip(inner, BudgetReason::Candidates));
            }
        }
        self.checkpoint()
    }

    /// Charges one solve resolution step, then runs a checkpoint.
    pub fn note_step(&self) -> Result<(), BudgetReason> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.step_limit > 0 {
            let total = inner.steps.fetch_add(1, Ordering::Relaxed) + 1;
            if total > inner.step_limit {
                return Err(Self::trip(inner, BudgetReason::SolveSteps));
            }
        }
        self.checkpoint()
    }

    /// Bumps the matching `budget.exceeded_*` trace counter for a
    /// tripped reason (called once per cancelled request by the layer
    /// that surfaces the error, not per checkpoint).
    pub fn record_trip(reason: BudgetReason) {
        let m = clare_trace::metrics();
        match reason {
            BudgetReason::Deadline => m.budget_exceeded_deadline.inc(),
            BudgetReason::SolveSteps => m.budget_exceeded_steps.inc(),
            BudgetReason::Candidates => m.budget_exceeded_candidates.inc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_token_never_trips() {
        let t = CancelToken::unlimited();
        assert!(t.is_unlimited());
        for _ in 0..1000 {
            assert!(t.checkpoint().is_ok());
            assert!(t.note_candidates(1_000_000).is_ok());
            assert!(t.note_step().is_ok());
        }
    }

    #[test]
    fn zero_budget_is_unlimited() {
        assert!(QueryBudget::default().is_unlimited());
        assert!(CancelToken::new(&QueryBudget::UNLIMITED).is_unlimited());
    }

    #[test]
    fn deadline_trips_and_sticks() {
        let budget = QueryBudget {
            deadline_micros: 1,
            ..QueryBudget::UNLIMITED
        };
        let t = CancelToken::starting_at(&budget, Instant::now() - Duration::from_millis(5));
        assert_eq!(t.checkpoint(), Err(BudgetReason::Deadline));
        // Sticky: clones observe the same trip.
        assert_eq!(t.clone().checkpoint(), Err(BudgetReason::Deadline));
    }

    #[test]
    fn candidate_limit_trips_cumulatively() {
        let budget = QueryBudget {
            candidate_limit: 100,
            ..QueryBudget::UNLIMITED
        };
        let t = CancelToken::new(&budget);
        assert!(t.note_candidates(60).is_ok());
        assert!(t.note_candidates(40).is_ok()); // exactly at the limit
        assert_eq!(t.note_candidates(1), Err(BudgetReason::Candidates));
        assert_eq!(t.checkpoint(), Err(BudgetReason::Candidates));
    }

    #[test]
    fn step_limit_trips() {
        let budget = QueryBudget {
            solve_step_limit: 3,
            ..QueryBudget::UNLIMITED
        };
        let t = CancelToken::new(&budget);
        assert!(t.note_step().is_ok());
        assert!(t.note_step().is_ok());
        assert!(t.note_step().is_ok());
        assert_eq!(t.note_step(), Err(BudgetReason::SolveSteps));
    }

    #[test]
    fn first_trip_reason_wins() {
        let budget = QueryBudget {
            deadline_micros: 1,
            candidate_limit: 1,
            ..QueryBudget::UNLIMITED
        };
        let t = CancelToken::starting_at(&budget, Instant::now() - Duration::from_millis(5));
        // Candidates blow first here; the deadline checkpoint afterwards
        // must report the stored reason, not invent a new one.
        let first = t.note_candidates(10).expect_err("limit must trip");
        assert_eq!(t.checkpoint(), Err(first));
    }
}
