//! E1 — Table 1: execution times of the FS2 hardware functions.
//!
//! The simulator derives each time from the per-component datapath routes
//! of Figures 6–12; this experiment prints the derived table next to the
//! paper's published values and flags any divergence.

use crate::render_table;
use clare_fs2::HwOp;
use std::fmt;

/// The paper's published Table 1, for comparison.
pub const PAPER_TIMES_NS: [(u8, &str, u64); 7] = [
    (6, "MATCH", 105),
    (7, "DB_STORE", 95),
    (8, "QUERY_STORE", 115),
    (9, "DB_FETCH", 105),
    (10, "QUERY_FETCH", 170),
    (11, "DB_CROSS_BOUND_FETCH", 170),
    (12, "QUERY_CROSS_BOUND_FETCH", 235),
];

/// One reproduced row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// The figure defining the operation.
    pub figure: u8,
    /// Operation name.
    pub name: &'static str,
    /// Time derived from the component routes (ns).
    pub derived_ns: u64,
    /// The paper's published time (ns).
    pub paper_ns: u64,
}

/// The reproduced table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1 {
    /// Rows in Table 1 order.
    pub rows: Vec<Row>,
}

impl Table1 {
    /// True if every derived time equals the published one.
    pub fn matches_paper(&self) -> bool {
        self.rows.iter().all(|r| r.derived_ns == r.paper_ns)
    }
}

/// Runs the experiment.
pub fn run() -> Table1 {
    let rows = HwOp::ALL
        .iter()
        .zip(PAPER_TIMES_NS)
        .map(|(op, (figure, name, paper_ns))| {
            debug_assert_eq!(op.name(), name);
            Row {
                figure,
                name,
                derived_ns: op.execution_time().as_ns(),
                paper_ns,
            }
        })
        .collect();
    Table1 { rows }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E1 / Table 1: Execution Times of the FS2 Hardware Functions"
        )?;
        writeln!(f, "(derived from component routes, never transcribed)\n")?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.figure.to_string(),
                    r.name.to_owned(),
                    r.derived_ns.to_string(),
                    r.paper_ns.to_string(),
                    if r.derived_ns == r.paper_ns {
                        "yes"
                    } else {
                        "NO"
                    }
                    .to_owned(),
                ]
            })
            .collect();
        f.write_str(&render_table(
            &["figure", "operation", "derived ns", "paper ns", "match"],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_matches_the_paper() {
        let t = run();
        assert_eq!(t.rows.len(), 7);
        assert!(t.matches_paper(), "derived Table 1 diverges: {t}");
    }

    #[test]
    fn render_contains_all_ops() {
        let text = run().to_string();
        for (_, name, _) in PAPER_TIMES_NS {
            assert!(text.contains(name));
        }
    }
}
