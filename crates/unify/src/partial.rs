//! Partial test unification — the paper's five matching levels (§2.2).
//!
//! This is the *software reference model* of the Figure 1 algorithm that the
//! FS2 hardware implements. The FS2 simulator in `clare-fs2` executes the
//! same algorithm at the microprogram/word level over PIF streams; a
//! property test asserts verdict agreement between the two on the adopted
//! configuration ([`PartialConfig::fs2`]).
//!
//! # Word-level semantics
//!
//! The hardware never compares *terms*; it compares 32-bit *words* (an 8-bit
//! type tag plus a content field). A structure's word carries its functor
//! offset and arity; a list's word carries its arity and whether it is
//! terminated. Variable bindings store the partner's **word**, not its
//! subterm data — which is why a clause such as `f(A, A)` matched against
//! query `f(g(a), g(b))` *passes* the filter (both bindings are the word
//! `g/1`) and is only rejected by full unification later. This module
//! reproduces those semantics exactly.
//!
//! # Completeness contract
//!
//! For every configuration, `full unification succeeds ⇒ partial match
//! succeeds`. False *drops* (accepting a clause that full unification later
//! rejects) are expected and quantified by the experiments; false
//! *negatives* are never permitted. Two places where a naive word-equality
//! model would violate this are handled conservatively, exactly as a careful
//! microroutine must:
//!
//! * a fetched binding word that is a list is compared against another list
//!   word by a "could possibly unify" rule (an unterminated list word does
//!   not pin the length);
//! * unterminated lists match element-wise only up to the shorter arity
//!   (the paper's two-counter rule).

use crate::full::{unify, UnifyOptions};
use crate::store::{shift_vars, var_span, BindingStore};
use clare_term::{FloatId, Symbol, Term, VarId};
use std::fmt;

/// Maximum arity representable in the 5-bit arity field of a complex-term
/// type tag (Table A1). Larger arities are stored as pointer words with a
/// saturated arity field and are never descended into.
pub const INLINE_ARITY_LIMIT: usize = 31;

/// The paper's matching levels (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MatchLevel {
    /// Level 1 — type only.
    L1,
    /// Level 2 — type and content, ignoring complex structures.
    L2,
    /// Level 3 — type and content, catering for first level structures.
    L3,
    /// Level 4 — type and content, including full structures.
    L4,
    /// Level 5 — full structures and variable cross binding checks.
    L5,
}

impl MatchLevel {
    /// All five levels in increasing strictness.
    pub const ALL: [MatchLevel; 5] = [
        MatchLevel::L1,
        MatchLevel::L2,
        MatchLevel::L3,
        MatchLevel::L4,
        MatchLevel::L5,
    ];
}

impl fmt::Display for MatchLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = match self {
            MatchLevel::L1 => 1,
            MatchLevel::L2 => 2,
            MatchLevel::L3 => 3,
            MatchLevel::L4 => 4,
            MatchLevel::L5 => 5,
        };
        write!(f, "level {n}")
    }
}

/// How deep the matcher looks into complex terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepthPolicy {
    /// Compare type tags only (Level 1).
    TypeOnly,
    /// Compare top-level argument words: type + content (Level 2).
    TopContent,
    /// Additionally compare first-level elements of complex arguments as
    /// words (Level 3 — the depth the hardware implements).
    FirstLevel,
    /// Recurse through all structure (Levels 4 and 5).
    Full,
}

/// Configuration for [`partial_match`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartialConfig {
    /// Structural depth examined.
    pub depth: DepthPolicy,
    /// Whether variable bindings are stored and checked for consistency
    /// (the paper's "variable cross binding checks"). When `false`, any
    /// variable matches anything.
    pub check_bindings: bool,
}

impl PartialConfig {
    /// The configuration the CLARE FS2 hardware adopts: Level 3 depth plus
    /// variable cross-binding checks.
    pub fn fs2() -> Self {
        PartialConfig {
            depth: DepthPolicy::FirstLevel,
            check_bindings: true,
        }
    }

    /// The configuration corresponding to one of the paper's five levels.
    pub fn level(level: MatchLevel) -> Self {
        match level {
            MatchLevel::L1 => PartialConfig {
                depth: DepthPolicy::TypeOnly,
                check_bindings: false,
            },
            MatchLevel::L2 => PartialConfig {
                depth: DepthPolicy::TopContent,
                check_bindings: false,
            },
            MatchLevel::L3 => PartialConfig {
                depth: DepthPolicy::FirstLevel,
                check_bindings: false,
            },
            MatchLevel::L4 => PartialConfig {
                depth: DepthPolicy::Full,
                check_bindings: false,
            },
            MatchLevel::L5 => PartialConfig {
                depth: DepthPolicy::Full,
                check_bindings: true,
            },
        }
    }
}

/// The seven FS2 hardware operations (Table 1 of the paper), as classified
/// by the software reference while matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartialOp {
    /// Simple comparison of two words (Figure 6) — 105 ns.
    Match,
    /// First occurrence of a database variable: store the query word
    /// (Figure 7) — 95 ns.
    DbStore,
    /// First occurrence of a query variable: store the database word
    /// (Figure 8) — 115 ns.
    QueryStore,
    /// Subsequent database variable bound to a value (Figure 9) — 105 ns.
    DbFetch,
    /// Subsequent query variable bound to a value (Figure 10) — 170 ns.
    QueryFetch,
    /// Subsequent database variable cross-bound to a variable
    /// (Figure 11) — 170 ns.
    DbCrossBoundFetch,
    /// Subsequent query variable cross-bound to a variable
    /// (Figure 12) — 235 ns.
    QueryCrossBoundFetch,
}

impl PartialOp {
    /// All seven operations, in Table 1 order.
    pub const ALL: [PartialOp; 7] = [
        PartialOp::Match,
        PartialOp::DbStore,
        PartialOp::QueryStore,
        PartialOp::DbFetch,
        PartialOp::QueryFetch,
        PartialOp::DbCrossBoundFetch,
        PartialOp::QueryCrossBoundFetch,
    ];

    /// The operation's hardware name as printed in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            PartialOp::Match => "MATCH",
            PartialOp::DbStore => "DB_STORE",
            PartialOp::QueryStore => "QUERY_STORE",
            PartialOp::DbFetch => "DB_FETCH",
            PartialOp::QueryFetch => "QUERY_FETCH",
            PartialOp::DbCrossBoundFetch => "DB_CROSS_BOUND_FETCH",
            PartialOp::QueryCrossBoundFetch => "QUERY_CROSS_BOUND_FETCH",
        }
    }
}

impl fmt::Display for PartialOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of a partial match: the verdict plus the operation trace (the
/// trace is only populated when binding checks are enabled at hardware
/// depths, where the seven Table 1 operations are meaningful).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatchReport {
    /// `true` if the clause survives the filter.
    pub matched: bool,
    /// Sequence of hardware operations performed, in order.
    pub ops: Vec<PartialOp>,
    /// Number of word-pair comparison steps taken, counted at every
    /// matching level (a cost proxy for the level ablation; zero for the
    /// Level-5 oracle, which delegates to full unification).
    pub comparisons: usize,
}

impl MatchReport {
    /// Histogram of operations: count per [`PartialOp::ALL`] entry.
    pub fn op_histogram(&self) -> [usize; 7] {
        let mut h = [0usize; 7];
        for op in &self.ops {
            let idx = PartialOp::ALL
                .iter()
                .position(|o| o == op)
                .expect("ALL covers every op");
            h[idx] += 1;
        }
        h
    }
}

/// Which side of the comparison a word came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Side {
    Query,
    Db,
}

/// A 32-bit hardware word: 8-bit type tag plus content, as the comparator
/// sees it. Arities are saturated at [`INLINE_ARITY_LIMIT`], mirroring the
/// 5-bit arity field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Word {
    Atom(Symbol),
    Float(FloatId),
    Int(i64),
    Struct { functor: Symbol, arity: u8 },
    ListTerminated { arity: u8 },
    ListUnterminated { arity: u8 },
    Var(Side, VarId),
    Anon,
}

fn word_of(term: &Term, side: Side) -> Word {
    match term {
        Term::Atom(s) => Word::Atom(*s),
        Term::Float(f) => Word::Float(*f),
        Term::Int(i) => Word::Int(*i),
        Term::Var(v) => Word::Var(side, *v),
        Term::Anon => Word::Anon,
        Term::Struct { functor, args } => Word::Struct {
            functor: *functor,
            arity: args.len().min(INLINE_ARITY_LIMIT) as u8,
        },
        Term::List { items, tail } => {
            let arity = items.len().min(INLINE_ARITY_LIMIT) as u8;
            if tail.is_some() {
                Word::ListUnterminated { arity }
            } else {
                Word::ListTerminated { arity }
            }
        }
    }
}

/// Coarse type class for Level 1 matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TypeClass {
    Atom,
    Float,
    Int,
    Struct,
    List,
    Var,
}

fn type_class(term: &Term) -> TypeClass {
    match term {
        Term::Atom(_) => TypeClass::Atom,
        Term::Float(_) => TypeClass::Float,
        Term::Int(_) => TypeClass::Int,
        Term::Struct { .. } => TypeClass::Struct,
        Term::List { .. } => TypeClass::List,
        Term::Var(_) | Term::Anon => TypeClass::Var,
    }
}

/// Conservative word comparison for words where element data is
/// unavailable (fetched bindings, pointer words, depth-exhausted elements):
/// `false` only when the words prove unification impossible.
fn could_unify_words(a: Word, b: Word) -> bool {
    match (a, b) {
        // A variable word that reaches a raw comparison matches anything.
        (Word::Var(..) | Word::Anon, _) | (_, Word::Var(..) | Word::Anon) => true,
        (Word::Atom(x), Word::Atom(y)) => x == y,
        (Word::Float(x), Word::Float(y)) => x == y,
        (Word::Int(x), Word::Int(y)) => x == y,
        (
            Word::Struct {
                functor: fa,
                arity: aa,
            },
            Word::Struct {
                functor: fb,
                arity: ab,
            },
        ) => fa == fb && aa == ab,
        // Terminated lists pin their length exactly…
        (Word::ListTerminated { arity: x }, Word::ListTerminated { arity: y }) => x == y,
        // …but an unterminated list word does not, so any list pairing
        // involving one could still unify.
        (
            Word::ListTerminated { .. } | Word::ListUnterminated { .. },
            Word::ListTerminated { .. } | Word::ListUnterminated { .. },
        ) => true,
        _ => false,
    }
}

/// The variable binding memories: Q-Memory cells for query variables and
/// DB-Memory cells for database variables, each holding at most one stored
/// word (the hardware stores words, never structures).
#[derive(Debug)]
struct WordStores {
    query: Vec<Option<Word>>,
    db: Vec<Option<Word>>,
}

/// Outcome of dereferencing a variable through the binding memories.
#[derive(Debug, Clone, Copy)]
enum Resolved {
    /// The chain ended at a still-unbound cell.
    Unbound { side: Side, var: VarId, hops: usize },
    /// The chain ended at a stored non-variable word.
    Value { word: Word, hops: usize },
}

impl WordStores {
    fn new(query_vars: usize, db_vars: usize) -> Self {
        WordStores {
            query: vec![None; query_vars],
            db: vec![None; db_vars],
        }
    }

    fn cell(&self, side: Side, var: VarId) -> Option<Word> {
        match side {
            Side::Query => self.query[var.index() as usize],
            Side::Db => self.db[var.index() as usize],
        }
    }

    fn set_cell(&mut self, side: Side, var: VarId, word: Word) {
        let slot = match side {
            Side::Query => &mut self.query[var.index() as usize],
            Side::Db => &mut self.db[var.index() as usize],
        };
        *slot = Some(word);
    }

    /// Follows reference chains from `(side, var)` until an unbound cell or
    /// a value word. Mutually-referential variables (bound to each other)
    /// resolve as unbound at the first revisited cell.
    fn resolve(&self, side: Side, var: VarId) -> Resolved {
        let mut seen: Vec<(Side, VarId)> = Vec::new();
        let mut current = (side, var);
        let mut hops = 0usize;
        loop {
            if seen.contains(&current) {
                return Resolved::Unbound {
                    side: current.0,
                    var: current.1,
                    hops,
                };
            }
            seen.push(current);
            match self.cell(current.0, current.1) {
                None => {
                    return Resolved::Unbound {
                        side: current.0,
                        var: current.1,
                        hops,
                    }
                }
                Some(Word::Var(s, v)) => {
                    current = (s, v);
                    hops += 1;
                }
                Some(word) => return Resolved::Value { word, hops },
            }
        }
    }
}

/// Matches `query` against `clause_head` at the given configuration.
///
/// Both terms keep their own variable scopes (as in the hardware: query
/// variables address Q-Memory, clause variables address DB-Memory), so the
/// caller passes the clause head *unrenamed*.
///
/// # Examples
///
/// ```
/// use clare_term::{SymbolTable, parser::parse_term};
/// use clare_unify::partial::{partial_match, PartialConfig, PartialOp};
///
/// let mut sy = SymbolTable::new();
/// let q = parse_term("f(X, a, b)", &mut sy)?;
/// let c = parse_term("f(A, a, A)", &mut sy)?;
/// let report = partial_match(&q, &c, PartialConfig::fs2());
/// assert!(report.matched);
/// // The second A is a cross-bound database variable fetch:
/// assert!(report.ops.contains(&PartialOp::DbCrossBoundFetch));
/// # Ok::<(), clare_term::parser::ParseError>(())
/// ```
pub fn partial_match(query: &Term, clause_head: &Term, config: PartialConfig) -> MatchReport {
    // Level 5 is full test unification: delegate to the oracle (no op trace
    // — the hardware never implements this level).
    if config.check_bindings && config.depth == DepthPolicy::Full {
        let offset = var_span(query);
        let renamed = shift_vars(clause_head, offset);
        let mut store = BindingStore::with_capacity((offset + var_span(&renamed)) as usize);
        let matched = unify(
            query,
            &renamed,
            &mut store,
            UnifyOptions { occurs_check: true },
        );
        return MatchReport {
            matched,
            ops: Vec::new(),
            comparisons: 0,
        };
    }

    let mut m = Matcher {
        config,
        stores: WordStores::new(var_span(query) as usize, var_span(clause_head) as usize),
        ops: Vec::new(),
        comparisons: 0,
    };

    // The predicate indicator is checked before FS2 even runs (clauses of
    // one functor/arity share a compiled clause file), but guard it here so
    // the function is total over arbitrary terms.
    let matched = match (query.functor_arity(), clause_head.functor_arity()) {
        (Some((fq, aq)), Some((fc, ac))) => {
            if fq != fc || aq != ac {
                false
            } else {
                let q_args: Vec<&Term> = query.children().collect();
                let c_args: Vec<&Term> = clause_head.children().collect();
                q_args
                    .iter()
                    .zip(&c_args)
                    .all(|(q, c)| m.compare(q, c, top_depth(config.depth)))
            }
        }
        // Not clause-shaped: compare the bare terms (useful for tests).
        _ => m.compare(query, clause_head, top_depth(config.depth)),
    };
    MatchReport {
        matched,
        ops: m.ops,
        comparisons: m.comparisons,
    }
}

/// Remaining descent budget for top-level arguments under a policy.
fn top_depth(depth: DepthPolicy) -> u32 {
    match depth {
        DepthPolicy::TypeOnly | DepthPolicy::TopContent => 0,
        DepthPolicy::FirstLevel => 1,
        DepthPolicy::Full => u32::MAX,
    }
}

struct Matcher {
    config: PartialConfig,
    stores: WordStores,
    ops: Vec<PartialOp>,
    comparisons: usize,
}

impl Matcher {
    fn op(&mut self, op: PartialOp) {
        if self.config.check_bindings {
            self.ops.push(op);
        }
    }

    /// Compares one query/database term pair with `depth` levels of complex
    /// descent remaining.
    fn compare(&mut self, q: &Term, db: &Term, depth: u32) -> bool {
        self.comparisons += 1;
        // Anonymous variables skip immediately, regardless of the other side.
        if matches!(q, Term::Anon) || matches!(db, Term::Anon) {
            self.op(PartialOp::Match);
            return true;
        }

        if self.config.depth == DepthPolicy::TypeOnly {
            return type_class(q) == TypeClass::Var
                || type_class(db) == TypeClass::Var
                || type_class(q) == type_class(db);
        }

        if !self.config.check_bindings {
            if q.is_var() || db.is_var() {
                return true;
            }
            return self.compare_nonvar(q, db, depth);
        }

        // Figure 1 precedence: the database-variable branch (case 5) is
        // examined before the query-variable branch (case 6).
        if let Term::Var(dv) = db {
            return self.var_branch(Side::Db, *dv, q, Side::Query);
        }
        if let Term::Var(qv) = q {
            return self.var_branch(Side::Query, *qv, db, Side::Db);
        }
        self.op(PartialOp::Match);
        self.compare_nonvar(q, db, depth)
    }

    /// Handles a variable on `var_side` against `other` (cases 5/6 of
    /// Figure 1), classifying the hardware operation performed.
    fn var_branch(&mut self, var_side: Side, var: VarId, other: &Term, other_side: Side) -> bool {
        let (store_op, fetch_op, cross_op) = match var_side {
            Side::Db => (
                PartialOp::DbStore,
                PartialOp::DbFetch,
                PartialOp::DbCrossBoundFetch,
            ),
            Side::Query => (
                PartialOp::QueryStore,
                PartialOp::QueryFetch,
                PartialOp::QueryCrossBoundFetch,
            ),
        };
        match self.stores.resolve(var_side, var) {
            Resolved::Unbound {
                side: end_side,
                var: end_var,
                hops,
            } => {
                // First (effective) occurrence: store the other side's word.
                self.op(if hops == 0 { store_op } else { cross_op });
                match other {
                    // Binding to a variable on the other side: store a
                    // reference word; if that variable resolves to a value,
                    // store a reference to its representative instead.
                    Term::Var(ov) => match self.stores.resolve(other_side, *ov) {
                        Resolved::Unbound {
                            side: os,
                            var: ov_end,
                            ..
                        } => {
                            if (os, ov_end) != (end_side, end_var) {
                                self.stores
                                    .set_cell(end_side, end_var, Word::Var(os, ov_end));
                            }
                            true
                        }
                        Resolved::Value { word, .. } => {
                            self.stores.set_cell(end_side, end_var, word);
                            true
                        }
                    },
                    Term::Anon => true,
                    value => {
                        self.stores
                            .set_cell(end_side, end_var, word_of(value, other_side));
                        true
                    }
                }
            }
            Resolved::Value { word, hops } => {
                self.op(if hops == 0 { fetch_op } else { cross_op });
                match other {
                    Term::Var(ov) => match self.stores.resolve(other_side, *ov) {
                        Resolved::Unbound {
                            side: os,
                            var: ov_end,
                            ..
                        } => {
                            self.stores.set_cell(os, ov_end, word);
                            true
                        }
                        Resolved::Value {
                            word: other_word, ..
                        } => could_unify_words(word, other_word),
                    },
                    Term::Anon => true,
                    value => could_unify_words(word, word_of(value, other_side)),
                }
            }
        }
    }

    /// Compares two non-variable terms.
    fn compare_nonvar(&mut self, q: &Term, db: &Term, depth: u32) -> bool {
        match (q, db) {
            (Term::Atom(a), Term::Atom(b)) => a == b,
            (Term::Int(a), Term::Int(b)) => a == b,
            (Term::Float(a), Term::Float(b)) => a == b,
            (
                Term::Struct {
                    functor: fq,
                    args: aq,
                },
                Term::Struct {
                    functor: fc,
                    args: ac,
                },
            ) => {
                if fq != fc {
                    return false;
                }
                let inline = aq.len() <= INLINE_ARITY_LIMIT && ac.len() <= INLINE_ARITY_LIMIT;
                if !inline || depth == 0 {
                    // Word comparison only (pointer words / depth exhausted).
                    return could_unify_words(word_of(q, Side::Query), word_of(db, Side::Db));
                }
                if aq.len() != ac.len() {
                    return false;
                }
                aq.iter()
                    .zip(ac)
                    .all(|(x, y)| self.compare(x, y, depth - 1))
            }
            (
                Term::List {
                    items: iq,
                    tail: tq,
                },
                Term::List {
                    items: ic,
                    tail: tc,
                },
            ) => {
                let inline = iq.len() <= INLINE_ARITY_LIMIT && ic.len() <= INLINE_ARITY_LIMIT;
                if !inline || depth == 0 {
                    return could_unify_words(word_of(q, Side::Query), word_of(db, Side::Db));
                }
                let both_terminated = tq.is_none() && tc.is_none();
                if both_terminated && iq.len() != ic.len() {
                    return false;
                }
                // Two-counter rule: match until either counter reaches zero.
                let common = iq.len().min(ic.len());
                if !iq[..common]
                    .iter()
                    .zip(&ic[..common])
                    .all(|(x, y)| self.compare(x, y, depth - 1))
                {
                    return false;
                }
                // At full depth with both sides terminated-equal, the
                // element walk above covered everything; with a tail
                // present at full depth, compare the remainders.
                if depth == u32::MAX {
                    self.compare_list_rest(iq, tq, ic, tc, common)
                } else {
                    true
                }
            }
            _ => false,
        }
    }

    /// Full-depth list remainder comparison (Level 4): the shorter side's
    /// tail against the longer side's remainder. Tails are variables in
    /// well-formed terms; a variable tail matches anything at Level 4.
    fn compare_list_rest(
        &mut self,
        iq: &[Term],
        tq: &Option<Box<Term>>,
        ic: &[Term],
        tc: &Option<Box<Term>>,
        common: usize,
    ) -> bool {
        let q_rest = (iq.len() - common, tq);
        let c_rest = (ic.len() - common, tc);
        match (q_rest, c_rest) {
            ((0, None), (0, None)) => true,
            ((0, None), (extra, _)) | ((extra, _), (0, None)) => extra == 0,
            // Any side with a tail variable can absorb the other's surplus.
            _ => true,
        }
    }
}

/// Convenience: runs [`partial_match`] at each of the five paper levels and
/// returns the verdicts in order L1..L5.
pub fn match_at_all_levels(query: &Term, clause_head: &Term) -> [bool; 5] {
    let mut out = [false; 5];
    for (i, level) in MatchLevel::ALL.iter().enumerate() {
        out[i] = partial_match(query, clause_head, PartialConfig::level(*level)).matched;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::unify_query_clause;
    use clare_term::parser::parse_term;
    use clare_term::SymbolTable;

    fn terms(q: &str, c: &str) -> (Term, Term, SymbolTable) {
        let mut sy = SymbolTable::new();
        let qt = parse_term(q, &mut sy).unwrap();
        let ct = parse_term(c, &mut sy).unwrap();
        (qt, ct, sy)
    }

    fn fs2(q: &str, c: &str) -> MatchReport {
        let (qt, ct, _) = terms(q, c);
        partial_match(&qt, &ct, PartialConfig::fs2())
    }

    #[test]
    fn ground_equality_at_fs2() {
        assert!(fs2("f(a, 1)", "f(a, 1)").matched);
        assert!(!fs2("f(a)", "f(b)").matched);
        assert!(!fs2("f(1)", "f(2)").matched);
        assert!(!fs2("f(a)", "g(a)").matched);
        assert!(!fs2("f(a)", "f(a, b)").matched);
    }

    #[test]
    fn shared_query_variable_rejected() {
        // The paper's married_couple example: FS1 cannot reject these,
        // FS2's cross-binding checks can.
        assert!(fs2("married_couple(S, S)", "married_couple(sue, sue)").matched);
        assert!(!fs2("married_couple(S, S)", "married_couple(ann, bob)").matched);
    }

    #[test]
    fn shared_db_variable_rejected() {
        assert!(!fs2("f(a, b)", "f(A, A)").matched);
        assert!(fs2("f(a, a)", "f(A, A)").matched);
    }

    #[test]
    fn paper_cross_binding_example() {
        // f(X, a, b) against f(A, a, A): A cross-binds to X, then the
        // second A fetches the ultimate association (unbound X) and binds
        // it to b — the clause survives, as full unification confirms.
        let report = fs2("f(X, a, b)", "f(A, a, A)");
        assert!(report.matched);
        assert!(report.ops.contains(&PartialOp::DbStore));
        assert!(report.ops.contains(&PartialOp::DbCrossBoundFetch));
    }

    #[test]
    fn query_cross_binding_op_classified() {
        // Query variable bound to a db variable, used again: the second X
        // resolves through the db variable's cell.
        let report = fs2("f(A1, X, X, b)", "f(q, B, c, B)");
        // X first meets B (db var branch wins: B stores ref to X? No —
        // here db side is B (var) and query side is X (var): case 5 fires,
        // B stores a reference to X), then X meets c: query branch, X
        // unbound -> stores c. Then b vs B: db branch, B resolves via X to
        // c — mismatch with b.
        assert!(!report.matched);
    }

    #[test]
    fn word_level_false_drop_on_deep_mismatch() {
        // g/1 words are equal, elements differ below level 3 depth via
        // bindings: the filter passes, full unification rejects.
        let (qt, ct, _) = terms("f(g(a), g(b))", "f(A, A)");
        let report = partial_match(&qt, &ct, PartialConfig::fs2());
        assert!(report.matched, "word-level binding comparison false drop");
        assert!(unify_query_clause(&qt, &ct).is_none());
    }

    #[test]
    fn first_level_elements_checked() {
        // Element mismatch at depth 1 is caught…
        assert!(!fs2("f(g(a))", "f(g(b))").matched);
        // …but depth-2 mismatch is not (level 3 cut): words h/1 == h/1.
        assert!(fs2("f(g(h(a)))", "f(g(h(b)))").matched);
    }

    #[test]
    fn list_matching_rules() {
        assert!(fs2("p([a, b])", "p([a, b])").matched);
        assert!(!fs2("p([a, b])", "p([a, c])").matched);
        assert!(
            !fs2("p([a, b])", "p([a, b, c])").matched,
            "terminated lengths differ"
        );
        assert!(fs2("p([a, b])", "p([a | T])").matched, "two-counter rule");
        assert!(fs2("p([a | T])", "p([a, b, c])").matched);
        assert!(!fs2("p([b | T])", "p([a, b, c])").matched);
        assert!(fs2("p([])", "p([])").matched);
        assert!(!fs2("p([])", "p([a])").matched);
    }

    #[test]
    fn anon_skips_both_sides() {
        assert!(fs2("f(_, b)", "f(whatever, b)").matched);
        assert!(fs2("f(a, b)", "f(_, b)").matched);
        let report = fs2("f(_)", "f(x)");
        assert_eq!(report.ops, vec![PartialOp::Match]);
    }

    #[test]
    fn level1_type_only() {
        let cfg = PartialConfig::level(MatchLevel::L1);
        let (qt, ct, _) = terms("f(a)", "f(b)");
        assert!(partial_match(&qt, &ct, cfg).matched, "same type (atom)");
        let (qt, ct, _) = terms("f(a)", "f(1)");
        assert!(!partial_match(&qt, &ct, cfg).matched, "atom vs int");
        let (qt, ct, _) = terms("f(g(x))", "f(h(y, z))");
        assert!(
            partial_match(&qt, &ct, cfg).matched,
            "type-only ignores functor and arity"
        );
        let (qt, ct, _) = terms("f(1.5)", "f(1)");
        assert!(!partial_match(&qt, &ct, cfg).matched, "float vs int");
    }

    #[test]
    fn level2_content_no_descent() {
        let cfg = PartialConfig::level(MatchLevel::L2);
        let (qt, ct, _) = terms("f(g(a))", "f(g(b))");
        assert!(
            partial_match(&qt, &ct, cfg).matched,
            "level 2 ignores elements"
        );
        let (qt, ct, _) = terms("f(g(a))", "f(h(a))");
        assert!(!partial_match(&qt, &ct, cfg).matched, "functor differs");
        let (qt, ct, _) = terms("f(g(a))", "f(g(a, b))");
        assert!(!partial_match(&qt, &ct, cfg).matched, "arity differs");
    }

    #[test]
    fn level_monotonicity_on_examples() {
        // Each level accepts a superset of the next level's acceptances.
        let cases = [
            ("f(a, b)", "f(a, b)"),
            ("f(a, b)", "f(a, c)"),
            ("f(g(a))", "f(g(b))"),
            ("f(g(h(a)))", "f(g(h(b)))"),
            ("f(X, X)", "f(a, b)"),
            ("f(X, X)", "f(a, a)"),
            ("p([a | T])", "p([a, b])"),
            ("f(1)", "f(a)"),
        ];
        for (q, c) in cases {
            let (qt, ct, _) = terms(q, c);
            let verdicts = match_at_all_levels(&qt, &ct);
            for w in verdicts.windows(2) {
                assert!(
                    w[0] || !w[1],
                    "level monotonicity violated for {q} vs {c}: {verdicts:?}"
                );
            }
        }
    }

    #[test]
    fn level5_equals_full_unification() {
        let cases = [
            ("f(X, X)", "f(a, b)"),
            ("f(X, X)", "f(A, A)"),
            ("f(g(h(a)))", "f(g(h(b)))"),
            ("p([a | T])", "p([a, b])"),
            ("f(X, a, b)", "f(A, a, A)"),
        ];
        for (q, c) in cases {
            let (qt, ct, _) = terms(q, c);
            let l5 = partial_match(&qt, &ct, PartialConfig::level(MatchLevel::L5)).matched;
            let full = unify_query_clause(&qt, &ct).is_some();
            assert_eq!(l5, full, "L5 vs full unification for {q} vs {c}");
        }
    }

    #[test]
    fn completeness_no_false_negatives() {
        // Everything full unification accepts, every level must accept.
        let cases = [
            ("f(X, a, b)", "f(A, a, A)"),
            ("f(X, X)", "f(A, b)"),
            ("married_couple(S, S)", "married_couple(m, m)"),
            ("p([a, b])", "p([a | T])"),
            ("p([H | T])", "p([a, b, c])"),
            ("f(g(X), X)", "f(g(h(1)), h(1))"),
            ("f(_, _)", "f(a, g(b))"),
            ("f(X, Y, X, Y)", "f(A, A, c, c)"),
        ];
        for (q, c) in cases {
            let (qt, ct, _) = terms(q, c);
            assert!(
                unify_query_clause(&qt, &ct).is_some(),
                "precondition: {q} unifies with {c}"
            );
            for level in MatchLevel::ALL {
                assert!(
                    partial_match(&qt, &ct, PartialConfig::level(level)).matched,
                    "false negative at {level} for {q} vs {c}"
                );
            }
            assert!(
                partial_match(&qt, &ct, PartialConfig::fs2()).matched,
                "false negative at FS2 config for {q} vs {c}"
            );
        }
    }

    #[test]
    fn fetched_list_binding_is_conservative() {
        // X binds the word for [a|T] (unterminated, arity 1), then meets
        // [a, b] (terminated, arity 2). Word equality would wrongly reject;
        // the could-unify rule keeps it (full unification succeeds).
        let (qt, ct, _) = terms("f(X, X)", "f([a | T], [a, b])") /* db has both lists */;
        assert!(unify_query_clause(&qt, &ct).is_some());
        assert!(partial_match(&qt, &ct, PartialConfig::fs2()).matched);
    }

    #[test]
    fn op_trace_for_simple_match() {
        let report = fs2("f(a, b)", "f(a, b)");
        assert_eq!(report.ops, vec![PartialOp::Match, PartialOp::Match]);
        assert_eq!(report.op_histogram()[0], 2);
    }

    #[test]
    fn op_trace_for_query_store_then_fetch() {
        let report = fs2("f(X, X)", "f(a, a)");
        assert_eq!(
            report.ops,
            vec![PartialOp::QueryStore, PartialOp::QueryFetch]
        );
    }

    #[test]
    fn op_trace_for_db_store_then_fetch() {
        let report = fs2("f(a, a)", "f(A, A)");
        assert_eq!(report.ops, vec![PartialOp::DbStore, PartialOp::DbFetch]);
    }

    #[test]
    fn query_cross_bound_fetch_appears() {
        // pos1 cross-binds B to X; pos2 chains X to Y (via B); pos3 then
        // fetches X, which must chase the X→Y chain before comparing — a
        // QUERY_CROSS_BOUND_FETCH.
        let report = fs2("f(X, Y, X, Y)", "f(B, B, c, c)");
        assert!(report.matched);
        assert!(
            report.ops.contains(&PartialOp::QueryCrossBoundFetch),
            "ops were: {:?}",
            report.ops
        );
        // And the chain carries real information: inconsistent values fail.
        assert!(!fs2("f(X, Y, X, Y)", "f(B, B, c, d)").matched);
    }

    #[test]
    fn large_arity_structures_compare_as_pointer_words() {
        let mut sy = SymbolTable::new();
        let args_a: Vec<String> = (0..40).map(|i| format!("a{i}")).collect();
        let args_b: Vec<String> = (0..40).map(|i| format!("b{i}")).collect();
        // The over-limit structure sits in argument position, where it is
        // represented by a pointer word (functor + saturated arity).
        let q = parse_term(&format!("p(f({}))", args_a.join(", ")), &mut sy).unwrap();
        let c = parse_term(&format!("p(f({}))", args_b.join(", ")), &mut sy).unwrap();
        // Same functor, same (saturated) arity: passes despite differing
        // elements — the truncation false-drop source from §2.1.
        let report = partial_match(&q, &c, PartialConfig::fs2());
        assert!(report.matched);
    }

    #[test]
    fn report_histogram_sums_to_trace_len() {
        let report = fs2("f(X, X, a, B2)", "f(A, A, a, c)");
        assert_eq!(
            report.op_histogram().iter().sum::<usize>(),
            report.ops.len()
        );
    }
}
