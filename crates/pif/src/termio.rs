//! Bounded byte (de)serialization of whole terms.
//!
//! This is the "compiled clause" payload format of [`crate::record`] and —
//! since the advent of `clare-net` — the wire format for query terms and
//! solution bindings travelling over TCP. Decoding therefore treats its
//! input as **untrusted**: every read is bounds-checked, symbol-table and
//! variable offsets are capped at what the 24-bit PIF content field can
//! address, nesting depth is limited so crafted input cannot overflow the
//! stack, and malformed bytes always surface as a typed [`PifError`],
//! never a panic.
//!
//! # Examples
//!
//! ```
//! use clare_term::{SymbolTable, parser::parse_term};
//! use clare_pif::termio::{decode_term, encode_term, TermLimits};
//!
//! let mut sy = SymbolTable::new();
//! let term = parse_term("likes(mary, [wine | T])", &mut sy)?;
//! let bytes = encode_term(&term);
//! let (back, consumed) = decode_term(&bytes, &TermLimits::default())?;
//! assert_eq!(back, term);
//! assert_eq!(consumed, bytes.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::error::PifError;
use crate::word::CONTENT_MAX;
use bytes::{Buf, BufMut};
use clare_term::{FloatId, Symbol, Term, VarId};

/// Default cap on term nesting depth while decoding.
///
/// Each level costs one recursive call, so the cap bounds stack use on
/// hostile input; 512 is far beyond anything the parser or the workloads
/// produce, yet keeps the decoder comfortably inside a 2 MB thread stack.
pub const MAX_TERM_DEPTH: u32 = 512;

/// Bounds applied while decoding a term from untrusted bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TermLimits {
    /// Largest acceptable symbol-table offset (atoms, functors, floats).
    /// Defaults to [`CONTENT_MAX`]: offsets beyond the 24-bit PIF content
    /// field could never have come from a valid compiled knowledge base.
    pub max_symbol: u32,
    /// Largest acceptable variable id. Defaults to [`CONTENT_MAX`].
    pub max_var: u32,
    /// Maximum nesting depth. Defaults to [`MAX_TERM_DEPTH`].
    pub max_depth: u32,
}

impl Default for TermLimits {
    fn default() -> Self {
        TermLimits {
            max_symbol: CONTENT_MAX,
            max_var: CONTENT_MAX,
            max_depth: MAX_TERM_DEPTH,
        }
    }
}

/// Serializes one term in the record/wire format.
pub fn write_term(term: &Term, buf: &mut impl BufMut) {
    match term {
        Term::Atom(s) => {
            buf.put_u8(0x01);
            buf.put_u32(s.offset());
        }
        Term::Int(v) => {
            buf.put_u8(0x02);
            buf.put_i64(*v);
        }
        Term::Float(fid) => {
            buf.put_u8(0x03);
            buf.put_u32(fid.offset());
        }
        Term::Var(v) => {
            buf.put_u8(0x04);
            buf.put_u32(v.index());
        }
        Term::Anon => buf.put_u8(0x05),
        Term::Struct { functor, args } => {
            buf.put_u8(0x06);
            buf.put_u32(functor.offset());
            buf.put_u16(args.len() as u16);
            for a in args {
                write_term(a, buf);
            }
        }
        Term::List { items, tail } => {
            buf.put_u8(0x07);
            buf.put_u16(items.len() as u16);
            buf.put_u8(tail.is_some() as u8);
            for i in items {
                write_term(i, buf);
            }
            if let Some(t) = tail {
                write_term(t, buf);
            }
        }
    }
}

/// Serializes one term into a fresh buffer.
pub fn encode_term(term: &Term) -> Vec<u8> {
    let mut out = Vec::new();
    write_term(term, &mut out);
    out
}

/// Deserializes one term written by [`write_term`], enforcing `limits`.
///
/// # Errors
///
/// Returns [`PifError::Malformed`] on truncation, unknown markers, or
/// over-deep nesting; [`PifError::SymbolOffsetTooLarge`] /
/// [`PifError::VarOffsetTooLarge`] for out-of-range offsets.
pub fn read_term(buf: &mut impl Buf, limits: &TermLimits) -> Result<Term, PifError> {
    read_term_at(buf, limits, 0)
}

/// Deserializes one term from the front of `data`, returning it and the
/// number of bytes consumed. This is the entry point for untrusted input
/// (network frames): it never panics, whatever the bytes.
///
/// # Errors
///
/// See [`read_term`].
pub fn decode_term(data: &[u8], limits: &TermLimits) -> Result<(Term, usize), PifError> {
    let mut buf = data;
    let term = read_term(&mut buf, limits)?;
    Ok((term, data.len() - buf.len()))
}

fn read_term_at(buf: &mut impl Buf, limits: &TermLimits, depth: u32) -> Result<Term, PifError> {
    let malformed = |reason: &str| PifError::Malformed {
        offset: 0,
        reason: reason.to_owned(),
    };
    if depth >= limits.max_depth {
        return Err(malformed("term nesting exceeds the decode depth limit"));
    }
    if !buf.has_remaining() {
        return Err(malformed("truncated term"));
    }
    match buf.get_u8() {
        0x01 => Ok(Term::Atom(Symbol::from_offset(read_symbol(buf, limits)?))),
        0x02 => {
            ensure(buf, 8)?;
            Ok(Term::Int(buf.get_i64()))
        }
        0x03 => Ok(Term::Float(FloatId::from_offset(read_symbol(buf, limits)?))),
        0x04 => {
            ensure(buf, 4)?;
            let index = buf.get_u32();
            if index > limits.max_var {
                return Err(PifError::VarOffsetTooLarge(index));
            }
            Ok(Term::Var(VarId::new(index)))
        }
        0x05 => Ok(Term::Anon),
        0x06 => {
            let functor = Symbol::from_offset(read_symbol(buf, limits)?);
            ensure(buf, 2)?;
            let n = buf.get_u16() as usize;
            let mut args = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                args.push(read_term_at(buf, limits, depth + 1)?);
            }
            Ok(Term::Struct { functor, args })
        }
        0x07 => {
            ensure(buf, 3)?;
            let n = buf.get_u16() as usize;
            let has_tail = match buf.get_u8() {
                0 => false,
                1 => true,
                other => {
                    return Err(malformed(&format!("invalid list tail flag {other:#04x}")));
                }
            };
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(read_term_at(buf, limits, depth + 1)?);
            }
            let tail = if has_tail {
                Some(Box::new(read_term_at(buf, limits, depth + 1)?))
            } else {
                None
            };
            Ok(Term::List { items, tail })
        }
        other => Err(malformed(&format!("unknown term marker {other:#04x}"))),
    }
}

fn read_symbol(buf: &mut impl Buf, limits: &TermLimits) -> Result<u32, PifError> {
    ensure(buf, 4)?;
    let offset = buf.get_u32();
    if offset > limits.max_symbol {
        return Err(PifError::SymbolOffsetTooLarge(offset));
    }
    Ok(offset)
}

/// Checks that at least `n` bytes remain before a multi-byte read.
pub(crate) fn ensure(buf: &impl Buf, n: usize) -> Result<(), PifError> {
    if buf.remaining() < n {
        Err(PifError::Malformed {
            offset: 0,
            reason: "truncated term payload".to_owned(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_term::parser::parse_term;
    use clare_term::SymbolTable;

    fn roundtrip(src: &str) {
        let mut sy = SymbolTable::new();
        let term = parse_term(src, &mut sy).unwrap();
        let bytes = encode_term(&term);
        let (back, used) = decode_term(&bytes, &TermLimits::default()).unwrap();
        assert_eq!(back, term, "roundtrip {src}");
        assert_eq!(used, bytes.len(), "whole buffer consumed for {src}");
    }

    #[test]
    fn roundtrips_each_shape() {
        roundtrip("a");
        roundtrip("42");
        roundtrip("-7");
        roundtrip("3.25");
        roundtrip("X");
        roundtrip("_");
        roundtrip("f(a, B, 1)");
        roundtrip("[1, 2, 3]");
        roundtrip("[a | T]");
        roundtrip("f(g(h([x, [y | Z]])))");
    }

    #[test]
    fn depth_limit_rejects_deep_nesting() {
        // A chain of unary structs deeper than the limit: marker 0x06,
        // functor 0, arity 1, repeated.
        let mut bytes = Vec::new();
        for _ in 0..=MAX_TERM_DEPTH {
            bytes.push(0x06);
            bytes.extend_from_slice(&0u32.to_be_bytes());
            bytes.extend_from_slice(&1u16.to_be_bytes());
        }
        bytes.push(0x05); // innermost: anon
        let err = decode_term(&bytes, &TermLimits::default()).unwrap_err();
        assert!(matches!(err, PifError::Malformed { .. }), "{err}");
    }

    #[test]
    fn a_tighter_depth_limit_applies() {
        let mut sy = SymbolTable::new();
        let term = parse_term("f(g(h(i)))", &mut sy).unwrap();
        let bytes = encode_term(&term);
        let tight = TermLimits {
            max_depth: 2,
            ..TermLimits::default()
        };
        assert!(decode_term(&bytes, &tight).is_err());
        assert!(decode_term(&bytes, &TermLimits::default()).is_ok());
    }

    #[test]
    fn out_of_range_symbol_offset_rejected() {
        let mut bytes = vec![0x01];
        bytes.extend_from_slice(&(CONTENT_MAX + 1).to_be_bytes());
        assert_eq!(
            decode_term(&bytes, &TermLimits::default()),
            Err(PifError::SymbolOffsetTooLarge(CONTENT_MAX + 1))
        );
    }

    #[test]
    fn out_of_range_var_offset_rejected() {
        let mut bytes = vec![0x04];
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            decode_term(&bytes, &TermLimits::default()),
            Err(PifError::VarOffsetTooLarge(u32::MAX))
        );
    }

    #[test]
    fn invalid_list_flag_rejected() {
        let mut bytes = vec![0x07];
        bytes.extend_from_slice(&0u16.to_be_bytes());
        bytes.push(0x02); // tail flag must be 0 or 1
        assert!(decode_term(&bytes, &TermLimits::default()).is_err());
    }

    #[test]
    fn trailing_bytes_are_not_consumed() {
        let mut sy = SymbolTable::new();
        let term = parse_term("p(a)", &mut sy).unwrap();
        let mut bytes = encode_term(&term);
        let term_len = bytes.len();
        bytes.extend_from_slice(&[0xAA, 0xBB]);
        let (back, used) = decode_term(&bytes, &TermLimits::default()).unwrap();
        assert_eq!(back, term);
        assert_eq!(used, term_len);
    }
}
