//! E12 — §4's closing promise: "Once the CLARE hardware is fully
//! developed, it will be subjected to benchmark tests similar to the ones
//! devised in \[7\]" (the Heriot-Watt database benchmarks, whose data never
//! appeared in print).
//!
//! This experiment runs that promised evaluation on the simulator: the
//! supplier/part/supply benchmark database with its six-query mix, each
//! query solved end-to-end with automatic mode selection, reporting the
//! answer counts, candidate volumes, and modelled retrieval times.

use clare_core::{choose_mode, solve, SolveOptions};
use clare_kb::{KbBuilder, KbConfig, KbStats};
use clare_workload::SuiteSpec;
use std::fmt;

/// One benchmark query's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteRow {
    /// Query label.
    pub label: &'static str,
    /// The mode the selector chose for the top-level goal.
    pub mode: String,
    /// Solutions found.
    pub solutions: usize,
    /// Retrievals performed (goal expansions).
    pub retrievals: usize,
    /// Clause candidates examined across all retrievals.
    pub candidates: usize,
    /// Modelled retrieval time (ms).
    pub elapsed_ms: f64,
}

/// The suite report.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteReport {
    /// Database shape description.
    pub kb_description: String,
    /// Per-query rows.
    pub rows: Vec<SuiteRow>,
}

/// Runs the suite at the given scale multiplier.
pub fn run(scale: usize) -> SuiteReport {
    let spec = SuiteSpec {
        suppliers: 200 * scale,
        parts: 1000 * scale,
        supplies: 10_000 * scale,
        ..SuiteSpec::default()
    };
    let mut builder = KbBuilder::new();
    let summary = spec.generate(&mut builder, "db");
    let kb = builder.finish(KbConfig::default());
    let stats = KbStats::gather(&kb);
    let mut rows = Vec::new();
    for q in &summary.queries {
        let mode = choose_mode(&kb, &q.goal).to_string();
        let outcome = solve(
            &kb,
            &q.goal,
            &q.var_names,
            &SolveOptions {
                max_solutions: 100_000,
                ..SolveOptions::default()
            },
        );
        rows.push(SuiteRow {
            label: q.label,
            mode,
            solutions: outcome.solutions.len(),
            retrievals: outcome.stats.retrievals,
            candidates: outcome.stats.candidates,
            elapsed_ms: outcome.stats.retrieval_elapsed.as_ns() as f64 / 1e6,
        });
    }
    SuiteReport {
        kb_description: format!(
            "{} suppliers, {} parts, {} supplies — {stats}",
            spec.suppliers, spec.parts, spec.supplies
        ),
        rows,
    }
}

impl fmt::Display for SuiteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E12 / §4: the promised database benchmark suite (refs [6,7] style)\n"
        )?;
        writeln!(f, "{}\n", self.kb_description)?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.label.to_owned(),
                    r.mode.clone(),
                    r.solutions.to_string(),
                    r.retrievals.to_string(),
                    r.candidates.to_string(),
                    format!("{:.2}", r.elapsed_ms),
                ]
            })
            .collect();
        f.write_str(&crate::render_table(
            &[
                "query",
                "top-goal mode",
                "answers",
                "retrievals",
                "candidates",
                "elapsed ms",
            ],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn report() -> &'static SuiteReport {
        static REPORT: OnceLock<SuiteReport> = OnceLock::new();
        REPORT.get_or_init(|| run(1))
    }

    #[test]
    fn six_queries_all_terminate() {
        let r = report();
        assert_eq!(r.rows.len(), 6);
        for row in &r.rows {
            assert!(row.retrievals > 0, "{} ran retrievals", row.label);
            assert!(row.elapsed_ms > 0.0, "{} accrued time", row.label);
        }
    }

    #[test]
    fn selectivity_ordering() {
        let r = report();
        let get = |label: &str| r.rows.iter().find(|x| x.label == label).unwrap();
        // Key selection touches at most a handful of answers; the shared
        // variable query touches a supply-sized answer set.
        assert!(get("key-selection").solutions <= 5);
        assert!(get("shared-variable").solutions >= 5_000);
        assert!(
            get("colour-selection").solutions == 200,
            "1000 parts / 5 colours"
        );
    }

    #[test]
    fn shared_variable_query_routes_to_fs2() {
        let r = report();
        let shared = r
            .rows
            .iter()
            .find(|x| x.label == "shared-variable")
            .unwrap();
        // co_supplied/2 is a rule predicate in a small module; either the
        // module is memory-resident (software) or FS2 carries it — never
        // an FS1 mode, which shared variables defeat.
        assert!(!shared.mode.contains("FS1"), "mode was {}", shared.mode);
    }
}
