//! The secondary index file and the FS1 scanner.
//!
//! "For fast searching in large files, codewords are generated for facts
//! and rule heads and these are maintained in a secondary file. The
//! secondary file is effectively an index table associating codewords with
//! clause addresses." (§2.1.)
//!
//! # Packed columnar layout
//!
//! The index stores its entries struct-of-arrays: all codeword limbs in
//! one contiguous `Vec<u64>` (a fixed stride per entry), all mask bits
//! packed two per position into one `u64` word per entry, and all clause
//! addresses in a parallel array. A scan is then a branch-light sweep over
//! dense machine words — the software analogue of the FS1 streaming
//! comparator, which sees the secondary file as a flat byte stream rather
//! than a collection of records.
//!
//! A query is compiled once per scan into the bit requirements each mask
//! state implies, so the per-entry test collapses to a single
//! subset-of-codeword check: for every position the per-position subset
//! tests AND together, and `(A ⊆ E) ∧ (B ⊆ E) ⟺ (A ∪ B) ⊆ E`, so the
//! union of the required bits is tested at once. Which bits are required
//! depends only on the entry's (masked) mask word, so requirements are
//! cached per distinct mask word — typically a handful per predicate.
//!
//! # Sharding and parallel scan
//!
//! Entries are grouped into fixed-size shards
//! ([`ScwConfig::shard_entries`]); [`ScwConfig::parallelism`] workers
//! claim shards and scan them independently, modelling the paper's scan
//! of multiple tracks with parallel disk heads. Per-shard hit lists are
//! merged in shard order, so the result is byte-identical to a sequential
//! scan at every parallelism level: Prolog clause order is preserved.
//! The modelled [`ScanOutcome::fs1_time`] is unchanged — it is the
//! secondary-file size over the FS1 scan rate, independent of how the
//! software host organises the sweep.

use crate::config::ScwConfig;
use crate::encode::{
    encode_clause_signature, encode_query_descriptor, ArgMask, ClauseSignature, QueryArg,
    QueryDescriptor,
};
use crate::Codeword;
use clare_disk::SimNanos;
use clare_term::Term;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Address of a clause in its compiled clause file: track plus slot within
/// the track. What FS1 hands to FS2 (or the CRS) after an index hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClauseAddr {
    track: u32,
    slot: u16,
}

impl ClauseAddr {
    /// Creates an address.
    pub fn new(track: u32, slot: u16) -> Self {
        ClauseAddr { track, slot }
    }

    /// Track index within the compiled clause file.
    pub fn track(self) -> u32 {
        self.track
    }

    /// Record slot within the track.
    pub fn slot(self) -> u16 {
        self.slot
    }
}

impl fmt::Display for ClauseAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}#{}", self.track, self.slot)
    }
}

/// One secondary-file entry: a clause signature plus the clause address.
///
/// The packed index does not store entries in this form; it is the
/// materialized row view returned by [`IndexFile::iter_entries`].
#[derive(Debug, Clone, PartialEq)]
pub struct IndexEntry {
    /// Codeword and mask bits for the clause head.
    pub signature: ClauseSignature,
    /// Where the clause record lives.
    pub addr: ClauseAddr,
}

/// Result of one FS1 scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanOutcome {
    /// Addresses of clauses whose codewords matched (potential unifiers,
    /// including false drops).
    pub matches: Vec<ClauseAddr>,
    /// Entries examined (= clause count of the predicate).
    pub entries_scanned: usize,
    /// Secondary-file bytes streamed through the FS1 hardware.
    pub bytes_scanned: usize,
    /// Time the FS1 hardware needs at its scan rate (4.5 MB/s prototype).
    pub fs1_time: SimNanos,
}

impl ScanOutcome {
    /// Fraction of scanned entries that matched.
    pub fn selectivity(&self) -> f64 {
        if self.entries_scanned == 0 {
            0.0
        } else {
            self.matches.len() as f64 / self.entries_scanned as f64
        }
    }
}

/// Every 2-bit mask field set to [`ArgMask::Var`] (0b10): the packed mask
/// word starts here so positions beyond a clause's arity read as `Var`,
/// exactly as [`QueryDescriptor::matches`] defaults missing positions.
const ALL_VAR: u64 = 0xAAAA_AAAA_AAAA_AAAA;

/// The secondary index file for one predicate's compiled clause file,
/// stored columnar (see the module docs).
///
/// # Examples
///
/// ```
/// use clare_term::{SymbolTable, parser::parse_term};
/// use clare_scw::{ClauseAddr, IndexFile, ScwConfig};
///
/// let mut sy = SymbolTable::new();
/// let mut index = IndexFile::new(ScwConfig::paper());
/// for (i, fact) in ["p(a)", "p(b)", "p(X)"].iter().enumerate() {
///     let head = parse_term(fact, &mut sy)?;
///     index.insert(&head, ClauseAddr::new(0, i as u16));
/// }
/// let outcome = index.scan(&parse_term("p(a)", &mut sy)?);
/// // p(a) matches; p(X) matches via its mask bit; p(b) is filtered out.
/// assert_eq!(outcome.matches.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct IndexFile {
    config: ScwConfig,
    /// Codeword limbs per entry (fixed stride into `limbs`).
    limbs_per_entry: usize,
    /// All entries' codeword limbs, contiguous.
    limbs: Vec<u64>,
    /// One packed mask word per entry: 2 bits per position, low to high,
    /// `Var`-filled beyond the clause's arity.
    mask_words: Vec<u64>,
    /// Number of real (clause-arity) mask fields per entry.
    mask_len: Vec<u8>,
    /// Clause address per entry, in clause order.
    addrs: Vec<ClauseAddr>,
}

impl IndexFile {
    /// Creates an empty index with the given scheme parameters.
    pub fn new(config: ScwConfig) -> Self {
        Self::with_capacity(config, 0)
    }

    /// Creates an empty index pre-sized for `entries` clauses.
    pub fn with_capacity(config: ScwConfig, entries: usize) -> Self {
        let limbs_per_entry = (config.width_bits() as usize).div_ceil(64);
        IndexFile {
            config,
            limbs_per_entry,
            limbs: Vec::with_capacity(entries * limbs_per_entry),
            mask_words: Vec::with_capacity(entries),
            mask_len: Vec::with_capacity(entries),
            addrs: Vec::with_capacity(entries),
        }
    }

    /// The scheme parameters.
    pub fn config(&self) -> &ScwConfig {
        &self.config
    }

    /// Encodes and appends a clause head. Entries keep insertion order —
    /// clause order is user-significant in Prolog and the index preserves
    /// it so retrieval returns clauses in program order.
    pub fn insert(&mut self, head: &Term, addr: ClauseAddr) {
        let signature = encode_clause_signature(head, &self.config);
        self.push_signature(&signature, addr);
    }

    /// Appends an already-encoded signature (the compile path encodes
    /// once and reuses the signature elsewhere).
    pub fn push_signature(&mut self, signature: &ClauseSignature, addr: ClauseAddr) {
        let limbs = signature.codeword.limbs();
        debug_assert_eq!(limbs.len(), self.limbs_per_entry);
        debug_assert!(signature.masks.len() <= 32, "mask word holds 32 positions");
        self.limbs.extend_from_slice(limbs);
        let mut word = ALL_VAR;
        for (i, mask) in signature.masks.iter().enumerate() {
            let shift = 2 * i as u32;
            word = (word & !(0b11 << shift)) | (u64::from(mask.to_bits()) << shift);
        }
        self.mask_words.push(word);
        self.mask_len.push(signature.masks.len() as u8);
        self.addrs.push(addr);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The clause address of entry `i` (clause order).
    pub fn addr_at(&self, i: usize) -> ClauseAddr {
        self.addrs[i]
    }

    /// Reconstructs the signature of entry `i` from the packed columns.
    pub fn signature_at(&self, i: usize) -> ClauseSignature {
        let base = i * self.limbs_per_entry;
        let codeword = Codeword::from_raw(
            self.config.width_bits(),
            self.limbs[base..base + self.limbs_per_entry].to_vec(),
        );
        let word = self.mask_words[i];
        let masks = (0..self.mask_len[i] as usize)
            .map(|p| ArgMask::from_bits(((word >> (2 * p)) & 0b11) as u8))
            .collect();
        ClauseSignature { codeword, masks }
    }

    /// Materializes the entries in clause order (a row view over the
    /// columnar storage — for inspection and tests, not the scan path).
    pub fn iter_entries(&self) -> impl Iterator<Item = IndexEntry> + '_ {
        (0..self.len()).map(|i| IndexEntry {
            signature: self.signature_at(i),
            addr: self.addrs[i],
        })
    }

    /// Size of the secondary file in bytes.
    pub fn file_bytes(&self) -> usize {
        self.len() * self.config.entry_bytes()
    }

    /// Scans the whole index against a query, as the FS1 hardware does:
    /// every entry is examined (the match is a streaming comparison, not a
    /// tree descent), and the scan time is the secondary-file size over the
    /// FS1 scan rate.
    pub fn scan(&self, query: &Term) -> ScanOutcome {
        let descriptor = encode_query_descriptor(query, &self.config);
        self.scan_with_descriptor(&descriptor)
    }

    /// Scans against an already-compiled descriptor, using the configured
    /// parallelism.
    pub fn scan_with_descriptor(&self, descriptor: &QueryDescriptor) -> ScanOutcome {
        self.scan_with(descriptor, self.config.parallelism())
    }

    /// Scans with an explicit worker count (overriding the configured
    /// parallelism). The match list is identical at every level.
    pub fn scan_with(&self, descriptor: &QueryDescriptor, parallelism: usize) -> ScanOutcome {
        let started = Instant::now();
        let compiled = CompiledQuery::compile(descriptor, self.limbs_per_entry);
        let matches = self.packed_matches(&compiled, parallelism);
        let outcome = self.outcome(matches);
        let m = clare_trace::metrics();
        m.fs1_scans.inc();
        m.fs1_entries_scanned.add(outcome.entries_scanned as u64);
        m.fs1_candidates_out.add(outcome.matches.len() as u64);
        m.fs1_scan_wall_ns
            .record(started.elapsed().as_nanos() as u64);
        outcome
    }

    /// [`IndexFile::scan_with`] with a cooperative cancellation hook:
    /// `cancel` is polled once per shard claim (on every worker), and a
    /// `true` answer abandons the scan and returns `None`. A cancelled
    /// scan never yields a partial match list and records no scan
    /// metrics — to the registry it never happened. The hook is a plain
    /// closure so this crate stays free of any budget-layer dependency.
    pub fn scan_with_cancel(
        &self,
        descriptor: &QueryDescriptor,
        parallelism: usize,
        cancel: &(dyn Fn() -> bool + Sync),
    ) -> Option<ScanOutcome> {
        let started = Instant::now();
        let compiled = CompiledQuery::compile(descriptor, self.limbs_per_entry);
        let mut per_query = self.packed_matches_batch_cancel(
            std::slice::from_ref(&compiled),
            parallelism,
            Some(cancel),
        )?;
        let matches = per_query.pop().expect("one query in, one hit list out");
        let outcome = self.outcome(matches);
        let m = clare_trace::metrics();
        m.fs1_scans.inc();
        m.fs1_entries_scanned.add(outcome.entries_scanned as u64);
        m.fs1_candidates_out.add(outcome.matches.len() as u64);
        m.fs1_scan_wall_ns
            .record(started.elapsed().as_nanos() as u64);
        Some(outcome)
    }

    /// Reference scalar scan: reconstructs each signature and applies
    /// [`QueryDescriptor::matches`] per entry. Retained as the semantic
    /// baseline the packed and parallel paths are property-tested against
    /// (and as the benchmark's "seed scalar" contender).
    pub fn scan_reference(&self, descriptor: &QueryDescriptor) -> ScanOutcome {
        let matches = (0..self.len())
            .filter(|&i| descriptor.matches(&self.signature_at(i)))
            .map(|i| self.addrs[i])
            .collect();
        self.outcome(matches)
    }

    /// Scans several queries in one pass over the packed columns. Each
    /// outcome is exactly what [`IndexFile::scan_with_descriptor`] would
    /// return for that query — including the modelled `fs1_time`, which
    /// charges every query a full scan of the secondary file (the paper's
    /// hardware has a single comparator per head; what the batch amortizes
    /// is the *host's* memory traffic, not the modelled disk sweep).
    pub fn scan_batch(&self, descriptors: &[QueryDescriptor]) -> Vec<ScanOutcome> {
        self.scan_batch_with(descriptors, self.config.parallelism())
    }

    /// [`IndexFile::scan_batch`] with an explicit worker count.
    pub fn scan_batch_with(
        &self,
        descriptors: &[QueryDescriptor],
        parallelism: usize,
    ) -> Vec<ScanOutcome> {
        let started = Instant::now();
        let compiled: Vec<CompiledQuery> = descriptors
            .iter()
            .map(|d| CompiledQuery::compile(d, self.limbs_per_entry))
            .collect();
        let per_query = self.packed_matches_batch(&compiled, parallelism);
        let outcomes: Vec<ScanOutcome> = per_query.into_iter().map(|m| self.outcome(m)).collect();
        let m = clare_trace::metrics();
        m.fs1_batch_scans.inc();
        m.fs1_scans.add(outcomes.len() as u64);
        for o in &outcomes {
            m.fs1_entries_scanned.add(o.entries_scanned as u64);
            m.fs1_candidates_out.add(o.matches.len() as u64);
        }
        m.fs1_scan_wall_ns
            .record(started.elapsed().as_nanos() as u64);
        outcomes
    }

    /// [`IndexFile::scan_batch_with`] with the cooperative cancellation
    /// hook of [`IndexFile::scan_with_cancel`]: `cancel` is polled per
    /// shard claim, and `true` abandons the whole batch (`None`) with no
    /// partial outcomes and no metrics recorded.
    pub fn scan_batch_with_cancel(
        &self,
        descriptors: &[QueryDescriptor],
        parallelism: usize,
        cancel: &(dyn Fn() -> bool + Sync),
    ) -> Option<Vec<ScanOutcome>> {
        let started = Instant::now();
        let compiled: Vec<CompiledQuery> = descriptors
            .iter()
            .map(|d| CompiledQuery::compile(d, self.limbs_per_entry))
            .collect();
        let per_query = self.packed_matches_batch_cancel(&compiled, parallelism, Some(cancel))?;
        let outcomes: Vec<ScanOutcome> = per_query.into_iter().map(|m| self.outcome(m)).collect();
        let m = clare_trace::metrics();
        m.fs1_batch_scans.inc();
        m.fs1_scans.add(outcomes.len() as u64);
        for o in &outcomes {
            m.fs1_entries_scanned.add(o.entries_scanned as u64);
            m.fs1_candidates_out.add(o.matches.len() as u64);
        }
        m.fs1_scan_wall_ns
            .record(started.elapsed().as_nanos() as u64);
        Some(outcomes)
    }

    fn outcome(&self, matches: Vec<ClauseAddr>) -> ScanOutcome {
        let bytes_scanned = self.file_bytes();
        ScanOutcome {
            matches,
            entries_scanned: self.len(),
            bytes_scanned,
            fs1_time: self.config.scan_rate().transfer_time(bytes_scanned as u64),
        }
    }

    /// Match addresses of a single compiled query, sharded across workers.
    fn packed_matches(&self, query: &CompiledQuery, parallelism: usize) -> Vec<ClauseAddr> {
        let mut per_query = self.packed_matches_batch(std::slice::from_ref(query), parallelism);
        per_query.pop().expect("one query in, one hit list out")
    }

    /// The shared scan driver: one pass over the packed columns per shard,
    /// testing every query against every entry. Shards are claimed by
    /// `parallelism` workers; per-shard hit lists are stitched back in
    /// shard order so each query's matches stay in clause order.
    fn packed_matches_batch(
        &self,
        queries: &[CompiledQuery],
        parallelism: usize,
    ) -> Vec<Vec<ClauseAddr>> {
        self.packed_matches_batch_cancel(queries, parallelism, None)
            .expect("uncancellable scan completed")
    }

    /// The scan driver with an optional cancellation hook: `cancel` (if
    /// any) is polled at every shard claim; a `true` answer abandons the
    /// whole scan and yields `None`. Without a hook this is exactly the
    /// old driver.
    fn packed_matches_batch_cancel(
        &self,
        queries: &[CompiledQuery],
        parallelism: usize,
        cancel: Option<&(dyn Fn() -> bool + Sync)>,
    ) -> Option<Vec<Vec<ClauseAddr>>> {
        let len = self.len();
        let shard = self.config.shard_entries();
        let shard_count = len.div_ceil(shard).max(1);
        let workers = parallelism.clamp(1, shard_count);

        if workers == 1 {
            let Some(cancel) = cancel else {
                return Some(self.scan_shard(queries, 0, len));
            };
            // Walk shard-by-shard so cancellation latency stays one
            // shard even on the serial path.
            let mut per_query = vec![Vec::new(); queries.len()];
            let mut start = 0;
            loop {
                if cancel() {
                    return None;
                }
                if start >= len {
                    break;
                }
                let end = (start + shard).min(len);
                for (q, hits) in self.scan_shard(queries, start, end).into_iter().enumerate() {
                    per_query[q].extend(hits);
                }
                start = end;
            }
            return Some(per_query);
        }

        let next = AtomicUsize::new(0);
        let abandoned = std::sync::atomic::AtomicBool::new(false);
        let mut sharded: Vec<(usize, Vec<Vec<ClauseAddr>>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let abandoned = &abandoned;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            if let Some(cancel) = cancel {
                                if abandoned.load(Ordering::Relaxed) {
                                    break;
                                }
                                if cancel() {
                                    abandoned.store(true, Ordering::Relaxed);
                                    break;
                                }
                            }
                            let s = next.fetch_add(1, Ordering::Relaxed);
                            if s >= shard_count {
                                break;
                            }
                            let start = s * shard;
                            let end = (start + shard).min(len);
                            local.push((s, self.scan_shard(queries, start, end)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("scan worker panicked"))
                .collect()
        });
        if abandoned.load(Ordering::Relaxed) {
            return None;
        }
        sharded.sort_unstable_by_key(|(s, _)| *s);

        let mut per_query = vec![Vec::new(); queries.len()];
        for (_, shard_hits) in sharded {
            for (q, hits) in shard_hits.into_iter().enumerate() {
                per_query[q].extend(hits);
            }
        }
        Some(per_query)
    }

    /// Scans entries `[start, end)` for every query.
    ///
    /// The bit requirement of an entry depends only on its mask word, so
    /// the shard is walked as maximal runs of entries sharing a raw mask
    /// word (facts are all-ground, so a predicate typically has one long
    /// run per rule-head shape). Within a run every query's requirement is
    /// a constant vector, and the subset test over the run's contiguous
    /// limbs is handed to the [`clare_simd::fs1_subset_hits`] kernel — the
    /// AVX2/NEON path when the host has it, the identical scalar loop
    /// otherwise.
    fn scan_shard(
        &self,
        queries: &[CompiledQuery],
        start: usize,
        end: usize,
    ) -> Vec<Vec<ClauseAddr>> {
        let stride = self.limbs_per_entry;
        let level = clare_simd::level();
        let mut hits = vec![Vec::new(); queries.len()];
        let mut caches: Vec<RequirementCache> =
            queries.iter().map(|_| RequirementCache::new()).collect();
        let mut scratch: Vec<u32> = Vec::new();
        let mut run = start;
        while run < end {
            let word = self.mask_words[run];
            let mut run_end = run + 1;
            while run_end < end && self.mask_words[run_end] == word {
                run_end += 1;
            }
            let limbs = &self.limbs[run * stride..run_end * stride];
            for (q, query) in queries.iter().enumerate() {
                let required = caches[q].required(query, word);
                scratch.clear();
                clare_simd::fs1_subset_hits(level, required, limbs, &mut scratch);
                hits[q].extend(scratch.iter().map(|&rel| self.addrs[run + rel as usize]));
            }
            run = run_end;
        }
        hits
    }
}

/// A query compiled for the packed scan: for each constrained position,
/// the codeword bits required when the entry's mask is `Open` and when it
/// is `Ground` (`Var` requires nothing).
struct CompiledQuery {
    positions: Vec<PositionReq>,
    /// 0b11 in the 2-bit field of every constrained position: masking an
    /// entry's mask word with this canonicalizes it for the cache.
    relevance: u64,
    limbs_per_entry: usize,
}

struct PositionReq {
    /// Bit shift of this position's 2-bit mask field.
    shift: u32,
    /// Required limbs when the entry's mask is [`ArgMask::Open`].
    open: Vec<u64>,
    /// Required limbs when the entry's mask is [`ArgMask::Ground`].
    ground: Vec<u64>,
}

impl CompiledQuery {
    fn compile(descriptor: &QueryDescriptor, limbs_per_entry: usize) -> Self {
        let mut positions = Vec::new();
        let mut relevance = 0u64;
        for (i, arg) in descriptor.args.iter().enumerate() {
            if matches!(arg, QueryArg::Any) {
                continue;
            }
            let shift = 2 * i as u32;
            // The per-mask-state requirements come from the same
            // `required_codewords` rules the reference matcher applies;
            // per position the subset tests AND together, so the union of
            // the required bits is one test. A query encoded with a wider
            // config than the index contributes only the limbs the entries
            // actually store — the same zip-truncation semantics as
            // [`Codeword::subset_of`].
            let union_for = |mask: ArgMask| {
                let mut bits = vec![0u64; limbs_per_entry];
                for cw in arg.required_codewords(mask) {
                    for (b, l) in bits.iter_mut().zip(cw.limbs()) {
                        *b |= l;
                    }
                }
                bits
            };
            relevance |= 0b11 << shift;
            positions.push(PositionReq {
                shift,
                open: union_for(ArgMask::Open),
                ground: union_for(ArgMask::Ground),
            });
        }
        CompiledQuery {
            positions,
            relevance,
            limbs_per_entry,
        }
    }

    /// The union of required bits for an entry whose masked mask word is
    /// `key`.
    fn required_for(&self, key: u64) -> Vec<u64> {
        let mut required = vec![0u64; self.limbs_per_entry];
        for pos in &self.positions {
            let bits = match (key >> pos.shift) & 0b11 {
                0 => &pos.ground,
                1 => &pos.open,
                // Var (2, or the defensive 3): no requirement.
                _ => continue,
            };
            for (r, b) in required.iter_mut().zip(bits) {
                *r |= b;
            }
        }
        required
    }
}

/// Memoizes [`CompiledQuery::required_for`] per distinct masked mask
/// word. Predicates exhibit very few distinct mask words (facts are
/// all-ground; each rule-head shape adds one), so a small linear-probed
/// list beats a hash map.
struct RequirementCache {
    entries: Vec<(u64, Vec<u64>)>,
}

impl RequirementCache {
    fn new() -> Self {
        RequirementCache {
            entries: Vec::new(),
        }
    }

    fn required<'a>(&'a mut self, query: &CompiledQuery, mask_word: u64) -> &'a [u64] {
        let key = mask_word & query.relevance;
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            return &self.entries[i].1;
        }
        self.entries.push((key, query.required_for(key)));
        &self.entries.last().expect("just pushed").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_term::parser::parse_term;
    use clare_term::SymbolTable;

    fn build_index(clauses: &[&str], sy: &mut SymbolTable) -> IndexFile {
        build_index_with(clauses, sy, ScwConfig::paper())
    }

    fn build_index_with(clauses: &[&str], sy: &mut SymbolTable, config: ScwConfig) -> IndexFile {
        let mut index = IndexFile::with_capacity(config, clauses.len());
        for (i, src) in clauses.iter().enumerate() {
            let head = parse_term(src, sy).unwrap();
            index.insert(&head, ClauseAddr::new((i / 4) as u32, (i % 4) as u16));
        }
        index
    }

    #[test]
    fn scan_filters_and_preserves_order() {
        let mut sy = SymbolTable::new();
        let index = build_index(
            &["p(a, 1)", "p(b, 2)", "p(a, 3)", "p(X, 4)", "p(a, 5)"],
            &mut sy,
        );
        let outcome = index.scan(&parse_term("p(a, Y)", &mut sy).unwrap());
        // p(a,1), p(a,3), p(X,4) [mask], p(a,5) — in clause order.
        assert_eq!(
            outcome.matches,
            vec![
                ClauseAddr::new(0, 0),
                ClauseAddr::new(0, 2),
                ClauseAddr::new(0, 3),
                ClauseAddr::new(1, 0),
            ]
        );
        assert_eq!(outcome.entries_scanned, 5);
    }

    #[test]
    fn unconstrained_query_retrieves_everything() {
        let mut sy = SymbolTable::new();
        let index = build_index(&["m(a, b)", "m(c, d)", "m(e, e)"], &mut sy);
        let outcome = index.scan(&parse_term("m(S, S)", &mut sy).unwrap());
        assert_eq!(outcome.matches.len(), 3, "shared vars defeat FS1");
        assert_eq!(outcome.selectivity(), 1.0);
    }

    #[test]
    fn selective_query_has_low_selectivity() {
        let mut sy = SymbolTable::new();
        let clauses: Vec<String> = (0..100).map(|i| format!("q(k{i}, v{i})")).collect();
        let refs: Vec<&str> = clauses.iter().map(String::as_str).collect();
        let index = build_index(&refs, &mut sy);
        let outcome = index.scan(&parse_term("q(k42, X)", &mut sy).unwrap());
        assert!(!outcome.matches.is_empty(), "the true hit survives");
        assert!(
            outcome.selectivity() < 0.1,
            "selectivity {} too high",
            outcome.selectivity()
        );
        assert!(outcome
            .matches
            .contains(&ClauseAddr::new(42 / 4, (42 % 4) as u16)));
    }

    #[test]
    fn fs1_time_follows_file_size() {
        let mut sy = SymbolTable::new();
        let clauses: Vec<String> = (0..450).map(|i| format!("r(a{i})")).collect();
        let refs: Vec<&str> = clauses.iter().map(String::as_str).collect();
        let index = build_index(&refs, &mut sy);
        assert_eq!(index.file_bytes(), 450 * index.config().entry_bytes());
        let outcome = index.scan(&parse_term("r(a7)", &mut sy).unwrap());
        // 450 entries × 17 B = 7650 B at 4.5 MB/s = 1.7 ms.
        let expected_ns = (index.file_bytes() as f64 / 4.5e6 * 1e9).round() as u64;
        assert!(
            (outcome.fs1_time.as_ns() as i64 - expected_ns as i64).abs() < 1000,
            "fs1 time {} vs expected {expected_ns} ns",
            outcome.fs1_time
        );
    }

    #[test]
    fn empty_index() {
        let mut sy = SymbolTable::new();
        let index = IndexFile::new(ScwConfig::paper());
        let outcome = index.scan(&parse_term("p(a)", &mut sy).unwrap());
        assert!(outcome.matches.is_empty());
        assert_eq!(outcome.selectivity(), 0.0);
        assert_eq!(outcome.fs1_time, SimNanos::ZERO);
    }

    #[test]
    fn secondary_file_smaller_than_typical_clause_file() {
        // The scheme's whole point: entry size is a handful of bytes,
        // independent of clause size.
        let config = ScwConfig::paper();
        assert!(config.entry_bytes() <= 24);
    }

    #[test]
    fn packed_scan_agrees_with_reference() {
        let mut sy = SymbolTable::new();
        let clauses: Vec<String> = (0..200)
            .map(|i| match i % 4 {
                0 => format!("s(k{i}, v{})", i % 9),
                1 => format!("s(k{i}, X)"),
                2 => "s(Y, Z)".to_owned(),
                _ => format!("s(g(k{i}), [1, {i}])"),
            })
            .collect();
        let refs: Vec<&str> = clauses.iter().map(String::as_str).collect();
        let index = build_index(&refs, &mut sy);
        for q in ["s(k8, X)", "s(A, v3)", "s(g(k7), [1, 7])", "s(Q, R)"] {
            let query = parse_term(q, &mut sy).unwrap();
            let descriptor = encode_query_descriptor(&query, index.config());
            let reference = index.scan_reference(&descriptor);
            assert_eq!(index.scan(&query), reference, "query {q}");
            for workers in [1, 2, 3, 7] {
                assert_eq!(
                    index.scan_with(&descriptor, workers),
                    reference,
                    "query {q}, {workers} workers"
                );
            }
        }
    }

    #[test]
    fn parallel_scan_preserves_clause_order_across_shards() {
        let mut sy = SymbolTable::new();
        let clauses: Vec<String> = (0..97).map(|i| format!("t(a, n{i})")).collect();
        let refs: Vec<&str> = clauses.iter().map(String::as_str).collect();
        // Tiny shards so every worker owns many of them.
        let config = ScwConfig::paper().with_shard_entries(5).with_parallelism(4);
        let index = build_index_with(&refs, &mut sy, config);
        let outcome = index.scan(&parse_term("t(a, X)", &mut sy).unwrap());
        assert_eq!(outcome.matches.len(), 97);
        assert!(
            outcome.matches.windows(2).all(|w| w[0] < w[1]),
            "matches must stay in clause order"
        );
    }

    #[test]
    fn batch_scan_matches_individual_scans() {
        let mut sy = SymbolTable::new();
        let clauses: Vec<String> = (0..120).map(|i| format!("b(k{i}, v{})", i % 5)).collect();
        let refs: Vec<&str> = clauses.iter().map(String::as_str).collect();
        let index = build_index(&refs, &mut sy);
        let queries: Vec<Term> = ["b(k4, X)", "b(K, v2)", "b(W, Z)", "b(nope, nope)"]
            .iter()
            .map(|q| parse_term(q, &mut sy).unwrap())
            .collect();
        let descriptors: Vec<QueryDescriptor> = queries
            .iter()
            .map(|q| encode_query_descriptor(q, index.config()))
            .collect();
        let batch = index.scan_batch(&descriptors);
        assert_eq!(batch.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batch[i], index.scan(q), "batch outcome {i} diverged");
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let index = IndexFile::new(ScwConfig::paper());
        assert!(index.scan_batch(&[]).is_empty());
    }

    #[test]
    fn iter_entries_roundtrips_signatures() {
        let mut sy = SymbolTable::new();
        let sources = ["p(a, 1)", "p(X, g(b))", "p([1 | T], _)"];
        let index = build_index(&sources, &mut sy);
        let entries: Vec<IndexEntry> = index.iter_entries().collect();
        assert_eq!(entries.len(), 3);
        for (i, src) in sources.iter().enumerate() {
            let head = parse_term(src, &mut sy).unwrap();
            let expected = encode_clause_signature(&head, index.config());
            assert_eq!(entries[i].signature, expected, "entry {i} ({src})");
            assert_eq!(entries[i].addr, ClauseAddr::new(0, i as u16));
        }
    }

    #[test]
    fn wide_codewords_scan_correctly() {
        // Multi-limb codewords exercise the strided limb layout.
        let mut sy = SymbolTable::new();
        let clauses: Vec<String> = (0..60).map(|i| format!("w(c{i})")).collect();
        let refs: Vec<&str> = clauses.iter().map(String::as_str).collect();
        let config = ScwConfig::custom(192, 4, 12);
        let index = build_index_with(&refs, &mut sy, config);
        let query = parse_term("w(c31)", &mut sy).unwrap();
        let descriptor = encode_query_descriptor(&query, index.config());
        let outcome = index.scan(&query);
        assert_eq!(outcome, index.scan_reference(&descriptor));
        assert!(outcome.matches.contains(&ClauseAddr::new(31 / 4, 31 % 4)));
    }
}
