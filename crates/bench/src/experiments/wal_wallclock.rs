//! E18 — host wall-clock of the mutable-KB write path and compaction.
//!
//! Two questions the WAL subsystem must answer with numbers:
//!
//! 1. **Write path** — what does an assert cost through the memtable
//!    overlay (volatile), through the overlay with a WAL attached
//!    (durable: every commit fsyncs), and through the pre-WAL baseline
//!    of rebuilding the whole knowledge base and swapping it in? The
//!    overlay turns an `O(knowledge base)` rebuild into an `O(clause)`
//!    commit, so the gap should widen with the base size.
//! 2. **Compaction concurrency** — does folding the overlay into a new
//!    base ever block readers? The experiment keeps retrieving while
//!    background compactions run, reports idle vs during-compaction
//!    latency percentiles, and carries the
//!    `compaction.concurrent_retrievals` counter as the proof that the
//!    busy samples really overlapped a live compaction.
//!
//! Emits a machine-readable `BENCH_wal.json`.

use clare_core::{ClauseRetrievalServer, CompactionOutcome, CrsOptions, SearchMode, WalOp};
use clare_kb::{KbBuilder, KbConfig, KnowledgeBase};
use clare_term::parser::parse_term;
use clare_term::SymbolTable;
use std::fmt;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured commit batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct WalWriteRow {
    /// Clauses per commit.
    pub batch: usize,
    /// ns per asserted clause through the volatile overlay (no WAL).
    pub overlay_ns: f64,
    /// ns per asserted clause with a WAL attached (fsync per commit).
    pub durable_ns: f64,
    /// ns per asserted clause through the pre-WAL rebuild-and-swap path.
    pub rebuild_ns: f64,
}

impl WalWriteRow {
    /// Overlay-commit speedup over the rebuild baseline.
    pub fn speedup(&self) -> f64 {
        self.rebuild_ns / self.overlay_ns
    }
}

/// The compaction-concurrency measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct WalCompactionRow {
    /// Retrieval p50 with no compaction in flight, ns.
    pub idle_p50_ns: f64,
    /// Retrieval p99 with no compaction in flight, ns.
    pub idle_p99_ns: f64,
    /// Retrieval p50 while a background compaction runs, ns.
    pub busy_p50_ns: f64,
    /// Retrieval p99 while a background compaction runs, ns.
    pub busy_p99_ns: f64,
    /// Retrievals the trace registry saw overlap a live compaction.
    pub concurrent_retrievals: u64,
    /// Logged operations folded into new bases across all rounds.
    pub folded: usize,
    /// Background compaction rounds driven.
    pub rounds: usize,
}

/// The wall-clock report.
#[derive(Debug, Clone, PartialEq)]
pub struct WalWallclockReport {
    /// Facts in the base knowledge base.
    pub facts: usize,
    /// Commits per write-path measurement.
    pub commits: usize,
    /// One row per commit batch size, ascending.
    pub write_rows: Vec<WalWriteRow>,
    /// The compaction-concurrency measurement.
    pub compaction: WalCompactionRow,
}

impl WalWallclockReport {
    /// Renders the report as a small JSON document (hand-written — the
    /// workspace deliberately carries no serde dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"wal_wallclock\",\n");
        out.push_str("  \"unit\": \"ns_per_clause\",\n");
        out.push_str(&format!("  \"facts\": {},\n", self.facts));
        out.push_str(&format!("  \"commits\": {},\n", self.commits));
        out.push_str("  \"write_path\": [\n");
        for (i, row) in self.write_rows.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"batch\": {},\n", row.batch));
            out.push_str(&format!("      \"overlay_ns\": {:.0},\n", row.overlay_ns));
            out.push_str(&format!("      \"durable_ns\": {:.0},\n", row.durable_ns));
            out.push_str(&format!("      \"rebuild_ns\": {:.0},\n", row.rebuild_ns));
            out.push_str(&format!(
                "      \"overlay_speedup\": {:.1}\n",
                row.speedup()
            ));
            out.push_str(if i + 1 == self.write_rows.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ],\n");
        let c = &self.compaction;
        out.push_str("  \"compaction\": {\n");
        out.push_str(&format!("    \"idle_p50_ns\": {:.0},\n", c.idle_p50_ns));
        out.push_str(&format!("    \"idle_p99_ns\": {:.0},\n", c.idle_p99_ns));
        out.push_str(&format!("    \"busy_p50_ns\": {:.0},\n", c.busy_p50_ns));
        out.push_str(&format!("    \"busy_p99_ns\": {:.0},\n", c.busy_p99_ns));
        out.push_str(&format!(
            "    \"concurrent_retrievals\": {},\n",
            c.concurrent_retrievals
        ));
        out.push_str(&format!("    \"folded\": {},\n", c.folded));
        out.push_str(&format!("    \"rounds\": {}\n", c.rounds));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

const KEYS: usize = 500;

/// `n` facts `p(k{i % KEYS}, v{i % 97})` in the given symbol lineage.
fn build_kb(n: usize, extra: &[String], symbols: Option<&SymbolTable>) -> KnowledgeBase {
    let mut b = KbBuilder::new();
    if let Some(sy) = symbols {
        *b.symbols_mut() = sy.clone();
    }
    let mut facts: String = (0..n)
        .map(|i| format!("p(k{}, v{}).", i % KEYS, i % 97))
        .collect::<Vec<_>>()
        .join("\n");
    for clause in extra {
        facts.push('\n');
        facts.push_str(clause);
    }
    b.consult("bench", &facts).unwrap();
    b.finish(KbConfig::default())
}

/// The clause committed as write `i` of a pass.
fn grown_clause(i: usize) -> String {
    format!("grew(g{}, n{}).", i % 64, i % 7)
}

fn ops(start: usize, batch: usize) -> Vec<WalOp> {
    (start..start + batch)
        .map(|i| WalOp::Assert {
            module: "bench".into(),
            source: grown_clause(i),
        })
        .collect()
}

/// Best observed ns/clause committing `commits` batches of `batch`
/// asserts through the overlay path, with or without a WAL attached.
/// Every pass starts from a fresh server (and a fresh log file) so
/// overlay growth does not accumulate across passes.
fn best_commit_ns(
    facts: usize,
    symbols: &SymbolTable,
    commits: usize,
    batch: usize,
    durable: bool,
    budget: Duration,
) -> f64 {
    let mut best = f64::INFINITY;
    let deadline = Instant::now() + budget;
    let mut pass = 0u64;
    loop {
        let server =
            ClauseRetrievalServer::new(build_kb(facts, &[], Some(symbols)), CrsOptions::default());
        let path = std::env::temp_dir().join(format!(
            "clare-walbench-{}-{batch}-{durable}-{pass}.wal",
            std::process::id()
        ));
        pass += 1;
        if durable {
            let _ = std::fs::remove_file(&path);
            server.attach_wal(&path).unwrap();
        }
        let t = Instant::now();
        for c in 0..commits {
            black_box(server.apply_ops(ops(c * batch, batch)).unwrap());
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e9 / (commits * batch) as f64);
        if durable {
            drop(server);
            let _ = std::fs::remove_file(&path);
        }
        if Instant::now() >= deadline {
            return best;
        }
    }
}

/// Best observed ns/clause for the pre-WAL baseline: every batch
/// recompiles the whole knowledge base (base facts plus everything
/// committed so far) and swaps it in with `server.update`.
fn best_rebuild_ns(
    facts: usize,
    symbols: &SymbolTable,
    commits: usize,
    batch: usize,
    budget: Duration,
) -> f64 {
    let mut best = f64::INFINITY;
    let deadline = Instant::now() + budget;
    loop {
        let server =
            ClauseRetrievalServer::new(build_kb(facts, &[], Some(symbols)), CrsOptions::default());
        let mut grown: Vec<String> = Vec::with_capacity(commits * batch);
        let t = Instant::now();
        for c in 0..commits {
            for i in c * batch..(c + 1) * batch {
                grown.push(grown_clause(i));
            }
            server.update(build_kb(facts, &grown, Some(symbols)));
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e9 / (commits * batch) as f64);
        if Instant::now() >= deadline {
            return best;
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Retrieval latency with background compactions in flight: grows the
/// overlay, spawns a compaction, and hammers retrievals until it
/// finishes — repeatedly, until `samples` busy-side latencies exist.
fn measure_compaction(facts: usize, symbols: &SymbolTable, samples: usize) -> WalCompactionRow {
    let server = Arc::new(ClauseRetrievalServer::new(
        build_kb(facts, &[], Some(symbols)),
        CrsOptions::default(),
    ));
    let mut sy = symbols.clone();
    let query = parse_term("p(k3, X)", &mut sy).unwrap();
    let want = server.retrieve(&query, SearchMode::TwoStage).stats.unified;

    // Idle baseline: no compaction anywhere near the read path.
    let mut idle: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            black_box(server.retrieve(&query, SearchMode::TwoStage));
            t.elapsed().as_secs_f64() * 1e9
        })
        .collect();

    let m = clare_trace::metrics();
    let concurrent_before = m.compaction_concurrent_retrievals.get();
    let mut busy: Vec<f64> = Vec::with_capacity(samples);
    let mut folded = 0usize;
    let mut rounds = 0usize;
    let mut next = 0usize;
    while busy.len() < samples && rounds < 64 {
        // Grow the overlay so the rebuild has real work to do, then
        // retrieve flat-out until the background fold completes.
        server.apply_ops(ops(next, 400)).unwrap();
        next += 400;
        let handle = server.spawn_compaction();
        loop {
            let t = Instant::now();
            let got = server.retrieve(&query, SearchMode::TwoStage);
            busy.push(t.elapsed().as_secs_f64() * 1e9);
            assert_eq!(got.stats.unified, want, "compaction moved an answer");
            if handle.is_finished() {
                break;
            }
        }
        match handle.join().expect("compaction thread panicked") {
            CompactionOutcome::Swapped { folded: n } => folded += n,
            CompactionOutcome::Clean | CompactionOutcome::AlreadyRunning => {}
            other => panic!("background compaction failed: {other:?}"),
        }
        rounds += 1;
    }
    let concurrent = m.compaction_concurrent_retrievals.get() - concurrent_before;

    idle.sort_by(f64::total_cmp);
    busy.sort_by(f64::total_cmp);
    WalCompactionRow {
        idle_p50_ns: percentile(&idle, 0.50),
        idle_p99_ns: percentile(&idle, 0.99),
        busy_p50_ns: percentile(&busy, 0.50),
        busy_p99_ns: percentile(&busy, 0.99),
        concurrent_retrievals: concurrent,
        folded,
        rounds,
    }
}

/// Runs the experiment. The checked-in `BENCH_wal.json` uses 20 000
/// facts, 32 commits per measurement, batches of 1/8/64, and a 1 s
/// budget per measurement.
pub fn run(
    facts: usize,
    commits: usize,
    batches: &[usize],
    samples: usize,
    budget: Duration,
) -> WalWallclockReport {
    let symbols = build_kb(64, &[grown_clause(0)], None).symbols().clone();
    let write_rows = batches
        .iter()
        .map(|&batch| WalWriteRow {
            batch,
            overlay_ns: best_commit_ns(facts, &symbols, commits, batch, false, budget),
            durable_ns: best_commit_ns(facts, &symbols, commits, batch, true, budget),
            rebuild_ns: best_rebuild_ns(facts, &symbols, commits, batch, budget),
        })
        .collect();
    WalWallclockReport {
        facts,
        commits,
        write_rows,
        compaction: measure_compaction(facts, &symbols, samples),
    }
}

impl fmt::Display for WalWallclockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E18: mutable-KB wall-clock — overlay/WAL commit vs rebuild-and-swap, \
             and retrieval latency under background compaction ({} facts, {} \
             commits per measurement)\n",
            self.facts, self.commits
        )?;
        let rows: Vec<Vec<String>> = self
            .write_rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}", r.batch),
                    format!("{:.0}", r.overlay_ns),
                    format!("{:.0}", r.durable_ns),
                    format!("{:.0}", r.rebuild_ns),
                    format!("{:.1}x", r.speedup()),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            crate::render_table(
                &[
                    "batch",
                    "overlay ns/clause",
                    "durable ns/clause",
                    "rebuild ns/clause",
                    "overlay speedup",
                ],
                &rows,
            )
        )?;
        let c = &self.compaction;
        writeln!(
            f,
            "retrieval latency: idle p50 {:.0} ns / p99 {:.0} ns, during compaction \
             p50 {:.0} ns / p99 {:.0} ns",
            c.idle_p50_ns, c.idle_p99_ns, c.busy_p50_ns, c.busy_p99_ns
        )?;
        writeln!(
            f,
            "compaction: {} rounds folded {} ops; {} retrievals overlapped a live \
             compaction (compaction.concurrent_retrievals)",
            c.rounds, c.folded, c.concurrent_retrievals
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_and_json() {
        let r = run(1_000, 8, &[1, 8], 200, Duration::from_millis(40));
        assert_eq!(r.write_rows.len(), 2);
        for row in &r.write_rows {
            assert!(row.overlay_ns > 0.0);
            assert!(row.durable_ns > 0.0);
            assert!(row.rebuild_ns > 0.0);
        }
        assert!(r.compaction.rounds > 0);
        assert!(r.compaction.folded > 0, "no compaction ever swapped");
        assert!(
            r.compaction.concurrent_retrievals > 0,
            "no retrieval ever overlapped a compaction — the overlap proof is gone"
        );
        let json = r.to_json();
        assert!(json.contains("\"experiment\": \"wal_wallclock\""));
        assert!(json.contains("\"overlay_speedup\""));
        assert!(json.contains("\"concurrent_retrievals\""));
        assert!(format!("{r}").contains("overlay ns/clause"));
    }

    #[test]
    fn overlay_commit_beats_rebuild() {
        // Perf assertions are deliberately loose for noisy CI hosts: the
        // O(clause) overlay commit must at minimum not lose to an
        // O(knowledge base) recompile at a real base size.
        let r = run(4_000, 8, &[8], 100, Duration::from_millis(150));
        assert!(
            r.write_rows[0].speedup() > 1.0,
            "overlay commit slower than full rebuild: {:.2}x",
            r.write_rows[0].speedup()
        );
    }
}
