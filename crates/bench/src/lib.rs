//! Experiment harness for the CLARE reproduction.
//!
//! Every table and figure of the paper's evaluation maps to one module
//! under [`experiments`]; the `clare-tables` binary prints them all (or
//! one by name). Each experiment returns a structured report type whose
//! `Display` impl renders the table, so the same code is unit-tested for
//! the paper's qualitative claims and printed for EXPERIMENTS.md.
//!
//! | id | paper artefact | module |
//! |----|----------------|--------|
//! | E1 | Table 1 (FS2 op times) | [`experiments::table1`] |
//! | E2 | Figures 6–12 (route timings) | [`experiments::figures`] |
//! | E3 | Table A1 (PIF type scheme) | [`experiments::table_a1`] |
//! | E4 | Figure 1 (matching algorithm validation) | [`experiments::fig1`] |
//! | E5 | §4 FS2 worst-case rate vs disks | [`experiments::throughput`] |
//! | E6 | §4 FS1 scan rate / index vs exhaustive | [`experiments::fs1`] |
//! | E7 | §2.1 false-drop sources | [`experiments::false_drops`] |
//! | E8 | §2.2 search modes (a)–(d) | [`experiments::modes`] |
//! | E9 | §2.2 matching levels 1–5 | [`experiments::levels`] |
//! | E10 | §1 Warren-scale scalability | [`experiments::warren_scale`] |
//! | E11 | §3.2 Result Memory sizing | [`experiments::result_memory`] |
//! | E12 | database benchmark suite | [`experiments::bench_suite`] |
//! | E13 | unlimited-list matching | [`experiments::lists`] |
//! | E14 | FS1 host scan wall-clock (BENCH_fs1.json) | [`experiments::fs1_wallclock`] |
//! | E15 | FS2 two-stage host wall-clock (BENCH_fs2.json) | [`experiments::fs2_wallclock`] |
//! | E16 | retrieval cache wall-clock (BENCH_cache.json) | [`experiments::cache_wallclock`] |

#![warn(missing_docs)]

pub mod experiments;

/// Renders a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_owned()
    };
    let mut out = String::new();
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_renders_aligned() {
        let t = super::render_table(
            &["op", "ns"],
            &[
                vec!["MATCH".into(), "105".into()],
                vec!["QUERY_CROSS_BOUND_FETCH".into(), "235".into()],
            ],
        );
        assert!(t.contains("MATCH"));
        assert_eq!(t.lines().count(), 4);
    }
}
