//! `clare-served`: the Clause Retrieval Server daemon.
//!
//! Loads a knowledge base (a Prolog source file, a generated Warren-style
//! workload, or a small built-in demo), binds a TCP listener, and serves
//! the PIF-over-TCP protocol until stdin closes (or forever with
//! `--no-stdin`).
//!
//! ```text
//! clare-served [OPTIONS] [program.pl]
//!
//!   --addr HOST:PORT   listen address        (default 127.0.0.1:7879)
//!   --server-mode MODE connection intake: "reactor" (epoll event loop,
//!                      the default) or "threaded" (one reader thread
//!                      per connection)
//!   --shards N         reactor shard threads (default 1)
//!   --workers N        worker threads        (default 4)
//!   --max-conns N      connection limit      (default 64)
//!   --queue-depth N    request queue bound   (default 256)
//!   --module NAME      module to consult into (default "user")
//!   --wal PATH         attach a write-ahead log: replay it on startup,
//!                      then make every networked assert/retract durable
//!                      (fsynced before the commit receipt goes out)
//!   --warren SCALE     generate a Warren-style KB at this scale
//!                      instead of reading a program file
//!   --no-coalesce      disable pipelined-retrieve batching
//!   --no-stdin         serve forever instead of exiting on stdin EOF
//! ```
//!
//! The daemon prints `listening on ADDR` (with the actual port when 0 was
//! requested) once ready — harnesses spawn it, parse that line, connect,
//! and close its stdin for a graceful drain-and-exit.

use clare_core::{ClauseRetrievalServer, CrsOptions};
use clare_kb::{KbBuilder, KbConfig};
use clare_net::{NetConfig, NetServer, ServerMode, PROTOCOL_VERSION};
use clare_workload::WarrenSpec;
use std::io::BufRead;
use std::sync::Arc;

struct Args {
    addr: String,
    server_mode: ServerMode,
    shards: usize,
    workers: usize,
    max_conns: usize,
    queue_depth: usize,
    module: String,
    wal: Option<String>,
    warren: Option<f64>,
    program: Option<String>,
    coalesce: bool,
    wait_stdin: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7879".to_owned(),
        server_mode: ServerMode::Reactor,
        shards: 1,
        workers: 4,
        max_conns: 64,
        queue_depth: 256,
        module: "user".to_owned(),
        wal: None,
        warren: None,
        program: None,
        coalesce: true,
        wait_stdin: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--server-mode" => {
                args.server_mode = match value("--server-mode")?.as_str() {
                    "reactor" => ServerMode::Reactor,
                    "threaded" => ServerMode::Threaded,
                    other => {
                        return Err(format!(
                            "bad --server-mode {other:?} (expected reactor|threaded)"
                        ))
                    }
                }
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("bad --shards: {e}"))?
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?
            }
            "--max-conns" => {
                args.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("bad --max-conns: {e}"))?
            }
            "--queue-depth" => {
                args.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("bad --queue-depth: {e}"))?
            }
            "--module" => args.module = value("--module")?,
            "--wal" => args.wal = Some(value("--wal")?),
            "--warren" => {
                args.warren = Some(
                    value("--warren")?
                        .parse()
                        .map_err(|e| format!("bad --warren: {e}"))?,
                )
            }
            "--no-coalesce" => args.coalesce = false,
            "--no-stdin" => args.wait_stdin = false,
            "--help" | "-h" => {
                return Err("usage: clare-served [OPTIONS] [program.pl] \
                            (see crate docs for options)"
                    .to_owned())
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => args.program = Some(other.to_owned()),
        }
    }
    if args.warren.is_some() && args.program.is_some() {
        return Err("--warren and a program file are mutually exclusive".to_owned());
    }
    Ok(args)
}

fn build_kb(args: &Args) -> Result<clare_kb::KnowledgeBase, String> {
    let mut builder = KbBuilder::new();
    if let Some(scale) = args.warren {
        let spec = WarrenSpec::scaled(scale);
        eprintln!(
            "clare-served: generating Warren-style KB at scale {scale} \
             ({} predicates, {} rules, {} facts)",
            spec.predicates, spec.rules, spec.facts
        );
        spec.generate(&mut builder, &args.module);
    } else if let Some(path) = &args.program {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        builder
            .consult(&args.module, &source)
            .map_err(|e| format!("cannot consult {path}: {e}"))?;
    } else {
        builder
            .consult(
                &args.module,
                "parent(tom, bob). parent(tom, liz).
                 parent(bob, ann). parent(bob, pat).
                 grandparent(X, Z) :- parent(X, Y), parent(Y, Z).",
            )
            .expect("built-in demo program parses");
        eprintln!("clare-served: no program given, serving the built-in family demo");
    }
    Ok(builder.finish(KbConfig::default()))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("clare-served: {msg}");
            std::process::exit(2);
        }
    };

    let kb = match build_kb(&args) {
        Ok(kb) => kb,
        Err(msg) => {
            eprintln!("clare-served: {msg}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "clare-served: knowledge base ready ({} atoms in the symbol table)",
        kb.symbols().atom_count()
    );

    let crs = Arc::new(ClauseRetrievalServer::new(kb, CrsOptions::default()));
    if let Some(path) = &args.wal {
        match crs.attach_wal(path) {
            Ok(report) => eprintln!(
                "clare-served: WAL {path} attached ({} records replayed, \
                 {} torn tail bytes truncated, next seq {})",
                report.records, report.truncated_tail_bytes, report.next_seq
            ),
            Err(e) => {
                eprintln!("clare-served: cannot attach WAL {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let cfg = NetConfig {
        server_mode: args.server_mode,
        reactor_shards: args.shards,
        workers: args.workers,
        max_connections: args.max_conns,
        queue_depth: args.queue_depth,
        coalesce: args.coalesce,
        ..NetConfig::default()
    };
    let server = match NetServer::bind(crs, &args.addr, cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("clare-served: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };

    // The harness contract: this exact line (on stdout) signals readiness
    // and carries the resolved port.
    println!("listening on {}", server.local_addr());
    eprintln!(
        "clare-served: protocol v{PROTOCOL_VERSION}, {} intake, {} workers, {} connections max",
        match args.server_mode {
            ServerMode::Reactor => "reactor",
            ServerMode::Threaded => "threaded",
        },
        args.workers,
        args.max_conns
    );

    if args.wait_stdin {
        // Serve until stdin closes, then drain and exit — the natural
        // lifecycle under a spawning test harness or a shell pipe.
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            if line.is_err() {
                break;
            }
        }
        eprintln!("clare-served: stdin closed, draining…");
        let stats = server.crs().stats();
        server.shutdown();
        eprintln!(
            "clare-served: served {} retrievals ({} batches), {} solves, \
             {} updates, {} rejected",
            stats.retrievals, stats.batches, stats.solves, stats.updates, stats.rejected
        );
    } else {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
}
