//! Pseudo In-line Format (PIF) — the CLARE hardware's view of a clause.
//!
//! "Facts and rule heads are compiled into pseudo in-line formats (PIF)
//! ready for partial test unification. In the PIF format, an argument is
//! represented by an 8 bit type tag followed by a 24 or 32 bit content field
//! with an optional 32 bit extension." (§2.2 of the paper.)
//!
//! This crate implements:
//!
//! * [`tags`] — the Table A1 type-tag scheme, bit-for-bit (`0x20` anonymous
//!   variable, `0x27`/`0x25`/`0x26`/`0x24` query/database variables,
//!   `0x08`/`0x09` atom/float pointers, `0x1N` in-line integers, and the
//!   `011a aaaa`-family complex-term tags with 5-bit arity fields).
//! * [`word`] — 32-bit PIF words (tag + 24-bit content) with optional
//!   32-bit extensions, and their raw byte encoding.
//! * [`encode`] — compilation of query terms and clause heads into argument
//!   streams: first-level in-line, deeper structure as pointer words, and
//!   variable occurrences classified as *first* or *subsequent* (the origin
//!   of the paper's `1st-QV`/`Sub-QV`/`1st-DV`/`Sub-DV` distinction).
//! * [`record`] — the on-disk clause record: the PIF head stream the FS2
//!   filter examines, followed by a lossless serialization of the complete
//!   clause (the "compiled clause" that full unification uses after a hit).
//! * [`termio`] — the bounded byte codec for whole terms shared by clause
//!   records and the `clare-net` wire protocol; its decoder treats input as
//!   untrusted (offset caps, depth limit, no panics).
//!
//! # Examples
//!
//! ```
//! use clare_term::{SymbolTable, parser::parse_term};
//! use clare_pif::encode::{encode_query, Side};
//!
//! let mut sy = SymbolTable::new();
//! let q = parse_term("married_couple(S, S)", &mut sy)?;
//! let stream = encode_query(&q)?;
//! // Two argument words: a first and a subsequent query variable.
//! assert_eq!(stream.words().len(), 2);
//! assert_eq!(stream.words()[0].tag(), 0x27); // 1st-QV
//! assert_eq!(stream.words()[1].tag(), 0x25); // Sub-QV
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod encode;
pub mod error;
pub mod record;
pub mod tags;
pub mod termio;
pub mod word;

pub use encode::{encode_clause_head, encode_query, Side};
pub use error::PifError;
pub use record::ClauseRecord;
pub use tags::{TagCategory, TypeTag};
pub use termio::{decode_term, encode_term, TermLimits};
pub use word::{PifStream, PifWord};
