//! E7 — §2.1: the three false-drop sources of the SCW+MB index, and how
//! much FS2 recovers.
//!
//! 1. **Non-unique encoding** — hash collisions in the superimposed
//!    codeword; swept over codeword widths.
//! 2. **Restrictive codeword representation** — only 12 arguments are
//!    encoded; mismatches beyond are invisible to FS1.
//! 3. **Shared variables** — variables are ignored in the encoding, so
//!    `married_couple(Same, Same)` retrieves the entire predicate.

use clare_core::{retrieve, CrsOptions, SearchMode};
use clare_kb::{KbBuilder, KbConfig};
use clare_scw::{encode_clause_signature, encode_query_descriptor, ScwConfig};
use clare_term::parser::parse_term;
use clare_workload::FamilySpec;
use std::fmt;

/// False-drop rates per codeword width (source 1).
#[derive(Debug, Clone, PartialEq)]
pub struct WidthRow {
    /// Codeword width in bits.
    pub width: u16,
    /// Index entry size in bytes.
    pub entry_bytes: usize,
    /// False-drop fraction over the probe set.
    pub false_drop_rate: f64,
}

/// False-drop rates per bits-set-per-key (source 1, second knob).
#[derive(Debug, Clone, PartialEq)]
pub struct DensityRow {
    /// Bits each key sets in the codeword.
    pub bits_per_key: u8,
    /// Mean set-bit density of the clause codewords.
    pub density: f64,
    /// False-drop fraction over the probe set.
    pub false_drop_rate: f64,
}

/// The complete E7 report.
#[derive(Debug, Clone, PartialEq)]
pub struct FalseDropReport {
    /// Source 1: width sweep.
    pub widths: Vec<WidthRow>,
    /// Source 1: bits-per-key sweep at fixed width.
    pub densities: Vec<DensityRow>,
    /// Source 2: candidates for a 13-argument mismatch (FS1 vs FS2).
    pub truncation_fs1: usize,
    /// FS2's candidate count on the same workload (sees all arguments).
    pub truncation_fs2: usize,
    /// Facts in the truncation workload.
    pub truncation_total: usize,
    /// Source 3: shared variables — FS1 candidates.
    pub shared_fs1: usize,
    /// Source 3: FS2 candidates after cross-binding checks.
    pub shared_fs2: usize,
    /// Source 3: clauses that actually unify.
    pub shared_true: usize,
    /// Predicate size for the shared-variable probe.
    pub shared_total: usize,
}

impl FalseDropReport {
    /// FS2's reduction factor over FS1 on the shared-variable query.
    pub fn shared_reduction(&self) -> f64 {
        self.shared_fs1 as f64 / (self.shared_fs2.max(1)) as f64
    }
}

/// Runs all three probes.
pub fn run() -> FalseDropReport {
    FalseDropReport {
        widths: width_sweep(),
        densities: density_sweep(),
        ..truncation_and_shared()
    }
}

/// Source 1, second knob: bits-per-key at a fixed narrow width (32 bits,
/// chosen so the sweep's optimum is visible). With 4-argument facts the
/// codeword density grows with k, so the false-drop rate is U-shaped: too
/// few bits collide per key, too many saturate the word.
fn density_sweep() -> Vec<DensityRow> {
    let mut rows = Vec::new();
    for bits_per_key in [1u8, 2, 4, 8, 14] {
        let config = ScwConfig::custom(32, bits_per_key, 12);
        let mut symbols = clare_term::SymbolTable::new();
        let signatures: Vec<_> = (0..1500)
            .map(|i| {
                let head = parse_term(
                    &format!("p(k{i}, v{}, w{}, x{})", i % 97, i % 31, i % 11),
                    &mut symbols,
                )
                .unwrap();
                encode_clause_signature(&head, &config)
            })
            .collect();
        let density = signatures
            .iter()
            .map(|s| s.codeword.count_ones() as f64 / 32.0)
            .sum::<f64>()
            / signatures.len() as f64;
        let mut drops = 0usize;
        let mut probes = 0usize;
        for j in 0..200 {
            let q = parse_term(
                &format!("p(miss{j}, v{}, w{}, x{})", j % 97, j % 31, j % 11),
                &mut symbols,
            )
            .unwrap();
            let d = encode_query_descriptor(&q, &config);
            for s in &signatures {
                probes += 1;
                // Count only true false drops: the probe key never matches.
                if d.matches(s) {
                    drops += 1;
                }
            }
        }
        rows.push(DensityRow {
            bits_per_key,
            density,
            false_drop_rate: drops as f64 / probes as f64,
        });
    }
    rows
}

/// Source 1: non-unique encoding vs codeword width.
fn width_sweep() -> Vec<WidthRow> {
    let mut rows = Vec::new();
    for width in [16u16, 32, 64, 128] {
        let config = ScwConfig::custom(width, 3, 12);
        let mut symbols = clare_term::SymbolTable::new();
        // 2000 single-argument facts; probe with 400 atoms that are *not*
        // stored. Any index acceptance is a pure encoding collision.
        let signatures: Vec<_> = (0..2000)
            .map(|i| {
                let head = parse_term(&format!("p(k{i})"), &mut symbols).unwrap();
                encode_clause_signature(&head, &config)
            })
            .collect();
        let mut drops = 0usize;
        let mut probes = 0usize;
        for j in 0..400 {
            let q = parse_term(&format!("p(miss{j})"), &mut symbols).unwrap();
            let d = encode_query_descriptor(&q, &config);
            for s in &signatures {
                probes += 1;
                if d.matches(s) {
                    drops += 1;
                }
            }
        }
        rows.push(WidthRow {
            width,
            entry_bytes: config.entry_bytes(),
            false_drop_rate: drops as f64 / probes as f64,
        });
    }
    rows
}

/// Sources 2 and 3.
fn truncation_and_shared() -> FalseDropReport {
    let opts = CrsOptions::default();

    // Source 2: facts identical in the first 12 arguments, differing only
    // in the 13th. FS1 (12-arg encoding) cannot separate them; FS2 can.
    let mut b = KbBuilder::new();
    let common: Vec<String> = (0..12).map(|i| format!("c{i}")).collect();
    let truncation_total = 64usize;
    let mut source = String::new();
    for i in 0..truncation_total {
        source.push_str(&format!("wide({}, tail{i}).\n", common.join(", ")));
    }
    b.consult("m", &source).unwrap();
    let q = parse_term(
        &format!("wide({}, tail7)", common.join(", ")),
        b.symbols_mut(),
    )
    .unwrap();
    let kb = b.finish(KbConfig::default());
    let fs1 = retrieve(&kb, &q, SearchMode::Fs1Only, &opts);
    let fs2 = retrieve(&kb, &q, SearchMode::Fs2Only, &opts);
    let truncation_fs1 = fs1.stats.candidates;
    let truncation_fs2 = fs2.stats.candidates;

    // Source 3: the married_couple example on the family workload.
    let spec = FamilySpec {
        couples: 500,
        children_per_couple: 1,
        reflexive_fraction: 0.02,
        seed: 0xE7,
    };
    let mut b = KbBuilder::new();
    let summary = spec.generate(&mut b, "family");
    let q = parse_term("married_couple(S, S)", b.symbols_mut()).unwrap();
    let kb = b.finish(KbConfig::default());
    let fs1 = retrieve(&kb, &q, SearchMode::Fs1Only, &opts);
    let fs2 = retrieve(&kb, &q, SearchMode::Fs2Only, &opts);

    FalseDropReport {
        widths: Vec::new(),
        densities: Vec::new(),
        truncation_fs1,
        truncation_fs2,
        truncation_total,
        shared_fs1: fs1.stats.candidates,
        shared_fs2: fs2.stats.candidates,
        shared_true: fs1.stats.unified,
        shared_total: summary.couple_heads.len(),
    }
}

impl fmt::Display for FalseDropReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E7 / §2.1: false-drop sources of the SCW+MB index\n")?;
        writeln!(f, "source 1 — non-unique encoding (codeword width sweep):")?;
        let rows: Vec<Vec<String>> = self
            .widths
            .iter()
            .map(|w| {
                vec![
                    format!("{} bits", w.width),
                    format!("{} B", w.entry_bytes),
                    format!("{:.4}%", w.false_drop_rate * 100.0),
                ]
            })
            .collect();
        f.write_str(&crate::render_table(
            &["codeword", "entry size", "false drops"],
            &rows,
        ))?;
        writeln!(
            f,
            "\nsource 1 — bits per key at a fixed 32-bit codeword (4-argument facts):"
        )?;
        let rows: Vec<Vec<String>> = self
            .densities
            .iter()
            .map(|d| {
                vec![
                    d.bits_per_key.to_string(),
                    format!("{:.0}%", d.density * 100.0),
                    format!("{:.4}%", d.false_drop_rate * 100.0),
                ]
            })
            .collect();
        f.write_str(&crate::render_table(
            &["bits/key", "word density", "false drops"],
            &rows,
        ))?;
        writeln!(
            f,
            "\nsource 2 — 12-argument truncation ({} facts differing at arg 13):",
            self.truncation_total
        )?;
        writeln!(
            f,
            "  FS1 candidates: {} (cannot see arg 13)   FS2 candidates: {}",
            self.truncation_fs1, self.truncation_fs2
        )?;
        writeln!(
            f,
            "\nsource 3 — shared variables, query married_couple(Same, Same) over {} couples:",
            self.shared_total
        )?;
        writeln!(
            f,
            "  FS1 candidates: {} (entire predicate)   FS2 candidates: {}   true answers: {}",
            self.shared_fs1, self.shared_fs2, self.shared_true
        )?;
        writeln!(
            f,
            "  FS2 reduction over FS1: {:.0}x",
            self.shared_reduction()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_codewords_reduce_collisions() {
        let rows = width_sweep();
        assert_eq!(rows.len(), 4);
        // Monotone non-increasing false-drop rate with width.
        for w in rows.windows(2) {
            assert!(
                w[0].false_drop_rate >= w[1].false_drop_rate,
                "width {} -> {}: rate increased",
                w[0].width,
                w[1].width
            );
        }
        assert!(rows[0].false_drop_rate > rows[3].false_drop_rate);
        assert!(
            rows[3].false_drop_rate < 0.001,
            "64/128-bit codewords are clean"
        );
    }

    #[test]
    fn density_sweep_shows_saturation() {
        let rows = density_sweep();
        // Density grows monotonically with bits per key…
        for w in rows.windows(2) {
            assert!(w[1].density >= w[0].density);
        }
        // …and saturating the word (k = 14 on 32 bits with 4 keys) is
        // strictly worse than a moderate setting.
        let k2 = rows.iter().find(|r| r.bits_per_key == 2).unwrap();
        let k14 = rows.iter().find(|r| r.bits_per_key == 14).unwrap();
        assert!(
            k14.false_drop_rate > k2.false_drop_rate,
            "saturated word: {} vs {}",
            k14.false_drop_rate,
            k2.false_drop_rate
        );
        assert!(k14.density > 0.8, "k=14 saturates: {}", k14.density);
    }

    #[test]
    fn truncation_blinds_fs1_not_fs2() {
        let r = truncation_and_shared();
        assert_eq!(
            r.truncation_fs1, r.truncation_total,
            "FS1 retrieves every wide fact"
        );
        assert_eq!(r.truncation_fs2, 1, "FS2 sees the 13th argument");
    }

    #[test]
    fn shared_variables_blind_fs1_and_fs2_recovers() {
        let r = truncation_and_shared();
        assert_eq!(
            r.shared_fs1, r.shared_total,
            "the paper's claim: whole predicate"
        );
        assert_eq!(
            r.shared_fs2, r.shared_true,
            "cross-binding checks are exact here"
        );
        assert!(r.shared_reduction() > 10.0);
    }
}
