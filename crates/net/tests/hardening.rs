//! Network hardening tests: half-open connection reaping, client
//! reconnect-and-replay after a mid-stream hangup, end-to-end frame
//! checksum protection under injected corruption, and shutdown draining
//! queued replies. The reaping, replay, and drain scenarios run against
//! *both* intake cores — the epoll reactor and the threaded baseline —
//! since they exercise intake-owned machinery (idle deadline scanning,
//! hangup detection, outbound flush on shutdown).

use clare_core::{ClauseRetrievalServer, CrsOptions, SearchMode};
use clare_fault::{DeterministicInjector, FaultPlan, FaultSite};
use clare_kb::{KbBuilder, KbConfig, KnowledgeBase};
use clare_net::{ClientConfig, NetClient, NetConfig, NetServer, ServerMode};
use clare_term::parser::parse_term;
use clare_term::Term;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn item_kb() -> KnowledgeBase {
    let mut b = KbBuilder::new();
    let facts: String = (0..60)
        .map(|i| format!("item(k{}, v{}).", i % 12, i % 5))
        .collect::<Vec<_>>()
        .join("\n");
    b.consult("m", &facts).unwrap();
    b.finish(KbConfig::default())
}

fn serve(cfg: NetConfig) -> (NetServer, Arc<ClauseRetrievalServer>) {
    let crs = Arc::new(ClauseRetrievalServer::new(item_kb(), CrsOptions::default()));
    let server = NetServer::bind(Arc::clone(&crs), "127.0.0.1:0", cfg).unwrap();
    (server, crs)
}

/// A half-open client — connected, admitted, then silent forever — is
/// reaped after the idle timeout: the server closes the socket, counts
/// the reap, and releases the connection slot for new clients.
#[test]
fn idle_connections_are_reaped_and_slots_released() {
    idle_reap_scenario(ServerMode::Reactor);
}

/// Same reap scenario against the threaded baseline (its reap lives in
/// the per-connection reader's poll loop, not the reactor's deadline
/// scan).
#[test]
fn idle_connections_are_reaped_threaded() {
    idle_reap_scenario(ServerMode::Threaded);
}

fn idle_reap_scenario(server_mode: ServerMode) {
    let cfg = NetConfig {
        server_mode,
        workers: 1,
        max_connections: 1,
        idle_timeout: Some(Duration::from_millis(200)),
        ..NetConfig::default()
    };
    let (server, _crs) = serve(cfg);
    let reaps_before = clare_trace::metrics().net_idle_reaps.get();

    // No reconnects: this client must *observe* the hangup, not paper
    // over it.
    let half_open_cfg = ClientConfig {
        reconnect_retries: 0,
        read_timeout: Duration::from_secs(2),
        ..ClientConfig::default()
    };
    let mut half_open = NetClient::connect(server.local_addr(), half_open_cfg).unwrap();
    half_open.ping().unwrap(); // fully admitted, then goes silent

    // The lone slot is taken, so a second client is refused…
    assert!(
        NetClient::connect(server.local_addr(), ClientConfig::default()).is_err(),
        "connection slot should be exhausted"
    );

    // …until the reaper notices the silence. Poll rather than sleep a
    // fixed time: reap = idle timeout + one poll tick, both small here.
    let mut admitted = None;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(50));
        if let Ok(c) = NetClient::connect(server.local_addr(), ClientConfig::default()) {
            admitted = Some(c);
            break;
        }
    }
    let mut client = admitted.expect("idle connection was never reaped");
    client.ping().unwrap();
    assert!(
        clare_trace::metrics().net_idle_reaps.get() > reaps_before,
        "the reap must be counted"
    );

    // The reaped client's next request fails: its socket is gone.
    assert!(half_open.ping().is_err());
    server.shutdown();
}

/// A byte-forwarding proxy that hangs up on its first connection right
/// after the first post-handshake request, then forwards transparently.
/// This simulates a mid-stream peer death *after* a request went out —
/// the case where the client is already committed to awaiting a reply.
fn hangup_once_proxy(upstream: SocketAddr) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let conn_count = Arc::new(AtomicUsize::new(0));
    std::thread::spawn(move || {
        for down in listener.incoming() {
            let Ok(mut down) = down else { break };
            let n = conn_count.fetch_add(1, Ordering::SeqCst);
            std::thread::spawn(move || {
                let Ok(mut up) = TcpStream::connect(upstream) else {
                    return;
                };
                // Forward the fixed-size hello exchange verbatim.
                if pipe_exact(&mut down, &mut up, clare_net::protocol::CLIENT_HELLO_LEN).is_err() {
                    return;
                }
                if pipe_exact(&mut up, &mut down, clare_net::protocol::SERVER_HELLO_LEN).is_err() {
                    return;
                }
                if n == 0 {
                    // First connection: swallow the first request and
                    // hang up without forwarding it, leaving the client
                    // blocked on a reply that will never come.
                    let mut buf = [0u8; 4096];
                    let _ = down.read(&mut buf);
                    return; // both sockets drop here
                }
                // Later connections: transparent bidirectional forward.
                let mut up2 = up.try_clone().unwrap();
                let mut down2 = down.try_clone().unwrap();
                let t = std::thread::spawn(move || pipe_all(&mut down, &mut up));
                let _ = pipe_all(&mut up2, &mut down2);
                let _ = t.join();
            });
        }
    });
    addr
}

fn pipe_exact(from: &mut TcpStream, to: &mut TcpStream, n: usize) -> std::io::Result<()> {
    let mut buf = vec![0u8; n];
    from.read_exact(&mut buf)?;
    to.write_all(&buf)
}

fn pipe_all(from: &mut TcpStream, to: &mut TcpStream) -> std::io::Result<()> {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => {
                let _ = to.shutdown(std::net::Shutdown::Both);
                return Ok(());
            }
            Ok(n) => to.write_all(&buf[..n])?,
        }
    }
}

/// A mid-stream hangup after an idempotent request went out is recovered
/// transparently: the client reconnects, replays under a fresh request
/// id, and the answer matches a direct call. Follow-up requests keep
/// working, proving request-id accounting survived the reconnect.
#[test]
fn client_reconnects_and_replays_after_mid_stream_eof() {
    reconnect_replay_scenario(ServerMode::Reactor);
}

/// Same reconnect-and-replay scenario against the threaded baseline.
#[test]
fn client_reconnects_and_replays_threaded() {
    reconnect_replay_scenario(ServerMode::Threaded);
}

fn reconnect_replay_scenario(server_mode: ServerMode) {
    let (server, crs) = serve(NetConfig {
        server_mode,
        workers: 2,
        ..NetConfig::default()
    });
    let proxy = hangup_once_proxy(server.local_addr());

    let cfg = ClientConfig {
        read_timeout: Duration::from_secs(2),
        reconnect_retries: 2,
        ..ClientConfig::default()
    };
    let reconnects_before = clare_trace::metrics().net_client_reconnects.get();
    let mut client = NetClient::connect(proxy, cfg).unwrap();
    let mut symbols = client.symbols().unwrap();
    // `symbols()` was the swallowed first request: reaching here at all
    // proves reconnect-and-replay kicked in.
    assert!(
        clare_trace::metrics().net_client_reconnects.get() > reconnects_before,
        "the reconnect must be counted"
    );

    let queries: Vec<Term> = (0..6)
        .map(|i| parse_term(&format!("item(k{i}, X)"), &mut symbols).unwrap())
        .collect();
    for query in &queries {
        for mode in SearchMode::ALL {
            let networked = client.retrieve(query, mode).unwrap();
            assert_eq!(networked, crs.retrieve(query, mode));
        }
    }
    // Pipelining across many ids still pairs every reply correctly.
    let pipelined = client
        .retrieve_pipelined(&queries, SearchMode::TwoStage)
        .unwrap();
    for (query, got) in queries.iter().zip(&pipelined) {
        assert_eq!(got, &crs.retrieve(query, SearchMode::TwoStage));
    }
    server.shutdown();
}

/// A frame-counting fake server for the no-replay regression below: it
/// speaks the hello (granting no capabilities, so frames stay
/// unchecksummed), answers pings, and *hangs up without replying* on
/// every ASSERT or RETRACT — while counting exactly how many of each it
/// ever received across all connections. Any client that auto-replayed a
/// write over a fresh connection would be caught red-handed by the
/// counter.
fn write_counting_server() -> (SocketAddr, Arc<AtomicUsize>, Arc<AtomicUsize>) {
    use clare_net::protocol::{
        encode_server_hello, opcode, Frame, FrameReader, HelloStatus, ServerHello,
        CLIENT_HELLO_LEN, MAX_FRAME_LEN, PROTOCOL_VERSION,
    };
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let asserts = Arc::new(AtomicUsize::new(0));
    let retracts = Arc::new(AtomicUsize::new(0));
    let (a, r) = (Arc::clone(&asserts), Arc::clone(&retracts));
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            let (a, r) = (Arc::clone(&a), Arc::clone(&r));
            std::thread::spawn(move || {
                let mut hello = [0u8; CLIENT_HELLO_LEN];
                if stream.read_exact(&mut hello).is_err() {
                    return;
                }
                let reply = encode_server_hello(&ServerHello {
                    version: PROTOCOL_VERSION,
                    status: HelloStatus::Ok,
                    retry_after_ms: 0,
                    caps: 0,
                    fingerprint: 0,
                });
                if stream.write_all(&reply).is_err() {
                    return;
                }
                let mut fr = FrameReader::new(MAX_FRAME_LEN);
                loop {
                    let Ok(frame) = fr.read_frame(&mut stream) else {
                        return;
                    };
                    match frame.opcode {
                        opcode::ASSERT => {
                            a.fetch_add(1, Ordering::SeqCst);
                            return; // hang up mid-request, no reply
                        }
                        opcode::RETRACT => {
                            r.fetch_add(1, Ordering::SeqCst);
                            return; // hang up mid-request, no reply
                        }
                        op => {
                            let pong = Frame::new(frame.request_id, op | opcode::REPLY, Vec::new());
                            if stream.write_all(&pong.encoded()).is_err() {
                                return;
                            }
                        }
                    }
                }
            });
        }
    });
    (addr, asserts, retracts)
}

/// Non-idempotent writes are **never** auto-replayed. When the peer dies
/// mid-request after an ASSERT or RETRACT frame went out, the client
/// cannot know whether the write committed — replaying it could commit
/// it twice — so the transport error must surface to the caller, and
/// exactly one copy of the frame may ever reach the wire, even though
/// the same client happily reconnects and replays *idempotent* requests
/// on the very same connection.
#[test]
fn writes_are_never_replayed_after_mid_request_hangup() {
    let (addr, asserts, retracts) = write_counting_server();
    let cfg = ClientConfig {
        read_timeout: Duration::from_secs(2),
        reconnect_retries: 3,
        ..ClientConfig::default()
    };
    let mut client = NetClient::connect(addr, cfg).unwrap();
    client.ping().unwrap();

    // The assert dies mid-request: the error surfaces, typed as a
    // transport failure the caller can see.
    let err = client
        .assert("m", "boom(a).")
        .expect_err("a swallowed ASSERT must surface, not silently retry");
    assert!(
        err.is_connection_fatal(),
        "the caller must see the transport failure, got {err:?}"
    );

    // The same client still recovers for idempotent traffic: ping
    // reconnects and replays, proving the replay machinery is alive —
    // it just refused to touch the write.
    let reconnects_before = clare_trace::metrics().net_client_reconnects.get();
    client.ping().unwrap();
    assert!(
        clare_trace::metrics().net_client_reconnects.get() > reconnects_before,
        "the idempotent ping should have reconnected and replayed"
    );

    // Same story for RETRACT.
    let err = client
        .retract("m", "boom(a).")
        .expect_err("a swallowed RETRACT must surface, not silently retry");
    assert!(err.is_connection_fatal());
    client.ping().unwrap();

    // Give any buggy background replay a beat to land, then the verdict:
    // exactly one copy of each write ever reached the wire.
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(
        asserts.load(Ordering::SeqCst),
        1,
        "the ASSERT frame was replayed after the hangup"
    );
    assert_eq!(
        retracts.load(Ordering::SeqCst),
        1,
        "the RETRACT frame was replayed after the hangup"
    );
}

/// With frame checksums negotiated, injected bit flips on server replies
/// are *detected* (never silently decoded): every retrieve either matches
/// the direct answer or forces a counted reconnect, and the CRC failure
/// counter moves.
#[test]
fn frame_crc_catches_injected_reply_corruption() {
    let plan = FaultPlan::none().with(FaultSite::NetServerSend, 350);
    let injector = Arc::new(DeterministicInjector::new(0xC0FFEE, plan));
    let _guard = clare_fault::install(injector);

    let (server, crs) = serve(NetConfig {
        workers: 2,
        ..NetConfig::default()
    });
    let cfg = ClientConfig {
        read_timeout: Duration::from_millis(500),
        reconnect_retries: 8,
        ..ClientConfig::default()
    };
    let mut client = NetClient::connect(server.local_addr(), cfg).unwrap();
    let mut symbols = client.symbols().unwrap();
    let queries: Vec<Term> = (0..8)
        .map(|i| parse_term(&format!("item(k{i}, X)"), &mut symbols).unwrap())
        .collect();

    let crc_before = clare_trace::metrics().net_frame_crc_failures.get();
    let mut survived = 0usize;
    for round in 0..4 {
        for (i, query) in queries.iter().enumerate() {
            match client.retrieve(query, SearchMode::TwoStage) {
                Ok(networked) => {
                    assert_eq!(
                        networked,
                        crs.retrieve(query, SearchMode::TwoStage),
                        "round {round} query {i}: a corrupted reply was decoded as truth"
                    );
                    survived += 1;
                }
                // Retries exhausted under sustained 35% corruption is an
                // acceptable *flagged* outcome; silence would not be.
                Err(_) => {
                    let _ = client.reconnect();
                }
            }
        }
    }
    assert!(survived > 0, "no request ever survived the fault storm");
    assert!(
        clare_trace::metrics().net_frame_crc_failures.get() > crc_before
            || clare_trace::metrics().net_client_reconnects.get() > 0,
        "faults at 35% must have been observed somewhere"
    );
    server.shutdown();
}

/// Shutdown racing a pipeline of queued requests must not drop replies:
/// a single slow worker has five jobs still queued when `shutdown()`
/// lands, and the client nonetheless receives every reply, byte-identical
/// to direct calls. This is the drain guarantee: the intake quiesces
/// first, workers finish the queue, and (in reactor mode) the event loop
/// stays alive to flush every outbound queue before releasing its fds.
#[test]
fn shutdown_drains_queued_replies() {
    shutdown_drain_scenario(ServerMode::Reactor);
}

/// Same drain-under-shutdown scenario against the threaded baseline.
#[test]
fn shutdown_drains_queued_replies_threaded() {
    shutdown_drain_scenario(ServerMode::Threaded);
}

fn shutdown_drain_scenario(server_mode: ServerMode) {
    let (server, crs) = serve(NetConfig {
        server_mode,
        workers: 1,
        // No coalescing: six distinct jobs must sit in the queue.
        coalesce: false,
        debug_worker_delay: Some(Duration::from_millis(40)),
        ..NetConfig::default()
    });
    let addr = server.local_addr();

    let crs2 = Arc::clone(&crs);
    let client_thread = std::thread::spawn(move || {
        let cfg = ClientConfig {
            read_timeout: Duration::from_secs(10),
            ..ClientConfig::default()
        };
        let mut client = NetClient::connect(addr, cfg).unwrap();
        let mut symbols = client.symbols().unwrap();
        let queries: Vec<Term> = (0..6)
            .map(|i| parse_term(&format!("item(k{i}, X)"), &mut symbols).unwrap())
            .collect();
        let replies = client
            .retrieve_pipelined(&queries, SearchMode::TwoStage)
            .expect("every queued reply must be delivered across shutdown");
        for (query, got) in queries.iter().zip(&replies) {
            assert_eq!(got, &crs2.retrieve(query, SearchMode::TwoStage));
        }
    });

    // Wait until the slow worker has started on the pipeline (first
    // retrieval underway or done), guaranteeing jobs are still queued…
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while crs.stats().retrievals == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "pipeline never reached the worker"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // …then yank the server out from under it.
    server.shutdown();
    client_thread.join().expect("client thread panicked");
}

/// The legal pipeline-then-half-close client pattern: hello, a burst of
/// retrieves, `shutdown(WR)`, then read. Replies for jobs still in
/// flight when the EOF is observed must not be dropped — the connection
/// is owed a reply per decoded request and may only be released once the
/// in-flight count reaches zero *and* the outbound queue has flushed.
#[test]
fn half_close_delivers_in_flight_replies() {
    half_close_scenario(ServerMode::Reactor);
}

/// Same half-close scenario against the threaded baseline (its replies
/// flow through the cloned stream held by each queued job).
#[test]
fn half_close_delivers_in_flight_replies_threaded() {
    half_close_scenario(ServerMode::Threaded);
}

fn half_close_scenario(server_mode: ServerMode) {
    use clare_net::protocol::{
        decode_server_hello, encode_client_hello, encode_retrieval, encode_retrieve, opcode,
        BudgetExt, Frame, FrameReader, HelloStatus, RetrieveReq, MAX_FRAME_LEN, PROTOCOL_VERSION,
        SERVER_HELLO_LEN,
    };
    let (server, crs) = serve(NetConfig {
        server_mode,
        workers: 1,
        // Six distinct jobs, one slow worker: the EOF overtakes the
        // queue, so most replies are produced *after* the half-close.
        coalesce: false,
        debug_worker_delay: Some(Duration::from_millis(30)),
        ..NetConfig::default()
    });

    let mut symbols = {
        let mut c = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
        c.symbols().unwrap()
    };
    let queries: Vec<Term> = (0..6)
        .map(|i| parse_term(&format!("item(k{i}, X)"), &mut symbols).unwrap())
        .collect();

    // A raw client, so the write side can be shut down independently.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .write_all(&encode_client_hello(PROTOCOL_VERSION))
        .unwrap();
    let mut hello_raw = [0u8; SERVER_HELLO_LEN];
    stream.read_exact(&mut hello_raw).unwrap();
    assert_eq!(
        decode_server_hello(&hello_raw).unwrap().status,
        HelloStatus::Ok
    );
    for (i, query) in queries.iter().enumerate() {
        let req = RetrieveReq {
            mode: SearchMode::TwoStage,
            deadline_micros: 0,
            budget: BudgetExt::NONE,
            query: query.clone(),
        };
        let frame = Frame::new(
            i as u64 + 1,
            clare_net::protocol::opcode::RETRIEVE,
            encode_retrieve(&req),
        );
        stream.write_all(&frame.encoded()).unwrap();
    }
    stream.shutdown(std::net::Shutdown::Write).unwrap();

    // Every reply must still arrive before the EOF.
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let mut fr = FrameReader::new(MAX_FRAME_LEN);
    let mut replies = std::collections::HashMap::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                fr.feed(&buf[..n]);
                while let Some(frame) = fr.try_frame().unwrap() {
                    replies.insert(frame.request_id, frame);
                }
            }
            Err(e) => panic!("reply stream failed before EOF: {e}"),
        }
    }
    assert_eq!(
        replies.len(),
        queries.len(),
        "replies in flight at half-close were dropped"
    );
    for (i, query) in queries.iter().enumerate() {
        let frame = &replies[&(i as u64 + 1)];
        assert_eq!(frame.opcode, opcode::RETRIEVE | opcode::REPLY);
        assert_eq!(
            frame.payload,
            encode_retrieval(&crs.retrieve(query, SearchMode::TwoStage)),
            "reply {i} must be byte-identical to the direct call"
        );
    }
    server.shutdown();
}

/// A version-mismatch handshake followed by a flood of junk elicits at
/// most one server hello: the refusal state is terminal, so extra input
/// arriving in the same readiness round never re-enters the hello
/// completion branch to duplicate the reply.
#[test]
fn rejected_handshake_never_duplicates_the_hello() {
    use clare_net::protocol::{
        decode_server_hello, encode_client_hello, HelloStatus, SERVER_HELLO_LEN,
    };
    let (server, _crs) = serve(NetConfig {
        workers: 1,
        ..NetConfig::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Bad version, then several read-buffers' worth of junk so multiple
    // 16 KiB read rounds follow the refusal.
    stream.write_all(&encode_client_hello(0xDEAD)).unwrap();
    let _ = stream.write_all(&vec![0u8; 64 * 1024]); // may hit the close: fine
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut got = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => got.extend_from_slice(&buf[..n]),
            // A reset after the server discards the unread junk is an
            // acceptable end of stream.
            Err(_) => break,
        }
    }
    assert!(
        got.len() <= SERVER_HELLO_LEN,
        "{} bytes received: the refusal hello was duplicated",
        got.len()
    );
    if got.len() == SERVER_HELLO_LEN {
        let mut raw = [0u8; SERVER_HELLO_LEN];
        raw.copy_from_slice(&got);
        assert_eq!(
            decode_server_hello(&raw).unwrap().status,
            HelloStatus::VersionMismatch
        );
    }
    server.shutdown();
}

/// Over-limit connections cannot pin fds without bound: past a small
/// courtesy budget accepts are dropped at the door, and the ones held
/// for a polite busy hello are released on a short dedicated deadline —
/// not the (here 60 s) idle timeout. A flood of silent over-limit
/// sockets must all observe a close within a few seconds, while the
/// admitted client keeps working.
#[test]
fn refused_connections_are_bounded_and_reaped() {
    let (server, _crs) = serve(NetConfig {
        workers: 1,
        max_connections: 1,
        idle_timeout: Some(Duration::from_secs(60)),
        ..NetConfig::default()
    });
    let mut occupant = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
    occupant.ping().unwrap(); // the only slot is taken

    let mut silent: Vec<TcpStream> = (0..40)
        .map(|_| {
            let s = TcpStream::connect(server.local_addr()).unwrap();
            s.set_nonblocking(true).unwrap();
            s
        })
        .collect();

    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    let mut buf = [0u8; 16];
    while !silent.is_empty() {
        assert!(
            std::time::Instant::now() < deadline,
            "{} refused connections still open: unbounded fd hold",
            silent.len()
        );
        silent.retain_mut(|s| match s.read(&mut buf) {
            // Open and silent — the server has sent nothing and not
            // hung up yet.
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => true,
            // EOF, reset, or (unexpectedly) bytes: the hold ended.
            _ => false,
        });
        std::thread::sleep(Duration::from_millis(50));
    }

    occupant.ping().unwrap(); // the admitted client was never disturbed
    server.shutdown();
}
