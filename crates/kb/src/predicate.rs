//! Predicates, modules, and the knowledge base proper.

use crate::arena::ClauseArena;
use clare_disk::{DiskProfile, SimNanos, StoredFile};
use clare_scw::{ClauseAddr, IndexFile};
use clare_term::{Clause, ClauseId, Symbol, SymbolTable};
use std::collections::HashMap;

/// A compiled predicate: the clause list (user order), its compiled clause
/// file, its secondary index file, the address of every clause record,
/// plus two retrieval accelerators built at compile/load time — the
/// pre-decoded head-stream [`ClauseArena`] and the address → clause-id
/// map.
#[derive(Debug, Clone)]
pub struct Predicate {
    pub(crate) functor: Symbol,
    pub(crate) arity: usize,
    pub(crate) clauses: Vec<Clause>,
    pub(crate) file: StoredFile,
    pub(crate) index: IndexFile,
    pub(crate) addrs: Vec<ClauseAddr>,
    pub(crate) arena: ClauseArena,
    pub(crate) id_by_addr: HashMap<ClauseAddr, usize>,
}

impl Predicate {
    /// The predicate indicator.
    pub fn indicator(&self) -> (Symbol, usize) {
        (self.functor, self.arity)
    }

    /// The clauses in user (program) order.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// The compiled clause file (track-organised records).
    pub fn file(&self) -> &StoredFile {
        &self.file
    }

    /// The SCW+MB secondary index file.
    pub fn index(&self) -> &IndexFile {
        &self.index
    }

    /// Disk address of each clause, indexed by clause position.
    pub fn addrs(&self) -> &[ClauseAddr] {
        &self.addrs
    }

    /// The pre-decoded clause-head stream arena (built once at
    /// compile/load time; see [`ClauseArena`]).
    pub fn arena(&self) -> &ClauseArena {
        &self.arena
    }

    /// Clause position (program order) of the record at `addr`, in O(1)
    /// via the precomputed address map; `None` if the address was not
    /// produced for this predicate.
    pub fn clause_id_at(&self, addr: ClauseAddr) -> Option<ClauseId> {
        self.id_by_addr
            .get(&addr)
            .map(|&pos| ClauseId::new(pos as u32))
    }

    /// The clause stored at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` was not produced for this predicate.
    pub fn clause_at(&self, addr: ClauseAddr) -> (&Clause, ClauseId) {
        let id = self
            .clause_id_at(addr)
            .expect("address belongs to this predicate");
        (&self.clauses[id.index() as usize], id)
    }

    /// The raw clause record bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn record_at(&self, addr: ClauseAddr) -> &[u8] {
        &self.file.tracks()[addr.track() as usize].records()[addr.slot() as usize]
    }

    /// Time to fetch the single record at `addr` with a random access
    /// (seek + rotational latency + record transfer).
    pub fn record_fetch_time(&self, addr: ClauseAddr, profile: &DiskProfile) -> SimNanos {
        let bytes = self.record_at(addr).len() as u64;
        profile.avg_seek()
            + profile.avg_rotational_latency()
            + profile.sustained_rate().transfer_time(bytes)
    }

    /// True if the predicate mixes ground facts with rules or non-ground
    /// facts — the "mixed relation" a coupled EDB/IDB system disallows.
    pub fn is_mixed(&self) -> bool {
        let ground = self.clauses.iter().filter(|c| c.is_ground_fact()).count();
        ground != 0 && ground != self.clauses.len()
    }

    /// Fraction of clauses that are rules (non-empty body).
    pub fn rule_fraction(&self) -> f64 {
        if self.clauses.is_empty() {
            return 0.0;
        }
        self.clauses.iter().filter(|c| !c.is_fact()).count() as f64 / self.clauses.len() as f64
    }
}

/// Memory- or disk-residency of a module (§2: small modules are loaded
/// into main memory when required, large modules are disk resident).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModuleKind {
    /// Loaded into main memory when required.
    Small,
    /// Disk resident; searched through the CLARE filters.
    Large,
}

/// A named module: a group of predicates.
#[derive(Debug, Clone)]
pub struct Module {
    pub(crate) name: String,
    pub(crate) kind: ModuleKind,
    pub(crate) predicates: Vec<Predicate>,
}

impl Module {
    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Small (memory) or large (disk) classification.
    pub fn kind(&self) -> ModuleKind {
        self.kind
    }

    /// The predicates in definition order.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Total compiled bytes (clause files plus index files).
    pub fn compiled_bytes(&self) -> usize {
        self.predicates
            .iter()
            .map(|p| p.file.occupied_bytes() + p.index.file_bytes())
            .sum()
    }
}

/// The assembled knowledge base.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    pub(crate) symbols: SymbolTable,
    pub(crate) modules: Vec<Module>,
    pub(crate) by_indicator: HashMap<(Symbol, usize), (usize, usize)>,
    /// Process-unique build generation (see [`Self::generation`]).
    pub(crate) generation: u64,
    /// Generation of the knowledge base this one was derived from via
    /// [`Self::to_builder`], if any.
    pub(crate) parent_generation: Option<u64>,
    /// Predicates whose clause lists changed relative to the parent.
    pub(crate) touched: Vec<(Symbol, usize)>,
    /// Fingerprint of the [`KbConfig`](crate::build::KbConfig) the base
    /// was compiled under.
    pub(crate) build_fingerprint: u64,
    /// Fingerprint of the compiled *contents* (see
    /// [`Self::content_fingerprint`]); computed once at build time.
    pub(crate) content_fingerprint: u64,
}

impl KnowledgeBase {
    /// The shared symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Process-unique identifier of this compiled knowledge base: every
    /// [`KbBuilder`](crate::build::KbBuilder) finish mints a fresh one.
    /// Retrieval caches use it to tell "the same base" from "a different
    /// base with the same shape".
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The generation of the base this one was derived from through
    /// [`Self::to_builder`], or `None` for a base built from scratch.
    pub fn parent_generation(&self) -> Option<u64> {
        self.parent_generation
    }

    /// The predicates possibly affected by changes relative to the parent
    /// base (meaningful only when [`Self::parent_generation`] is set).
    /// Granularity is the *module*: every predicate of a module that
    /// gained clauses is listed, because new clauses anywhere in a module
    /// can flip its [`ModuleKind`] and with it the retrieval timing of
    /// sibling predicates. Predicates outside touched modules compile
    /// bit-identically under the same
    /// [`KbConfig`](crate::build::KbConfig), which is what lets a
    /// retrieval cache invalidate per predicate instead of globally.
    pub fn touched_predicates(&self) -> &[(Symbol, usize)] {
        &self.touched
    }

    /// Fingerprint of the result-affecting compilation parameters (SCW
    /// scheme, scan rate, track size). Two bases with equal fingerprints
    /// and equal clause lists produce byte-identical retrievals.
    pub fn build_fingerprint(&self) -> u64 {
        self.build_fingerprint
    }

    /// Fingerprint of the compiled contents: the build parameters plus,
    /// per module and predicate, the functor text, arity, clause count,
    /// and every track's record-stream CRC. Two bases with equal content
    /// fingerprints serve byte-identical retrievals over their base
    /// clauses. The serving hello carries this value, and a cluster
    /// router refuses a backend whose fingerprint disagrees — a
    /// wrong-base backend would silently serve wrong answers.
    pub fn content_fingerprint(&self) -> u64 {
        self.content_fingerprint
    }

    pub(crate) fn compute_content_fingerprint(&self) -> u64 {
        let mut h = self.build_fingerprint ^ 0x9e37_79b9_7f4a_7c15;
        let mut mix = |v: u64| h = (h ^ v).wrapping_mul(0x0000_0100_0000_01B3);
        for module in &self.modules {
            for &b in module.name.as_bytes() {
                mix(u64::from(b));
            }
            for pred in &module.predicates {
                if let Some(text) = self.symbols.try_atom_text(pred.functor) {
                    for &b in text.as_bytes() {
                        mix(u64::from(b));
                    }
                }
                mix(pred.arity as u64);
                mix(pred.clauses.len() as u64);
                for track in pred.file.tracks() {
                    mix(u64::from(track.stored_crc()));
                    mix(track.used_bytes() as u64);
                }
            }
        }
        h
    }

    /// The modules in creation order.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Looks up a predicate by indicator.
    pub fn predicate(&self, functor: Symbol, arity: usize) -> Option<&Predicate> {
        self.by_indicator
            .get(&(functor, arity))
            .map(|&(m, p)| &self.modules[m].predicates[p])
    }

    /// Looks up a predicate by functor *name* (convenience for tests and
    /// examples).
    pub fn lookup(&self, name: &str, arity: usize) -> Option<&Predicate> {
        let sym = self.symbols.lookup_atom(name)?;
        self.predicate(sym, arity)
    }

    /// The module containing a predicate, with the predicate itself.
    pub fn module_of(&self, functor: Symbol, arity: usize) -> Option<(&Module, &Predicate)> {
        self.by_indicator.get(&(functor, arity)).map(|&(m, p)| {
            let module = &self.modules[m];
            (module, &module.predicates[p])
        })
    }

    /// Total clause count across all modules.
    pub fn clause_count(&self) -> usize {
        self.modules
            .iter()
            .flat_map(|m| &m.predicates)
            .map(|p| p.clauses.len())
            .sum()
    }

    /// Total compiled size on disk in bytes.
    pub fn compiled_bytes(&self) -> usize {
        self.modules.iter().map(Module::compiled_bytes).sum()
    }

    /// Decompiles the knowledge base back into a [`KbBuilder`] carrying
    /// the same symbol table and every clause in module/predicate order —
    /// the basis for incremental updates (add clauses, recompile).
    ///
    /// [`KbBuilder`]: crate::build::KbBuilder
    pub fn to_builder(&self) -> crate::build::KbBuilder {
        let mut builder = crate::build::KbBuilder::new();
        *builder.symbols_mut() = self.symbols.clone();
        for module in &self.modules {
            for pred in &module.predicates {
                for clause in &pred.clauses {
                    builder.add_clause(&module.name, clause.clone());
                }
            }
        }
        // Clauses added so far are the parent's own; only additions from
        // here on count as touched.
        builder.set_baseline(self.generation);
        builder
    }

    /// Approximate bytes needed to hold every clause in main memory — the
    /// quantity that breaks in-RAM Prolog systems at scale (the paper's
    /// footnote: benchmarked systems "were unable to cope with more than
    /// about 60k clauses").
    pub fn in_memory_bytes(&self) -> usize {
        self.symbols.approx_bytes()
            + self
                .modules
                .iter()
                .flat_map(|m| &m.predicates)
                .map(|p| p.file.payload_bytes() * 2)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use crate::build::{KbBuilder, KbConfig};

    fn family() -> crate::KnowledgeBase {
        let mut b = KbBuilder::new();
        b.consult(
            "family",
            "parent(tom, bob). parent(bob, ann). parent(bob, pat).
             male(tom). male(bob).
             grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
             ancestor(X, Y) :- parent(X, Y).
             ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).",
        )
        .unwrap();
        b.finish(KbConfig::default())
    }

    #[test]
    fn predicates_grouped_by_indicator() {
        let kb = family();
        assert_eq!(kb.lookup("parent", 2).unwrap().clauses().len(), 3);
        assert_eq!(kb.lookup("male", 1).unwrap().clauses().len(), 2);
        assert_eq!(kb.lookup("ancestor", 2).unwrap().clauses().len(), 2);
        assert!(kb.lookup("parent", 3).is_none());
        assert!(kb.lookup("unknown", 1).is_none());
        assert_eq!(kb.clause_count(), 8);
    }

    #[test]
    fn clause_order_is_preserved() {
        let kb = family();
        let parent = kb.lookup("parent", 2).unwrap();
        let firsts: Vec<String> = parent
            .clauses()
            .iter()
            .map(|c| {
                let (f, _) = c.predicate();
                kb.symbols().atom_text(f).to_owned()
            })
            .collect();
        assert_eq!(firsts, vec!["parent"; 3]);
        // Order check via the second argument atoms of the heads.
        let arg1: Vec<&str> = parent
            .clauses()
            .iter()
            .map(|c| match c.head() {
                clare_term::Term::Struct { args, .. } => match &args[1] {
                    clare_term::Term::Atom(s) => kb.symbols().atom_text(*s),
                    _ => panic!("expected atom"),
                },
                _ => panic!("expected struct"),
            })
            .collect();
        assert_eq!(arg1, vec!["bob", "ann", "pat"]);
    }

    #[test]
    fn addresses_resolve_to_records() {
        let kb = family();
        let p = kb.lookup("parent", 2).unwrap();
        assert_eq!(p.addrs().len(), 3);
        for (i, addr) in p.addrs().iter().enumerate() {
            let (clause, id) = p.clause_at(*addr);
            assert_eq!(id.index() as usize, i);
            assert_eq!(clause, &p.clauses()[i]);
            let record = p.record_at(*addr);
            let (decoded, _) = clare_pif::ClauseRecord::from_bytes(record).unwrap();
            assert_eq!(decoded.clause(), clause);
        }
    }

    #[test]
    fn index_sized_per_clause() {
        let kb = family();
        let p = kb.lookup("parent", 2).unwrap();
        assert_eq!(p.index().len(), 3);
        assert!(p.index().file_bytes() < p.file().payload_bytes());
    }

    #[test]
    fn mixed_relation_detected() {
        let mut b = KbBuilder::new();
        b.consult(
            "mix",
            "status(server1, up). status(server2, down).
             status(S, unknown) :- not_monitored(S).
             not_monitored(printer).",
        )
        .unwrap();
        let kb = b.finish(KbConfig::default());
        assert!(kb.lookup("status", 2).unwrap().is_mixed());
        assert!(!kb.lookup("not_monitored", 1).unwrap().is_mixed());
        let frac = kb.lookup("status", 2).unwrap().rule_fraction();
        assert!((frac - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn memory_and_disk_sizes_positive() {
        let kb = family();
        assert!(kb.compiled_bytes() > 0);
        assert!(kb.in_memory_bytes() > 0);
    }
}
