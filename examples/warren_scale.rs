//! A scaled-down Warren-style knowledge base ("3000 predicates, 30000
//! rules, 3000000 facts, and 30 Mbytes total size", §1) queried end to end
//! through the CLARE pipeline.
//!
//! ```text
//! cargo run --release --example warren_scale [scale]
//! ```
//!
//! The optional `scale` argument (default `0.01`) multiplies Warren's
//! estimate; `0.01` builds ~30 000 facts and ~300 rules.

use clare::prelude::*;
use clare_workload::{derive_queries, QueryShape, WarrenSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.01);
    let spec = WarrenSpec::scaled(scale);
    println!(
        "generating Warren-style KB at scale {scale}: {} predicates, {} rules, {} facts …",
        spec.predicates, spec.rules, spec.facts
    );

    let mut builder = KbBuilder::new();
    let summary = spec.generate(&mut builder, "warren");
    let miss = builder.symbols_mut().intern_atom("never_stored_atom");
    let kb = builder.finish(KbConfig::default());
    println!("{}\n", KbStats::gather(&kb));

    let opts = CrsOptions::default();
    for shape in QueryShape::ALL {
        let queries = derive_queries(&summary.sample_heads, shape, 3, miss, 7);
        let mut candidates = 0;
        let mut answers = 0;
        let mut elapsed_ns = 0u64;
        let mut modes = Vec::new();
        for q in &queries {
            let mode = choose_mode(&kb, q);
            let r = retrieve(&kb, q, mode, &opts);
            candidates += r.stats.candidates;
            answers += r.stats.unified;
            elapsed_ns += r.stats.elapsed.as_ns();
            modes.push(mode.to_string());
        }
        println!(
            "{:<12} mode={:<14} candidates={:<6} answers={:<6} avg elapsed={}",
            shape.label(),
            modes[0],
            candidates,
            answers,
            SimNanos::from_ns(elapsed_ns / queries.len() as u64)
        );
    }

    println!(
        "\nat this scale a memory-resident system would need {:.1} MB \
         (SUN3/160 of the paper: 4 MB)",
        kb.in_memory_bytes() as f64 / 1e6
    );
    Ok(())
}
