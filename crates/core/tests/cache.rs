//! Cached-equals-uncached equivalence: a [`ClauseRetrievalServer`] with
//! the cache enabled must return, for every query, the byte-identical
//! [`Retrieval`] a fresh uncached pipeline run produces on the current
//! snapshot — across random interleavings of retrievals, incremental
//! update transactions, full knowledge-base swaps, and mode changes.
//!
//! The reference is `clare_core::retrieve` on `server.snapshot()`, which
//! never consults the server cache. Any unsound cache entry — stale
//! epoch, module-layout shift, mode mix-up, renaming collision — shows
//! up as an equality failure here.

use clare_core::{retrieve, ClauseRetrievalServer, CrsOptions, Retrieval, SearchMode};
use clare_kb::{KbBuilder, KbConfig};
use clare_term::parser::parse_term;
use clare_term::Term;

/// Deterministic xorshift64* stream, seeded per test for reproducibility.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Shadow state: the clause text of each module, from which both the
/// server's updates and the from-scratch rebuilds are derived.
struct Shadow {
    modules: Vec<(&'static str, Vec<String>)>,
}

impl Shadow {
    fn rebuild(&self, symbols: &clare_term::SymbolTable) -> clare_kb::KnowledgeBase {
        let mut b = KbBuilder::new();
        *b.symbols_mut() = symbols.clone();
        for (name, facts) in &self.modules {
            b.consult(name, &facts.join("\n")).unwrap();
        }
        b.finish(KbConfig::default())
    }
}

#[test]
fn cached_retrievals_match_uncached_across_interleavings() {
    let mut shadow = Shadow {
        modules: vec![
            // p/2 and r/1 share module "ma": module-granular invalidation
            // must catch cross-predicate effects of consulting either.
            (
                "ma",
                (0..200)
                    .map(|i| format!("p(k{}, v{}).", i % 30, i % 5))
                    .chain((0..60).map(|i| format!("r(k{}).", i % 20)))
                    .collect(),
            ),
            (
                "mb",
                (0..200)
                    .map(|i| format!("q(k{}, v{}).", i % 30, i % 5))
                    .collect(),
            ),
        ],
    };

    let mut b = KbBuilder::new();
    for (name, facts) in &shadow.modules {
        b.consult(name, &facts.join("\n")).unwrap();
    }
    let mut symbols = b.symbols_mut().clone();
    let queries: Vec<Term> = [
        "p(k7, X)",
        "p(k7, v2)",
        "p(K, v3)",
        "q(k7, X)",
        "q(K, v1)",
        "r(k11)",
        "r(X)",
        "p(X, Y)",
    ]
    .iter()
    .map(|q| parse_term(q, &mut symbols).unwrap())
    .collect();

    let server = ClauseRetrievalServer::new(b.finish(KbConfig::default()), CrsOptions::default());
    let mut rng = Rng(0x9E3779B97F4A7C15);
    let mut fresh = 0u32; // uniquifier for consulted facts

    for step in 0..400 {
        match rng.below(10) {
            // Mostly retrievals, repeating from a small query pool so the
            // cache gets real hits to prove equal.
            0..=6 => {
                let query = &queries[rng.below(queries.len() as u64) as usize];
                let mode = SearchMode::ALL[rng.below(4) as usize];
                let got = server.retrieve(query, mode);
                let want = reference(&server, query, mode);
                assert_eq!(got, want, "step {step}: cached != uncached");
            }
            // Batches exercise the coalesced path and its per-member cache.
            7 => {
                let batch: Vec<Term> = (0..3)
                    .map(|_| queries[rng.below(queries.len() as u64) as usize].clone())
                    .collect();
                let mode = SearchMode::ALL[rng.below(4) as usize];
                let got = server.retrieve_batch(&batch, mode);
                for (i, (query, outcome)) in batch.iter().zip(&got).enumerate() {
                    let want = reference(&server, query, mode);
                    assert_eq!(*outcome, want, "step {step} member {i}");
                }
            }
            // Incremental assert: consult one new fact through a
            // transaction (bumps only the touched module's predicates).
            8 => {
                let (module, fact) = if rng.below(2) == 0 {
                    ("ma", format!("p(new{fresh}, v0)."))
                } else {
                    ("mb", format!("q(new{fresh}, v0)."))
                };
                fresh += 1;
                let slot = shadow.modules.iter_mut().find(|(n, _)| *n == module);
                slot.unwrap().1.push(fact.clone());
                let mut tx = server.begin_update();
                tx.consult(module, &fact).unwrap();
                symbols = tx.symbols_mut().clone();
                tx.commit(KbConfig::default()).unwrap();
            }
            // Full swap: rebuild everything from the shadow (a
            // non-incremental update, which must invalidate globally).
            _ => {
                server.update(shadow.rebuild(&symbols));
            }
        }
    }
}

/// The uncached answer for `query` on the server's current snapshot.
fn reference(server: &ClauseRetrievalServer, query: &Term, mode: SearchMode) -> Retrieval {
    retrieve(&server.snapshot(), query, mode, &CrsOptions::default())
}
