//! Concurrency tests for [`ClauseRetrievalServer`]: snapshot isolation of
//! in-flight retrievals against `update()` swaps, and the serialized
//! commit semantics of overlapping [`UpdateTransaction`]s.
//!
//! `crates/core/src/server.rs` documents that "in-flight clients finish
//! against their snapshot; new calls see the update", but until now only
//! exercised it single-threaded. These tests hammer the server from many
//! threads while the knowledge base is swapped underneath them — exactly
//! what the `clare-net` daemon does when one connection consults new
//! clauses while others stream retrievals.
//!
//! Historical note: update transactions used to be optimistic
//! rebuild-and-swap, and a test here pinned their last-writer-wins data
//! loss as documented behaviour. Transactions now commit assert/retract
//! batches through the write-ahead-log path, serialized on one commit
//! lock — the tests below pin the *replacement* guarantee: overlapping
//! commits both land, and no writer's clauses are ever lost.

use clare_core::{ClauseRetrievalServer, CrsOptions, SearchMode};
use clare_kb::{KbBuilder, KbConfig, KnowledgeBase};
use clare_term::parser::parse_term;
use clare_term::{SymbolTable, Term};
use std::sync::atomic::{AtomicBool, Ordering};

/// Builds a KB holding `n` `item/2` facts in the given symbol lineage.
fn item_kb(symbols: Option<SymbolTable>, n: usize) -> (KnowledgeBase, SymbolTable) {
    let mut b = KbBuilder::new();
    if let Some(sy) = symbols {
        *b.symbols_mut() = sy;
    }
    let facts: String = (0..n)
        .map(|i| format!("item(k{}, v{}).", i % 50, i % 7))
        .collect::<Vec<_>>()
        .join("\n");
    b.consult("m", &facts).unwrap();
    let sy = b.symbols_mut().clone();
    (b.finish(KbConfig::default()), sy)
}

/// Retrievals and batches racing `update()` swaps only ever observe one of
/// the two published knowledge bases — never a torn mix, never a panic —
/// and a whole batch sees a single snapshot.
#[test]
fn updates_race_inflight_retrievals_and_batches() {
    // Two KBs in one symbol lineage with distinguishable answer counts.
    let (kb_small, symbols) = item_kb(None, 200); // k13 appears 4 times
    let (kb_large, symbols) = item_kb(Some(symbols), 400); // k13 appears 8 times
    let mut symbols = symbols;
    let single = parse_term("item(k13, X)", &mut symbols).unwrap();
    let batch: Vec<Term> = ["item(k13, X)", "item(k21, Y)", "item(k13, v0)"]
        .iter()
        .map(|q| parse_term(q, &mut symbols).unwrap())
        .collect();

    let expect = |kb: &KnowledgeBase, q: &Term| {
        clare_core::retrieve(kb, q, SearchMode::TwoStage, &CrsOptions::default())
            .stats
            .unified
    };
    let small_single = expect(&kb_small, &single);
    let large_single = expect(&kb_large, &single);
    assert_ne!(small_single, large_single, "the two KBs must be tellable");
    let small_batch: Vec<usize> = batch.iter().map(|q| expect(&kb_small, q)).collect();
    let large_batch: Vec<usize> = batch.iter().map(|q| expect(&kb_large, q)).collect();

    let server = ClauseRetrievalServer::new(kb_small, CrsOptions::default());
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writer: swap between the two KBs as fast as possible.
        scope.spawn(|| {
            let mut flip = false;
            while !stop.load(Ordering::Relaxed) {
                let (kb, sy) = if flip {
                    item_kb(Some(symbols.clone()), 200)
                } else {
                    item_kb(Some(symbols.clone()), 400)
                };
                let _ = sy;
                server.update(kb);
                flip = !flip;
            }
        });
        // Readers: single retrieves across every mode.
        for _ in 0..3 {
            scope.spawn(|| {
                for i in 0..60 {
                    let mode = SearchMode::ALL[i % 4];
                    let unified = server.retrieve(&single, mode).stats.unified;
                    assert!(
                        unified == small_single || unified == large_single,
                        "retrieval saw a torn knowledge base: {unified}"
                    );
                }
            });
        }
        // Readers: batches, which must be internally consistent (one
        // snapshot for all members).
        for _ in 0..3 {
            scope.spawn(|| {
                for i in 0..40 {
                    let mode = if i % 2 == 0 {
                        SearchMode::TwoStage
                    } else {
                        SearchMode::Fs2Only
                    };
                    let got: Vec<usize> = server
                        .retrieve_batch(&batch, mode)
                        .iter()
                        .map(|r| r.stats.unified)
                        .collect();
                    assert!(
                        got == small_batch || got == large_batch,
                        "batch mixed snapshots: {got:?} (expected {small_batch:?} or {large_batch:?})"
                    );
                }
            });
        }
        // Let the readers finish before stopping the writer so swaps keep
        // happening underneath them for the whole test.
        scope.spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(50));
            stop.store(true, Ordering::Relaxed);
        });
    });

    let stats = server.stats();
    assert_eq!(stats.retrievals, (3 * 60 + 3 * 40 * 3) as u64);
    assert_eq!(stats.batches, (3 * 40) as u64);
    assert!(stats.updates > 0, "the writer committed at least one swap");
}

/// Overlapping `UpdateTransaction`s both land: commits serialize through
/// the WAL path instead of the old optimistic rebuild-and-swap, so a
/// transaction begun before another's commit can no longer erase it.
/// (This supersedes the `update_transactions_are_last_writer_wins` test
/// that used to pin the data-losing behaviour.)
#[test]
fn overlapping_update_transactions_lose_neither_writer() {
    let mut b = KbBuilder::new();
    b.consult("m", "p(a).").unwrap();
    let mut symbols = b.symbols_mut().clone();
    let server = ClauseRetrievalServer::new(b.finish(KbConfig::default()), CrsOptions::default());

    let mut tx1 = server.begin_update();
    let mut tx2 = server.begin_update(); // overlaps tx1 from the same state
    tx1.consult("m", "p(b).").unwrap();
    tx2.consult("m", "q(c).").unwrap();
    tx1.commit(KbConfig::default()).unwrap();

    // tx1's world is visible between the commits…
    let p_query = parse_term("p(X)", &mut symbols).unwrap();
    assert_eq!(
        server
            .retrieve(&p_query, SearchMode::SoftwareOnly)
            .stats
            .unified,
        2,
        "tx1 appended p(b)"
    );

    tx2.commit(KbConfig::default()).unwrap();

    // …and stays visible after tx2: the overlapping commit appended to
    // the shared overlay instead of overwriting from its own snapshot.
    assert_eq!(
        server
            .retrieve(&p_query, SearchMode::SoftwareOnly)
            .stats
            .unified,
        2,
        "tx1's p(b) survived tx2's commit"
    );
    let q_query = parse_term("q(X)", &mut server.symbols()).unwrap();
    assert_eq!(
        server
            .retrieve(&q_query, SearchMode::SoftwareOnly)
            .stats
            .unified,
        1,
        "tx2's q(c) landed too"
    );
    assert_eq!(server.stats().updates, 2, "both commits published");
}

/// Many threads committing transactions at once: every writer's clause
/// survives, and the final answer count is exactly the sum of all
/// commits — the commit lock serializes publication, so no interleaving
/// can drop an acknowledged write.
#[test]
fn racing_transaction_commits_preserve_every_write() {
    const WRITERS: usize = 8;
    const PER_WRITER: usize = 10;

    let mut b = KbBuilder::new();
    b.consult("m", "w(seed, c0).").unwrap();
    let mut symbols = b.symbols_mut().clone();
    let server = ClauseRetrievalServer::new(b.finish(KbConfig::default()), CrsOptions::default());

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let server = &server;
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    let mut tx = server.begin_update();
                    tx.consult("m", &format!("w(t{w}, c{i}).")).unwrap();
                    tx.commit(KbConfig::default()).unwrap();
                }
            });
        }
    });

    let query = parse_term("w(X, Y)", &mut symbols).unwrap();
    assert_eq!(
        server
            .retrieve(&query, SearchMode::SoftwareOnly)
            .stats
            .unified,
        1 + WRITERS * PER_WRITER,
        "an acknowledged commit was lost"
    );
    assert_eq!(server.stats().updates, (WRITERS * PER_WRITER) as u64);
}
