//! Property tests for the SCW+MB index: soundness (a clause always
//! matches a query it trivially unifies with) and structural properties
//! of codewords.

use clare_scw::{
    encode_clause_signature, encode_query_descriptor, ClauseAddr, Codeword, IndexFile,
    QueryDescriptor, ScwConfig,
};
use clare_term::parser::parse_term;
use clare_term::SymbolTable;
use proptest::prelude::*;

/// Source strategy for ground-ish clause heads.
fn head_source() -> impl Strategy<Value = String> {
    let arg = prop_oneof![
        "[a-z][a-z0-9]{0,4}".prop_map(|a| a),
        (-500i64..500).prop_map(|v| v.to_string()),
        "[A-Z]".prop_map(|v| v),
        Just("_".to_owned()),
        Just("g(x, Y)".to_owned()),
        Just("[1, 2]".to_owned()),
        Just("[a | T]".to_owned()),
    ];
    prop::collection::vec(arg, 1..6).prop_map(|args| format!("p({})", args.join(", ")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Self-match soundness: every head matches the query that is its own
    /// text (which trivially unifies).
    #[test]
    fn clause_matches_itself(src in head_source()) {
        let mut symbols = SymbolTable::new();
        let head = parse_term(&src, &mut symbols).unwrap();
        let config = ScwConfig::paper();
        let signature = encode_clause_signature(&head, &config);
        let descriptor = encode_query_descriptor(&head, &config);
        prop_assert!(descriptor.matches(&signature), "self-match for {src}");
    }

    /// Replacing any query argument with a fresh variable can only widen
    /// the match (monotone relaxation).
    #[test]
    fn relaxing_a_query_never_loses_matches(
        q_src in head_source(),
        c_src in head_source(),
        victim in 0usize..6,
    ) {
        let mut symbols = SymbolTable::new();
        let q = parse_term(&q_src, &mut symbols).unwrap();
        let c = parse_term(&c_src, &mut symbols).unwrap();
        let config = ScwConfig::paper();
        let signature = encode_clause_signature(&c, &config);
        let strict = encode_query_descriptor(&q, &config).matches(&signature);
        // Relax one argument to a fresh variable.
        let clare_term::Term::Struct { functor, mut args } = q else { unreachable!() };
        let idx = victim % args.len();
        args[idx] = clare_term::Term::Var(clare_term::VarId::new(40));
        let relaxed = clare_term::Term::Struct { functor, args };
        let relaxed_match = encode_query_descriptor(&relaxed, &config).matches(&signature);
        prop_assert!(!strict || relaxed_match, "relaxation lost a match");
    }

    /// Codeword merge is the join: both operands are subsets of the merge,
    /// and subset testing is reflexive and transitive on generated words.
    #[test]
    fn codeword_lattice(keys in prop::collection::vec(any::<u64>(), 0..24)) {
        let config = ScwConfig::paper();
        let mut merged = Codeword::zero(&config);
        let words: Vec<Codeword> = keys
            .iter()
            .map(|k| Codeword::key_bits(&config, *k))
            .collect();
        for w in &words {
            merged.merge(w);
        }
        for w in &words {
            prop_assert!(w.subset_of(&merged));
            prop_assert!(w.subset_of(w));
        }
        prop_assert!(Codeword::zero(&config).subset_of(&merged));
        prop_assert!(merged.count_ones() <= (keys.len() as u32) * config.bits_per_key() as u32);
    }

    /// The index returns addresses in insertion order and never invents
    /// entries.
    #[test]
    fn index_scan_is_an_ordered_subset(heads in prop::collection::vec(head_source(), 1..40)) {
        let mut symbols = SymbolTable::new();
        let config = ScwConfig::paper();
        let mut index = IndexFile::new(config);
        let mut addrs = Vec::new();
        for (i, src) in heads.iter().enumerate() {
            let head = parse_term(src, &mut symbols).unwrap();
            let addr = ClauseAddr::new(0, i as u16);
            index.insert(&head, addr);
            addrs.push(addr);
        }
        let q = parse_term(&heads[0], &mut symbols).unwrap();
        let outcome = index.scan(&q);
        // Subset of inserted addresses, strictly increasing slots.
        for m in &outcome.matches {
            prop_assert!(addrs.contains(m));
        }
        prop_assert!(outcome.matches.windows(2).all(|w| w[0] < w[1]));
        // And the self head is among them.
        prop_assert!(outcome.matches.contains(&addrs[0]));
    }

    /// The packed columnar scan, the sharded parallel scan (at several
    /// worker counts and shard sizes), and the batch path all return
    /// byte-identical outcomes to the retained scalar reference scan:
    /// same addresses, same clause order, same modelled times.
    #[test]
    fn packed_and_parallel_scans_equal_reference(
        heads in prop::collection::vec(head_source(), 1..50),
        query_picks in prop::collection::vec(0usize..50, 1..5),
        shard_entries in 1usize..24,
        parallelism in 1usize..6,
    ) {
        let mut symbols = SymbolTable::new();
        let config = ScwConfig::paper()
            .with_shard_entries(shard_entries)
            .with_parallelism(parallelism);
        let mut index = IndexFile::with_capacity(config, heads.len());
        for (i, src) in heads.iter().enumerate() {
            let head = parse_term(src, &mut symbols).unwrap();
            index.insert(&head, ClauseAddr::new((i / 8) as u32, (i % 8) as u16));
        }
        // Query with a mix of existing heads (guaranteed hits) — the
        // descriptors cover Any/Shallow/Ground argument kinds.
        let descriptors: Vec<QueryDescriptor> = query_picks
            .iter()
            .map(|&pick| {
                let q = parse_term(&heads[pick % heads.len()], &mut symbols).unwrap();
                encode_query_descriptor(&q, index.config())
            })
            .collect();
        let references: Vec<_> = descriptors.iter().map(|d| index.scan_reference(d)).collect();
        for (d, reference) in descriptors.iter().zip(&references) {
            prop_assert_eq!(&index.scan_with_descriptor(d), reference);
            for workers in [1, 2, parallelism, parallelism + 3] {
                prop_assert_eq!(
                    &index.scan_with(d, workers),
                    reference,
                    "diverged at {} workers, shard {}", workers, shard_entries
                );
            }
        }
        let batch = index.scan_batch(&descriptors);
        prop_assert_eq!(&batch, &references, "batch diverged from reference");
    }
}
