//! The cluster router: placement, log-shipping replication, failover.
//!
//! The router is a thin, stateless-about-data layer: it never holds
//! clauses, only connections and replication bookkeeping. Reads and
//! writes route by predicate ([`ShardMap`]); each shard's committed ops
//! stream back to the router over a `SUBSCRIBE_LOG` connection and are
//! forwarded to the shard's backup as `LOG_FRAME` requests, with a
//! resend window bridging dropped, duplicated, or reordered frames
//! (the [`clare_fault::FaultSite::ReplSend`] /
//! [`clare_fault::FaultSite::ReplApply`] chaos sites).
//!
//! Writes are acknowledged *semi-synchronously*: the cluster receipt's
//! `replicated` flag is true only when the backup had durably applied
//! every sequence the commit occupies before the receipt was returned.
//! After a failover, answers from a backup that might be behind the
//! acknowledged write frontier are flagged degraded — delivered, never
//! dropped, but marked.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use clare_core::{CommitReceipt, Retrieval, SearchMode, ServerStats};
use clare_net::{ClientConfig, ErrorCode, NetClient, NetError};
use clare_term::parser::parse_program;
use clare_term::{SymbolTable, Term};

use crate::error::ClusterError;
use crate::map::{Placement, ShardMap};

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Client configuration for every backend connection.
    pub client: ClientConfig,
    /// How long a write waits for the shard's backup to apply it before
    /// the receipt returns with `replicated: false` (and the shard is
    /// marked lagging). Writes never block longer than this.
    pub repl_sync_timeout: Duration,
    /// Consecutive failed health probes before a primary is considered
    /// down and (with [`RouterConfig::auto_failover`]) its backup is
    /// promoted.
    pub heartbeat_misses: u32,
    /// Promote automatically from [`Router::tick_health`]; with this
    /// off, probes still count misses but promotion is manual.
    pub auto_failover: bool,
    /// Connect/read timeout for one health probe.
    pub health_timeout: Duration,
    /// Consecutive breaker-relevant failures (`Busy` refusals, I/O or
    /// protocol failures, timeouts) on one shard before its circuit
    /// breaker opens and requests fast-fail with
    /// [`ClusterError::ShardUnavailable`] instead of piling onto a sick
    /// backend. 0 disables the breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker holds requests off before admitting a
    /// single half-open probe; the probe's outcome closes or re-opens it.
    pub breaker_cooldown: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            client: ClientConfig::default(),
            repl_sync_timeout: Duration::from_secs(2),
            heartbeat_misses: 3,
            auto_failover: true,
            health_timeout: Duration::from_millis(250),
            breaker_threshold: 4,
            breaker_cooldown: Duration::from_millis(250),
        }
    }
}

/// Circuit-breaker state machine for one shard.
///
/// `Closed` (healthy) —K consecutive failures→ `Open` (fast-fail every
/// request) —cooldown elapses→ `HalfOpen` (exactly one probe request
/// admitted; everyone else still fast-fails) —probe succeeds→ `Closed`,
/// —probe fails→ `Open` again with a fresh cooldown.
#[derive(Debug, Clone, Copy)]
enum BreakerState {
    Closed,
    Open { since: Instant },
    HalfOpen,
}

#[derive(Debug)]
struct Breaker {
    consecutive: u32,
    state: BreakerState,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            consecutive: 0,
            state: BreakerState::Closed,
        }
    }
}

/// A commit receipt as the cluster saw it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterReceipt {
    /// The shard primary's own receipt.
    pub receipt: CommitReceipt,
    /// Which shard the write landed on.
    pub shard: usize,
    /// True when the shard's backup had applied every sequence this
    /// commit occupies before the receipt was returned — the write
    /// survives losing the primary. Always false for a shard with no
    /// backup, and for writes whose semi-sync wait timed out (the shard
    /// is then marked lagging and post-failover answers run degraded).
    pub replicated: bool,
}

/// Replication state for one shard's backup.
struct BackupState {
    addr: String,
    /// Shipping (and, after promotion, bootstrap) connection.
    ship: Mutex<NetClient>,
    /// Highest sequence the backup confirmed applied.
    applied: Mutex<u64>,
    applied_cv: Condvar,
    /// Ship records fetched from the primary but not yet confirmed by
    /// the backup, in sequence order. Dropped/reordered/duplicated
    /// forwards recover by re-shipping from here.
    window: Mutex<VecDeque<(u64, Vec<u8>)>>,
    stop: AtomicBool,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

struct Shard {
    index: usize,
    primary_addr: String,
    serving: Mutex<NetClient>,
    backup: Option<Arc<BackupState>>,
    /// The backup was promoted; `serving` now points at it.
    failed_over: AtomicBool,
    /// Set at promotion when the backup may be behind the acknowledged
    /// write frontier: every answer it serves is flagged degraded.
    stale: AtomicBool,
    /// A semi-sync wait timed out: replication is (or was) behind the
    /// acknowledgements this router handed out.
    lagging: AtomicBool,
    /// Highest sequence acknowledged to cluster clients on this shard.
    last_acked: AtomicU64,
    /// Consecutive failed health probes.
    misses: AtomicU64,
    /// Serving-path circuit breaker (see [`BreakerState`]).
    breaker: Mutex<Breaker>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The cluster router. Cheap to share behind an `Arc`; every method
/// takes `&self`.
pub struct Router {
    map: ShardMap,
    cfg: RouterConfig,
    shards: Vec<Arc<Shard>>,
    /// Symbol namespace shared by all backends (snapshot of shard 0 at
    /// connect time; the hello fingerprint pins all bases equal).
    symbols: SymbolTable,
    fingerprint: u64,
}

impl Router {
    /// Connects to every backend in the map, verifies they serve the
    /// same knowledge base (hello fingerprints), and starts one
    /// replication thread per backed-up shard.
    pub fn connect(map: ShardMap, cfg: RouterConfig) -> Result<Router, ClusterError> {
        if map.shards.is_empty() {
            return Err(ClusterError::Unroutable("an empty shard map".to_owned()));
        }
        let mut expected = map.fingerprint;
        let mut check = |addr: &str, got: u64| -> Result<(), ClusterError> {
            match expected {
                Some(want) if want != got => Err(ClusterError::FingerprintMismatch {
                    addr: addr.to_owned(),
                    expected: want,
                    got,
                }),
                Some(_) => Ok(()),
                None => {
                    expected = Some(got);
                    Ok(())
                }
            }
        };

        let mut shards = Vec::with_capacity(map.shards.len());
        for (index, spec) in map.shards.iter().enumerate() {
            let serving = NetClient::connect(spec.primary.as_str(), cfg.client.clone())?;
            check(&spec.primary, serving.kb_fingerprint())?;
            let backup = match &spec.backup {
                Some(addr) => {
                    let ship = NetClient::connect(addr.as_str(), cfg.client.clone())?;
                    check(addr, ship.kb_fingerprint())?;
                    Some(Arc::new(BackupState {
                        addr: addr.clone(),
                        ship: Mutex::new(ship),
                        applied: Mutex::new(0),
                        applied_cv: Condvar::new(),
                        window: Mutex::new(VecDeque::new()),
                        stop: AtomicBool::new(false),
                        thread: Mutex::new(None),
                    }))
                }
                None => None,
            };
            shards.push(Arc::new(Shard {
                index,
                primary_addr: spec.primary.clone(),
                serving: Mutex::new(serving),
                backup,
                failed_over: AtomicBool::new(false),
                stale: AtomicBool::new(false),
                lagging: AtomicBool::new(false),
                last_acked: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                breaker: Mutex::new(Breaker::new()),
            }));
        }

        let symbols = lock(&shards[0].serving).symbols()?;
        let fingerprint = expected.unwrap_or(0);
        let router = Router {
            map,
            cfg,
            shards,
            symbols,
            fingerprint,
        };
        for shard in &router.shards {
            router.start_repl_thread(shard);
        }
        Ok(router)
    }

    /// The knowledge-base fingerprint every backend agreed on.
    pub fn kb_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether the shard's backup has been promoted.
    pub fn is_failed_over(&self, shard: usize) -> bool {
        self.shards
            .get(shard)
            .is_some_and(|s| s.failed_over.load(Ordering::Relaxed))
    }

    /// The symbol namespace shared by every backend. Parse query terms
    /// against a clone of this table, exactly like the single-node
    /// client idiom. Predicates asserted at runtime should be
    /// pre-declared in the base knowledge base so their symbols exist
    /// in every backend's namespace.
    pub fn symbols(&self) -> SymbolTable {
        self.symbols.clone()
    }

    // ------------------------------------------------------------------
    // Placement
    // ------------------------------------------------------------------

    /// A stable byte signature for a bound first argument, or `None`
    /// when it cannot pin a hot sub-shard (variables, compounds).
    fn arg_sig(term: &Term, symbols: &SymbolTable) -> Option<Vec<u8>> {
        match term {
            Term::Atom(sym) => symbols.try_atom_text(*sym).map(|text| {
                let mut sig = Vec::with_capacity(text.len() + 2);
                sig.extend_from_slice(b"a:");
                sig.extend_from_slice(text.as_bytes());
                sig
            }),
            Term::Int(value) => {
                let mut sig = Vec::with_capacity(10);
                sig.extend_from_slice(b"i:");
                sig.extend_from_slice(&value.to_le_bytes());
                Some(sig)
            }
            _ => None,
        }
    }

    fn place_term(&self, term: &Term) -> Result<Placement, ClusterError> {
        let (functor, arity) = term
            .functor_arity()
            .ok_or_else(|| ClusterError::Unroutable("a term with no functor".to_owned()))?;
        let name = self
            .symbols
            .try_atom_text(functor)
            .ok_or_else(|| {
                ClusterError::Unroutable(
                    "a predicate outside the cluster's symbol namespace".to_owned(),
                )
            })?
            .to_owned();
        let sig = match term {
            Term::Struct { args, .. } => Self::arg_sig(&args[0], &self.symbols),
            _ => None,
        };
        Ok(self.map.place(&name, arity, sig.as_deref()))
    }

    /// Clause-head placement during a write: parsed against `scratch`
    /// (the router's namespace plus any names new in this source).
    fn place_head(&self, head: &Term, scratch: &SymbolTable) -> Result<usize, ClusterError> {
        let (functor, arity) = head
            .functor_arity()
            .ok_or_else(|| ClusterError::Unroutable("a clause with no head functor".to_owned()))?;
        let name = scratch
            .try_atom_text(functor)
            .ok_or_else(|| ClusterError::Unroutable("an unresolvable head functor".to_owned()))?;
        let sig = match head {
            Term::Struct { args, .. } => Self::arg_sig(&args[0], scratch),
            _ => None,
        };
        match self.map.place(name, arity, sig.as_deref()) {
            Placement::One(shard) => Ok(shard),
            Placement::All => Err(ClusterError::Unroutable(format!(
                "a clause of hot predicate {name}/{arity} without a bound first argument"
            ))),
        }
    }

    // ------------------------------------------------------------------
    // Circuit breaker
    // ------------------------------------------------------------------

    /// Whether this failure says something about the *shard's* health
    /// (overload refusals, dead or garbled transport, timeouts) rather
    /// than about the one request (parse rejections, budget trips, a
    /// replication gap). Only health failures feed the breaker —
    /// otherwise a stream of malformed writes would take a healthy
    /// shard out of rotation.
    fn breaker_relevant(e: &ClusterError) -> bool {
        match e {
            ClusterError::Net(net) => match net {
                NetError::Busy { .. } => true,
                NetError::Remote { code, .. } => *code == ErrorCode::Busy,
                // Io, framing, protocol: the transport itself died or
                // desynced — the connection-fatal set.
                other => other.is_connection_fatal(),
            },
            _ => false,
        }
    }

    /// Admission check before touching a shard's backend. `Ok(())`
    /// means proceed (and, in half-open, that this request *is* the
    /// probe); `Err` is the typed fast-fail.
    fn breaker_admit(&self, shard: &Shard) -> Result<(), ClusterError> {
        if self.cfg.breaker_threshold == 0 {
            return Ok(());
        }
        let mut breaker = lock(&shard.breaker);
        match breaker.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open { since } => {
                let elapsed = since.elapsed();
                if elapsed >= self.cfg.breaker_cooldown {
                    // Cooldown over: this request becomes the probe.
                    breaker.state = BreakerState::HalfOpen;
                    clare_trace::metrics().router_breaker_half_open_probes.inc();
                    Ok(())
                } else {
                    clare_trace::metrics().router_breaker_rejections.inc();
                    Err(ClusterError::ShardUnavailable {
                        shard: shard.index,
                        retry_after: self.cfg.breaker_cooldown - elapsed,
                    })
                }
            }
            BreakerState::HalfOpen => {
                // A probe is already in flight; keep everyone else out
                // until it resolves.
                clare_trace::metrics().router_breaker_rejections.inc();
                Err(ClusterError::ShardUnavailable {
                    shard: shard.index,
                    retry_after: self.cfg.breaker_cooldown,
                })
            }
        }
    }

    /// Feeds one backend conversation's outcome into the shard's
    /// breaker. Success closes it from any state; a health-relevant
    /// failure opens it after [`RouterConfig::breaker_threshold`]
    /// consecutive misses — or immediately when it was the half-open
    /// probe that failed.
    fn breaker_record(&self, shard: &Shard, outcome: Result<(), &ClusterError>) {
        if self.cfg.breaker_threshold == 0 {
            return;
        }
        let mut breaker = lock(&shard.breaker);
        match outcome {
            Ok(()) => {
                breaker.consecutive = 0;
                breaker.state = BreakerState::Closed;
            }
            Err(e) if Self::breaker_relevant(e) => {
                breaker.consecutive = breaker.consecutive.saturating_add(1);
                let probe_failed = matches!(breaker.state, BreakerState::HalfOpen);
                if probe_failed || breaker.consecutive >= self.cfg.breaker_threshold {
                    if !matches!(breaker.state, BreakerState::Open { .. }) {
                        clare_trace::metrics().router_breaker_opens.inc();
                    }
                    breaker.state = BreakerState::Open {
                        since: Instant::now(),
                    };
                }
            }
            // Request-specific failures neither trip nor reset: they say
            // nothing about shard health either way.
            Err(_) => {}
        }
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Routes one retrieval. Hot predicates queried without a bound
    /// first argument fan out to every shard and the answers merge in
    /// shard order; everything else touches exactly one backend.
    pub fn retrieve(&self, query: &Term, mode: SearchMode) -> Result<Retrieval, ClusterError> {
        clare_trace::metrics().cluster_routed.inc();
        match self.place_term(query)? {
            Placement::One(shard) => self.retrieve_on(shard, query, mode),
            Placement::All => {
                let mut parts = Vec::with_capacity(self.shards.len());
                for shard in 0..self.shards.len() {
                    parts.push(self.retrieve_on(shard, query, mode)?);
                }
                merge_retrievals(parts).ok_or_else(|| {
                    ClusterError::Unroutable("a broadcast with no shards".to_owned())
                })
            }
        }
    }

    fn retrieve_on(
        &self,
        shard: usize,
        query: &Term,
        mode: SearchMode,
    ) -> Result<Retrieval, ClusterError> {
        let shard = &self.shards[shard];
        self.breaker_admit(shard)?;
        let result = lock(&shard.serving)
            .retrieve(query, mode)
            .map_err(ClusterError::from);
        self.breaker_record(shard, result.as_ref().map(|_| ()));
        let mut retrieval = result?;
        if shard.failed_over.load(Ordering::Relaxed) && shard.stale.load(Ordering::Relaxed) {
            retrieval.mark_degraded();
            clare_trace::metrics().cluster_degraded_answers.inc();
        }
        Ok(retrieval)
    }

    /// Aggregated service statistics across every serving backend.
    pub fn stats(&self) -> Result<ServerStats, ClusterError> {
        let mut total = ServerStats::default();
        for shard in &self.shards {
            let s = lock(&shard.serving).stats()?;
            total.retrievals += s.retrievals;
            total.batches += s.batches;
            total.solves += s.solves;
            total.updates += s.updates;
            total.rejected += s.rejected;
            total.degraded += s.degraded;
            total.total_elapsed += s.total_elapsed;
        }
        Ok(total)
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Routes a durable assert to the owning shard's primary, then
    /// waits (bounded) for the backup to apply it.
    pub fn assert(&self, module: &str, source: &str) -> Result<ClusterReceipt, ClusterError> {
        self.write(module, source, true)
    }

    /// Routes a durable retract; same placement and semi-sync rules as
    /// [`Router::assert`].
    pub fn retract(&self, module: &str, source: &str) -> Result<ClusterReceipt, ClusterError> {
        self.write(module, source, false)
    }

    fn write(
        &self,
        module: &str,
        source: &str,
        is_assert: bool,
    ) -> Result<ClusterReceipt, ClusterError> {
        let mut scratch = self.symbols.clone();
        let clauses =
            parse_program(source, &mut scratch).map_err(|e| ClusterError::Parse(e.to_string()))?;
        let mut target: Option<usize> = None;
        for clause in &clauses {
            let shard = self.place_head(clause.head(), &scratch)?;
            match target {
                None => target = Some(shard),
                Some(first) if first != shard => {
                    return Err(ClusterError::CrossShardWrite {
                        first,
                        other: shard,
                    })
                }
                Some(_) => {}
            }
        }
        let target =
            target.ok_or_else(|| ClusterError::Parse("no clauses in the source".to_owned()))?;

        clare_trace::metrics().cluster_routed.inc();
        let shard = &self.shards[target];
        self.breaker_admit(shard)?;
        let result = {
            let mut serving = lock(&shard.serving);
            if is_assert {
                serving.assert(module, source)
            } else {
                serving.retract(module, source)
            }
        }
        .map_err(ClusterError::from);
        self.breaker_record(shard, result.as_ref().map(|_| ()));
        let receipt = result?;

        let replicated = if receipt.seqs.end > receipt.seqs.start {
            let last = receipt.seqs.end - 1;
            shard.last_acked.fetch_max(last, Ordering::Relaxed);
            self.await_replication(shard, last)
        } else {
            // A no-op commit occupies no sequence; there is nothing to
            // replicate, so it is as safe as the shard's topology.
            shard.backup.is_some()
        };
        Ok(ClusterReceipt {
            receipt,
            shard: target,
            replicated,
        })
    }

    /// Blocks until the shard's backup applied through `last`, the
    /// semi-sync timeout elapses (marking the shard lagging), or the
    /// shard has no backup.
    fn await_replication(&self, shard: &Shard, last: u64) -> bool {
        let Some(backup) = &shard.backup else {
            return false;
        };
        if shard.failed_over.load(Ordering::Relaxed) {
            // The backup *is* the serving node now; nothing ships past it.
            return false;
        }
        let deadline = Instant::now() + self.cfg.repl_sync_timeout;
        loop {
            {
                let applied = lock(&backup.applied);
                if *applied >= last {
                    return true;
                }
                let now = Instant::now();
                if now < deadline {
                    // Wake periodically to nudge window recovery below
                    // (a dropped forward resends from the window).
                    let wait = (deadline - now).min(Duration::from_millis(20));
                    let (guard, _) = backup
                        .applied_cv
                        .wait_timeout(applied, wait)
                        .unwrap_or_else(|e| e.into_inner());
                    if *guard >= last {
                        return true;
                    }
                }
            }
            if let Some(applied) = Self::drain_window(backup, false) {
                if applied >= last {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                shard.lagging.store(true, Ordering::Relaxed);
                return false;
            }
        }
    }

    // ------------------------------------------------------------------
    // Replication
    // ------------------------------------------------------------------

    fn start_repl_thread(&self, shard: &Arc<Shard>) {
        let Some(backup) = shard.backup.clone() else {
            return;
        };
        let shard = Arc::clone(shard);
        let mut sub_cfg = self.cfg.client.clone();
        // The subscription socket mostly sits in a blocking read; a
        // short timeout keeps the stop flag responsive.
        sub_cfg.read_timeout = Duration::from_millis(100);
        sub_cfg.busy_retries = 0;
        sub_cfg.reconnect_retries = 0;
        let handle = std::thread::Builder::new()
            .name(format!("clare-repl-{}", shard.index))
            .spawn({
                let shard = Arc::clone(&shard);
                let backup = Arc::clone(&backup);
                move || repl_loop(&shard, &backup, &sub_cfg)
            });
        match handle {
            Ok(handle) => *lock(&backup.thread) = Some(handle),
            Err(_) => shard.lagging.store(true, Ordering::Relaxed),
        }
    }

    /// Ships as much of the window as the backup will take right now.
    /// Returns the backup's new applied frontier when it moved.
    ///
    /// With `inject` set this is a [`clare_fault::FaultSite::ReplSend`]
    /// site: a frame can be held back (drop — it stays in the window
    /// and a later pass resends), shipped after its successor
    /// (reorder — the backup answers `ReplGap` and an in-order recovery
    /// pass follows), or shipped twice (duplicate — the second apply is
    /// an idempotent skip).
    fn drain_window(backup: &BackupState, inject: bool) -> Option<u64> {
        let mut window = lock(&backup.window);
        let mut ship = lock(&backup.ship);
        let mut inject = inject && clare_fault::active();
        let mut frontier = None;
        let mut i = 0;
        while i < window.len() {
            let (seq, bytes) = window[i].clone();
            if inject {
                match clare_fault::decide(clare_fault::FaultSite::ReplSend, seq) {
                    clare_fault::FaultAction::Drop => break,
                    clare_fault::FaultAction::Delay { .. } => {
                        // Reorder: ship the successor first; the gap
                        // reply downgrades to an in-order recovery pass.
                        i += 1;
                        continue;
                    }
                    clare_fault::FaultAction::Truncate { .. } => {
                        // Duplicate: one extra ship, then the normal one.
                        clare_trace::metrics().cluster_repl_frames.inc();
                        let _ = ship.ship_log_frame(bytes.clone());
                    }
                    _ => {}
                }
            }
            clare_trace::metrics().cluster_repl_frames.inc();
            match ship.ship_log_frame(bytes) {
                Ok(applied) => {
                    while window.front().is_some_and(|(s, _)| *s <= applied) {
                        window.pop_front();
                    }
                    if applied > frontier.unwrap_or(0) {
                        frontier = Some(applied);
                    }
                    i = 0;
                }
                Err(NetError::Remote {
                    code: ErrorCode::ReplGap,
                    ..
                }) => {
                    // Out-of-order ship (or a hole the backup noticed):
                    // recover strictly in order, faults off.
                    inject = false;
                    i = 0;
                }
                Err(_) => break,
            }
        }
        drop(ship);
        drop(window);
        if let Some(applied) = frontier {
            let mut guard = lock(&backup.applied);
            if applied > *guard {
                *guard = applied;
            }
            backup.applied_cv.notify_all();
        }
        frontier
    }

    // ------------------------------------------------------------------
    // Health and failover
    // ------------------------------------------------------------------

    /// Probes every non-failed-over primary once; after
    /// [`RouterConfig::heartbeat_misses`] consecutive failures (and with
    /// auto-failover on) the backup is promoted. Returns the shards
    /// promoted by this tick. Call periodically — the `clare-cluster`
    /// binary does so from a timer thread; tests call it directly for
    /// determinism.
    pub fn tick_health(&self) -> Vec<usize> {
        let mut promoted = Vec::new();
        for shard in &self.shards {
            if shard.failed_over.load(Ordering::Relaxed) {
                continue;
            }
            if self.probe(&shard.primary_addr) {
                shard.misses.store(0, Ordering::Relaxed);
                continue;
            }
            let misses = shard.misses.fetch_add(1, Ordering::Relaxed) + 1;
            if misses >= u64::from(self.cfg.heartbeat_misses)
                && self.cfg.auto_failover
                && shard.backup.is_some()
                && self.promote(shard.index).is_ok()
            {
                promoted.push(shard.index);
            }
        }
        promoted
    }

    /// One health probe: a fresh connection plus a ping, under the
    /// health timeout. A connection-limit refusal still counts as alive.
    fn probe(&self, addr: &str) -> bool {
        let cfg = ClientConfig {
            connect_timeout: self.cfg.health_timeout,
            read_timeout: self.cfg.health_timeout,
            write_timeout: self.cfg.health_timeout,
            busy_retries: 0,
            reconnect_retries: 0,
            ..self.cfg.client.clone()
        };
        match NetClient::connect(addr, cfg) {
            Ok(mut client) => client.ping().is_ok(),
            Err(NetError::Busy { .. }) => true,
            Err(_) => false,
        }
    }

    /// Promotes the shard's backup to serving: stops log shipping,
    /// flushes what remains of the resend window, and points the
    /// shard's serving connection at the backup. When the backup could
    /// not be brought up to the acknowledged write frontier the shard
    /// is marked stale and every answer it serves is flagged degraded.
    pub fn promote(&self, shard: usize) -> Result<(), ClusterError> {
        let shard = self
            .shards
            .get(shard)
            .ok_or(ClusterError::NoBackup(shard))?;
        let Some(backup) = &shard.backup else {
            return Err(ClusterError::NoBackup(shard.index));
        };
        if shard.failed_over.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        backup.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = lock(&backup.thread).take() {
            let _ = handle.join();
        }
        // Final flush: every record the primary pushed before dying gets
        // one last chance to reach the backup (faults off — this is
        // recovery, and injected refusals at the backup just retry).
        for _ in 0..200 {
            Self::drain_window(backup, false);
            if lock(&backup.window).is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let behind = *lock(&backup.applied) < shard.last_acked.load(Ordering::Relaxed);
        let stale =
            shard.lagging.load(Ordering::Relaxed) || behind || !lock(&backup.window).is_empty();
        shard.stale.store(stale, Ordering::Relaxed);

        let fresh = NetClient::connect(backup.addr.as_str(), self.cfg.client.clone())?;
        *lock(&shard.serving) = fresh;
        clare_trace::metrics().cluster_failovers.inc();
        Ok(())
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        for shard in &self.shards {
            if let Some(backup) = &shard.backup {
                backup.stop.store(true, Ordering::Relaxed);
                if let Some(handle) = lock(&backup.thread).take() {
                    let _ = handle.join();
                }
            }
        }
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("shards", &self.shards.len())
            .field("hot", &self.map.hot)
            .field("fingerprint", &self.fingerprint)
            .finish_non_exhaustive()
    }
}

/// One shard's replication pump: subscribe to the primary's commit log,
/// forward each pushed record to the backup through the resend window,
/// and report the backup's applied frontier back to the primary.
fn repl_loop(shard: &Arc<Shard>, backup: &Arc<BackupState>, sub_cfg: &ClientConfig) {
    let mut sub: Option<NetClient> = None;
    while !backup.stop.load(Ordering::Relaxed) {
        if sub.is_none() {
            let from = lock(&backup.window)
                .back()
                .map(|(seq, _)| *seq)
                .unwrap_or_else(|| *lock(&backup.applied));
            match NetClient::connect(shard.primary_addr.as_str(), sub_cfg.clone()) {
                Ok(mut client) => match client.subscribe_log(from) {
                    Ok(_) => sub = Some(client),
                    Err(NetError::Remote {
                        code: ErrorCode::ReplGap,
                        ..
                    }) => {
                        // The primary compacted past our frontier; the
                        // log can no longer bridge the difference.
                        shard.lagging.store(true, Ordering::Relaxed);
                        return;
                    }
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(50));
                        continue;
                    }
                },
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            }
        }
        let Some(client) = sub.as_mut() else {
            continue;
        };
        match client.next_log_frame() {
            Ok(bytes) => {
                let Some(record) = clare_wal::decode_ship_record(&bytes) else {
                    continue;
                };
                {
                    let mut window = lock(&backup.window);
                    if window.back().is_none_or(|(seq, _)| *seq < record.seq) {
                        window.push_back((record.seq, bytes));
                    }
                }
                if let Some(applied) = Router::drain_window(backup, true) {
                    let _ = client.repl_ack(applied);
                }
            }
            Err(NetError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle: opportunistically re-ship anything still queued
                // (recovers frames a fault held back).
                Router::drain_window(backup, true);
            }
            Err(_) => sub = None,
        }
    }
}

/// Merges per-shard answers for a hot predicate queried without a bound
/// first argument. Candidates concatenate in shard order; counts sum;
/// the modelled wall-clock is the slowest shard (they run in parallel)
/// while component times sum (total hardware/host work done).
pub fn merge_retrievals(parts: Vec<Retrieval>) -> Option<Retrieval> {
    let mut iter = parts.into_iter();
    let mut merged = iter.next()?;
    for part in iter {
        merged.candidates.extend(part.candidates);
        let s = &mut merged.stats;
        let p = part.stats;
        // Every shard holds the full base file, so base-derived totals
        // agree; overlay additions differ per shard and sum.
        s.clauses_total = s.clauses_total.max(p.clauses_total);
        s.after_fs1 = match (s.after_fs1, p.after_fs1) {
            (Some(a), Some(b)) => Some(a + b),
            (a, b) => a.or(b),
        };
        s.after_fs2 = match (s.after_fs2, p.after_fs2) {
            (Some(a), Some(b)) => Some(a + b),
            (a, b) => a.or(b),
        };
        s.candidates += p.candidates;
        s.unified += p.unified;
        s.false_drops += p.false_drops;
        s.disk_time += p.disk_time;
        s.fs1_time += p.fs1_time;
        s.fs2_time += p.fs2_time;
        s.software_filter_time += p.software_filter_time;
        s.full_unify_time += p.full_unify_time;
        s.elapsed = s.elapsed.max(p.elapsed);
        s.bytes_from_disk += p.bytes_from_disk;
        s.result_memory_overflows += p.result_memory_overflows;
        s.quarantined_tracks += p.quarantined_tracks;
        s.degraded |= p.degraded;
    }
    Some(merged)
}
