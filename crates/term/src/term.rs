//! Prolog terms and clauses.
//!
//! The term shape mirrors the CLARE hardware type scheme (Table A1 of the
//! paper) rather than classical Prolog cons-pair lists: lists are first-class
//! with an explicit optional tail, because the hardware distinguishes
//! *terminated* list tags (`111aaaaa` / `110aaaaa`) from *unterminated* list
//! tags (`101aaaaa` / `100aaaaa`), and anonymous variables (`0x20`) are
//! distinct from named variables.

#[cfg(test)]
use crate::symbol::SymbolTable;
use crate::symbol::{FloatId, Symbol};
use std::fmt;

/// A clause-scoped variable identity.
///
/// Variables are numbered by first occurrence within a clause (or query).
/// Two occurrences of the same source-text name in the same clause share one
/// `VarId`; the PIF compiler later classifies each *occurrence* as "first"
/// or "subsequent", which is where the paper's `1st-QV`/`Sub-QV` and
/// `1st-DV`/`Sub-DV` type tags come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(u32);

impl VarId {
    /// Creates a variable id from its first-occurrence index.
    pub fn new(index: u32) -> Self {
        VarId(index)
    }

    /// The first-occurrence index of this variable within its clause.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_V{}", self.0)
    }
}

/// Position of a clause within its predicate.
///
/// Prolog attaches meaning to clause order (the paper stresses that a
/// general-purpose knowledge base must preserve the user-specified ordering,
/// unlike relational-database coupling). `ClauseId` is that order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClauseId(u32);

impl ClauseId {
    /// Creates a clause id from a zero-based position.
    pub fn new(index: u32) -> Self {
        ClauseId(index)
    }

    /// Zero-based position of the clause in its predicate.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClauseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clause#{}", self.0)
    }
}

/// A Prolog term.
///
/// # Examples
///
/// ```
/// use clare_term::{SymbolTable, Term};
///
/// let mut symbols = SymbolTable::new();
/// let likes = symbols.intern_atom("likes");
/// let mary = symbols.intern_atom("mary");
/// let t = Term::Struct {
///     functor: likes,
///     args: vec![Term::Atom(mary), Term::Var(clare_term::VarId::new(0))],
/// };
/// assert_eq!(t.arity(), 2);
/// assert!(!t.is_ground());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A named constant, interned in the symbol table.
    Atom(Symbol),
    /// An integer constant. PIF encodes these in-line (28-bit two's
    /// complement); the encoder rejects values outside that range.
    Int(i64),
    /// A floating point constant, interned in the symbol table.
    Float(FloatId),
    /// A named variable, numbered by first occurrence within the clause.
    Var(VarId),
    /// The anonymous variable `_`: matches anything, binds nothing
    /// (type tag `0x20` in Table A1).
    Anon,
    /// A compound term `functor(arg1, ..., argN)` with `N >= 1`.
    Struct {
        /// Interned functor name.
        functor: Symbol,
        /// Argument terms; never empty (a zero-arity "structure" is an
        /// [`Term::Atom`]).
        args: Vec<Term>,
    },
    /// A list `[e1, ..., eN]` (terminated, `tail == None`) or
    /// `[e1, ..., eN | Tail]` (unterminated, `tail == Some(..)`).
    ///
    /// The empty terminated list is `List { items: vec![], tail: None }`,
    /// i.e. `[]`.
    List {
        /// The listed elements.
        items: Vec<Term>,
        /// `None` for a proper (terminated) list; `Some(tail)` for a partial
        /// list such as `[a, b | T]`. A well-formed tail is a variable or
        /// another list, but any term is representable (as in Prolog).
        tail: Option<Box<Term>>,
    },
}

impl Term {
    /// Builds the empty list `[]`.
    pub fn nil() -> Self {
        Term::List {
            items: Vec::new(),
            tail: None,
        }
    }

    /// The number of arguments of a structure, elements of a list, and zero
    /// for everything else.
    ///
    /// This matches the "arity" the hardware loads into its element counters
    /// when matching complex terms.
    pub fn arity(&self) -> usize {
        match self {
            Term::Struct { args, .. } => args.len(),
            Term::List { items, .. } => items.len(),
            _ => 0,
        }
    }

    /// Returns the predicate indicator `(functor, arity)` if this term can
    /// head a clause: a structure, or an atom (arity 0).
    pub fn functor_arity(&self) -> Option<(Symbol, usize)> {
        match self {
            Term::Atom(sym) => Some((*sym, 0)),
            Term::Struct { functor, args } => Some((*functor, args.len())),
            _ => None,
        }
    }

    /// True if the term contains no variables (named or anonymous).
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Atom(_) | Term::Int(_) | Term::Float(_) => true,
            Term::Var(_) | Term::Anon => false,
            Term::Struct { args, .. } => args.iter().all(Term::is_ground),
            Term::List { items, tail } => {
                items.iter().all(Term::is_ground) && tail.as_deref().is_none_or(Term::is_ground)
            }
        }
    }

    /// True for atoms, integers and floats — the paper's "simple terms"
    /// category, which the hardware compares by plain equality.
    pub fn is_simple(&self) -> bool {
        matches!(self, Term::Atom(_) | Term::Int(_) | Term::Float(_))
    }

    /// True for structures and lists — the paper's "complex terms" category,
    /// which the hardware matches element-by-element with counters.
    pub fn is_complex(&self) -> bool {
        matches!(self, Term::Struct { .. } | Term::List { .. })
    }

    /// True for named or anonymous variables.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_) | Term::Anon)
    }

    /// True for an unterminated ("unlimited" in the paper's words) list,
    /// e.g. `[a, b | Tail]`.
    pub fn is_partial_list(&self) -> bool {
        matches!(self, Term::List { tail: Some(_), .. })
    }

    /// Immediate subterms: structure arguments, list items plus tail.
    pub fn children(&self) -> impl Iterator<Item = &Term> {
        let (args, tail): (&[Term], Option<&Term>) = match self {
            Term::Struct { args, .. } => (args.as_slice(), None),
            Term::List { items, tail } => (items.as_slice(), tail.as_deref()),
            _ => (&[], None),
        };
        args.iter().chain(tail)
    }
}

/// A stored clause: a fact (`body` empty) or a rule (`head :- body`).
///
/// The clause owns the name table for its variables so that tooling can print
/// source-faithful variable names; [`VarId`]s index into it.
///
/// # Examples
///
/// ```
/// use clare_term::{SymbolTable, parser::parse_clause};
///
/// let mut symbols = SymbolTable::new();
/// let clause = parse_clause("grandparent(X, Z) :- parent(X, Y), parent(Y, Z).", &mut symbols)?;
/// assert!(!clause.is_fact());
/// assert_eq!(clause.body().len(), 2);
/// assert_eq!(clause.var_names(), ["X", "Z", "Y"]);
/// # Ok::<(), clare_term::parser::ParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    head: Term,
    body: Vec<Term>,
    var_names: Vec<String>,
}

/// Error from [`Clause::new`]: the head was not an atom or structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidHeadError;

impl fmt::Display for InvalidHeadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("clause head must be an atom or a structure")
    }
}

impl std::error::Error for InvalidHeadError {}

impl Clause {
    /// Creates a clause, validating that the head is callable.
    ///
    /// `var_names[i]` is the source name of `VarId::new(i)`; pass generated
    /// names (or an appropriately sized vector of placeholders) for
    /// synthesised clauses.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidHeadError`] if `head` is not an atom or structure.
    pub fn new(
        head: Term,
        body: Vec<Term>,
        var_names: Vec<String>,
    ) -> Result<Self, InvalidHeadError> {
        if head.functor_arity().is_none() {
            return Err(InvalidHeadError);
        }
        Ok(Clause {
            head,
            body,
            var_names,
        })
    }

    /// Creates a ground-headed fact with no variables.
    ///
    /// # Panics
    ///
    /// Panics if `head` is not an atom or structure. Use [`Clause::new`] for
    /// fallible construction.
    pub fn fact(head: Term) -> Self {
        Clause::new(head, Vec::new(), Vec::new()).expect("fact head must be callable")
    }

    /// The clause head.
    pub fn head(&self) -> &Term {
        &self.head
    }

    /// The body goals; empty for a fact.
    pub fn body(&self) -> &[Term] {
        &self.body
    }

    /// Source names for this clause's variables, indexed by [`VarId`].
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// Number of distinct named variables in the clause.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// True if the clause has no body goals.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// True if the clause is a fact whose head is ground — an *extensional*
    /// clause in the paper's EDB/IDB discussion.
    pub fn is_ground_fact(&self) -> bool {
        self.is_fact() && self.head.is_ground()
    }

    /// The predicate indicator of the head.
    pub fn predicate(&self) -> (Symbol, usize) {
        self.head
            .functor_arity()
            .expect("clause invariant: head is callable")
    }

    /// Consumes the clause, returning `(head, body, var_names)`.
    pub fn into_parts(self) -> (Term, Vec<Term>, Vec<String>) {
        (self.head, self.body, self.var_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SymbolTable {
        SymbolTable::new()
    }

    #[test]
    fn arity_of_each_shape() {
        let mut t = table();
        let f = t.intern_atom("f");
        assert_eq!(Term::Atom(f).arity(), 0);
        assert_eq!(Term::Int(7).arity(), 0);
        assert_eq!(
            Term::Struct {
                functor: f,
                args: vec![Term::Int(1), Term::Int(2)]
            }
            .arity(),
            2
        );
        assert_eq!(
            Term::List {
                items: vec![Term::Int(1)],
                tail: Some(Box::new(Term::Var(VarId::new(0))))
            }
            .arity(),
            1
        );
        assert_eq!(Term::nil().arity(), 0);
    }

    #[test]
    fn functor_arity_only_for_callable() {
        let mut t = table();
        let f = t.intern_atom("f");
        assert_eq!(Term::Atom(f).functor_arity(), Some((f, 0)));
        assert_eq!(
            Term::Struct {
                functor: f,
                args: vec![Term::Anon]
            }
            .functor_arity(),
            Some((f, 1))
        );
        assert_eq!(Term::Int(3).functor_arity(), None);
        assert_eq!(Term::nil().functor_arity(), None);
        assert_eq!(Term::Var(VarId::new(0)).functor_arity(), None);
    }

    #[test]
    fn groundness() {
        let mut t = table();
        let f = t.intern_atom("f");
        let ground = Term::Struct {
            functor: f,
            args: vec![Term::Int(1), Term::nil()],
        };
        assert!(ground.is_ground());
        let open = Term::Struct {
            functor: f,
            args: vec![Term::Int(1), Term::Var(VarId::new(0))],
        };
        assert!(!open.is_ground());
        let anon_list = Term::List {
            items: vec![Term::Int(1)],
            tail: Some(Box::new(Term::Anon)),
        };
        assert!(!anon_list.is_ground());
    }

    #[test]
    fn category_predicates_partition() {
        let mut t = table();
        let a = t.intern_atom("a");
        let fid = t.intern_float(1.0);
        let cases = [
            Term::Atom(a),
            Term::Int(0),
            Term::Float(fid),
            Term::Var(VarId::new(0)),
            Term::Anon,
            Term::Struct {
                functor: a,
                args: vec![Term::Int(1)],
            },
            Term::nil(),
        ];
        for term in &cases {
            let cats = [term.is_simple(), term.is_var(), term.is_complex()];
            assert_eq!(
                cats.iter().filter(|&&b| b).count(),
                1,
                "exactly one category for {term:?}"
            );
        }
    }

    #[test]
    fn partial_list_detection() {
        assert!(!Term::nil().is_partial_list());
        let partial = Term::List {
            items: vec![Term::Int(1)],
            tail: Some(Box::new(Term::Var(VarId::new(0)))),
        };
        assert!(partial.is_partial_list());
    }

    #[test]
    fn children_cover_args_and_tail() {
        let mut t = table();
        let f = t.intern_atom("f");
        let s = Term::Struct {
            functor: f,
            args: vec![Term::Int(1), Term::Int(2)],
        };
        assert_eq!(s.children().count(), 2);
        let l = Term::List {
            items: vec![Term::Int(1)],
            tail: Some(Box::new(Term::Anon)),
        };
        assert_eq!(l.children().count(), 2);
        assert_eq!(Term::Int(9).children().count(), 0);
    }

    #[test]
    fn clause_head_validation() {
        let mut t = table();
        let p = t.intern_atom("p");
        assert!(Clause::new(Term::Atom(p), vec![], vec![]).is_ok());
        assert_eq!(
            Clause::new(Term::Int(1), vec![], vec![]),
            Err(InvalidHeadError)
        );
        assert_eq!(
            Clause::new(Term::Var(VarId::new(0)), vec![], vec![]),
            Err(InvalidHeadError)
        );
    }

    #[test]
    fn ground_fact_classification() {
        let mut t = table();
        let p = t.intern_atom("p");
        let fact = Clause::fact(Term::Struct {
            functor: p,
            args: vec![Term::Int(1)],
        });
        assert!(fact.is_ground_fact());
        let open = Clause::new(
            Term::Struct {
                functor: p,
                args: vec![Term::Var(VarId::new(0))],
            },
            vec![],
            vec!["X".into()],
        )
        .unwrap();
        assert!(open.is_fact());
        assert!(!open.is_ground_fact());
    }

    #[test]
    fn predicate_indicator() {
        let mut t = table();
        let p = t.intern_atom("p");
        let c = Clause::fact(Term::Struct {
            functor: p,
            args: vec![Term::Int(1), Term::Int(2)],
        });
        assert_eq!(c.predicate(), (p, 2));
    }
}
