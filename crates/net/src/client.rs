//! A blocking client for the `clare-net` protocol.
//!
//! [`NetClient`] mirrors the in-process
//! [`ClauseRetrievalServer`](clare_core::ClauseRetrievalServer) API call
//! for call — `retrieve`, `retrieve_batch`, `solve_goals`, `consult`,
//! `assert`, `retract`, `stats` — plus networking extras: pipelining
//! ([`retrieve_pipelined`](NetClient::retrieve_pipelined)), explicit
//! reconnection, and deadline propagation. Answers are bit-identical to
//! direct calls on the server's CRS: the wire carries the same PIF term
//! bytes and the full [`Retrieval`] (satisfier ids, verdict counts, and
//! modelled `SimNanos` times) without loss.
//!
//! Query terms must be parsed against the *server's* symbol namespace;
//! fetch it once with [`NetClient::symbols`] and intern queries into the
//! returned table (exactly like the in-process idiom of cloning
//! `kb.symbols()` before parsing a query).

use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use clare_core::{CommitReceipt, Retrieval, SearchMode, ServerStats, SolveOptions, SolveOutcome};
use clare_term::{SymbolTable, Term};

use crate::error::NetError;
use crate::protocol::{
    decode_commit_receipt, decode_error, decode_retrieval, decode_retrievals, decode_seq_reply,
    decode_server_hello, decode_server_stats, decode_server_stats_extended, decode_solve_outcome,
    decode_symbols, encode_client_hello_caps, encode_consult, encode_repl_ack, encode_retrieve,
    encode_retrieve_batch, encode_solve, encode_subscribe_log, opcode, BudgetExt, ConsultReq,
    ErrorCode, Frame, FrameReader, HelloStatus, ReplAck, RetrieveBatchReq, RetrieveReq, SolveReq,
    SubscribeLogReq, CAP_FRAME_CRC, CAP_QUERY_BUDGET, MAX_FRAME_LEN, PROTOCOL_VERSION,
    SERVER_HELLO_LEN, STATS_REQ_EXTENDED,
};
use clare_trace::MetricsSnapshot;

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout per candidate address.
    pub connect_timeout: Duration,
    /// Socket read timeout while waiting for a reply.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Frame length cap enforced on replies.
    pub max_frame_len: u32,
    /// How many times an idempotent request (ping, retrieve, batch,
    /// stats, symbols) refused with `Busy` is re-sent before the error
    /// surfaces. A `Busy` reply means the request was shed *before*
    /// execution, so re-sending never duplicates work. 0 disables.
    pub busy_retries: u32,
    /// Upper bound on a single backoff sleep between `Busy` retries. The
    /// sleep starts from the server's `retry_after_ms` hint and doubles
    /// per attempt up to this cap.
    pub busy_retry_cap: Duration,
    /// Request the [`CAP_FRAME_CRC`] capability in the hello: CRC32C
    /// trailers on every frame in both directions. Effective only when
    /// the server accepts; against an old server the connection simply
    /// runs without checksums.
    pub frame_checksums: bool,
    /// How many times an *idempotent* request that died with a
    /// connection-fatal error (I/O failure, framing corruption) is
    /// replayed over a fresh connection before the error surfaces.
    /// Non-idempotent requests (solve, consult) never replay. 0 disables.
    pub reconnect_retries: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame_len: MAX_FRAME_LEN,
            busy_retries: 5,
            busy_retry_cap: Duration::from_secs(1),
            frame_checksums: true,
            reconnect_retries: 2,
        }
    }
}

/// A blocking connection to a [`NetServer`](crate::NetServer).
pub struct NetClient {
    addr: SocketAddr,
    cfg: ClientConfig,
    stream: TcpStream,
    reader: FrameReader,
    /// Replies that arrived for a later caller while an earlier id was
    /// awaited (out-of-order completion under pipelining).
    stash: Vec<Frame>,
    next_id: u64,
    server_version: u16,
    /// Knowledge-base build fingerprint the server reported in its hello;
    /// the cluster layer refuses to pair backends with differing bases.
    kb_fingerprint: u64,
    /// Negotiated on the handshake: CRC32C trailers on frames both ways.
    checksums: bool,
    /// Deadline attached to subsequent requests; `None` = unlimited.
    deadline: Option<Duration>,
    /// Work ceilings attached to subsequent query requests; sent on the
    /// wire only when the server negotiated [`CAP_QUERY_BUDGET`].
    budget: BudgetExt,
    /// Negotiated on the handshake: the server understands the v4 budget
    /// extension. Against a v3 server the client silently omits it — the
    /// request bytes are then byte-identical to a v3 client's.
    budget_capable: bool,
    /// xorshift64* state for full-jitter backoff sleeps.
    rng: u64,
}

impl NetClient {
    /// Connects and performs the protocol handshake.
    ///
    /// # Errors
    ///
    /// [`NetError::Busy`] when the server is at its connection limit (the
    /// error carries the server's retry hint),
    /// [`NetError::VersionMismatch`] when it speaks another protocol
    /// version, and I/O or protocol errors otherwise.
    pub fn connect(addr: impl ToSocketAddrs, cfg: ClientConfig) -> Result<Self, NetError> {
        let mut last_err: Option<NetError> = None;
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(NetError::Protocol("address resolved to nothing".into()));
        }
        for candidate in addrs {
            match Self::connect_one(candidate, &cfg) {
                Ok(client) => return Ok(client),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one candidate was tried"))
    }

    fn connect_one(addr: SocketAddr, cfg: &ClientConfig) -> Result<Self, NetError> {
        let mut stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)?;
        stream.set_read_timeout(Some(cfg.read_timeout))?;
        stream.set_write_timeout(Some(cfg.write_timeout))?;
        stream.set_nodelay(true).ok();

        let requested = if cfg.frame_checksums {
            CAP_FRAME_CRC | CAP_QUERY_BUDGET
        } else {
            CAP_QUERY_BUDGET
        };
        stream.write_all(&encode_client_hello_caps(PROTOCOL_VERSION, requested))?;
        let mut hello_raw = [0u8; SERVER_HELLO_LEN];
        read_exactly(&mut stream, &mut hello_raw)?;
        let hello = decode_server_hello(&hello_raw)?;
        match hello.status {
            HelloStatus::Ok => {}
            HelloStatus::Busy => {
                return Err(NetError::Busy {
                    retry_after_ms: hello.retry_after_ms,
                })
            }
            HelloStatus::VersionMismatch => {
                return Err(NetError::VersionMismatch {
                    server: hello.version,
                })
            }
        }

        // Only what the server accepted is in effect; an accepted bit the
        // client never requested would be a server bug, so mask again.
        let checksums = hello.caps & requested & CAP_FRAME_CRC != 0;
        let budget_capable = hello.caps & requested & CAP_QUERY_BUDGET != 0;
        let mut reader = FrameReader::new(cfg.max_frame_len);
        reader.set_checksums(checksums);
        // Seed the backoff jitter from wall clock and peer identity; the
        // whole point is that two clients retrying the same overload do
        // not sleep in lockstep, so the seed only needs to differ.
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        let rng = now ^ (u64::from(addr.port()) << 48) ^ (&addr as *const SocketAddr as u64);
        Ok(NetClient {
            addr,
            cfg: cfg.clone(),
            stream,
            reader,
            stash: Vec::new(),
            next_id: 1,
            server_version: hello.version,
            kb_fingerprint: hello.fingerprint,
            checksums,
            deadline: None,
            budget: BudgetExt::NONE,
            budget_capable,
            rng,
        })
    }

    /// Drops the current connection and dials the same address again.
    /// Outstanding pipelined replies are discarded. Request-id allocation
    /// continues where it left off, so replies to requests sent on the
    /// old connection can never be confused with new ones.
    pub fn reconnect(&mut self) -> Result<(), NetError> {
        let fresh = Self::connect_one(self.addr, &self.cfg)?;
        let deadline = self.deadline;
        let budget = self.budget;
        let next_id = self.next_id;
        *self = fresh;
        self.deadline = deadline;
        self.budget = budget;
        self.next_id = next_id;
        Ok(())
    }

    /// The protocol version the server reported in its hello.
    pub fn server_version(&self) -> u16 {
        self.server_version
    }

    /// The knowledge-base build fingerprint the server reported in its
    /// hello. Two servers with equal fingerprints hold byte-identical
    /// base KBs (and thus identical symbol namespaces), which is what
    /// makes shipped WAL records meaningful across them.
    pub fn kb_fingerprint(&self) -> u64 {
        self.kb_fingerprint
    }

    /// The address this client dialed.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sets the deadline propagated with subsequent requests: a request
    /// still queued on the server when its deadline elapses is answered
    /// with a `DeadlineExpired` error instead of being executed. `None`
    /// (the default) sends no deadline.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// Sets the work ceilings (solve-step and candidate limits) attached
    /// to subsequent query requests. Zero fields mean unlimited;
    /// [`BudgetExt::NONE`] clears the budget. Ceilings cross the wire
    /// only when the server negotiated the budget capability (protocol
    /// v4); against an older server they are silently dropped and the
    /// request bytes stay byte-identical to a v3 client's.
    pub fn set_budget(&mut self, budget: BudgetExt) {
        self.budget = budget;
    }

    /// Whether the connected server negotiated the query-budget
    /// capability, i.e. whether [`NetClient::set_budget`] ceilings are
    /// actually enforced remotely.
    pub fn budget_capable(&self) -> bool {
        self.budget_capable
    }

    fn deadline_micros(&self) -> u64 {
        self.deadline
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }

    /// The budget extension to put on the wire: the configured ceilings
    /// when the server understands them, [`BudgetExt::NONE`] otherwise.
    fn wire_budget(&self) -> BudgetExt {
        if self.budget_capable {
            self.budget
        } else {
            BudgetExt::NONE
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Writes one request frame. All request bytes leave through here:
    /// the frame picks up the negotiated CRC trailer, and this is the
    /// client-side network fault-injection point
    /// ([`clare_fault::FaultSite::NetClientSend`], keyed by request id
    /// and opcode) — a request can vanish before the wire, be cut short,
    /// or be bit-flipped in flight.
    fn send_frame(&mut self, frame: &Frame) -> Result<(), NetError> {
        let mut bytes = frame.encoded_with(self.checksums);
        if clare_fault::active() {
            let ctx = frame.request_id ^ (u64::from(frame.opcode) << 56);
            match clare_fault::decide(clare_fault::FaultSite::NetClientSend, ctx) {
                clare_fault::FaultAction::Drop => return Ok(()),
                action @ (clare_fault::FaultAction::Truncate { .. }
                | clare_fault::FaultAction::FlipBit { .. }) => {
                    clare_fault::corrupt_in_place(action, &mut bytes);
                }
                _ => {}
            }
        }
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    /// Sends one request frame and awaits its reply.
    fn roundtrip(&mut self, op: u8, payload: Vec<u8>) -> Result<Frame, NetError> {
        let id = self.fresh_id();
        self.send_frame(&Frame::new(id, op, payload))?;
        self.await_reply(id, op)
    }

    /// [`Self::roundtrip`] for idempotent requests: honors the server's
    /// `retry_after_ms` hint on a `Busy` refusal with bounded exponential
    /// backoff (a shed request was never executed, so re-sending it is
    /// safe), and replays over a fresh connection when the transport dies
    /// (lost or corrupted frame, server reap, mid-stream hangup). The
    /// replay carries a *fresh* request id, so a stale reply from the old
    /// connection can never satisfy it. After
    /// [`ClientConfig::busy_retries`] refusals or
    /// [`ClientConfig::reconnect_retries`] transport failures the error
    /// surfaces to the caller.
    fn roundtrip_idempotent(&mut self, op: u8, payload: Vec<u8>) -> Result<Frame, NetError> {
        let mut attempt = 0u32;
        let mut reconnects = 0u32;
        loop {
            match self.roundtrip(op, payload.clone()) {
                Err(NetError::Remote {
                    code: ErrorCode::Busy,
                    retry_after_ms,
                    ..
                }) if attempt < self.cfg.busy_retries => {
                    let hinted = Duration::from_millis(u64::from(retry_after_ms.max(1)));
                    let backoff =
                        full_jitter(&mut self.rng, hinted, attempt, self.cfg.busy_retry_cap);
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
                Err(e) if e.is_connection_fatal() && reconnects < self.cfg.reconnect_retries => {
                    clare_trace::metrics().net_client_reconnects.inc();
                    self.reconnect()?;
                    reconnects += 1;
                }
                other => return other,
            }
        }
    }

    /// Awaits the reply for `id`, stashing interleaved replies to other
    /// ids (pipelining). Converts error frames into [`NetError::Remote`].
    fn await_reply(&mut self, id: u64, op: u8) -> Result<Frame, NetError> {
        loop {
            if let Some(i) = self.stash.iter().position(|f| f.request_id == id) {
                return check_reply(self.stash.swap_remove(i), op);
            }
            let frame = self.reader.read_frame(&mut self.stream)?;
            if frame.request_id == id {
                return check_reply(frame, op);
            }
            self.stash.push(frame);
        }
    }

    /// Retrieves candidates for one query, exactly like
    /// [`ClauseRetrievalServer::retrieve`](clare_core::ClauseRetrievalServer::retrieve).
    pub fn retrieve(&mut self, query: &Term, mode: SearchMode) -> Result<Retrieval, NetError> {
        let req = RetrieveReq {
            mode,
            deadline_micros: self.deadline_micros(),
            budget: self.wire_budget(),
            query: query.clone(),
        };
        let reply = self.roundtrip_idempotent(opcode::RETRIEVE, encode_retrieve(&req))?;
        Ok(decode_retrieval(&reply.payload)?)
    }

    /// Sends every query before reading any reply (request pipelining):
    /// one network round trip for the whole set, results in query order.
    ///
    /// On the server, pipelined same-predicate retrieves are coalesced
    /// into one hardware batch pass; the replies are nonetheless
    /// byte-identical to individual [`NetClient::retrieve`] calls.
    pub fn retrieve_pipelined(
        &mut self,
        queries: &[Term],
        mode: SearchMode,
    ) -> Result<Vec<Retrieval>, NetError> {
        let deadline_micros = self.deadline_micros();
        let budget = self.wire_budget();
        let mut ids = Vec::with_capacity(queries.len());
        for query in queries {
            let id = self.fresh_id();
            let req = RetrieveReq {
                mode,
                deadline_micros,
                budget,
                query: query.clone(),
            };
            self.send_frame(&Frame::new(id, opcode::RETRIEVE, encode_retrieve(&req)))?;
            ids.push(id);
        }
        ids.into_iter()
            .map(|id| {
                let reply = self.await_reply(id, opcode::RETRIEVE)?;
                Ok(decode_retrieval(&reply.payload)?)
            })
            .collect()
    }

    /// Retrieves a batch against one knowledge-base snapshot, exactly like
    /// [`ClauseRetrievalServer::retrieve_batch`](clare_core::ClauseRetrievalServer::retrieve_batch).
    pub fn retrieve_batch(
        &mut self,
        queries: &[Term],
        mode: SearchMode,
    ) -> Result<Vec<Retrieval>, NetError> {
        let req = RetrieveBatchReq {
            mode,
            deadline_micros: self.deadline_micros(),
            budget: self.wire_budget(),
            queries: queries.to_vec(),
        };
        let reply =
            self.roundtrip_idempotent(opcode::RETRIEVE_BATCH, encode_retrieve_batch(&req))?;
        let retrievals = decode_retrievals(&reply.payload)?;
        if retrievals.len() != queries.len() {
            return Err(NetError::Protocol(format!(
                "batch reply has {} members for {} queries",
                retrievals.len(),
                queries.len()
            )));
        }
        Ok(retrievals)
    }

    /// Solves a conjunction of goals, like
    /// [`ClauseRetrievalServer::solve_goals`](clare_core::ClauseRetrievalServer::solve_goals).
    /// The server supplies its own CRS options; only the solver policy in
    /// `options` (mode, limits) crosses the wire.
    pub fn solve_goals(
        &mut self,
        goals: &[Term],
        var_names: &[String],
        options: &SolveOptions,
    ) -> Result<SolveOutcome, NetError> {
        let req = SolveReq {
            goals: goals.to_vec(),
            var_names: var_names.to_vec(),
            mode: options.mode,
            max_solutions: u64::try_from(options.max_solutions).unwrap_or(u64::MAX),
            max_depth: u64::try_from(options.max_depth).unwrap_or(u64::MAX),
            deadline_micros: self.deadline_micros(),
            budget: self.wire_budget(),
        };
        let reply = self.roundtrip(opcode::SOLVE, encode_solve(&req))?;
        Ok(decode_solve_outcome(&reply.payload)?)
    }

    /// Solves a single goal. See [`NetClient::solve_goals`].
    pub fn solve(
        &mut self,
        query: &Term,
        var_names: &[String],
        options: &SolveOptions,
    ) -> Result<SolveOutcome, NetError> {
        self.solve_goals(std::slice::from_ref(query), var_names, options)
    }

    /// Consults Prolog source into a module on the server, publishing the
    /// updated knowledge base atomically for all clients.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] with
    /// [`ErrorCode::ConsultRejected`](crate::protocol::ErrorCode::ConsultRejected)
    /// when the source fails to parse or compile; the knowledge base is
    /// then unchanged.
    pub fn consult(&mut self, module: &str, source: &str) -> Result<(), NetError> {
        let req = ConsultReq {
            module: module.to_owned(),
            source: source.to_owned(),
        };
        self.roundtrip(opcode::CONSULT, encode_consult(&req))?;
        Ok(())
    }

    /// Asserts every clause in `source` (in order) to `module` through
    /// the server's WAL-serialized commit path, like
    /// [`ClauseRetrievalServer::assert_source`](clare_core::ClauseRetrievalServer::assert_source).
    /// Unlike [`NetClient::consult`], the change lands in the memtable
    /// overlay — no wholesale rebuild — and when the server has a
    /// write-ahead log attached the returned receipt reports `durable:
    /// true` only after the batch was fsynced.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] with `ConsultRejected` when a clause fails to
    /// parse, compile, or fit a track; the knowledge base is unchanged.
    pub fn assert(&mut self, module: &str, source: &str) -> Result<CommitReceipt, NetError> {
        let req = ConsultReq {
            module: module.to_owned(),
            source: source.to_owned(),
        };
        let reply = self.roundtrip(opcode::ASSERT, encode_consult(&req))?;
        Ok(decode_commit_receipt(&reply.payload)?)
    }

    /// Retracts the first live clause structurally equal to the single
    /// clause in `source` (a quiet no-op receipt when none matches), like
    /// [`ClauseRetrievalServer::retract_source`](clare_core::ClauseRetrievalServer::retract_source).
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] with `ConsultRejected` when the source does
    /// not hold exactly one parseable clause.
    pub fn retract(&mut self, module: &str, source: &str) -> Result<CommitReceipt, NetError> {
        let req = ConsultReq {
            module: module.to_owned(),
            source: source.to_owned(),
        };
        let reply = self.roundtrip(opcode::RETRACT, encode_consult(&req))?;
        Ok(decode_commit_receipt(&reply.payload)?)
    }

    /// Fetches the server's service statistics (the legacy fixed-size
    /// struct; see [`NetClient::metrics`] for the per-layer snapshot).
    pub fn stats(&mut self) -> Result<ServerStats, NetError> {
        let reply = self.roundtrip_idempotent(opcode::STATS, Vec::new())?;
        Ok(decode_server_stats(&reply.payload)?)
    }

    /// Fetches the service statistics together with the server's
    /// per-layer metrics snapshot (FS1/FS2/CRS/net counters, gauges, and
    /// latency histograms). Sends the versioned extended-stats request;
    /// servers answer the plain [`NetClient::stats`] form unchanged, so
    /// old clients keep decoding the legacy struct.
    pub fn metrics(&mut self) -> Result<(ServerStats, MetricsSnapshot), NetError> {
        let reply = self.roundtrip_idempotent(opcode::STATS, vec![STATS_REQ_EXTENDED])?;
        Ok(decode_server_stats_extended(&reply.payload)?)
    }

    /// Downloads the server's symbol table. Parse query terms against the
    /// returned table (offsets are preserved exactly) so their PIF
    /// encodings mean the same thing on the server.
    pub fn symbols(&mut self) -> Result<SymbolTable, NetError> {
        let reply = self.roundtrip_idempotent(opcode::SYMBOLS, Vec::new())?;
        Ok(decode_symbols(&reply.payload)?)
    }

    /// Liveness probe: one empty-payload round trip.
    pub fn ping(&mut self) -> Result<(), NetError> {
        self.roundtrip_idempotent(opcode::PING, Vec::new())?;
        Ok(())
    }

    /// Subscribes this connection to the server's commit log from
    /// `from_seq` (exclusive): the server first replays every already
    /// committed op past that point, then pushes each new commit, all as
    /// request-id-0 `LOG_FRAME` frames read with
    /// [`NetClient::next_log_frame`]. Returns the server's current
    /// sequence frontier at subscription time.
    ///
    /// A [`NetClient::reconnect`] drops the subscription; re-subscribe
    /// from the last sequence applied downstream.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] with [`ErrorCode::ReplGap`] when `from_seq`
    /// predates the server's compaction frontier — the overlay ops before
    /// it are folded and can no longer be replayed.
    pub fn subscribe_log(&mut self, from_seq: u64) -> Result<u64, NetError> {
        let reply = self.roundtrip(
            opcode::SUBSCRIBE_LOG,
            encode_subscribe_log(&SubscribeLogReq { from_seq }),
        )?;
        Ok(decode_seq_reply(&reply.payload)?)
    }

    /// Blocks for the next `LOG_FRAME` pushed on this subscribed
    /// connection and returns its raw ship-record payload (decode with
    /// [`clare_wal::decode_ship_record`]). Pushes that arrived while a
    /// reply was being awaited are drained first, in arrival order.
    pub fn next_log_frame(&mut self) -> Result<Vec<u8>, NetError> {
        if let Some(i) = self
            .stash
            .iter()
            .position(|f| f.request_id == 0 && f.opcode == opcode::LOG_FRAME)
        {
            return Ok(self.stash.remove(i).payload);
        }
        loop {
            let frame = self.reader.read_frame(&mut self.stream)?;
            if frame.request_id == 0 && frame.opcode == opcode::LOG_FRAME {
                return Ok(frame.payload);
            }
            self.stash.push(frame);
        }
    }

    /// Ships one WAL record (the bytes of `clare_wal::encode_ship_record`)
    /// to this server for replicated apply; returns the server's
    /// applied-through sequence.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] with [`ErrorCode::ReplGap`] when the record
    /// skips ahead of the sequence the server expects next (the message
    /// names it); re-ship from there.
    pub fn ship_log_frame(&mut self, ship_record: Vec<u8>) -> Result<u64, NetError> {
        let reply = self.roundtrip(opcode::LOG_FRAME, ship_record)?;
        Ok(decode_seq_reply(&reply.payload)?)
    }

    /// Reports to a subscribed-to primary that the downstream backup has
    /// applied through `seq`; the primary updates its replication-lag
    /// gauge.
    pub fn repl_ack(&mut self, seq: u64) -> Result<(), NetError> {
        self.roundtrip(opcode::REPL_ACK, encode_repl_ack(&ReplAck { seq }))?;
        Ok(())
    }
}

impl std::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetClient")
            .field("addr", &self.addr)
            .field("server_version", &self.server_version)
            .finish_non_exhaustive()
    }
}

/// Validates a reply frame: the expected reply opcode passes through, an
/// error frame becomes [`NetError::Remote`], anything else is a protocol
/// violation.
fn check_reply(frame: Frame, request_op: u8) -> Result<Frame, NetError> {
    let expected = request_op | opcode::REPLY;
    if frame.opcode == expected {
        return Ok(frame);
    }
    if frame.opcode == opcode::ERROR {
        let e = decode_error(&frame.payload)?;
        return Err(NetError::Remote {
            code: e.code,
            retry_after_ms: e.retry_after_ms,
            message: e.message,
        });
    }
    Err(NetError::Protocol(format!(
        "expected reply opcode {expected:#04x}, got {:#04x}",
        frame.opcode
    )))
}

/// One step of xorshift64* — a tiny, dependency-free PRNG; plenty for
/// decorrelating backoff sleeps (never used where quality matters).
fn xorshift64star(state: &mut u64) -> u64 {
    // A zero state is a fixed point; nudge it off.
    if *state == 0 {
        *state = 0x9E37_79B9_7F4A_7C15;
    }
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Full-jitter backoff ("Exponential Backoff And Jitter"): a sleep drawn
/// uniformly from `[0, min(cap, hint << attempt)]`. Deterministic
/// exponential backoff synchronizes every client that was refused by the
/// same overloaded server — they all sleep the same hinted interval and
/// stampede back together. Randomizing over the whole window spreads the
/// retries out.
fn full_jitter(state: &mut u64, hinted: Duration, attempt: u32, cap: Duration) -> Duration {
    let ceiling = hinted
        .saturating_mul(1u32 << attempt.min(10))
        .min(cap)
        .as_nanos() as u64;
    if ceiling == 0 {
        return Duration::ZERO;
    }
    Duration::from_nanos(xorshift64star(state) % (ceiling + 1))
}

/// `read_exact` that maps a clean peer close to a protocol error rather
/// than a bare `UnexpectedEof` I/O error.
fn read_exactly(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), NetError> {
    use std::io::Read;
    match stream.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(NetError::Protocol(
            "server closed the connection during the handshake".into(),
        )),
        Err(e) => Err(NetError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_jitter_stays_within_the_exponential_window() {
        let hint = Duration::from_millis(10);
        let cap = Duration::from_secs(1);
        let mut state = 42u64;
        for attempt in 0..8u32 {
            let window = hint.saturating_mul(1u32 << attempt).min(cap);
            for _ in 0..200 {
                let sleep = full_jitter(&mut state, hint, attempt, cap);
                assert!(
                    sleep <= window,
                    "attempt {attempt}: {sleep:?} exceeds window {window:?}"
                );
            }
        }
    }

    #[test]
    fn full_jitter_caps_at_the_configured_maximum() {
        let mut state = 7u64;
        for attempt in 0..32u32 {
            let sleep = full_jitter(
                &mut state,
                Duration::from_secs(10),
                attempt,
                Duration::from_millis(250),
            );
            assert!(sleep <= Duration::from_millis(250));
        }
    }

    #[test]
    fn full_jitter_actually_varies() {
        // The point of jitter is decorrelation: with a nonzero window the
        // draws must not collapse onto a single value.
        let mut state = 0xDEAD_BEEFu64;
        let draws: Vec<Duration> = (0..64)
            .map(|_| {
                full_jitter(
                    &mut state,
                    Duration::from_millis(100),
                    3,
                    Duration::from_secs(5),
                )
            })
            .collect();
        let first = draws[0];
        assert!(draws.iter().any(|d| *d != first), "64 identical draws");
    }

    #[test]
    fn full_jitter_zero_window_is_zero() {
        let mut state = 1u64;
        assert_eq!(
            full_jitter(&mut state, Duration::ZERO, 5, Duration::from_secs(1)),
            Duration::ZERO
        );
    }
}
