//! Pretty-printing of terms and clauses back to Edinburgh syntax.
//!
//! Because terms store interned offsets, printing needs the
//! [`SymbolTable`]; the adapters here borrow it and implement
//! [`std::fmt::Display`].

use crate::symbol::SymbolTable;
use crate::term::{Clause, Term};
use std::fmt;

/// Display adapter for a [`Term`].
///
/// # Examples
///
/// ```
/// use clare_term::{SymbolTable, TermDisplay, parser::parse_term_with_vars};
///
/// let mut symbols = SymbolTable::new();
/// let (t, names) = parse_term_with_vars("f(X, [a | T])", &mut symbols)?;
/// let printed = TermDisplay::new(&t, &symbols).with_var_names(&names).to_string();
/// assert_eq!(printed, "f(X, [a | T])");
/// # Ok::<(), clare_term::parser::ParseError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TermDisplay<'a> {
    term: &'a Term,
    symbols: &'a SymbolTable,
    var_names: Option<&'a [String]>,
}

impl<'a> TermDisplay<'a> {
    /// Creates a display adapter; variables print as `_V0`, `_V1`, ….
    pub fn new(term: &'a Term, symbols: &'a SymbolTable) -> Self {
        TermDisplay {
            term,
            symbols,
            var_names: None,
        }
    }

    /// Uses source variable names (e.g. a clause's
    /// [`var_names`](Clause::var_names)) instead of `_Vn`.
    pub fn with_var_names(mut self, names: &'a [String]) -> Self {
        self.var_names = Some(names);
        self
    }

    fn fmt_term(&self, term: &Term, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match term {
            Term::Atom(sym) => {
                let text = self.symbols.try_atom_text(*sym).unwrap_or("<foreign-atom>");
                write_atom(text, f)
            }
            Term::Int(v) => write!(f, "{v}"),
            Term::Float(id) => {
                // Print floats so the reader lexes them back as floats: a
                // value like 5.0 renders as "5" under `{}` (which would
                // re-parse as an integer), so force a fraction or keep the
                // exponent form the lexer now accepts.
                let value = self.symbols.float_value(*id);
                let text = format!("{value}");
                if text.contains('.')
                    || text.contains('e')
                    || text.contains("NaN")
                    || text.contains("inf")
                {
                    f.write_str(&text)
                } else {
                    write!(f, "{text}.0")
                }
            }
            Term::Var(v) => match self.var_names.and_then(|n| n.get(v.index() as usize)) {
                Some(name) => f.write_str(name),
                None => write!(f, "{v}"),
            },
            Term::Anon => f.write_str("_"),
            Term::Struct { functor, args } => {
                let text = self
                    .symbols
                    .try_atom_text(*functor)
                    .unwrap_or("<foreign-atom>");
                write_atom(text, f)?;
                f.write_str("(")?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    self.fmt_term(arg, f)?;
                }
                f.write_str(")")
            }
            Term::List { items, tail } => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    self.fmt_term(item, f)?;
                }
                if let Some(t) = tail {
                    f.write_str(" | ")?;
                    self.fmt_term(t, f)?;
                }
                f.write_str("]")
            }
        }
    }
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_term(self.term, f)
    }
}

/// Display adapter for a [`Clause`], printing `head.` or `head :- body.`.
#[derive(Debug, Clone, Copy)]
pub struct ClauseDisplay<'a> {
    clause: &'a Clause,
    symbols: &'a SymbolTable,
}

impl<'a> ClauseDisplay<'a> {
    /// Creates a display adapter using the clause's own variable names.
    pub fn new(clause: &'a Clause, symbols: &'a SymbolTable) -> Self {
        ClauseDisplay { clause, symbols }
    }
}

impl fmt::Display for ClauseDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = self.clause.var_names();
        let head = TermDisplay::new(self.clause.head(), self.symbols).with_var_names(names);
        write!(f, "{head}")?;
        if !self.clause.is_fact() {
            f.write_str(" :- ")?;
            for (i, goal) in self.clause.body().iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                let g = TermDisplay::new(goal, self.symbols).with_var_names(names);
                write!(f, "{g}")?;
            }
        }
        f.write_str(".")
    }
}

/// Writes an atom, quoting it when it is not a bare lowercase identifier.
fn write_atom(text: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let bare = !text.is_empty()
        && text.as_bytes()[0].is_ascii_lowercase()
        && text.bytes().all(|c| c.is_ascii_alphanumeric() || c == b'_');
    if bare {
        f.write_str(text)
    } else {
        f.write_str("'")?;
        for ch in text.chars() {
            match ch {
                '\'' => f.write_str("''")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\t' => f.write_str("\\t")?,
                other => write!(f, "{other}")?,
            }
        }
        f.write_str("'")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_clause, parse_term, parse_term_with_vars};

    fn roundtrip(src: &str) {
        let mut s = SymbolTable::new();
        let (t, names) = parse_term_with_vars(src, &mut s).unwrap();
        let printed = TermDisplay::new(&t, &s).with_var_names(&names).to_string();
        assert_eq!(printed, src);
        // And printing parses back to an equal term.
        let mut s2 = SymbolTable::new();
        let t2 = parse_term(&printed, &mut s2).unwrap();
        let printed2 = TermDisplay::new(&t2, &s2).to_string();
        let reference = TermDisplay::new(&t, &s).to_string();
        assert_eq!(printed2, reference);
    }

    #[test]
    fn roundtrips_representative_terms() {
        roundtrip("a");
        roundtrip("f(a, b)");
        roundtrip("f(g(h(1)), -2)");
        roundtrip("[a, b, c]");
        roundtrip("[a | T]");
        roundtrip("[]");
        roundtrip("f(X, Y, X)");
        roundtrip("f(_, _)");
        roundtrip("2.5");
    }

    #[test]
    fn quotes_non_bare_atoms() {
        let mut s = SymbolTable::new();
        let t = parse_term("'hello world'", &mut s).unwrap();
        assert_eq!(TermDisplay::new(&t, &s).to_string(), "'hello world'");
        let t = parse_term("'It''s'", &mut s).unwrap();
        assert_eq!(TermDisplay::new(&t, &s).to_string(), "'It''s'");
    }

    #[test]
    fn fallback_var_names() {
        let mut s = SymbolTable::new();
        let t = parse_term("f(A, B)", &mut s).unwrap();
        assert_eq!(TermDisplay::new(&t, &s).to_string(), "f(_V0, _V1)");
    }

    #[test]
    fn clause_display_fact_and_rule() {
        let mut s = SymbolTable::new();
        let fact = parse_clause("parent(tom, bob).", &mut s).unwrap();
        assert_eq!(
            ClauseDisplay::new(&fact, &s).to_string(),
            "parent(tom, bob)."
        );
        let rule = parse_clause("gp(X, Z) :- p(X, Y), p(Y, Z).", &mut s).unwrap();
        assert_eq!(
            ClauseDisplay::new(&rule, &s).to_string(),
            "gp(X, Z) :- p(X, Y), p(Y, Z)."
        );
    }

    #[test]
    fn foreign_symbol_does_not_panic() {
        let s = SymbolTable::new();
        let t = Term::Atom(crate::symbol::Symbol::from_offset(999));
        assert_eq!(TermDisplay::new(&t, &s).to_string(), "'<foreign-atom>'");
    }
}

#[cfg(test)]
mod float_display_tests {
    use super::*;
    use crate::parser::parse_term;

    #[test]
    fn integral_and_exponent_floats_reparse_as_floats() {
        for src in ["2.5", "5.0", "1.5e10", "2e-3", "0.001"] {
            let mut sy = SymbolTable::new();
            let t = parse_term(src, &mut sy).unwrap();
            assert!(matches!(t, crate::term::Term::Float(_)), "{src} is a float");
            let printed = TermDisplay::new(&t, &sy).to_string();
            let t2 = parse_term(&printed, &mut sy).unwrap();
            assert_eq!(t2, t, "roundtrip through `{printed}`");
        }
    }
}
