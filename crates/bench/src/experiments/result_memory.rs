//! E11 — §3.2: Result Memory sizing.
//!
//! "The Result Memory has a capacity of 32K bytes which is large enough to
//! contain all clause satisfiers of one disk track — the worst case of a
//! single FS2 search call." The 6-bit satisfier counter caps one call at
//! 64 captures, and the 9-bit offset counter caps a record at 512 bytes.
//! This experiment measures satisfiers-per-track for queries of varying
//! selectivity and reports when the counters would wrap.

use clare_core::{retrieve, CrsOptions, SearchMode};
use clare_fs2::result::{SATISFIER_SLOTS, SLOT_BYTES};
use clare_kb::{KbBuilder, KbConfig};
use clare_term::builder::TermBuilder;
use clare_workload::{derive_queries, QueryShape};
use std::fmt;

/// One probe row.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultMemoryRow {
    /// Query shape.
    pub shape: &'static str,
    /// Satisfiers captured.
    pub satisfiers: usize,
    /// Tracks the predicate occupies.
    pub tracks: usize,
    /// Tracks whose satisfier count exceeded the 64-slot memory.
    pub overflow_tracks: usize,
}

/// The report.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultMemoryReport {
    /// Average records per track in the workload.
    pub records_per_track: f64,
    /// Average record size (bytes).
    pub record_bytes: f64,
    /// The probes.
    pub rows: Vec<ResultMemoryRow>,
}

/// Runs the probes on one dense relation (small records, so a track holds
/// far more clauses than the Result Memory holds satisfiers).
pub fn run() -> ResultMemoryReport {
    let mut b = KbBuilder::new();
    let mut heads = Vec::new();
    let mut clauses = Vec::new();
    {
        let mut t = TermBuilder::new(b.symbols_mut());
        for i in 0..4000usize {
            let k = t.atom(&format!("k{}", i % 400));
            let v = t.atom(&format!("v{}", i % 7));
            let fact = t.fact("item", vec![k, v]);
            heads.push(fact.head().clone());
            clauses.push(fact);
        }
    }
    for c in clauses {
        b.add_clause("m", c);
    }
    let miss = b.symbols_mut().intern_atom("never_stored_atom");
    let kb = b.finish(KbConfig::default());
    let opts = CrsOptions::default();

    let pred = kb.lookup("item", 2).expect("generated predicate");
    let tracks = pred.file().track_count();
    let records_per_track = pred.clauses().len() as f64 / tracks as f64;
    let record_bytes = pred.file().payload_bytes() as f64 / pred.clauses().len() as f64;

    let mut rows = Vec::new();
    for shape in [
        QueryShape::GroundHit,
        QueryShape::HalfOpen,
        QueryShape::OpenAll,
    ] {
        let queries = derive_queries(&heads, shape, 1, miss, 0xE11E);
        let r = retrieve(&kb, &queries[0], SearchMode::Fs2Only, &opts);
        rows.push(ResultMemoryRow {
            shape: shape.label(),
            satisfiers: r.stats.candidates,
            tracks,
            overflow_tracks: r.stats.result_memory_overflows,
        });
    }
    ResultMemoryReport {
        records_per_track,
        record_bytes,
        rows,
    }
}

impl fmt::Display for ResultMemoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E11 / §3.2: Result Memory (64 slots x 512 B = 32 KB)\n")?;
        writeln!(
            f,
            "workload: {:.0} records/track, {:.0} B/record (slot limit {} B)",
            self.records_per_track, self.record_bytes, SLOT_BYTES
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.shape.to_owned(),
                    r.satisfiers.to_string(),
                    r.tracks.to_string(),
                    format!("{} / {}", r.overflow_tracks, r.tracks),
                ]
            })
            .collect();
        f.write_str(&crate::render_table(
            &["query shape", "satisfiers", "tracks", "overflowing tracks"],
            &rows,
        ))?;
        writeln!(
            f,
            "\na track holds up to {:.0} records but only {} satisfier slots exist:\n\
             unselective queries overflow and would force per-track re-reads",
            self.records_per_track, SATISFIER_SLOTS
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selective_queries_fit_the_memory() {
        let r = run();
        let ground = r.rows.iter().find(|x| x.shape == "ground-hit").unwrap();
        assert_eq!(ground.overflow_tracks, 0);
        let half = r.rows.iter().find(|x| x.shape == "half-open").unwrap();
        assert_eq!(half.overflow_tracks, 0, "10 hits fit 64 slots");
    }

    #[test]
    fn unselective_queries_overflow() {
        let r = run();
        assert!(
            r.records_per_track > SATISFIER_SLOTS as f64,
            "workload dense enough to overflow: {}",
            r.records_per_track
        );
        let open = r.rows.iter().find(|x| x.shape == "open-all").unwrap();
        assert!(open.overflow_tracks > 0, "open scan overflows the 64 slots");
        assert!(
            open.overflow_tracks <= open.tracks,
            "overflows counted per track of the queried predicate"
        );
        assert_eq!(open.satisfiers, 4000, "open scan captures everything");
    }

    #[test]
    fn records_fit_slot_limit() {
        let r = run();
        assert!(
            r.record_bytes < SLOT_BYTES as f64,
            "records fit 512-byte slots"
        );
    }
}
