//! `Fs2Device` — the board as the host sees it.
//!
//! Ties the control register's mode protocol to the engine, Double Buffer,
//! and Result Memory: load the microprogram (Microprogramming mode), write
//! the query (Set Query mode), stream a track (Search mode), then harvest
//! satisfiers (Read Result mode). Mode violations are errors, mirroring a
//! driver driving the real register.

use crate::buffer::DoubleBuffer;
use crate::components::WCS_INSTRUCTIONS;
use crate::control::{ControlRegister, FilterSelect, OperationalMode};
use crate::engine::Fs2Engine;
use crate::micro::{Microprogram, Wcs};
use crate::result::{ResultMemory, ResultOverflow};
use clare_disk::{SimNanos, Track};
use clare_pif::{ClauseRecord, PifStream};
use std::fmt;

/// Errors from driving the device out of protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Fs2Error {
    /// The requested action needs a different operational mode.
    WrongMode {
        /// Mode the device is in.
        current: OperationalMode,
        /// Mode the action needs.
        needed: OperationalMode,
    },
    /// The microprogram exceeds the 2048-instruction WCS.
    MicroprogramTooLarge {
        /// Instructions requested.
        instructions: usize,
    },
    /// Search was started before loading a microprogram and a query.
    NotReady,
    /// The query stream exceeds the Query Memory.
    QueryTooLarge(crate::memory::QueryTooLargeError),
    /// A record in the track could not be parsed.
    BadRecord(clare_pif::PifError),
    /// The Result Memory overflowed mid-track.
    Overflow(ResultOverflow),
}

impl fmt::Display for Fs2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fs2Error::WrongMode { current, needed } => {
                write!(f, "device is in {current} mode but {needed} is required")
            }
            Fs2Error::MicroprogramTooLarge { instructions } => write!(
                f,
                "microprogram of {instructions} instructions exceeds the {WCS_INSTRUCTIONS}-instruction WCS"
            ),
            Fs2Error::NotReady => f.write_str("search started without microprogram and query"),
            Fs2Error::QueryTooLarge(e) => write!(f, "{e}"),
            Fs2Error::BadRecord(e) => write!(f, "bad clause record: {e}"),
            Fs2Error::Overflow(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Fs2Error {}

/// Statistics from one search call (one track).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Clauses examined.
    pub clauses: u64,
    /// Clauses captured as satisfiers.
    pub satisfiers: u64,
    /// Total FS2 matching time (sum over clauses of operation times).
    pub match_time: SimNanos,
    /// PIF head-stream bytes the engine actually walked.
    pub stream_bytes: u64,
    /// Histogram over [`HwOp::ALL`](crate::ops::HwOp::ALL) of every
    /// operation performed.
    pub op_histogram: [u64; 7],
}

impl SearchStats {
    /// Merges another track's stats into this one.
    pub fn merge(&mut self, other: &SearchStats) {
        self.clauses += other.clauses;
        self.satisfiers += other.satisfiers;
        self.match_time += other.match_time;
        self.stream_bytes += other.stream_bytes;
        for (a, b) in self.op_histogram.iter_mut().zip(other.op_histogram) {
            *a += b;
        }
    }
}

/// The FS2 board.
///
/// # Examples
///
/// ```
/// use clare_fs2::{Fs2Device, OperationalMode};
/// use clare_pif::{encode_query, ClauseRecord};
/// use clare_term::{SymbolTable, parser::{parse_term, parse_clause}};
/// use clare_disk::FileBuilder;
///
/// let mut sy = SymbolTable::new();
/// let mut device = Fs2Device::new();
/// device.set_mode(OperationalMode::Microprogramming);
/// device.load_microprogram(512)?;
/// device.set_mode(OperationalMode::SetQuery);
/// device.set_query(&encode_query(&parse_term("p(a, X)", &mut sy)?)?)?;
///
/// let mut builder = FileBuilder::new(16 * 1024);
/// for src in ["p(a, 1).", "p(b, 2).", "p(a, 3)."] {
///     let record = ClauseRecord::compile(&parse_clause(src, &mut sy)?)?;
///     builder.append_record(&record.to_bytes())?;
/// }
/// let file = builder.finish("p.pdb");
///
/// device.set_mode(OperationalMode::Search);
/// let stats = device.search_track(&file.tracks()[0])?;
/// assert_eq!(stats.clauses, 3);
/// assert_eq!(stats.satisfiers, 2);
///
/// device.set_mode(OperationalMode::ReadResult);
/// assert_eq!(device.read_results()?.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Fs2Device {
    control: ControlRegister,
    engine: Option<Fs2Engine>,
    buffer: DoubleBuffer,
    result: ResultMemory,
    wcs: Wcs,
    microprogram: Option<usize>,
}

impl Fs2Device {
    /// A powered-up board: FS2 selected, Read Result mode, nothing loaded.
    pub fn new() -> Self {
        let mut control = ControlRegister::new();
        control.select_filter(FilterSelect::Fs2);
        Fs2Device {
            control,
            engine: None,
            buffer: DoubleBuffer::new(),
            result: ResultMemory::new(),
            wcs: Wcs::new(),
            microprogram: None,
        }
    }

    /// The control register (host view).
    pub fn control(&self) -> ControlRegister {
        self.control
    }

    /// Sets the operational mode bits.
    pub fn set_mode(&mut self, mode: OperationalMode) {
        self.control.set_mode(mode);
    }

    fn require_mode(&self, needed: OperationalMode) -> Result<(), Fs2Error> {
        if self.control.mode() == needed {
            Ok(())
        } else {
            Err(Fs2Error::WrongMode {
                current: self.control.mode(),
                needed,
            })
        }
    }

    /// Loads a compiled query's microprogram (Microprogramming mode).
    ///
    /// The simulation does not interpret instruction bits — the routine
    /// semantics live in the engine — but it enforces the WCS capacity and
    /// the mode protocol.
    ///
    /// # Errors
    ///
    /// [`Fs2Error::WrongMode`] or [`Fs2Error::MicroprogramTooLarge`].
    pub fn load_microprogram(&mut self, instructions: usize) -> Result<(), Fs2Error> {
        self.require_mode(OperationalMode::Microprogramming)?;
        if instructions > WCS_INSTRUCTIONS {
            return Err(Fs2Error::MicroprogramTooLarge { instructions });
        }
        self.microprogram = Some(instructions);
        Ok(())
    }

    /// Assembles and loads a real microprogram into the WCS
    /// (Microprogramming mode). [`Microprogram::standard`] is the Level-3
    /// program every search uses.
    ///
    /// # Errors
    ///
    /// [`Fs2Error::WrongMode`] or [`Fs2Error::MicroprogramTooLarge`].
    pub fn load_program(&mut self, program: &Microprogram) -> Result<(), Fs2Error> {
        self.require_mode(OperationalMode::Microprogramming)?;
        self.wcs
            .load(program)
            .map_err(|e| Fs2Error::MicroprogramTooLarge {
                instructions: e.instructions,
            })?;
        self.microprogram = Some(program.len());
        Ok(())
    }

    /// The Writable Control Store contents (host view over the VMEbus in
    /// Microprogramming mode).
    pub fn wcs(&self) -> &Wcs {
        &self.wcs
    }

    /// Writes the query argument words (Set Query mode).
    ///
    /// # Errors
    ///
    /// [`Fs2Error::WrongMode`] or [`Fs2Error::QueryTooLarge`].
    pub fn set_query(&mut self, stream: &PifStream) -> Result<(), Fs2Error> {
        self.require_mode(OperationalMode::SetQuery)?;
        self.engine = Some(Fs2Engine::new(stream).map_err(Fs2Error::QueryTooLarge)?);
        Ok(())
    }

    /// Streams one disk track through the filter (Search mode). Satisfiers
    /// are captured into the Result Memory; the Result Memory is reset at
    /// the start of the call (one search call = one track, its worst
    /// case).
    ///
    /// # Errors
    ///
    /// [`Fs2Error::WrongMode`], [`Fs2Error::NotReady`],
    /// [`Fs2Error::BadRecord`], or [`Fs2Error::Overflow`].
    pub fn search_track(&mut self, track: &Track) -> Result<SearchStats, Fs2Error> {
        self.require_mode(OperationalMode::Search)?;
        if self.microprogram.is_none() {
            return Err(Fs2Error::NotReady);
        }
        let engine = self.engine.as_mut().ok_or(Fs2Error::NotReady)?;
        self.result.reset();
        let mut stats = SearchStats::default();
        for record_bytes in track.records() {
            self.buffer.fill(record_bytes);
            let (record, _) =
                ClauseRecord::from_bytes(self.buffer.output()).map_err(Fs2Error::BadRecord)?;
            let verdict = engine.match_clause_quiet(record.head_stream());
            stats.clauses += 1;
            stats.match_time += verdict.time;
            stats.stream_bytes += record.head_stream().byte_len() as u64;
            for (total, count) in stats.op_histogram.iter_mut().zip(verdict.op_histogram) {
                *total += count as u64;
            }
            if verdict.matched {
                self.result
                    .capture(record_bytes)
                    .map_err(Fs2Error::Overflow)?;
                stats.satisfiers += 1;
            }
        }
        self.control.set_match_found(!self.result.is_empty());
        Ok(stats)
    }

    /// True if the last search captured at least one satisfier (control
    /// register bit 7).
    pub fn match_found(&self) -> bool {
        self.control.match_found()
    }

    /// Reads the captured satisfier records (Read Result mode), draining
    /// the Result Memory.
    ///
    /// # Errors
    ///
    /// [`Fs2Error::WrongMode`].
    pub fn read_results(&mut self) -> Result<Vec<Vec<u8>>, Fs2Error> {
        self.require_mode(OperationalMode::ReadResult)?;
        Ok(self.result.drain())
    }
}

impl Default for Fs2Device {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_disk::FileBuilder;
    use clare_pif::encode_query;
    use clare_term::parser::{parse_clause, parse_term};
    use clare_term::SymbolTable;

    fn make_track(clauses: &[&str], sy: &mut SymbolTable) -> clare_disk::StoredFile {
        let mut b = FileBuilder::new(16 * 1024);
        for src in clauses {
            let record = ClauseRecord::compile(&parse_clause(src, sy).unwrap()).unwrap();
            b.append_record(&record.to_bytes()).unwrap();
        }
        b.finish("test.pdb")
    }

    fn ready_device(query: &str, sy: &mut SymbolTable) -> Fs2Device {
        let mut d = Fs2Device::new();
        d.set_mode(OperationalMode::Microprogramming);
        d.load_microprogram(256).unwrap();
        d.set_mode(OperationalMode::SetQuery);
        d.set_query(&encode_query(&parse_term(query, sy).unwrap()).unwrap())
            .unwrap();
        d.set_mode(OperationalMode::Search);
        d
    }

    #[test]
    fn full_protocol_roundtrip() {
        let mut sy = SymbolTable::new();
        let file = make_track(&["q(a, 1).", "q(b, 2).", "q(a, 3).", "q(c, 4)."], &mut sy);
        let mut d = ready_device("q(a, X)", &mut sy);
        let stats = d.search_track(&file.tracks()[0]).unwrap();
        assert_eq!(stats.clauses, 4);
        assert_eq!(stats.satisfiers, 2);
        assert!(d.match_found());
        assert!(stats.match_time.as_ns() > 0);
        d.set_mode(OperationalMode::ReadResult);
        let results = d.read_results().unwrap();
        assert_eq!(results.len(), 2);
        // The records decode back to the matching clauses, in order.
        let (r0, _) = ClauseRecord::from_bytes(&results[0]).unwrap();
        let c0 = parse_clause("q(a, 1).", &mut sy).unwrap();
        assert_eq!(r0.clause().head(), c0.head());
    }

    #[test]
    fn mode_protocol_enforced() {
        let mut sy = SymbolTable::new();
        let mut d = Fs2Device::new();
        // Loading a microprogram in Read Result mode fails.
        assert!(matches!(
            d.load_microprogram(10),
            Err(Fs2Error::WrongMode { .. })
        ));
        // Setting a query in Microprogramming mode fails.
        d.set_mode(OperationalMode::Microprogramming);
        let q = encode_query(&parse_term("p(a)", &mut sy).unwrap()).unwrap();
        assert!(matches!(d.set_query(&q), Err(Fs2Error::WrongMode { .. })));
        // Searching before readiness fails.
        d.set_mode(OperationalMode::Search);
        let file = make_track(&["p(a)."], &mut sy);
        assert!(matches!(
            d.search_track(&file.tracks()[0]),
            Err(Fs2Error::NotReady)
        ));
    }

    #[test]
    fn real_microprogram_loads_into_wcs() {
        let mut d = Fs2Device::new();
        d.set_mode(OperationalMode::Microprogramming);
        let program = Microprogram::standard();
        d.load_program(&program).unwrap();
        // The WCS holds the assembled words; spot-check the dispatch word.
        let dispatch = d.wcs().fetch(program.dispatch_entry());
        assert_eq!(dispatch.sequencer, crate::micro::Sequencer::JumpMap);
        // And the device is search-ready once a query is set.
        let mut sy = SymbolTable::new();
        d.set_mode(OperationalMode::SetQuery);
        d.set_query(&encode_query(&parse_term("p(a)", &mut sy).unwrap()).unwrap())
            .unwrap();
        d.set_mode(OperationalMode::Search);
        let file = make_track(&["p(a)."], &mut sy);
        assert_eq!(d.search_track(&file.tracks()[0]).unwrap().satisfiers, 1);
    }

    #[test]
    fn microprogram_capacity_enforced() {
        let mut d = Fs2Device::new();
        d.set_mode(OperationalMode::Microprogramming);
        assert!(d.load_microprogram(2048).is_ok());
        assert_eq!(
            d.load_microprogram(2049),
            Err(Fs2Error::MicroprogramTooLarge { instructions: 2049 })
        );
    }

    #[test]
    fn no_match_clears_flag() {
        let mut sy = SymbolTable::new();
        let file = make_track(&["r(x).", "r(y)."], &mut sy);
        let mut d = ready_device("r(z)", &mut sy);
        let stats = d.search_track(&file.tracks()[0]).unwrap();
        assert_eq!(stats.satisfiers, 0);
        assert!(!d.match_found());
    }

    #[test]
    fn result_memory_resets_between_tracks() {
        let mut sy = SymbolTable::new();
        let file = make_track(&["s(a).", "s(a)."], &mut sy);
        let mut d = ready_device("s(a)", &mut sy);
        d.search_track(&file.tracks()[0]).unwrap();
        let again = d.search_track(&file.tracks()[0]).unwrap();
        assert_eq!(again.satisfiers, 2, "not accumulated across calls");
        d.set_mode(OperationalMode::ReadResult);
        assert_eq!(d.read_results().unwrap().len(), 2);
    }

    #[test]
    fn result_memory_overflow_surfaces_as_error() {
        // 100 tiny clauses that all match an open query: the 65th capture
        // exceeds the 6-bit satisfier counter.
        let mut sy = SymbolTable::new();
        let clauses: Vec<String> = (0..100).map(|i| format!("m(v{i}).")).collect();
        let refs: Vec<&str> = clauses.iter().map(String::as_str).collect();
        let file = make_track(&refs, &mut sy);
        let mut d = ready_device("m(X)", &mut sy);
        let err = d.search_track(&file.tracks()[0]).unwrap_err();
        assert!(matches!(
            err,
            Fs2Error::Overflow(crate::result::ResultOverflow::SatisfierCount { slots: 64 })
        ));
    }

    #[test]
    fn corrupt_record_surfaces_as_error() {
        let mut sy = SymbolTable::new();
        let mut fb = FileBuilder::new(16 * 1024);
        fb.append_record(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02])
            .unwrap();
        let file = fb.finish("corrupt");
        let mut d = ready_device("m(X)", &mut sy);
        assert!(matches!(
            d.search_track(&file.tracks()[0]),
            Err(Fs2Error::BadRecord(_))
        ));
    }

    #[test]
    fn op_histogram_populated() {
        let mut sy = SymbolTable::new();
        let file = make_track(&["t(a, a).", "t(A, A)."], &mut sy);
        let mut d = ready_device("t(a, a)", &mut sy);
        let stats = d.search_track(&file.tracks()[0]).unwrap();
        // Clause 1: MATCH MATCH; clause 2: DB_STORE DB_FETCH.
        assert_eq!(stats.op_histogram[0], 2); // Match
        assert_eq!(stats.op_histogram[1], 1); // DbStore
        assert_eq!(stats.op_histogram[3], 1); // DbFetch
        assert_eq!(stats.satisfiers, 2);
        let total_ops: u64 = stats.op_histogram.iter().sum();
        assert_eq!(total_ops, 4);
    }
}
