//! Cross-crate properties of the full retrieval pipeline.
//!
//! These are the invariants DESIGN.md commits to:
//!
//! * every filter is complete (full unification ⇒ acceptance at FS1, FS2,
//!   and every software matching level);
//! * the FS2 hardware simulator and the software Figure 1 reference agree
//!   on verdicts *and* operation traces;
//! * matching levels are monotone (L1 ⊇ L2 ⊇ L3 ⊇ L4 ⊇ L5);
//! * all four search modes return the same answer set;
//! * PIF clause records round-trip losslessly.

use clare::prelude::*;
use clare_workload::{RandomTermSpec, RandomTerms};
use proptest::prelude::*;

fn generator(seed: u64) -> (SymbolTable, RandomTerms) {
    let mut symbols = SymbolTable::new();
    let gen = RandomTerms::new(RandomTermSpec::default(), &mut symbols, seed);
    (symbols, gen)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full unification implies acceptance by every filter level and by
    /// the FS2 hardware engine — no false negatives anywhere.
    #[test]
    fn filters_are_complete(seed in any::<u64>()) {
        let (_symbols, mut gen) = generator(seed);
        for _ in 0..24 {
            let query = gen.head();
            let clause = gen.head();
            let unifies = unify_query_clause(&query, &clause).is_some();
            if !unifies {
                continue;
            }
            for level in MatchLevel::ALL {
                prop_assert!(
                    partial_match(&query, &clause, PartialConfig::level(level)).matched,
                    "false negative at {level}"
                );
            }
            prop_assert!(
                partial_match(&query, &clause, PartialConfig::fs2()).matched,
                "false negative at the FS2 configuration"
            );
            let mut engine = Fs2Engine::new(&encode_query(&query).unwrap()).unwrap();
            let verdict = engine.match_clause_stream(&encode_clause_head(&clause).unwrap());
            prop_assert!(verdict.matched, "false negative in the hardware engine");
        }
    }

    /// The word-level hardware engine and the term-level software
    /// reference are the same algorithm: identical verdicts, identical
    /// operation traces.
    #[test]
    fn hardware_and_software_agree(seed in any::<u64>()) {
        let (_symbols, mut gen) = generator(seed);
        for _ in 0..24 {
            let query = gen.head();
            let clause = gen.head();
            let sw = partial_match(&query, &clause, PartialConfig::fs2());
            let mut engine = Fs2Engine::new(&encode_query(&query).unwrap()).unwrap();
            let hw = engine.match_clause_stream(&encode_clause_head(&clause).unwrap());
            prop_assert_eq!(hw.matched, sw.matched, "verdicts differ");
            let hw_ops: Vec<&str> = hw.ops.iter().map(|o| o.name()).collect();
            let sw_ops: Vec<&str> = sw.ops.iter().map(|o| o.name()).collect();
            prop_assert_eq!(hw_ops, sw_ops, "op traces differ");
        }
    }

    /// Levels accept monotonically decreasing candidate sets.
    #[test]
    fn levels_are_monotone(seed in any::<u64>()) {
        let (_symbols, mut gen) = generator(seed);
        for _ in 0..24 {
            let query = gen.head();
            let clause = gen.head();
            let verdicts: Vec<bool> = MatchLevel::ALL
                .iter()
                .map(|l| partial_match(&query, &clause, PartialConfig::level(*l)).matched)
                .collect();
            for w in verdicts.windows(2) {
                prop_assert!(w[0] || !w[1], "monotonicity violated: {:?}", verdicts);
            }
        }
    }

    /// PIF clause records serialize and parse back to the same clause and
    /// the same head stream.
    #[test]
    fn clause_records_roundtrip(seed in any::<u64>()) {
        let (_symbols, mut gen) = generator(seed);
        for _ in 0..24 {
            let head = gen.head();
            let n_vars = clare::unify::store::var_span(&head) as usize;
            let clause = Clause::new(
                head,
                vec![],
                (0..n_vars).map(|i| format!("V{i}")).collect(),
            )
            .unwrap();
            let record = match ClauseRecord::compile(&clause) {
                Ok(r) => r,
                Err(_) => continue,
            };
            let bytes = record.to_bytes();
            let (back, used) = ClauseRecord::from_bytes(&bytes).unwrap();
            prop_assert_eq!(used, bytes.len());
            prop_assert_eq!(back.clause(), &clause);
            prop_assert_eq!(back.head_stream(), record.head_stream());
        }
    }
}

/// All four search modes agree on the answer set, and the two-stage
/// candidates are contained in each single stage's.
#[test]
fn modes_agree_and_two_stage_is_an_intersection() {
    let mut builder = KbBuilder::new();
    let mut gen_symbols = SymbolTable::new();
    let mut gen = RandomTerms::new(RandomTermSpec::default(), &mut gen_symbols, 0xABCD);
    // Random heads become facts; share the symbol table via re-parsing.
    let mut heads = Vec::new();
    for _ in 0..300 {
        let head = gen.head();
        let rendered = format!("{}.", TermDisplay::new(&head, &gen_symbols));
        builder.consult("m", &rendered).unwrap();
        heads.push(rendered);
    }
    // Queries: a few of the stored heads re-parsed in the builder scope.
    let queries: Vec<Term> = heads
        .iter()
        .step_by(37)
        .map(|src| parse_term(src.trim_end_matches('.'), builder.symbols_mut()).unwrap())
        .collect();
    let kb = builder.finish(KbConfig::default());
    let opts = CrsOptions::default();
    for q in &queries {
        let by_mode: Vec<_> = SearchMode::ALL
            .iter()
            .map(|m| retrieve(&kb, q, *m, &opts))
            .collect();
        let unified: Vec<usize> = by_mode.iter().map(|r| r.stats.unified).collect();
        assert!(
            unified.windows(2).all(|w| w[0] == w[1]),
            "answer sets differ across modes: {unified:?}"
        );
        let fs1: std::collections::BTreeSet<_> = by_mode[1].candidates.iter().collect();
        let fs2: std::collections::BTreeSet<_> = by_mode[2].candidates.iter().collect();
        let two: std::collections::BTreeSet<_> = by_mode[3].candidates.iter().collect();
        assert!(two.is_subset(&fs1), "two-stage ⊆ FS1");
        assert!(two.is_subset(&fs2), "two-stage ⊆ FS2");
    }
}

/// The derived Table 1 stays pinned to the paper.
#[test]
fn table1_is_stable() {
    let expected = [105, 95, 115, 105, 170, 170, 235];
    for (op, ns) in HwOp::ALL.iter().zip(expected) {
        assert_eq!(op.execution_time().as_ns(), ns, "{op}");
    }
}
