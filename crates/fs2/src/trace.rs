//! Human-readable rendering of FS2 match traces.
//!
//! [`Fs2Engine::match_clause_stream_traced`](crate::engine::Fs2Engine::match_clause_stream_traced)
//! records which word pairs were compared and what the hardware did;
//! [`render_trace`] lays that out as a table — the closest software
//! equivalent of watching the Map ROM dispatch on a logic analyser.

use crate::engine::TraceStep;
use clare_pif::{PifWord, TypeTag};
use std::fmt::Write as _;

/// Short rendering of one PIF word: tag mnemonic plus content.
pub fn describe_word(word: &PifWord) -> String {
    match word.type_tag() {
        TypeTag::Anon => "_".to_owned(),
        TypeTag::QueryVar { first } => {
            format!("QV{}#{}", if first { "₁" } else { "ₙ" }, word.content())
        }
        TypeTag::DbVar { first } => {
            format!("DV{}#{}", if first { "₁" } else { "ₙ" }, word.content())
        }
        TypeTag::AtomPtr => format!("atom@{}", word.content()),
        TypeTag::FloatPtr => format!("float@{}", word.content()),
        TypeTag::IntInline { .. } => format!("int {}", word.int_value().unwrap_or_default()),
        TypeTag::StructInline { arity } => format!("struct@{}/{arity}", word.content()),
        TypeTag::StructPtr { arity } => format!("struct*@{}/{arity}", word.content()),
        TypeTag::ListInline { arity, terminated } => {
            format!("list[{arity}]{}", if terminated { "" } else { "|_" })
        }
        TypeTag::ListPtr { arity, terminated } => {
            format!("list*[{arity}]{}", if terminated { "" } else { "|_" })
        }
    }
}

/// Renders a match trace as an aligned table: one row per compared word
/// pair, with the Map ROM routine, the hardware operation (and its
/// Table 1 cost), and the pass/fail outcome.
pub fn render_trace(
    query_stream: &[PifWord],
    db_stream: &[PifWord],
    steps: &[TraceStep],
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<4} {:<16} {:<16} {:<14} {:<26} outcome",
        "#", "query word", "db word", "routine", "operation"
    );
    for (i, step) in steps.iter().enumerate() {
        let q = query_stream
            .get(step.q_index)
            .map(describe_word)
            .unwrap_or_else(|| "?".to_owned());
        let d = db_stream
            .get(step.d_index)
            .map(describe_word)
            .unwrap_or_else(|| "?".to_owned());
        let op = step
            .op
            .map(|op| format!("{} ({} ns)", op.name(), op.execution_time().as_ns()))
            .unwrap_or_else(|| "-".to_owned());
        let _ = writeln!(
            out,
            "{:<4} {:<16} {:<16} {:<14} {:<26} {}",
            i,
            q,
            d,
            step.routine.to_string(),
            op,
            if step.passed { "pass" } else { "FAIL" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Fs2Engine;
    use clare_pif::{encode_clause_head, encode_query};
    use clare_term::parser::parse_term;
    use clare_term::SymbolTable;

    #[test]
    fn renders_a_full_trace() {
        let mut sy = SymbolTable::new();
        let q = parse_term("f(X, a, [1, 2])", &mut sy).unwrap();
        let c = parse_term("f(b, a, [1, 2])", &mut sy).unwrap();
        let q_stream = encode_query(&q).unwrap();
        let c_stream = encode_clause_head(&c).unwrap();
        let mut engine = Fs2Engine::new(&q_stream).unwrap();
        let (verdict, steps) = engine.match_clause_stream_traced(&c_stream);
        assert!(verdict.matched);
        let text = render_trace(q_stream.words(), c_stream.words(), &steps);
        assert!(text.contains("QUERY_STORE"));
        assert!(text.contains("MATCH (105 ns)"));
        assert!(text.contains("pass"));
        assert!(text.contains("list[2]"));
        assert!(!text.contains("FAIL"));
    }

    #[test]
    fn failure_row_is_marked() {
        let mut sy = SymbolTable::new();
        let q = parse_term("f(a)", &mut sy).unwrap();
        let c = parse_term("f(b)", &mut sy).unwrap();
        let q_stream = encode_query(&q).unwrap();
        let c_stream = encode_clause_head(&c).unwrap();
        let mut engine = Fs2Engine::new(&q_stream).unwrap();
        let (verdict, steps) = engine.match_clause_stream_traced(&c_stream);
        assert!(!verdict.matched);
        let text = render_trace(q_stream.words(), c_stream.words(), &steps);
        assert!(text.contains("FAIL"));
    }

    #[test]
    fn word_descriptions_cover_all_tags() {
        use clare_pif::PifWord;
        let words = [
            (PifWord::new(TypeTag::Anon, 0), "_"),
            (PifWord::new(TypeTag::AtomPtr, 3), "atom@3"),
            (PifWord::int(-5).unwrap(), "int -5"),
            (
                PifWord::new(TypeTag::StructInline { arity: 2 }, 9),
                "struct@9/2",
            ),
            (
                PifWord::new(
                    TypeTag::ListInline {
                        arity: 3,
                        terminated: false,
                    },
                    0,
                ),
                "list[3]|_",
            ),
        ];
        for (word, expected) in words {
            assert_eq!(describe_word(&word), expected);
        }
    }
}
