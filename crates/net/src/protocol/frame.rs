//! Length-prefixed frames: the unit of exchange on a `clare-net` socket.
//!
//! Every message after the handshake — in both directions — is one frame:
//!
//! ```text
//! +--------+-------------+--------+----------------------+
//! | u32 len| u64 req id  | u8 op  | payload (len-9 bytes)|
//! +--------+-------------+--------+----------------------+
//! ```
//!
//! `len` counts everything after itself (id + opcode + payload), so a
//! reader can always skip a frame it cannot interpret, and a writer can
//! concatenate many frames into one `write` — which is what makes client
//! pipelining (and the server's batch coalescing) possible. All integers
//! are big-endian. `len` is bounded; a peer announcing an over-long frame
//! is treated as hostile and the connection torn down after an error
//! frame, because the stream can no longer be trusted to resynchronise.

use std::io::Read;

/// Hard cap on `len` accepted by [`FrameReader`] (16 MiB). Generous enough
/// for a full symbol-table reply on a Warren-scale knowledge base, small
/// enough that a hostile peer cannot make the server buffer unbounded data.
pub const MAX_FRAME_LEN: u32 = 16 << 20;

/// Bytes of the frame counted by `len` besides the payload (id + opcode).
pub const FRAME_HEADER: u32 = 9;

/// Bytes of the optional CRC32C trailer. When the connection negotiated
/// frame checksums (hello capability [`super::wire::CAP_FRAME_CRC`]), every
/// frame's `len` additionally counts a trailing CRC32C over the id, opcode,
/// and payload bytes — everything after `len` except the trailer itself.
pub const FRAME_CRC_TRAILER: u32 = 4;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Client-chosen correlation id, echoed verbatim in the response.
    /// Id `0` is reserved for connection-level notices from the server.
    pub request_id: u64,
    /// Operation, one of [`super::opcode`]'s constants.
    pub opcode: u8,
    /// Operation-specific body.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Creates a frame.
    pub fn new(request_id: u64, opcode: u8, payload: Vec<u8>) -> Self {
        Frame {
            request_id,
            opcode,
            payload,
        }
    }

    /// Appends the wire encoding of this frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(FRAME_HEADER + self.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.request_id.to_be_bytes());
        out.push(self.opcode);
        out.extend_from_slice(&self.payload);
    }

    /// Appends the checksummed wire encoding: `len` counts the extra
    /// 4-byte CRC32C trailer computed over everything after `len`.
    pub fn encode_into_checksummed(&self, out: &mut Vec<u8>) {
        let len = FRAME_HEADER + self.payload.len() as u32 + FRAME_CRC_TRAILER;
        out.extend_from_slice(&len.to_be_bytes());
        let body_start = out.len();
        out.extend_from_slice(&self.request_id.to_be_bytes());
        out.push(self.opcode);
        out.extend_from_slice(&self.payload);
        let crc = clare_fault::crc32c(&out[body_start..]);
        out.extend_from_slice(&crc.to_be_bytes());
    }

    /// The wire encoding of this frame, checksummed when `checksums`.
    pub fn encoded_with(&self, checksums: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + FRAME_HEADER as usize + self.payload.len());
        if checksums {
            self.encode_into_checksummed(&mut out);
        } else {
            self.encode_into(&mut out);
        }
        out
    }

    /// The plain (unchecksummed) wire encoding of this frame.
    pub fn encoded(&self) -> Vec<u8> {
        self.encoded_with(false)
    }
}

/// Errors surfaced while framing.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed (including read timeouts).
    Io(std::io::Error),
    /// A frame announced a length beyond the configured cap, or shorter
    /// than its own header. The stream cannot be resynchronised.
    BadLength {
        /// The announced length.
        len: u32,
        /// The reader's cap.
        max: u32,
    },
    /// A checksummed frame's CRC32C trailer did not match its bytes: the
    /// frame was corrupted in flight. The connection is no longer
    /// trustworthy and should be torn down.
    Corrupt {
        /// CRC carried by the trailer.
        expected: u32,
        /// CRC computed over the received bytes.
        got: u32,
    },
    /// The peer closed the connection cleanly.
    Closed,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::BadLength { len, max } => {
                write!(f, "frame length {len} outside [{FRAME_HEADER}, {max}]")
            }
            FrameError::Corrupt { expected, got } => {
                write!(
                    f,
                    "frame checksum mismatch: trailer {expected:#010x}, computed {got:#010x}"
                )
            }
            FrameError::Closed => f.write_str("connection closed by peer"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// An incremental frame parser over a byte stream.
///
/// Bytes are [`feed`](Self::feed)-ed in (from blocking or non-blocking
/// reads alike) and complete frames popped with
/// [`try_frame`](Self::try_frame); [`read_frame`](Self::read_frame) wraps
/// the blocking loop. Keeping the buffer here — rather than in the socket —
/// is what lets the server peek at *already-received* pipelined requests
/// without ever blocking, the basis of batch coalescing.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    pos: usize,
    max_frame: u32,
    checksums: bool,
}

impl FrameReader {
    /// Creates a reader enforcing the given frame-length cap.
    pub fn new(max_frame: u32) -> Self {
        FrameReader {
            buf: Vec::new(),
            pos: 0,
            max_frame: max_frame.min(MAX_FRAME_LEN),
            checksums: false,
        }
    }

    /// Switches the reader to checksummed frames (every frame must carry a
    /// valid CRC32C trailer). Set right after the hello negotiates
    /// [`super::wire::CAP_FRAME_CRC`], before any frame bytes arrive.
    pub fn set_checksums(&mut self, on: bool) {
        self.checksums = on;
    }

    /// Appends raw bytes received from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops one frame if a complete one is buffered. `Ok(None)` means more
    /// bytes are needed; it never blocks and never reads the socket.
    pub fn try_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]);
        let min_len = FRAME_HEADER + if self.checksums { FRAME_CRC_TRAILER } else { 0 };
        if len < min_len || len > self.max_frame {
            return Err(FrameError::BadLength {
                len,
                max: self.max_frame,
            });
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let body_end = if self.checksums {
            let body_end = total - FRAME_CRC_TRAILER as usize;
            let expected = u32::from_be_bytes([
                avail[body_end],
                avail[body_end + 1],
                avail[body_end + 2],
                avail[body_end + 3],
            ]);
            let got = clare_fault::crc32c(&avail[4..body_end]);
            if got != expected {
                clare_trace::metrics().net_frame_crc_failures.inc();
                return Err(FrameError::Corrupt { expected, got });
            }
            body_end
        } else {
            total
        };
        let mut id_raw = [0u8; 8];
        id_raw.copy_from_slice(&avail[4..12]);
        let frame = Frame {
            request_id: u64::from_be_bytes(id_raw),
            opcode: avail[12],
            payload: avail[13..body_end].to_vec(),
        };
        self.pos += total;
        // Reclaim consumed space once it dominates the buffer.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(frame))
    }

    /// Reads from `r` until one complete frame is available.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (including read timeouts, which surface as
    /// [`FrameError::Io`] with kind `WouldBlock`/`TimedOut`), length
    /// violations, and clean closes ([`FrameError::Closed`]).
    pub fn read_frame<R: Read>(&mut self, r: &mut R) -> Result<Frame, FrameError> {
        let mut tmp = [0u8; 4096];
        loop {
            if let Some(frame) = self.try_frame()? {
                return Ok(frame);
            }
            match r.read(&mut tmp) {
                Ok(0) => return Err(FrameError::Closed),
                Ok(n) => self.feed(&tmp[..n]),
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_through_reader() {
        let frames = [
            Frame::new(1, 0x02, vec![1, 2, 3]),
            Frame::new(2, 0x01, Vec::new()),
            Frame::new(u64::MAX, 0xFF, vec![0; 100]),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire);
        }
        let mut reader = FrameReader::new(MAX_FRAME_LEN);
        // Feed byte-by-byte to exercise partial-frame buffering.
        let mut got = Vec::new();
        for b in wire {
            reader.feed(&[b]);
            while let Some(f) = reader.try_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut reader = FrameReader::new(1024);
        reader.feed(&(2048u32).to_be_bytes());
        assert!(matches!(
            reader.try_frame(),
            Err(FrameError::BadLength { len: 2048, .. })
        ));
    }

    #[test]
    fn undersized_length_is_rejected() {
        let mut reader = FrameReader::new(1024);
        reader.feed(&(FRAME_HEADER - 1).to_be_bytes());
        assert!(matches!(
            reader.try_frame(),
            Err(FrameError::BadLength { .. })
        ));
    }

    #[test]
    fn checksummed_frames_roundtrip_and_catch_every_bit_flip() {
        let frame = Frame::new(42, 0x02, vec![1, 2, 3, 4, 5]);
        let wire = frame.encoded_with(true);
        assert_eq!(
            wire.len(),
            4 + FRAME_HEADER as usize + 5 + FRAME_CRC_TRAILER as usize
        );
        let mut reader = FrameReader::new(MAX_FRAME_LEN);
        reader.set_checksums(true);
        reader.feed(&wire);
        assert_eq!(reader.try_frame().unwrap().unwrap(), frame);
        assert_eq!(reader.buffered(), 0);
        // Every single-bit flip past the length prefix is caught.
        for bit in 0..(wire.len() - 4) * 8 {
            let mut dirty = wire.clone();
            dirty[4 + bit / 8] ^= 1 << (bit % 8);
            let mut reader = FrameReader::new(MAX_FRAME_LEN);
            reader.set_checksums(true);
            reader.feed(&dirty);
            assert!(
                matches!(reader.try_frame(), Err(FrameError::Corrupt { .. })),
                "flip of bit {bit} must be caught"
            );
        }
    }

    #[test]
    fn checksummed_reader_rejects_trailerless_length() {
        // A bare header-only length is legal without checksums but too
        // short to carry the mandatory trailer with them.
        let mut reader = FrameReader::new(MAX_FRAME_LEN);
        reader.set_checksums(true);
        reader.feed(&FRAME_HEADER.to_be_bytes());
        assert!(matches!(
            reader.try_frame(),
            Err(FrameError::BadLength { .. })
        ));
    }

    #[test]
    fn read_frame_pulls_from_stream() {
        let frame = Frame::new(7, 0x06, vec![9, 9]);
        let wire = frame.encoded();
        let mut reader = FrameReader::new(MAX_FRAME_LEN);
        let mut cursor = wire.as_slice();
        assert_eq!(reader.read_frame(&mut cursor).unwrap(), frame);
        assert!(matches!(
            reader.read_frame(&mut cursor),
            Err(FrameError::Closed)
        ));
    }
}
