//! The Result Memory and its Address Generator (§3.2, Figure 4).
//!
//! "The Result Memory has a capacity of 32K bytes which is large enough to
//! contain all clause satisfiers of one disk track — the worst case of a
//! single FS2 search call." The Address Generator is two counters: a 6-bit
//! counter selecting the satisfier slot (incremented per satisfier, its
//! final value is the satisfier count) and a 9-bit counter addressing
//! bytes within the slot (reset to zero after every clause).

use std::fmt;

/// Total Result Memory capacity.
pub const RESULT_MEMORY_BYTES: usize = 32 * 1024;
/// Satisfier slots: the upper counter is 6 bits wide.
pub const SATISFIER_SLOTS: usize = 64;
/// Bytes per slot: the lower counter is 9 bits wide.
pub const SLOT_BYTES: usize = 512;

/// Overflow conditions a search call can hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResultOverflow {
    /// More satisfiers than the 6-bit counter can address: the 65th hit on
    /// one track has nowhere to go.
    SatisfierCount {
        /// Slots available.
        slots: usize,
    },
    /// A clause record larger than the 9-bit offset counter's reach.
    RecordTooLarge {
        /// The record's size.
        record_bytes: usize,
    },
}

impl fmt::Display for ResultOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResultOverflow::SatisfierCount { slots } => {
                write!(f, "result memory full: all {slots} satisfier slots used")
            }
            ResultOverflow::RecordTooLarge { record_bytes } => write!(
                f,
                "clause record of {record_bytes} bytes exceeds the {SLOT_BYTES}-byte slot"
            ),
        }
    }
}

impl std::error::Error for ResultOverflow {}

/// The Result Memory: 64 slots of 512 bytes.
///
/// # Examples
///
/// ```
/// use clare_fs2::ResultMemory;
///
/// let mut rm = ResultMemory::new();
/// rm.capture(&[1, 2, 3])?;
/// assert_eq!(rm.satisfier_count(), 1);
/// assert_eq!(rm.drain(), vec![vec![1, 2, 3]]);
/// assert_eq!(rm.satisfier_count(), 0);
/// # Ok::<(), clare_fs2::result::ResultOverflow>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResultMemory {
    slots: Vec<Vec<u8>>,
}

impl ResultMemory {
    /// An empty result memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Captures one satisfying clause record into the next slot.
    ///
    /// # Errors
    ///
    /// Returns [`ResultOverflow`] when the record exceeds a slot or all
    /// slots are used — both conditions the real counters cannot express.
    pub fn capture(&mut self, record: &[u8]) -> Result<(), ResultOverflow> {
        if record.len() > SLOT_BYTES {
            return Err(ResultOverflow::RecordTooLarge {
                record_bytes: record.len(),
            });
        }
        if self.slots.len() >= SATISFIER_SLOTS {
            return Err(ResultOverflow::SatisfierCount {
                slots: SATISFIER_SLOTS,
            });
        }
        self.slots.push(record.to_vec());
        Ok(())
    }

    /// The upper counter's value: satisfiers captured so far.
    pub fn satisfier_count(&self) -> usize {
        self.slots.len()
    }

    /// The hardware address the next byte write would use:
    /// `upper_counter << 9 | lower_counter`.
    pub fn next_address(&self) -> u16 {
        ((self.slots.len() as u16) << 9) & 0x7FFF
    }

    /// True if no satisfiers are held.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Reads the captured records without consuming them (Read Result
    /// mode is non-destructive; the host reads the memory over the bus).
    pub fn satisfiers(&self) -> &[Vec<u8>] {
        &self.slots
    }

    /// Takes all captured records and resets the counters for the next
    /// search call.
    pub fn drain(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.slots)
    }

    /// Clears the memory (start of a new search call).
    pub fn reset(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_paper() {
        assert_eq!(SATISFIER_SLOTS * SLOT_BYTES, RESULT_MEMORY_BYTES);
        assert_eq!(SATISFIER_SLOTS, 1 << 6, "6-bit upper counter");
        assert_eq!(SLOT_BYTES, 1 << 9, "9-bit lower counter");
    }

    #[test]
    fn captures_in_order() {
        let mut rm = ResultMemory::new();
        rm.capture(&[1]).unwrap();
        rm.capture(&[2]).unwrap();
        assert_eq!(rm.satisfier_count(), 2);
        assert_eq!(rm.satisfiers(), &[vec![1], vec![2]]);
        assert_eq!(rm.drain(), vec![vec![1], vec![2]]);
        assert!(rm.is_empty());
    }

    #[test]
    fn slot_overflow_at_64() {
        let mut rm = ResultMemory::new();
        for i in 0..SATISFIER_SLOTS {
            rm.capture(&[i as u8]).unwrap();
        }
        let err = rm.capture(&[0xFF]).unwrap_err();
        assert_eq!(err, ResultOverflow::SatisfierCount { slots: 64 });
        assert_eq!(rm.satisfier_count(), 64);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut rm = ResultMemory::new();
        let big = vec![0u8; SLOT_BYTES + 1];
        assert_eq!(
            rm.capture(&big).unwrap_err(),
            ResultOverflow::RecordTooLarge {
                record_bytes: SLOT_BYTES + 1
            }
        );
        let exact = vec![0u8; SLOT_BYTES];
        assert!(rm.capture(&exact).is_ok());
    }

    #[test]
    fn next_address_tracks_upper_counter() {
        let mut rm = ResultMemory::new();
        assert_eq!(rm.next_address(), 0);
        rm.capture(&[1]).unwrap();
        assert_eq!(rm.next_address(), 1 << 9);
        rm.capture(&[2]).unwrap();
        assert_eq!(rm.next_address(), 2 << 9);
    }

    #[test]
    fn reset_restores_counters() {
        let mut rm = ResultMemory::new();
        rm.capture(&[1]).unwrap();
        rm.reset();
        assert_eq!(rm.satisfier_count(), 0);
        assert_eq!(rm.next_address(), 0);
    }
}
