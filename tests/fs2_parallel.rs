//! Cross-crate properties of the parallel FS2 track pipeline.
//!
//! The sharded sweep is an implementation detail of the host simulator:
//! at every worker count it must return the same satisfiers, the same
//! statistics, and the same modelled times as the serial reference —
//! parallelism may only change host wall-clock. These tests pin that
//! down over random knowledge bases and queries, for both the
//! pre-decoded arena path and single-query and batched retrieval.

use clare::prelude::*;
use clare_workload::{RandomTermSpec, RandomTerms};
use proptest::prelude::*;

/// A random fact-only knowledge base plus queries drawn from its heads
/// (so some queries have answers) and one fresh head (so some may not).
fn random_kb(seed: u64, facts: usize) -> (KnowledgeBase, Vec<Term>) {
    let mut builder = KbBuilder::new();
    let mut gen_symbols = SymbolTable::new();
    let mut gen = RandomTerms::new(RandomTermSpec::default(), &mut gen_symbols, seed);
    let mut heads = Vec::new();
    for _ in 0..facts {
        let head = gen.head();
        let rendered = format!("{}.", TermDisplay::new(&head, &gen_symbols));
        builder.consult("m", &rendered).unwrap();
        heads.push(rendered);
    }
    let mut sources: Vec<String> = heads
        .iter()
        .step_by(29)
        .map(|src| src.trim_end_matches('.').to_owned())
        .collect();
    let fresh = gen.head();
    sources.push(TermDisplay::new(&fresh, &gen_symbols).to_string());
    let queries = sources
        .iter()
        .map(|src| parse_term(src, builder.symbols_mut()).unwrap())
        .collect();
    (builder.finish(KbConfig::default()), queries)
}

fn with_workers(workers: usize) -> CrsOptions {
    CrsOptions {
        fs2_parallelism: Some(workers),
        ..CrsOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// At workers ∈ {1, 2, 4, 7} a retrieval is *identical* to the serial
    /// reference: same candidates, same stats, and therefore the same
    /// modelled `fs2_time`, `disk_time`, and `elapsed`.
    #[test]
    fn parallel_sweep_equals_serial_reference(seed in any::<u64>()) {
        let (kb, queries) = random_kb(seed, 120);
        let serial = with_workers(1);
        for q in &queries {
            for mode in [SearchMode::Fs2Only, SearchMode::TwoStage] {
                let reference = retrieve(&kb, q, mode, &serial);
                for workers in [2usize, 4, 7] {
                    let got = retrieve(&kb, q, mode, &with_workers(workers));
                    prop_assert_eq!(
                        &got, &reference,
                        "workers = {}, mode = {}", workers, mode
                    );
                }
            }
        }
    }

    /// Batched retrieval through the shared worker pool returns exactly
    /// the per-query results, in input order.
    #[test]
    fn batched_sweep_equals_individual_retrievals(seed in any::<u64>()) {
        let (kb, queries) = random_kb(seed, 100);
        for workers in [1usize, 4] {
            let opts = with_workers(workers);
            for mode in [SearchMode::Fs2Only, SearchMode::TwoStage] {
                let batch = retrieve_batch(&kb, &queries, mode, &opts);
                prop_assert_eq!(batch.len(), queries.len());
                for (q, got) in queries.iter().zip(&batch) {
                    let alone = retrieve(&kb, q, mode, &opts);
                    prop_assert_eq!(got, &alone, "workers = {}, mode = {}", workers, mode);
                }
            }
        }
    }

    /// No false negatives at any worker count: every clause that fully
    /// unifies with the query is among the parallel sweep's candidates.
    #[test]
    fn parallel_sweep_has_no_false_negatives(seed in any::<u64>()) {
        let (kb, queries) = random_kb(seed, 80);
        for q in &queries {
            let Some((f, a)) = q.functor_arity() else { continue };
            let Some(pred) = kb.predicate(f, a) else { continue };
            let answers: Vec<u32> = pred
                .clauses()
                .iter()
                .enumerate()
                .filter(|(_, c)| unify_query_clause(q, c.head()).is_some())
                .map(|(i, _)| i as u32)
                .collect();
            for workers in [1usize, 2, 4, 7] {
                for mode in [SearchMode::Fs2Only, SearchMode::TwoStage] {
                    let r = retrieve(&kb, q, mode, &with_workers(workers));
                    let candidates: std::collections::BTreeSet<u32> =
                        r.candidates.iter().map(|id| id.index()).collect();
                    for id in &answers {
                        prop_assert!(
                            candidates.contains(id),
                            "clause {} lost at workers = {}, mode = {}", id, workers, mode
                        );
                    }
                }
            }
        }
    }
}
