//! E19 — cluster wall-clock: aggregate retrieval throughput through the
//! predicate-sharded router at 1, 2, and 4 shards.
//!
//! The fixed-size-node question: one `clare-served` backend with a
//! single worker models a machine of fixed capacity. Sharding the
//! predicate space over N such machines multiplies aggregate capacity —
//! and this experiment reports that in the repository's native
//! currency, **modeled engine time**: every retrieval carries the
//! simulated wall-clock of its disk/FS1/FS2/unify pipeline
//! (`RetrievalStats::elapsed`), each shard's busy time is the sum over
//! the requests routed to it, and the cluster's modeled makespan is the
//! busiest shard (shards run concurrently). The retrieval cache is off
//! so every request exercises the full pipeline.
//!
//! Host wall-clock is reported alongside for transparency, but it
//! measures the bench host (all backends share this machine's cores —
//! on a single-core host it cannot scale), not the modeled cluster;
//! `speedup_vs_single` is over modeled throughput.
//!
//! Every case drives the same total request count from the same client
//! population over the same query mix; only the shard count changes.
//! The single-shard row is the speedup baseline. The predicate
//! population hashes evenly over 2 and 4 shards, so the balance term of
//! the speedup is 1; a skewed namespace degrades exactly by its
//! busiest-shard share.

use clare_cluster::{Router, RouterConfig, ShardMap, ShardSpec};
use clare_core::{CacheConfig, ClauseRetrievalServer, CrsOptions, SearchMode};
use clare_kb::{KbBuilder, KbConfig, KnowledgeBase};
use clare_net::{NetConfig, NetServer};
use clare_term::parser::parse_term;
use clare_term::Term;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Distinct predicates in the workload; the FNV placement spreads them
/// 8/8 over two shards and 4/4/4/4 over four.
const PREDS: usize = 16;
/// Few distinct keys → large per-query answer sets, so the modeled
/// pipeline does real work per request (FS1 scan, FS2, unification)
/// instead of measuring protocol overhead.
const KEYS: usize = 12;

/// One measured case.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterWallclockRow {
    /// Shards (backends) serving the case.
    pub shards: usize,
    /// Client threads driving the router concurrently.
    pub clients: usize,
    /// Total requests served.
    pub requests: usize,
    /// Host wall-clock, milliseconds (bench-host bound; see module docs).
    pub wall_ms: f64,
    /// Host requests per second.
    pub wall_rps: f64,
    /// Modeled makespan: the busiest shard's summed engine time, ms.
    pub modeled_makespan_ms: f64,
    /// Modeled aggregate requests per second (requests / makespan).
    pub modeled_rps: f64,
    /// Modeled throughput relative to the single-shard row.
    pub speedup_vs_single: f64,
}

/// The report.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterWallclockReport {
    /// Facts per predicate in the shared base knowledge base.
    pub facts_per_pred: usize,
    /// Distinct predicates in the query mix.
    pub preds: usize,
    /// One row per shard count, in input order.
    pub rows: Vec<ClusterWallclockRow>,
}

impl ClusterWallclockReport {
    /// Renders the report as a small JSON document (hand-written — the
    /// workspace deliberately carries no serde dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"cluster_wallclock\",\n");
        out.push_str("  \"unit\": \"requests_per_second\",\n");
        out.push_str(&format!("  \"facts_per_pred\": {},\n", self.facts_per_pred));
        out.push_str(&format!("  \"preds\": {},\n", self.preds));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"shards\": {},\n", row.shards));
            out.push_str(&format!("      \"clients\": {},\n", row.clients));
            out.push_str(&format!("      \"requests\": {},\n", row.requests));
            out.push_str(&format!("      \"wall_ms\": {:.1},\n", row.wall_ms));
            out.push_str(&format!("      \"wall_rps\": {:.0},\n", row.wall_rps));
            out.push_str(&format!(
                "      \"modeled_makespan_ms\": {:.1},\n",
                row.modeled_makespan_ms
            ));
            out.push_str(&format!("      \"modeled_rps\": {:.0},\n", row.modeled_rps));
            out.push_str(&format!(
                "      \"speedup_vs_single\": {:.2}\n",
                row.speedup_vs_single
            ));
            out.push_str(if i + 1 == self.rows.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// The shared base: every backend compiles the identical build (the
/// router checks the hello fingerprints agree).
fn base_kb(facts_per_pred: usize) -> KnowledgeBase {
    let mut b = KbBuilder::new();
    let mut source = String::new();
    for p in 0..PREDS {
        for i in 0..facts_per_pred {
            source.push_str(&format!("pred{p}(k{}, v{}).\n", i % KEYS, i % 7));
        }
    }
    b.consult("bench", &source).unwrap();
    b.finish(KbConfig::default())
}

/// Runs one row: `shards` single-worker backends behind one router,
/// `clients` threads splitting `requests` retrieves round-robin over
/// the query mix. Each thread accumulates the modeled engine time of
/// its requests per shard; the case's makespan is the busiest shard.
fn run_case(
    facts_per_pred: usize,
    shards: usize,
    clients: usize,
    requests: usize,
) -> ClusterWallclockRow {
    let net_cfg = NetConfig {
        workers: 1,
        ..NetConfig::default()
    };
    let crs_opts = CrsOptions {
        cache: CacheConfig::off(),
        ..CrsOptions::default()
    };
    let backends: Vec<NetServer> = (0..shards)
        .map(|_| {
            let crs = ClauseRetrievalServer::shared(base_kb(facts_per_pred), crs_opts.clone());
            NetServer::bind(crs, "127.0.0.1:0", net_cfg.clone()).unwrap()
        })
        .collect();
    let map = ShardMap {
        shards: backends
            .iter()
            .map(|s| ShardSpec {
                primary: s.local_addr().to_string(),
                backup: None,
            })
            .collect(),
        hot: Vec::new(),
        fingerprint: None,
    };
    let placements = map.clone();
    let router = Arc::new(Router::connect(map, RouterConfig::default()).unwrap());

    // Pre-parse the query mix, each tagged with its owning shard so the
    // client threads can bill modeled time per shard.
    let mut symbols = router.symbols();
    let queries: Arc<Vec<(Term, usize)>> = Arc::new(
        (0..PREDS * 4)
            .map(|i| {
                let p = i % PREDS;
                let k = (i * 7) % KEYS;
                let term = parse_term(&format!("pred{p}(k{k}, X)"), &mut symbols).unwrap();
                (term, placements.route(&format!("pred{p}"), 2))
            })
            .collect(),
    );

    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let router = Arc::clone(&router);
            let queries = Arc::clone(&queries);
            let share = requests / clients + usize::from(c < requests % clients);
            std::thread::spawn(move || {
                let mut busy_ns = vec![0u64; shards];
                for i in 0..share {
                    let (q, shard) = &queries[(c + i * clients) % queries.len()];
                    let r = router
                        .retrieve(q, SearchMode::TwoStage)
                        .expect("bench retrieval failed");
                    busy_ns[*shard] += r.stats.elapsed.as_ns();
                }
                busy_ns
            })
        })
        .collect();
    let mut busy_ns = vec![0u64; shards];
    for h in handles {
        for (total, part) in busy_ns.iter_mut().zip(h.join().expect("client died")) {
            *total += part;
        }
    }
    let wall_secs = t0.elapsed().as_secs_f64().max(1e-9);
    drop(router);
    for b in backends {
        b.shutdown();
    }

    let makespan_ns = busy_ns.iter().copied().max().unwrap_or(0).max(1);
    let makespan_secs = makespan_ns as f64 / 1e9;
    ClusterWallclockRow {
        shards,
        clients,
        requests,
        wall_ms: wall_secs * 1e3,
        wall_rps: requests as f64 / wall_secs,
        modeled_makespan_ms: makespan_secs * 1e3,
        modeled_rps: requests as f64 / makespan_secs,
        speedup_vs_single: 0.0, // filled by the caller against row 0
    }
}

/// Runs the shard-count sweep. The first entry of `shard_counts` is the
/// speedup baseline (pass 1 first).
pub fn run(
    shard_counts: &[usize],
    facts_per_pred: usize,
    clients: usize,
    requests: usize,
) -> ClusterWallclockReport {
    let mut rows: Vec<ClusterWallclockRow> = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        rows.push(run_case(facts_per_pred, shards, clients, requests));
    }
    let baseline = rows.first().map(|r| r.modeled_rps).unwrap_or(0.0);
    for row in &mut rows {
        row.speedup_vs_single = if baseline > 0.0 {
            row.modeled_rps / baseline
        } else {
            0.0
        };
    }
    ClusterWallclockReport {
        facts_per_pred,
        preds: PREDS,
        rows,
    }
}

impl fmt::Display for ClusterWallclockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E19: cluster throughput — modeled engine makespan vs shard count \
             ({} predicates x {} facts, single-worker backends, cache off)\n",
            self.preds, self.facts_per_pred
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}", r.shards),
                    format!("{}", r.clients),
                    format!("{}", r.requests),
                    format!("{:.1}", r.wall_ms),
                    format!("{:.1}", r.modeled_makespan_ms),
                    format!("{:.0}", r.modeled_rps),
                    format!("{:.2}x", r.speedup_vs_single),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            crate::render_table(
                &[
                    "shards",
                    "clients",
                    "requests",
                    "wall ms",
                    "model ms",
                    "model req/s",
                    "speedup",
                ],
                &rows,
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_and_json() {
        let r = run(&[1, 2], 60, 4, 240);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0].shards, 1);
        assert!((r.rows[0].speedup_vs_single - 1.0).abs() < 1e-9);
        for row in &r.rows {
            assert_eq!(row.requests, 240);
            assert!(row.wall_rps > 0.0);
            assert!(row.modeled_rps > 0.0);
        }
        // The predicate population hashes 8/8 over two shards and every
        // request does identical modeled work, so the two-shard modeled
        // speedup is ~2 by construction; anything under 1.7 means the
        // router stopped spreading the load.
        assert!(
            r.rows[1].speedup_vs_single > 1.7,
            "two-shard modeled speedup {:.2} < 1.7",
            r.rows[1].speedup_vs_single
        );
        let json = r.to_json();
        assert!(json.contains("\"experiment\": \"cluster_wallclock\""));
        assert!(json.contains("\"speedup_vs_single\""));
        assert!(format!("{r}").contains("model req/s"));
    }
}
