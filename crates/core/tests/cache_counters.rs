//! Trace-counter proof that the retrieval cache actually short-circuits
//! the filter pipeline, and that epoch invalidation is selective.
//!
//! This file holds exactly one test on purpose: the trace registry is
//! process-wide, and a sibling test running concurrently in the same
//! binary would pollute the counter deltas asserted here. Each
//! integration-test file is its own binary (own process, own statics),
//! so isolation at file granularity is enough.

use clare_core::{ClauseRetrievalServer, CrsOptions, SearchMode};
use clare_kb::{KbBuilder, KbConfig};
use clare_term::parser::parse_term;

#[test]
fn warm_cache_skips_both_filter_stages_and_invalidates_selectively() {
    let mut b = KbBuilder::new();
    let p_facts: String = (0..300)
        .map(|i| format!("p(k{}, v{}).", i % 40, i % 7))
        .collect::<Vec<_>>()
        .join("\n");
    let q_facts: String = (0..300)
        .map(|i| format!("q(k{}, v{}).", i % 40, i % 7))
        .collect::<Vec<_>>()
        .join("\n");
    b.consult("mp", &p_facts).unwrap();
    b.consult("mq", &q_facts).unwrap();
    let mut symbols = b.symbols_mut().clone();
    let p_query = parse_term("p(k13, X)", &mut symbols).unwrap();
    let q_query = parse_term("q(k13, X)", &mut symbols).unwrap();
    let server = ClauseRetrievalServer::new(b.finish(KbConfig::default()), CrsOptions::default());
    let m = clare_trace::metrics();

    // Cold: both queries run the full two-stage pipeline.
    let cold_p = server.retrieve(&p_query, SearchMode::TwoStage);
    let cold_q = server.retrieve(&q_query, SearchMode::TwoStage);

    // Warm: the repeat must touch neither FS1 nor FS2 — the acceptance
    // criterion for the cache is that a hit skips both filter stages.
    let scans = m.fs1_scans.get();
    let sweeps = m.fs2_sweeps.get();
    let hits = m.cache_hits.get();
    let warm_p = server.retrieve(&p_query, SearchMode::TwoStage);
    assert_eq!(warm_p, cold_p, "a hit is the byte-identical answer");
    assert!(m.cache_hits.get() > hits, "the repeat hit the cache");
    assert_eq!(m.fs1_scans.get(), scans, "warm repeat skipped FS1");
    assert_eq!(m.fs2_sweeps.get(), sweeps, "warm repeat skipped FS2");

    // Batch repeats are served from the same cache.
    let hits = m.cache_hits.get();
    let scans = m.fs1_scans.get();
    let batch = server.retrieve_batch(&[p_query.clone(), q_query.clone()], SearchMode::TwoStage);
    assert_eq!(batch, vec![cold_p.clone(), cold_q.clone()]);
    assert!(m.cache_hits.get() >= hits + 2, "both members hit");
    assert_eq!(m.fs1_scans.get(), scans, "warm batch skipped FS1");

    // An incremental consult into mp invalidates p/2 but leaves q/2 warm.
    let mut tx = server.begin_update();
    tx.consult("mp", "p(k13, v99).").unwrap();
    tx.commit(KbConfig::default()).unwrap();

    let invalidations = m.cache_epoch_invalidations.get();
    let after_p = server.retrieve(&p_query, SearchMode::TwoStage);
    assert_eq!(
        after_p.stats.unified,
        cold_p.stats.unified + 1,
        "the update's new clause is visible"
    );
    assert!(
        m.cache_epoch_invalidations.get() > invalidations,
        "the stale p/2 entry was dropped by epoch mismatch"
    );

    let hits = m.cache_hits.get();
    let scans = m.fs1_scans.get();
    let after_q = server.retrieve(&q_query, SearchMode::TwoStage);
    assert_eq!(after_q, cold_q, "untouched predicate survived the update");
    assert!(m.cache_hits.get() > hits, "q/2 stayed warm");
    assert_eq!(m.fs1_scans.get(), scans, "warm q/2 skipped FS1");
    assert_eq!(
        after_q,
        clare_core::retrieve(
            &server.snapshot(),
            &q_query,
            SearchMode::TwoStage,
            &CrsOptions::default(),
        ),
        "the surviving entry matches a fresh compute on the new snapshot"
    );

    // A full (non-incremental) update invalidates everything.
    let mut b2 = KbBuilder::new();
    *b2.symbols_mut() = symbols.clone();
    b2.consult("mq", &q_facts).unwrap();
    server.update(b2.finish(KbConfig::default()));
    let hits = m.cache_hits.get();
    let misses = m.cache_misses.get();
    server.retrieve(&q_query, SearchMode::TwoStage);
    assert_eq!(m.cache_hits.get(), hits, "global bump cleared q/2 too");
    assert!(m.cache_misses.get() > misses);

    // With the cache disabled, repeats never hit.
    let mut b3 = KbBuilder::new();
    *b3.symbols_mut() = symbols;
    b3.consult("mp", &p_facts).unwrap();
    let server_off = ClauseRetrievalServer::new(
        b3.finish(KbConfig::default()),
        CrsOptions {
            cache: clare_core::CacheConfig::off(),
            ..CrsOptions::default()
        },
    );
    let first = server_off.retrieve(&p_query, SearchMode::TwoStage);
    let hits = m.cache_hits.get();
    let scans = m.fs1_scans.get();
    let second = server_off.retrieve(&p_query, SearchMode::TwoStage);
    assert_eq!(first, second);
    assert_eq!(m.cache_hits.get(), hits, "disabled cache never hits");
    assert!(m.fs1_scans.get() > scans, "disabled cache re-runs FS1");
}
