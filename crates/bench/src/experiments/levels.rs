//! E9 — §2.2: the five matching levels against key depth.
//!
//! "Since the cost and complexity of the matching hardware to cater for
//! levels four and five are high, a level three partial test unification
//! algorithm is being adopted." This ablation shows the trade-off the
//! choice rests on: a level-`n` filter separates clauses only when the
//! discriminating constant is shallow enough, while deeper levels cost
//! more hardware (cycles/complexity).

use clare_kb::{KbBuilder, KbConfig};
use clare_term::Term;
use clare_unify::partial::{partial_match, MatchLevel, PartialConfig};
use clare_workload::DeepSpec;
use std::fmt;

/// Candidate fraction per level for one key depth.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthRow {
    /// Depth of the discriminating key.
    pub depth: usize,
    /// Fraction of the predicate accepted at each level L1..L5.
    pub accepted_fraction: [f64; 5],
    /// Average word-comparison steps per clause at each level (the cost
    /// half of the trade-off; L5 is full unification, reported as 0).
    pub avg_comparisons: [f64; 5],
}

/// The ablation report.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelsReport {
    /// One row per key depth.
    pub rows: Vec<DepthRow>,
    /// Facts per depth (denominator).
    pub facts: usize,
    /// Distinct keys (ideal candidate fraction = 1/keys).
    pub keys: usize,
}

/// Runs the ablation over key depths `0..=max_depth`.
pub fn run(max_depth: usize) -> LevelsReport {
    let facts = 400;
    let keys = 40;
    let mut rows = Vec::new();
    for depth in 0..=max_depth {
        let spec = DeepSpec { facts, depth, keys };
        let mut b = KbBuilder::new();
        let heads = spec.generate(&mut b, "m");
        let kb = b.finish(KbConfig::default());
        let pred = kb.lookup("shape", 1).expect("generated predicate");
        // Query: the first stored head (ground, key 0).
        let query: &Term = &heads[0];
        let mut accepted = [0usize; 5];
        let mut comparisons = [0usize; 5];
        for clause in pred.clauses() {
            for (i, level) in MatchLevel::ALL.iter().enumerate() {
                let report = partial_match(query, clause.head(), PartialConfig::level(*level));
                if report.matched {
                    accepted[i] += 1;
                }
                comparisons[i] += report.comparisons;
            }
        }
        rows.push(DepthRow {
            depth,
            accepted_fraction: accepted.map(|a| a as f64 / facts as f64),
            avg_comparisons: comparisons.map(|c| c as f64 / facts as f64),
        });
    }
    LevelsReport { rows, facts, keys }
}

impl LevelsReport {
    /// The ideal (fully discriminating) candidate fraction.
    pub fn ideal_fraction(&self) -> f64 {
        1.0 / self.keys as f64
    }
}

impl fmt::Display for LevelsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E9 / §2.2: matching levels 1-5 vs key depth ({} facts, {} keys, ideal fraction {:.3})\n",
            self.facts,
            self.keys,
            self.ideal_fraction()
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut cells = vec![r.depth.to_string()];
                cells.extend(r.accepted_fraction.iter().map(|a| format!("{:.3}", a)));
                cells.extend(r.avg_comparisons[..4].iter().map(|c| format!("{:.1}", c)));
                cells
            })
            .collect();
        f.write_str(&crate::render_table(
            &[
                "key depth",
                "L1",
                "L2",
                "L3",
                "L4",
                "L5",
                "cmp@L1",
                "cmp@L2",
                "cmp@L3",
                "cmp@L4",
            ],
            &rows,
        ))?;
        writeln!(
            f,
            "\nlevel 3 (the hardware's choice) separates keys at depth <= 1;\n\
             deeper keys need L4/L5, whose hardware the paper deems too costly."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_monotonicity() {
        let report = run(3);
        for row in &report.rows {
            for w in row.accepted_fraction.windows(2) {
                assert!(
                    w[0] >= w[1] - 1e-12,
                    "deeper levels accept fewer: {:?}",
                    row
                );
            }
        }
    }

    #[test]
    fn level3_separates_shallow_keys_only() {
        let report = run(3);
        let ideal = report.ideal_fraction();
        // Depth 0: the key is the argument itself; L2 already separates.
        let d0 = &report.rows[0];
        assert!((d0.accepted_fraction[1] - ideal).abs() < 1e-9);
        // Depth 1: first-level elements; L3 separates, L2 does not.
        let d1 = &report.rows[1];
        assert!(
            (d1.accepted_fraction[2] - ideal).abs() < 1e-9,
            "L3 at depth 1"
        );
        assert!(
            (d1.accepted_fraction[1] - 1.0).abs() < 1e-9,
            "L2 blind at depth 1"
        );
        // Depth 2: below the level-3 horizon.
        let d2 = &report.rows[2];
        assert!(
            (d2.accepted_fraction[2] - 1.0).abs() < 1e-9,
            "L3 blind at depth 2"
        );
        assert!(
            (d2.accepted_fraction[3] - ideal).abs() < 1e-9,
            "L4 sees depth 2"
        );
    }

    #[test]
    fn l5_always_exact() {
        let report = run(3);
        let ideal = report.ideal_fraction();
        for row in &report.rows {
            assert!(
                (row.accepted_fraction[4] - ideal).abs() < 1e-9,
                "L5 is full unification"
            );
        }
    }

    #[test]
    fn deeper_levels_cost_more_comparisons() {
        let report = run(3);
        // At depth 3 the nest is 4 levels deep: L4 must walk far more
        // word pairs than L2/L3, which stop early.
        let d3 = report.rows.last().unwrap();
        assert!(d3.avg_comparisons[3] > d3.avg_comparisons[2]);
        assert!(d3.avg_comparisons[2] >= d3.avg_comparisons[1]);
    }

    #[test]
    fn l1_accepts_everything_here() {
        // All facts share the same top-level type; type-only matching
        // cannot reject anything.
        let report = run(2);
        for row in &report.rows {
            assert!((row.accepted_fraction[0] - 1.0).abs() < 1e-9);
        }
    }
}
