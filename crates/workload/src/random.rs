//! Random term and clause-head generation, for property tests and the
//! Figure 1 algorithm-validation experiment.
//!
//! Generated pairs share a predicate indicator (as FS2 always sees clauses
//! from one compiled clause file) and draw constants from a small pool so
//! that matches actually occur.

use clare_term::{Symbol, SymbolTable, Term, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning for the random generator.
#[derive(Debug, Clone)]
pub struct RandomTermSpec {
    /// Predicate arity of generated heads.
    pub arity: usize,
    /// Maximum nesting depth of arguments.
    pub max_depth: usize,
    /// Size of the atom pool (smaller = more collisions = more matches).
    pub atoms: usize,
    /// Number of distinct variables available per term.
    pub vars: usize,
    /// Probability that a position becomes a variable.
    pub var_probability: f64,
}

impl Default for RandomTermSpec {
    fn default() -> Self {
        RandomTermSpec {
            arity: 3,
            max_depth: 3,
            atoms: 6,
            vars: 3,
            var_probability: 0.3,
        }
    }
}

/// A deterministic random term generator.
#[derive(Debug)]
pub struct RandomTerms {
    spec: RandomTermSpec,
    rng: StdRng,
    functor: Symbol,
    atom_pool: Vec<Symbol>,
    struct_pool: Vec<Symbol>,
}

impl RandomTerms {
    /// Creates a generator interning its pools into `symbols`.
    pub fn new(spec: RandomTermSpec, symbols: &mut SymbolTable, seed: u64) -> Self {
        let functor = symbols.intern_atom("rt");
        let atom_pool = (0..spec.atoms.max(1))
            .map(|i| symbols.intern_atom(&format!("a{i}")))
            .collect();
        let struct_pool = (0..3)
            .map(|i| symbols.intern_atom(&format!("s{i}")))
            .collect();
        RandomTerms {
            spec,
            rng: StdRng::seed_from_u64(seed),
            functor,
            atom_pool,
            struct_pool,
        }
    }

    /// Generates one clause-head/query-shaped term `rt(arg, …)`.
    pub fn head(&mut self) -> Term {
        let args = (0..self.spec.arity)
            .map(|_| self.term(self.spec.max_depth))
            .collect();
        Term::Struct {
            functor: self.functor,
            args,
        }
    }

    fn term(&mut self, depth: usize) -> Term {
        if self.rng.gen_bool(self.spec.var_probability) {
            return if self.rng.gen_bool(0.15) {
                Term::Anon
            } else {
                Term::Var(VarId::new(
                    self.rng.gen_range(0..self.spec.vars.max(1)) as u32
                ))
            };
        }
        let complex_allowed = depth > 0;
        match self.rng.gen_range(0..if complex_allowed { 6 } else { 3 }) {
            0 => Term::Atom(self.atom_pool[self.rng.gen_range(0..self.atom_pool.len())]),
            1 => Term::Int(self.rng.gen_range(-5..5)),
            2 => Term::Atom(self.atom_pool[self.rng.gen_range(0..self.atom_pool.len())]),
            3 => {
                let functor = self.struct_pool[self.rng.gen_range(0..self.struct_pool.len())];
                let arity = self.rng.gen_range(1..=2);
                Term::Struct {
                    functor,
                    args: (0..arity).map(|_| self.term(depth - 1)).collect(),
                }
            }
            _ => {
                let n = self.rng.gen_range(0..=3);
                let tail = if n > 0 && self.rng.gen_bool(0.3) {
                    Some(Box::new(Term::Var(VarId::new(
                        self.rng.gen_range(0..self.spec.vars.max(1)) as u32,
                    ))))
                } else {
                    None
                };
                Term::List {
                    items: (0..n).map(|_| self.term(depth - 1)).collect(),
                    tail,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut sy1 = SymbolTable::new();
        let mut g1 = RandomTerms::new(RandomTermSpec::default(), &mut sy1, 42);
        let mut sy2 = SymbolTable::new();
        let mut g2 = RandomTerms::new(RandomTermSpec::default(), &mut sy2, 42);
        for _ in 0..50 {
            assert_eq!(g1.head(), g2.head());
        }
    }

    #[test]
    fn heads_are_well_formed() {
        let mut sy = SymbolTable::new();
        let spec = RandomTermSpec::default();
        let mut g = RandomTerms::new(spec.clone(), &mut sy, 7);
        for _ in 0..200 {
            let h = g.head();
            assert_eq!(h.arity(), spec.arity);
            assert!(h.functor_arity().is_some());
            assert!(clare_term::term_depth(&h) <= spec.max_depth + 1);
        }
    }

    #[test]
    fn produces_both_matches_and_mismatches() {
        use clare_unify::unify_query_clause;
        let mut sy = SymbolTable::new();
        let mut g = RandomTerms::new(RandomTermSpec::default(), &mut sy, 99);
        let mut matched = 0;
        let mut missed = 0;
        for _ in 0..300 {
            let q = g.head();
            let c = g.head();
            if unify_query_clause(&q, &c).is_some() {
                matched += 1;
            } else {
                missed += 1;
            }
        }
        assert!(matched > 10, "some pairs unify: {matched}");
        assert!(missed > 10, "some pairs fail: {missed}");
    }
}
