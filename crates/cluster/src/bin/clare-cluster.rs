//! `clare-cluster`: the predicate-sharded cluster router daemon.
//!
//! Speaks the same PIF-over-TCP protocol as `clare-served`, so ordinary
//! clients connect to the router and see one logical Clause Retrieval
//! Server; behind it, requests shard by predicate across the configured
//! backends with log-shipping replication and failover.
//!
//! ```text
//! clare-cluster [OPTIONS]
//!
//!   --addr HOST:PORT       listen address       (default 127.0.0.1:7899)
//!   --shard PRIM[,BACKUP]  one shard: primary backend address, plus an
//!                          optional log-shipping backup (repeatable;
//!                          at least one required)
//!   --hot FUNCTOR/ARITY    split this predicate by first argument
//!                          across all shards (repeatable)
//!   --heartbeat-ms N       health-probe period  (default 500; 0 turns
//!                          the probe thread off — failover is manual)
//!   --misses K             consecutive probe misses before promotion
//!                          (default 3)
//!   --repl-timeout-ms N    semi-sync write wait (default 2000)
//!   --no-auto-failover     count misses but never promote automatically
//!   --no-stdin             serve forever instead of exiting on stdin EOF
//! ```
//!
//! Prints `listening on ADDR` on stdout once ready, like `clare-served`.

use clare_cluster::ClusterError;
use clare_cluster::{Router, RouterConfig, ShardMap, ShardSpec};
use clare_net::protocol::{
    decode_client_hello_caps, decode_consult, decode_retrieve, decode_retrieve_batch,
    encode_commit_receipt, encode_error, encode_retrieval, encode_retrievals, encode_server_hello,
    encode_server_stats, encode_symbols, opcode, ErrorCode, ErrorReply, Frame, FrameReader,
    HelloStatus, ServerHello, CAP_FRAME_CRC, CLIENT_HELLO_LEN, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use clare_net::NetError;
use std::io::{BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    addr: String,
    shards: Vec<ShardSpec>,
    hot: Vec<(String, usize)>,
    heartbeat_ms: u64,
    misses: u32,
    repl_timeout_ms: u64,
    auto_failover: bool,
    wait_stdin: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7899".to_owned(),
        shards: Vec::new(),
        hot: Vec::new(),
        heartbeat_ms: 500,
        misses: 3,
        repl_timeout_ms: 2000,
        auto_failover: true,
        wait_stdin: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--shard" => {
                let spec = value("--shard")?;
                let mut parts = spec.splitn(2, ',');
                let primary = parts
                    .next()
                    .filter(|p| !p.is_empty())
                    .ok_or("empty --shard")?
                    .to_owned();
                let backup = parts.next().filter(|b| !b.is_empty()).map(str::to_owned);
                args.shards.push(ShardSpec { primary, backup });
            }
            "--hot" => {
                let spec = value("--hot")?;
                let (functor, arity) = spec
                    .rsplit_once('/')
                    .ok_or_else(|| format!("bad --hot {spec:?} (expected functor/arity)"))?;
                let arity: usize = arity.parse().map_err(|e| format!("bad --hot arity: {e}"))?;
                args.hot.push((functor.to_owned(), arity));
            }
            "--heartbeat-ms" => {
                args.heartbeat_ms = value("--heartbeat-ms")?
                    .parse()
                    .map_err(|e| format!("bad --heartbeat-ms: {e}"))?
            }
            "--misses" => {
                args.misses = value("--misses")?
                    .parse()
                    .map_err(|e| format!("bad --misses: {e}"))?
            }
            "--repl-timeout-ms" => {
                args.repl_timeout_ms = value("--repl-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad --repl-timeout-ms: {e}"))?
            }
            "--no-auto-failover" => args.auto_failover = false,
            "--no-stdin" => args.wait_stdin = false,
            "--help" | "-h" => {
                return Err("usage: clare-cluster --shard PRIMARY[,BACKUP] [OPTIONS] \
                            (see crate docs for options)"
                    .to_owned())
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    if args.shards.is_empty() {
        return Err("at least one --shard is required".to_owned());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("clare-cluster: {msg}");
            std::process::exit(2);
        }
    };

    let map = ShardMap {
        shards: args.shards.clone(),
        hot: args.hot.clone(),
        fingerprint: None,
    };
    let cfg = RouterConfig {
        heartbeat_misses: args.misses,
        auto_failover: args.auto_failover,
        repl_sync_timeout: Duration::from_millis(args.repl_timeout_ms),
        ..RouterConfig::default()
    };
    let router = match Router::connect(map, cfg) {
        Ok(router) => Arc::new(router),
        Err(e) => {
            eprintln!("clare-cluster: cannot assemble the cluster: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "clare-cluster: {} shard(s) connected, KB fingerprint {:#018x}",
        router.shard_count(),
        router.kb_fingerprint()
    );

    let shutdown = Arc::new(AtomicBool::new(false));
    if args.heartbeat_ms > 0 {
        let router = Arc::clone(&router);
        let shutdown = Arc::clone(&shutdown);
        let period = Duration::from_millis(args.heartbeat_ms);
        std::thread::Builder::new()
            .name("clare-health".to_owned())
            .spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    for shard in router.tick_health() {
                        eprintln!("clare-cluster: shard {shard} failed over to its backup");
                    }
                }
            })
            .ok();
    }

    let listener = match TcpListener::bind(&args.addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("clare-cluster: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    let local = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| args.addr.clone());
    // The harness contract: this exact line signals readiness.
    println!("listening on {local}");
    eprintln!("clare-cluster: protocol v{PROTOCOL_VERSION}, routing on {local}");

    {
        let router = Arc::clone(&router);
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("clare-accept".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let router = Arc::clone(&router);
                    std::thread::Builder::new()
                        .name("clare-conn".to_owned())
                        .spawn(move || serve_connection(stream, &router))
                        .ok();
                }
            })
            .ok();
    }

    if args.wait_stdin {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            if line.is_err() {
                break;
            }
        }
        eprintln!("clare-cluster: stdin closed, exiting");
        shutdown.store(true, Ordering::Relaxed);
    } else {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
}

/// Serves one client connection: hello exchange, then a frame loop
/// dispatching into the router.
fn serve_connection(mut stream: TcpStream, router: &Router) {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(300))).ok();
    let mut hello_raw = [0u8; CLIENT_HELLO_LEN];
    if stream.read_exact(&mut hello_raw).is_err() {
        return;
    }
    let Ok((version, requested)) = decode_client_hello_caps(&hello_raw) else {
        return;
    };
    let accepted = requested & CAP_FRAME_CRC;
    let status = if version == PROTOCOL_VERSION {
        HelloStatus::Ok
    } else {
        HelloStatus::VersionMismatch
    };
    let hello = ServerHello {
        version: PROTOCOL_VERSION,
        status,
        retry_after_ms: 0,
        caps: accepted,
        fingerprint: router.kb_fingerprint(),
    };
    if stream.write_all(&encode_server_hello(&hello)).is_err() || status != HelloStatus::Ok {
        return;
    }

    let checksums = accepted != 0;
    let mut reader = FrameReader::new(MAX_FRAME_LEN);
    reader.set_checksums(checksums);
    loop {
        let frame = match reader.read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(_) => return,
        };
        let reply = dispatch(router, &frame);
        if stream.write_all(&reply.encoded_with(checksums)).is_err() {
            return;
        }
    }
}

/// Answers one request frame. Every error becomes an error frame; the
/// connection survives anything but a dead socket.
fn dispatch(router: &Router, frame: &Frame) -> Frame {
    let id = frame.request_id;
    match frame.opcode {
        opcode::PING => Frame::new(id, opcode::PING | opcode::REPLY, Vec::new()),
        opcode::RETRIEVE => match decode_retrieve(&frame.payload) {
            Ok(req) => match router.retrieve(&req.query, req.mode) {
                Ok(retrieval) => Frame::new(
                    id,
                    opcode::RETRIEVE | opcode::REPLY,
                    encode_retrieval(&retrieval),
                ),
                Err(e) => error_frame(id, &e),
            },
            Err(e) => malformed(id, &e.to_string()),
        },
        opcode::RETRIEVE_BATCH => match decode_retrieve_batch(&frame.payload) {
            Ok(req) => {
                // Queries in one batch may route to different shards;
                // answer each individually (the core pins batch results
                // equal to individual retrievals, so this is lossless).
                let mut retrievals = Vec::with_capacity(req.queries.len());
                for query in &req.queries {
                    match router.retrieve(query, req.mode) {
                        Ok(retrieval) => retrievals.push(retrieval),
                        Err(e) => return error_frame(id, &e),
                    }
                }
                Frame::new(
                    id,
                    opcode::RETRIEVE_BATCH | opcode::REPLY,
                    encode_retrievals(&retrievals),
                )
            }
            Err(e) => malformed(id, &e.to_string()),
        },
        opcode::ASSERT => match decode_consult(&frame.payload) {
            Ok(req) => match router.assert(&req.module, &req.source) {
                Ok(receipt) => Frame::new(
                    id,
                    opcode::ASSERT | opcode::REPLY,
                    encode_commit_receipt(&receipt.receipt),
                ),
                Err(e) => error_frame(id, &e),
            },
            Err(e) => malformed(id, &e.to_string()),
        },
        opcode::RETRACT => match decode_consult(&frame.payload) {
            Ok(req) => match router.retract(&req.module, &req.source) {
                Ok(receipt) => Frame::new(
                    id,
                    opcode::RETRACT | opcode::REPLY,
                    encode_commit_receipt(&receipt.receipt),
                ),
                Err(e) => error_frame(id, &e),
            },
            Err(e) => malformed(id, &e.to_string()),
        },
        opcode::STATS if frame.payload.is_empty() => match router.stats() {
            Ok(stats) => Frame::new(
                id,
                opcode::STATS | opcode::REPLY,
                encode_server_stats(&stats),
            ),
            Err(e) => error_frame(id, &e),
        },
        opcode::SYMBOLS => Frame::new(
            id,
            opcode::SYMBOLS | opcode::REPLY,
            encode_symbols(&router.symbols()),
        ),
        other => unsupported(
            id,
            &format!("opcode {other:#04x} is not routed by the cluster"),
        ),
    }
}

fn error_frame(id: u64, e: &ClusterError) -> Frame {
    let (code, retry_after_ms, message) = match e {
        // A backend's own error frame passes through with its code.
        ClusterError::Net(NetError::Remote {
            code,
            retry_after_ms,
            message,
        }) => (*code, *retry_after_ms, message.clone()),
        ClusterError::Parse(msg) => (ErrorCode::ConsultRejected, 0, msg.clone()),
        ClusterError::Unroutable(_) | ClusterError::CrossShardWrite { .. } => {
            (ErrorCode::Unsupported, 0, e.to_string())
        }
        _ => (ErrorCode::Internal, 0, e.to_string()),
    };
    let reply = ErrorReply {
        code,
        retry_after_ms,
        message,
    };
    Frame::new(id, opcode::ERROR, encode_error(&reply))
}

fn malformed(id: u64, message: &str) -> Frame {
    Frame::new(
        id,
        opcode::ERROR,
        encode_error(&ErrorReply {
            code: ErrorCode::Malformed,
            retry_after_ms: 0,
            message: message.to_owned(),
        }),
    )
}

fn unsupported(id: u64, message: &str) -> Frame {
    Frame::new(
        id,
        opcode::ERROR,
        encode_error(&ErrorReply {
            code: ErrorCode::Unsupported,
            retry_after_ms: 0,
            message: message.to_owned(),
        }),
    )
}
